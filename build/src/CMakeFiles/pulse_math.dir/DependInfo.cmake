
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/interval_set.cc" "src/CMakeFiles/pulse_math.dir/math/interval_set.cc.o" "gcc" "src/CMakeFiles/pulse_math.dir/math/interval_set.cc.o.d"
  "/root/repo/src/math/linear_system.cc" "src/CMakeFiles/pulse_math.dir/math/linear_system.cc.o" "gcc" "src/CMakeFiles/pulse_math.dir/math/linear_system.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/CMakeFiles/pulse_math.dir/math/matrix.cc.o" "gcc" "src/CMakeFiles/pulse_math.dir/math/matrix.cc.o.d"
  "/root/repo/src/math/polynomial.cc" "src/CMakeFiles/pulse_math.dir/math/polynomial.cc.o" "gcc" "src/CMakeFiles/pulse_math.dir/math/polynomial.cc.o.d"
  "/root/repo/src/math/roots.cc" "src/CMakeFiles/pulse_math.dir/math/roots.cc.o" "gcc" "src/CMakeFiles/pulse_math.dir/math/roots.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
