// MACD monitor: the paper's financial-services scenario (Section V-B).
//
// Runs the moving-average convergence/divergence query over a synthetic
// NYSE-style trade feed in *predictive* mode: per-symbol linear price
// models are built from trades, short/long averages are computed as
// continuous window functions, and the join S.ap > L.ap is solved
// analytically. The monitor prints crossover alerts as they are
// discovered — potentially ahead of the trades that confirm them.
//
// Build & run:  ./build/examples/macd_monitor
#include <cstdio>

#include "core/runtime.h"
#include "workload/nyse.h"
#include "workload/queries.h"

using namespace pulse;

int main() {
  QuerySpec spec;
  Status st = spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  MacdParams params;
  params.short_window = 10.0;  // paper: [size 10 advance 2]
  params.long_window = 60.0;   // paper: [size 60 advance 2]
  params.slide = 2.0;
  Result<QuerySpec::NodeId> sink = AddMacdQuery(&spec, params);
  if (!sink.ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    return 1;
  }

  PredictiveRuntime::Options options;
  // 1% of the trade's value (the paper's threshold): reference the
  // short average (~price), not the small diff.
  options.bounds = {BoundSpec::Relative("s.ap", 0.01)};
  Result<PredictiveRuntime> runtime =
      PredictiveRuntime::Make(spec, options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }

  NyseOptions gen_options;
  gen_options.num_symbols = 8;
  gen_options.tuple_rate = 500.0;
  gen_options.trades_per_trend = 400;
  gen_options.noise = 0.01;
  NyseGenerator generator(gen_options);

  size_t alerts = 0;
  for (int i = 0; i < 60000; ++i) {
    st = runtime->ProcessTuple("nyse", generator.NextTuple());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    for (const Segment& s : runtime->TakeOutputSegments()) {
      // A result segment means the short-term average provably exceeds
      // the long-term average over this whole time range.
      Key sym = static_cast<Key>(s.unmodeled.count("s.key")
                                     ? s.unmodeled.at("s.key")
                                     : s.key);
      const double mid = 0.5 * (s.range.lo + s.range.hi);
      Result<double> diff = s.EvaluateAttribute("diff", mid);
      if (alerts < 12) {
        std::printf(
            "MACD alert: symbol %lld bullish over %s (diff at mid: "
            "%+.4f)\n",
            (long long)sym, s.range.ToString().c_str(),
            diff.ok() ? *diff : 0.0);
      }
      ++alerts;
    }
  }
  (void)runtime->Finish();

  const RuntimeStats& stats = runtime->stats();
  std::printf("\n--- session summary ---\n");
  std::printf("trades processed : %llu\n",
              (unsigned long long)stats.tuples_in);
  std::printf("model-validated  : %llu (%.1f%%)\n",
              (unsigned long long)stats.tuples_validated,
              100.0 * stats.tuples_validated / stats.tuples_in);
  std::printf("solver runs      : %llu\n",
              (unsigned long long)stats.segments_pushed);
  std::printf("MACD alerts      : %zu\n", alerts);
  return 0;
}
