#ifndef PULSE_CORE_PRECISION_H_
#define PULSE_CORE_PRECISION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/runtime.h"
#include "model/segment.h"
#include "util/result.h"

namespace pulse {

/// One rung of the precision ladder above the exact tier 0. Widening to
/// this tier multiplies the segmentation error budget by `error_scale`
/// (longer pieces, fewer solver pushes — the paper's precision economy,
/// Section IV, turned into a load lever) and tags every answer produced
/// under it with `output_bound`: the absolute per-attribute deviation
/// from the exact answer within which a provisional is later confirmed.
struct PrecisionTier {
  double error_scale = 4.0;
  double output_bound = 1.0;
};

/// A conservative default ladder: each step quadruples the error budget
/// and the advertised bound. Callers with workload knowledge should size
/// output_bound to their data's scale (docs/PRECISION.md).
std::vector<PrecisionTier> DefaultPrecisionLadder();

struct AdaptivePrecisionOptions {
  /// Widened tiers; SetTier(k) selects ladder[k-1]. Must be non-empty.
  std::vector<PrecisionTier> ladder = DefaultPrecisionLadder();
  /// Probe points per provisional at settlement (evenly spaced inside
  /// the provisional's range; every covered probe must be within the
  /// tier's output_bound for a confirm).
  size_t probe_points = 5;
  /// Deferred-input backstop: raw items buffered for exact replay while
  /// widened. Reaching the cap forces an immediate reconcile (the
  /// precision lever absorbs bursts; sustained overload beyond this is
  /// the load-shed controller's job — docs/PRECISION.md).
  size_t max_deferred = 1u << 20;
};

/// Why a provisional was retracted.
enum class RetractReason : uint8_t {
  /// A probe deviated from the exact answer by more than the bound.
  kDeviation = 0,
  /// No exact output ever covered the provisional's range — the coarse
  /// model produced an answer the exact computation never did.
  kSpurious = 1,
};

const char* RetractReasonToString(RetractReason reason);

/// An answer emitted under a widened budget, pending settlement.
struct ProvisionalRecord {
  /// Runtime-unique lineage id (> 0); the later confirm/retract verdict
  /// carries the same id.
  uint64_t lineage = 0;
  /// The tier's output_bound at emission time.
  double bound = 0.0;
  Segment segment;
};

/// The settlement of one provisional lineage.
struct VerdictRecord {
  uint64_t lineage = 0;
  bool confirmed = false;
  /// Meaningful when !confirmed.
  RetractReason reason = RetractReason::kDeviation;
  /// Largest probed |provisional - exact| (0 when nothing was probed).
  double max_deviation = 0.0;
};

/// Conservation accounting (docs/PRECISION.md): at any quiescent point
///   provisional == confirmed + retracted + open()
/// and open() == 0 after Finish().
struct PrecisionStats {
  uint64_t provisional = 0;
  uint64_t confirmed = 0;
  uint64_t retracted = 0;
  uint64_t widen_events = 0;
  uint64_t tighten_events = 0;
  /// Raw items buffered for exact replay / already replayed.
  uint64_t deferred_items = 0;
  uint64_t replayed_items = 0;
  /// Reconciles forced by the max_deferred backstop.
  uint64_t forced_reconciles = 0;

  uint64_t open() const { return provisional - confirmed - retracted; }
};

/// A HistoricalRuntime wrapper that makes the error budget dynamic
/// without ever changing the settled answer stream.
///
/// Tier 0 is a passthrough: input goes straight to the wrapped exact
/// runtime and its outputs are settled immediately. At a widened tier k,
/// raw input is *deferred* (buffered unprocessed, the cheapest possible
/// admission) while an episodic coarse runtime — same query, the
/// segmentation error budget multiplied by ladder[k-1].error_scale —
/// processes it live; every coarse output becomes a ProvisionalRecord
/// tagged with a fresh lineage id and the tier's bound. Tightening back
/// to tier 0 (or Finish) reconciles: the deferred input replays through
/// the exact runtime in arrival order, the exact outputs are settled,
/// and each open provisional is probed against them and confirmed or
/// retracted.
///
/// Determinism contract: the exact runtime receives exactly the same
/// ProcessTuple/ProcessSegment/Finish call sequence as a static-precision
/// run of the same feed — deferral changes *when* the calls happen, never
/// their order or content — so TakeSettledOutputs() over a whole run is
/// byte-identical to the static run (the differential oracle's
/// precision variant pins this per seed, modulo segment ids).
///
/// Single-threaded like the runtimes it wraps; the serving session's
/// worker thread is the one caller.
class AdaptiveRuntime {
 public:
  /// `exact` is the static-precision configuration (the shard-pool
  /// specific fields shared_solve_cache / metrics / output_observer are
  /// overridden: the adaptive runtime owns a registry shared by the
  /// exact and coarse runtimes so span/runtime/push_segment reflects
  /// whichever side is live).
  static Result<std::unique_ptr<AdaptiveRuntime>> Make(
      const QuerySpec& spec, HistoricalRuntime::Options exact,
      AdaptivePrecisionOptions precision = {});

  Status ProcessTuple(const std::string& stream, const Tuple& tuple);
  Status ProcessTuples(const std::string& stream, const Tuple* tuples,
                       size_t n);
  Status ProcessSegment(const std::string& stream, Segment segment);

  /// Moves to tier `tier` (0 = exact, k selects ladder[k-1]). Widening
  /// and tier-to-tier moves only switch the coarse episode; tightening
  /// to 0 reconciles (replays the deferred input and settles open
  /// provisionals). Out-of-range tiers clamp to the ladder top.
  Status SetTier(size_t tier);
  size_t tier() const { return tier_; }

  /// End of input: reconciles if widened, finishes the exact runtime,
  /// settles every remaining provisional (uncovered ones retract as
  /// spurious). After this, stats().open() == 0.
  Status Finish();

  /// The authoritative answer stream: exact-runtime outputs in exact
  /// output order. Byte-identical (modulo ids) to a static run.
  std::vector<Segment> TakeSettledOutputs();
  /// Provisional answers emitted since the last call, in emission order.
  std::vector<ProvisionalRecord> TakeProvisionals();
  /// Confirm/retract verdicts since the last call, in settlement order.
  std::vector<VerdictRecord> TakeVerdicts();

  const PrecisionStats& stats() const { return stats_; }
  /// Settled segments currently retained for provisional probing. Stays
  /// 0 while nothing is open — the tier-0 steady state must not grow a
  /// copy of the output stream (test hook; see HarvestSettled).
  size_t probe_timeline_segments() const;
  const AdaptivePrecisionOptions& precision_options() const {
    return precision_;
  }
  /// Registry shared by the exact and coarse runtimes (owned).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  AdaptiveRuntime() = default;

  struct DeferredItem {
    std::string stream;
    bool is_segment = false;
    Tuple tuple;
    Segment segment;
  };

  Status Defer(const std::string& stream, const Tuple* tuple,
               const Segment* segment);
  /// Replays every buffered item through the exact runtime in arrival
  /// order and empties the buffer. No-op when nothing is deferred.
  Status DrainDeferred();
  Status StartEpisode(size_t tier);
  /// Finish the live coarse episode, harvesting its tail as provisionals.
  Status CloseEpisode();
  /// Replays deferred input through the exact runtime and settles what
  /// the settled coverage allows.
  Status Reconcile();
  void HarvestProvisionals();
  void HarvestSettled();
  /// Probes open provisionals against the settled timelines. With
  /// `final_pass`, uncovered provisionals retract as spurious instead of
  /// staying open.
  void SettleOpen(bool final_pass);
  /// Tier-0 housekeeping after a harvest: settles what new coverage
  /// allows and prunes the probe timelines, so provisionals left open by
  /// a reconcile (exact tail pending) resolve as soon as their range is
  /// covered instead of waiting for the next tier change.
  void SettlePending();
  /// Drops settled-timeline segments no open provisional can probe.
  void PruneTimelines();

  QuerySpec spec_;
  AdaptivePrecisionOptions precision_;
  /// Static configuration, kept as the template coarse episodes derive
  /// from (only segmentation.max_error differs).
  HistoricalRuntime::Options exact_template_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<HistoricalRuntime> exact_;
  /// Live only while tier_ > 0.
  std::unique_ptr<HistoricalRuntime> coarse_;
  size_t tier_ = 0;
  uint64_t next_lineage_ = 1;
  bool finished_ = false;

  std::vector<DeferredItem> deferred_;
  /// Lineage -> unsettled provisional (settlement probes read these).
  std::map<uint64_t, ProvisionalRecord> open_;
  /// Per-key settled outputs, in settled order, for probe lookups.
  std::map<Key, std::vector<Segment>> timelines_;

  std::vector<Segment> settled_out_;
  std::vector<ProvisionalRecord> provisional_out_;
  std::vector<VerdictRecord> verdict_out_;
  PrecisionStats stats_;
};

}  // namespace pulse

#endif  // PULSE_CORE_PRECISION_H_
