// Fuzz target: the StreamSQL parser plus both plan builders.
//
// Invariants exercised:
//  - QueryParser::Parse never crashes, whatever the input text; it either
//    returns a node id or a clean error Status.
//  - A successful parse always yields a QuerySpec that both
//    BuildDiscretePlan and BuildPulsePlan accept or reject cleanly (a
//    parse that passes validation but produces an un-buildable spec is a
//    parser bug).
//  - ParsePredicate / ParseModel never crash on the same input.

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "core/parser.h"
#include "core/query.h"
#include "core/transform.h"
#include "engine/schema.h"

#include "fuzz_util.h"

namespace {

pulse::QuerySpec MakeSpecWithStreams() {
  pulse::QuerySpec spec;
  auto schema = pulse::Schema::Make({{"id", pulse::ValueType::kInt64},
                                     {"x", pulse::ValueType::kDouble},
                                     {"y", pulse::ValueType::kDouble}});
  for (const char* name : {"s", "t"}) {
    pulse::StreamSpec stream;
    stream.name = name;
    stream.schema = schema;
    stream.key_field = "id";
    stream.models = {{"x", {"x"}}, {"y", {"y"}}};
    stream.segment_horizon = 1.0;
    // Declarations are static and well-formed; only the query text is
    // attacker-controlled.
    if (!spec.AddStream(std::move(stream)).ok()) std::abort();
  }
  return spec;
}

// Structure-aware mode: raw bytes almost never spell a keyword, so when
// the first byte is 0xFF the rest of the input indexes a token dictionary
// and the target parses the resulting token soup. This reaches the
// statement grammar (joins, windows, GROUP BY) from random inputs too,
// not just from corpus mutations.
std::string TokenSoup(pulse::fuzz::FuzzInput& in) {
  static const char* kTokens[] = {
      "select", "from",   "where", "join",  "on",     "group", "by",
      "having", "as",     "model", "and",   "or",     "not",   "avg",
      "min",    "max",    "sum",   "count", "dist",   "size",  "advance",
      "slide",  "epoch",  "distinct",       "*",      ",",     ".",
      "(",      ")",      "[",     "]",     "<",      "<=",    "=",
      "<>",     ">=",     ">",     "-",     "+",      "s",     "t",
      "u",      "id",     "x",     "y",     "1",      "2.5",   "0.5",
      "10",     "-3",     "1e9",
  };
  constexpr size_t kNumTokens = sizeof(kTokens) / sizeof(kTokens[0]);
  std::string text;
  while (in.remaining() > 0) {
    text += kTokens[in.TakeByte() % kNumTokens];
    text += ' ';
  }
  return text;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pulse::fuzz::FuzzInput in(data, size);
  std::string text;
  if (size > 0 && data[0] == 0xFF) {
    in.TakeByte();
    text = TokenSoup(in);
  } else {
    text = in.TakeRemainingString();
  }

  pulse::QuerySpec spec = MakeSpecWithStreams();
  pulse::Result<pulse::QuerySpec::NodeId> parsed =
      pulse::QueryParser::Parse(&spec, text);
  if (parsed.ok()) {
    // Whatever parses must be buildable-or-cleanly-rejected by both
    // realizations of the spec.
    (void)pulse::BuildDiscretePlan(spec);
    (void)pulse::BuildPulsePlan(spec);
  }

  (void)pulse::QueryParser::ParsePredicate(text, "s", "t");
  (void)pulse::QueryParser::ParseModel(text, "s");
  return 0;
}
