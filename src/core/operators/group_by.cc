#include "core/operators/group_by.h"

#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pulse {

PulseGroupBy::PulseGroupBy(std::string name, InnerFactory factory)
    : PulseOperator(std::move(name)), factory_(std::move(factory)) {
  PULSE_CHECK(factory_ != nullptr);
}

Result<PulseOperator*> PulseGroupBy::GetOrCreate(Key group) {
  auto it = groups_.find(group);
  if (it != groups_.end()) return it->second.get();
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<PulseOperator> inner,
                         factory_(group));
  // Inner operators share the group-by's solve cache (identical systems
  // recur across groups) but not the thread pool — parallelism stays at
  // the per-group flush fan-out below.
  inner->set_solve_cache(solve_cache_);
  PulseOperator* raw = inner.get();
  groups_.emplace(group, std::move(inner));
  return raw;
}

void PulseGroupBy::set_solve_cache(SolveCache* cache) {
  PulseOperator::set_solve_cache(cache);
  for (auto& [group, inner] : groups_) inner->set_solve_cache(cache);
}

PulseOperator* PulseGroupBy::group_operator(Key group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

Status PulseGroupBy::Process(size_t port, const Segment& segment,
                             SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  PULSE_ASSIGN_OR_RETURN(PulseOperator * inner, GetOrCreate(segment.key));
  SegmentBatch inner_out;
  PULSE_RETURN_IF_ERROR(inner->Process(0, segment, &inner_out));
  for (Segment& s : inner_out) {
    s.key = segment.key;  // outputs stay keyed by group
    out->push_back(std::move(s));
    ++metrics_.segments_out;
  }
  // Roll up inner solver activity so plan-level metrics stay meaningful.
  metrics_.solves += inner->metrics().solves;
  inner->metrics().solves = 0;
  metrics_.state_size = groups_.size();
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseGroupBy::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  PulseOperator* inner = group_operator(output.key);
  if (inner == nullptr) {
    return Status::NotFound("no group operator for key " +
                            std::to_string(output.key));
  }
  return inner->InvertBound(output, attribute, margin, split);
}

Status PulseGroupBy::Flush(SegmentBatch* out) {
  PULSE_SPAN("group_by/flush");
  // Shard the per-group flush across the pool: each group owns a
  // disjoint inner operator (per-shard state), so shards are fully
  // independent. Each shard writes only its own batch slot; the merge
  // below walks groups in ascending key order (groups_ is an ordered
  // map), which keeps the emitted batch identical to a serial flush up
  // to engine-assigned segment ids.
  std::vector<std::pair<Key, PulseOperator*>> shards;
  shards.reserve(groups_.size());
  for (auto& [group, inner] : groups_) {
    shards.emplace_back(group, inner.get());
  }
  std::vector<SegmentBatch> batches(shards.size());
  auto flush_one = [&](size_t i) -> Status {
    return shards[i].second->Flush(&batches[i]);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1 && shards.size() > 1) {
    PULSE_RETURN_IF_ERROR(pool_->ParallelFor(shards.size(), flush_one));
  } else {
    for (size_t i = 0; i < shards.size(); ++i) {
      PULSE_RETURN_IF_ERROR(flush_one(i));
    }
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    for (Segment& s : batches[i]) {
      s.key = shards[i].first;
      out->push_back(std::move(s));
      ++metrics_.segments_out;
    }
  }
  return Status::OK();
}

}  // namespace pulse
