#ifndef PULSE_SHARD_SHARD_ROUTER_H_
#define PULSE_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/query.h"
#include "model/segment.h"

namespace pulse {
namespace shard {

/// Stable 64-bit mix of an entity key — THE routing hash contract
/// (docs/SHARDING.md). The function is a splitmix64 finalizer with
/// pinned constants: it is part of the on-disk/test contract and must
/// never change, because shard_router_test pins golden values and any
/// change would silently re-partition persistent deployments. Not a
/// cryptographic hash; adversarial key sets can still skew shards.
uint64_t ShardKeyHash(Key key);

/// Maps entity keys to shard indices. Stateless and cheap enough to
/// call per tuple: one multiply-shift over ShardKeyHash (Lemire's
/// unbiased range reduction), so the mapping for a given
/// (key, num_shards) pair is a pure function — every producer in the
/// process routes identically without coordination.
class ShardRouter {
 public:
  /// `num_shards` is clamped to at least 1.
  explicit ShardRouter(size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// Shard index in [0, num_shards) for `key`. All tuples and segments
  /// of one key land on the same shard, on both sides of a key-matched
  /// join (the co-partitioning that makes per-key operator state
  /// shard-local).
  size_t ShardOf(Key key) const;

 private:
  size_t num_shards_;
};

/// Whether a query's operator state decomposes by entity key — the
/// precondition for routing different keys to different shards while
/// keeping output byte-identical to a serial run.
struct PartitionAnalysis {
  /// True when every join is a key-equi join without a distinct-keys
  /// guard and every aggregate groups per key. Filters, maps, and the
  /// per-key segmenters are always partitionable.
  bool partitionable = false;
  /// Human-readable reason when not partitionable (empty otherwise);
  /// surfaced in logs and docs examples.
  std::string reason;
};

/// Static analysis over the logical plan. A plan that fails the check
/// is still servable: the pool routes every key to shard 0, which is
/// trivially byte-identical for any num_shards (docs/SHARDING.md
/// discusses why each operator kind does or does not partition).
PartitionAnalysis AnalyzePartitionability(const QuerySpec& spec);

}  // namespace shard
}  // namespace pulse

#endif  // PULSE_SHARD_SHARD_ROUTER_H_
