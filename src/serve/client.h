#ifndef PULSE_SERVE_CLIENT_H_
#define PULSE_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/frame.h"
#include "serve/transport.h"

namespace pulse {
namespace serve {

/// Minimal protocol client over any Transport. Synchronous and
/// single-threaded by design: tests, the serving differential, and the
/// CLI serve mode drive sessions through this; the bench adds its own
/// concurrent reader on top of SendBatch/ReadFrame.
///
/// Full-duplex caveat (docs/SERVING.md): a client that only sends and
/// never reads can deadlock against a kBlock server once the
/// server->client direction fills with output/flow frames. Either
/// interleave ReadFrame calls, size the run under the transport buffer,
/// or read from a second thread.
class ServeClient {
 public:
  explicit ServeClient(std::unique_ptr<Transport> transport);

  /// Protocol handshake; must be the first call.
  Status Hello();
  /// Binds `stream_id` (client-chosen) to a declared stream name.
  Status OpenStream(uint32_t stream_id, std::string name);
  Status SendTuple(uint32_t stream_id, Tuple tuple);
  Status SendBatch(uint32_t stream_id, std::vector<Tuple> tuples);
  Status SendSegment(uint32_t stream_id, Segment segment);

  /// Blocking read of the next server frame; nullopt on clean EOF.
  Result<std::optional<Frame>> ReadFrame();

  /// One provisional answer received from an adaptive session
  /// (docs/PRECISION.md): the segment plus its lineage id and the
  /// error bound it was advertised under.
  struct ProvisionalFrame {
    uint64_t lineage = 0;
    double bound = 0.0;
    Segment segment;
  };

  /// Everything the server delivered up to (and including) drain.
  struct DrainResult {
    std::vector<Segment> output_segments;
    std::vector<Tuple> output_tuples;
    /// Flow-control history in arrival order.
    std::vector<Frame> flow_frames;
    /// Sums over the flow frames, for convenience.
    uint64_t dropped = 0;
    uint64_t shed = 0;
    /// Adaptive-precision side-band, in arrival order (empty for
    /// static sessions). Conservation: provisionals.size() ==
    /// confirmed.size() + retracted.size() once kDrained arrives.
    std::vector<ProvisionalFrame> provisionals;
    /// Lineage ids confirmed within their advertised bound.
    std::vector<uint64_t> confirmed;
    /// (lineage, reason) pairs; reason 0 = deviation, 1 = spurious.
    std::vector<std::pair<uint64_t, uint8_t>> retracted;
  };

  /// Sends kDrain, then reads (collecting outputs and flow frames)
  /// until the server's kDrained arrives. Fails on kError or premature
  /// EOF.
  Result<DrainResult> Drain();

  /// Orderly goodbye (no drain barrier); closes the transport.
  Status Bye();

  Transport* transport() { return transport_.get(); }

 private:
  Status Write(const Frame& frame);

  std::unique_ptr<Transport> transport_;
  FrameReader reader_;
  std::string write_buf_;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_CLIENT_H_
