#include "util/csv.h"

#include "util/string_util.h"

namespace pulse {

Result<CsvReader> CsvReader::Open(const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for read: " + path);
  }
  return CsvReader(std::move(in), delim);
}

bool CsvReader::Next(std::vector<std::string>* row) {
  std::string line;
  while (std::getline(in_, line)) {
    if (TrimWhitespace(line).empty()) continue;
    *row = SplitString(line, delim_);
    return true;
  }
  return false;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path, char delim) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for write: " + path);
  }
  return CsvWriter(std::move(out), delim);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << fields[i];
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IoError("write failure on close");
  out_.close();
  return Status::OK();
}

}  // namespace pulse
