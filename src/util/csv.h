#ifndef PULSE_UTIL_CSV_H_
#define PULSE_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace pulse {

/// Minimal CSV reader for workload replay files. No quoting support: the
/// traces we generate are plain numeric fields. Rows are vectors of string
/// fields; header handling is up to the caller.
class CsvReader {
 public:
  /// Opens `path`; fails with IoError if unreadable.
  static Result<CsvReader> Open(const std::string& path, char delim = ',');

  /// Reads the next row into `row`. Returns false at EOF.
  /// Blank lines are skipped.
  bool Next(std::vector<std::string>* row);

  CsvReader(CsvReader&&) = default;
  CsvReader& operator=(CsvReader&&) = default;

 private:
  CsvReader(std::ifstream in, char delim)
      : in_(std::move(in)), delim_(delim) {}

  std::ifstream in_;
  char delim_;
};

/// Minimal CSV writer for bench results (one file per experiment series).
class CsvWriter {
 public:
  /// Creates/truncates `path`; fails with IoError on failure.
  static Result<CsvWriter> Open(const std::string& path, char delim = ',');

  /// Writes one row; fields are emitted verbatim.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and reports any stream error.
  Status Close();

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

 private:
  CsvWriter(std::ofstream out, char delim)
      : out_(std::move(out)), delim_(delim) {}

  std::ofstream out_;
  char delim_;
};

}  // namespace pulse

#endif  // PULSE_UTIL_CSV_H_
