# Empty compiler generated dependencies file for pulse_workload.
# This may be replaced when dependencies are built.
