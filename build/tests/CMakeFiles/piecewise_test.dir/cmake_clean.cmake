file(REMOVE_RECURSE
  "CMakeFiles/piecewise_test.dir/piecewise_test.cc.o"
  "CMakeFiles/piecewise_test.dir/piecewise_test.cc.o.d"
  "piecewise_test"
  "piecewise_test.pdb"
  "piecewise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piecewise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
