// Oracle tests for the pre-aggregated segment tree (docs/STORAGE.md):
// tree-served min/max/sum/count/integral over random ranges must match
// a brute-force replay over the leaf models — bitwise for
// min/max/count (associative combines), within tight relative
// tolerance for the summed fields (fp grouping differs between the
// tree and a linear scan) — including ranges straddling node and epoch
// boundaries, and the O(log n) query-cost contract.
#include "store/segment_tree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pulse {
namespace store {
namespace {

constexpr double kRelTol = 1e-9;

void ExpectNearRel(double expected, double actual, const char* what) {
  const double tol = kRelTol * std::max(1.0, std::fabs(expected));
  EXPECT_NEAR(expected, actual, tol) << what;
}

// The brute-force oracle: clip every leaf against [lo, hi] exactly the
// way the tree's edge fallback does, and combine linearly.
RangeAggregate BruteForce(const std::vector<SegmentTree::Leaf>& leaves,
                          double lo, double hi) {
  RangeAggregate out;
  for (const auto& leaf : leaves) {
    const double a = std::max(leaf.lo, lo);
    const double b = std::min(leaf.hi, hi);
    if (b < a) continue;
    // The tree's closed-range convention: an instant exactly on a leaf
    // boundary contributes a point value from the leaf owning it, but
    // the leaf *ending* there (hi <= lo) is excluded.
    if (leaf.hi <= lo) continue;
    out.Combine(AggregatePolynomial(leaf.poly, a, b));
  }
  return out;
}

std::vector<SegmentTree::Leaf> RandomLeaves(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<SegmentTree::Leaf> leaves;
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double len = rng.Uniform(0.1, 2.0);
    // Mixed degrees: constants, lines, and curvy cubics whose extrema
    // sit strictly inside the leaf (exercises the derivative roots).
    Polynomial poly;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        poly = Polynomial({rng.Uniform(-5.0, 5.0)});
        break;
      case 1:
        poly = Polynomial({rng.Uniform(-5.0, 5.0), rng.Uniform(-1.0, 1.0)});
        break;
      default:
        poly = Polynomial({rng.Uniform(-5.0, 5.0), rng.Uniform(-1.0, 1.0),
                           rng.Uniform(-0.5, 0.5), rng.Uniform(-0.1, 0.1)});
        break;
    }
    leaves.push_back(SegmentTree::Leaf{t, t + len, poly});
    t += len;  // contiguous: every interior boundary is shared
  }
  return leaves;
}

void ExpectAggEq(const RangeAggregate& oracle, const RangeAggregate& got,
                 const std::string& context) {
  ASSERT_EQ(oracle.count, got.count) << context;
  if (oracle.count == 0) return;
  // Exact fields: associative min/max combine bitwise identically no
  // matter how the tree groups them.
  EXPECT_EQ(oracle.min, got.min) << context;
  EXPECT_EQ(oracle.max, got.max) << context;
  EXPECT_EQ(oracle.t_lo, got.t_lo) << context;
  EXPECT_EQ(oracle.t_hi, got.t_hi) << context;
  // Summed fields: grouping differs, tolerance is tight but not zero.
  ExpectNearRel(oracle.coverage, got.coverage, context.c_str());
  ExpectNearRel(oracle.integral, got.integral, context.c_str());
  ExpectNearRel(oracle.sum, got.sum, context.c_str());
}

TEST(SegmentTree, EmptyTreeAnswersEmpty) {
  SegmentTree tree;
  EXPECT_TRUE(tree.Query(0.0, 10.0).empty());
  tree.Build({});
  EXPECT_TRUE(tree.Query(0.0, 10.0).empty());
}

TEST(SegmentTree, SingleLeafExactAggregates) {
  SegmentTree tree;
  // v(t) = (t-2)^2 = 4 - 4t + t^2 on [0, 4]: min 0 at t=2, max 4 at
  // both endpoints, integral 2*(8/3).
  tree.Build({SegmentTree::Leaf{0.0, 4.0, Polynomial({4.0, -4.0, 1.0})}});
  RangeAggregate agg = tree.Query(0.0, 4.0);
  EXPECT_EQ(agg.count, 1u);
  EXPECT_EQ(agg.min, 0.0);
  EXPECT_EQ(agg.max, 4.0);
  EXPECT_NEAR(agg.integral, 16.0 / 3.0, 1e-12);
  EXPECT_NEAR(agg.mean(), 4.0 / 3.0, 1e-12);
  // Interior clip [1, 3]: max is at the clip edges (value 1), the
  // interior minimum still found by the derivative root.
  agg = tree.Query(1.0, 3.0);
  EXPECT_EQ(agg.min, 0.0);
  EXPECT_EQ(agg.max, 1.0);
  EXPECT_NEAR(agg.integral, 2.0 / 3.0, 1e-12);
}

TEST(SegmentTree, RandomRangesMatchBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto leaves = RandomLeaves(seed, 257);  // odd: partial last node
    SegmentTree tree;
    tree.Build(leaves);
    const double t_end = leaves.back().hi;
    Rng rng(seed * 977 + 1);
    for (int i = 0; i < 200; ++i) {
      double lo = rng.Uniform(-1.0, t_end + 1.0);
      double hi = rng.Uniform(-1.0, t_end + 1.0);
      if (hi < lo) std::swap(lo, hi);
      const RangeAggregate oracle = BruteForce(leaves, lo, hi);
      const RangeAggregate got = tree.Query(lo, hi);
      ExpectAggEq(oracle, got,
                  "seed " + std::to_string(seed) + " range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
  }
}

TEST(SegmentTree, RangesStraddlingLeafBoundariesMatchBruteForce) {
  const auto leaves = RandomLeaves(7, 64);
  SegmentTree tree;
  tree.Build(leaves);
  // Ranges pinned exactly on leaf boundaries — where half-open leaf
  // intervals meet the closed query convention — and epsilon around
  // them.
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i; j < std::min(leaves.size(), i + 9); ++j) {
      const double lo = leaves[i].lo;
      const double hi = leaves[j].hi;
      for (const auto& [a, b] :
           {std::pair{lo, hi}, {lo - 1e-9, hi + 1e-9},
            {lo + 1e-9, hi - 1e-9}, {lo, leaves[j].lo}}) {
        if (b < a) continue;
        ExpectAggEq(BruteForce(leaves, a, b), tree.Query(a, b),
                    "boundary range [" + std::to_string(a) + ", " +
                        std::to_string(b) + "]");
      }
    }
  }
}

TEST(SegmentTree, AppendMatchesBuild) {
  const auto leaves = RandomLeaves(13, 100);
  SegmentTree built;
  built.Build(leaves);
  SegmentTree grown;
  for (const auto& leaf : leaves) grown.Append(leaf);
  ASSERT_EQ(grown.size(), built.size());
  const double t_end = leaves.back().hi;
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    double lo = rng.Uniform(0.0, t_end);
    double hi = rng.Uniform(0.0, t_end);
    if (hi < lo) std::swap(lo, hi);
    ExpectAggEq(built.Query(lo, hi), grown.Query(lo, hi),
                "append-vs-build range");
  }
}

TEST(SegmentTree, QueryCostIsLogarithmic) {
  const auto leaves = RandomLeaves(17, 4096);
  SegmentTree tree;
  tree.Build(leaves);
  const double t_end = leaves.back().hi;
  Rng rng(5);
  size_t worst_nodes = 0;
  for (int i = 0; i < 300; ++i) {
    double lo = rng.Uniform(0.0, t_end);
    double hi = rng.Uniform(0.0, t_end);
    if (hi < lo) std::swap(lo, hi);
    TreeQueryStats stats;
    tree.Query(lo, hi, &stats);
    EXPECT_LE(stats.edge_leaves, 2u);
    worst_nodes = std::max(worst_nodes, stats.nodes_combined);
  }
  // A canonical segment tree touches at most ~2·log2(n) interior
  // payloads; 4096 leaves → 12 levels → bound 24, with headroom.
  EXPECT_LE(worst_nodes, 26u);
  EXPECT_GT(worst_nodes, 0u);
}

TEST(SegmentTree, TupleReplayApproximatesTreeAnswer) {
  // The tree serves the *model*; a dense tuple replay (sampling each
  // leaf's polynomial) must approach the same aggregates as the grid
  // shrinks — the discretization-tolerance cross-check of the store's
  // oracle design.
  const auto leaves = RandomLeaves(29, 32);
  SegmentTree tree;
  tree.Build(leaves);
  const double lo = leaves.front().lo;
  const double hi = leaves.back().hi;
  const RangeAggregate agg = tree.Query(lo, hi);

  const double dt = 1e-4;
  double riemann = 0.0;
  double sample_min = std::numeric_limits<double>::infinity();
  double sample_max = -std::numeric_limits<double>::infinity();
  for (const auto& leaf : leaves) {
    const size_t steps =
        static_cast<size_t>(std::ceil((leaf.hi - leaf.lo) / dt));
    for (size_t s = 0; s < steps; ++s) {
      const double a = leaf.lo + static_cast<double>(s) * dt;
      const double b = std::min(a + dt, leaf.hi);
      const double mid = 0.5 * (a + b);
      const double v = leaf.poly.Evaluate(mid);
      riemann += v * (b - a);
      sample_min = std::min(sample_min, v);
      sample_max = std::max(sample_max, v);
    }
  }
  EXPECT_NEAR(agg.integral, riemann, 1e-4 * std::max(1.0, std::fabs(riemann)));
  // Sampling can only miss extrema, never exceed them.
  EXPECT_GE(sample_min, agg.min - 1e-12);
  EXPECT_LE(sample_max, agg.max + 1e-12);
  EXPECT_NEAR(sample_min, agg.min, 1e-3 * std::max(1.0, std::fabs(agg.min)));
  EXPECT_NEAR(sample_max, agg.max, 1e-3 * std::max(1.0, std::fabs(agg.max)));
}

TEST(SegmentTree, ZeroLengthQueryIsPointLookup) {
  SegmentTree tree;
  tree.Build({SegmentTree::Leaf{0.0, 2.0, Polynomial({1.0, 1.0})},
              SegmentTree::Leaf{2.0, 4.0, Polynomial({10.0})}});
  // t = 1 inside the first leaf: point value 2, no coverage.
  RangeAggregate agg = tree.Query(1.0, 1.0);
  EXPECT_EQ(agg.count, 1u);
  EXPECT_EQ(agg.min, 2.0);
  EXPECT_EQ(agg.max, 2.0);
  EXPECT_EQ(agg.coverage, 0.0);
  // t = 2 sits on the shared boundary: the closed query touches the
  // leaf owning [2, 4) only ([0, 2) ends there).
  agg = tree.Query(2.0, 2.0);
  EXPECT_EQ(agg.count, 1u);
  EXPECT_EQ(agg.min, 10.0);
  EXPECT_EQ(agg.max, 10.0);
}

}  // namespace
}  // namespace store
}  // namespace pulse
