#include "core/operators/map.h"

#include <set>

#include "core/operators/filter.h"
#include "util/logging.h"

namespace pulse {

ComputedAttr ComputedAttr::Difference(std::string name, AttrRef a,
                                      AttrRef b) {
  ComputedAttr c;
  c.kind = Kind::kDifference;
  c.name = std::move(name);
  c.a = std::move(a);
  c.b = std::move(b);
  return c;
}

ComputedAttr ComputedAttr::Distance2(std::string name, AttrRef x1,
                                     AttrRef y1, AttrRef x2, AttrRef y2) {
  ComputedAttr c;
  c.kind = Kind::kDistance2;
  c.name = std::move(name);
  c.x1 = std::move(x1);
  c.y1 = std::move(y1);
  c.x2 = std::move(x2);
  c.y2 = std::move(y2);
  return c;
}

Result<Polynomial> ComputedAttr::BuildPolynomial(
    const AttrResolver& resolver) const {
  if (kind == Kind::kDifference) {
    PULSE_ASSIGN_OR_RETURN(Polynomial pa, resolver(a));
    PULSE_ASSIGN_OR_RETURN(Polynomial pb, resolver(b));
    return pa - pb;
  }
  PULSE_ASSIGN_OR_RETURN(Polynomial px1, resolver(x1));
  PULSE_ASSIGN_OR_RETURN(Polynomial py1, resolver(y1));
  PULSE_ASSIGN_OR_RETURN(Polynomial px2, resolver(x2));
  PULSE_ASSIGN_OR_RETURN(Polynomial py2, resolver(y2));
  const Polynomial dx = px1 - px2;
  const Polynomial dy = py1 - py2;
  return dx * dx + dy * dy;
}

Result<double> ComputedAttr::EvaluateValues(
    const Predicate::ValueResolver& resolver) const {
  if (kind == Kind::kDifference) {
    PULSE_ASSIGN_OR_RETURN(double va, resolver(a));
    PULSE_ASSIGN_OR_RETURN(double vb, resolver(b));
    return va - vb;
  }
  PULSE_ASSIGN_OR_RETURN(double vx1, resolver(x1));
  PULSE_ASSIGN_OR_RETURN(double vy1, resolver(y1));
  PULSE_ASSIGN_OR_RETURN(double vx2, resolver(x2));
  PULSE_ASSIGN_OR_RETURN(double vy2, resolver(y2));
  return (vx1 - vx2) * (vx1 - vx2) + (vy1 - vy2) * (vy1 - vy2);
}

PulseMap::PulseMap(std::string name, std::vector<ComputedAttr> outputs,
                   bool keep_inputs)
    : PulseOperator(std::move(name)),
      outputs_(std::move(outputs)),
      keep_inputs_(keep_inputs) {}

Result<Segment> PulseMap::Apply(const Segment& segment) const {
  const AttrResolver resolver = MakeUnaryResolver(segment);
  Segment result = segment;
  if (!keep_inputs_) result.attributes.clear();
  for (const ComputedAttr& attr : outputs_) {
    PULSE_ASSIGN_OR_RETURN(Polynomial poly, attr.BuildPolynomial(resolver));
    result.set_attribute(attr.name, std::move(poly));
  }
  return result;
}

Status PulseMap::Process(size_t port, const Segment& segment,
                         SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  PULSE_ASSIGN_OR_RETURN(Segment result, Apply(segment));
  result.id = NextSegmentId();
  lineage_.Record(result.id, result.range, {LineageEntry{0, segment}});
  out->push_back(std::move(result));
  ++metrics_.segments_out;
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseMap::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  // Which input attributes does the requested output depend on?
  //  - passthrough attribute: itself (identity, 1-Lipschitz).
  //  - difference: a and b, each 1-Lipschitz; the margin splits in two.
  //  - distance2: locally Lipschitz; conservatively split across the four
  //    coordinates with the gradient handled by the heuristic weighting.
  std::set<std::string> deps;
  double lipschitz_share = 1.0;
  for (const ComputedAttr& ca : outputs_) {
    if (ca.name != attribute) continue;
    if (ca.kind == ComputedAttr::Kind::kDifference) {
      deps = {ca.a.name, ca.b.name};
      lipschitz_share = 0.5;  // |d(a-b)| <= |da| + |db|
    } else {
      deps = {ca.x1.name, ca.y1.name, ca.x2.name, ca.y2.name};
      lipschitz_share = 0.25;
    }
    break;
  }
  if (deps.empty()) deps = {attribute};  // passthrough

  std::vector<const Segment*> inputs;
  for (const LineageEntry& e : *causes) inputs.push_back(&e.input);

  std::vector<AllocatedBound> out;
  for (const std::string& dep : deps) {
    SplitContext ctx;
    ctx.output = &output;
    ctx.attribute = attribute;
    ctx.margin = margin * lipschitz_share;
    ctx.inputs = inputs;
    ctx.input_attribute = dep;
    ctx.num_dependencies = 1;  // Lipschitz share already applied
    PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                           split.Apportion(ctx));
    for (size_t i = 0; i < allocs.size(); ++i) {
      allocs[i].port = (*causes)[i].port;
      allocs[i].segment_id = (*causes)[i].input.id;
      out.push_back(std::move(allocs[i]));
    }
  }
  return out;
}

}  // namespace pulse
