file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_nyse.dir/bench_fig9_nyse.cc.o"
  "CMakeFiles/bench_fig9_nyse.dir/bench_fig9_nyse.cc.o.d"
  "bench_fig9_nyse"
  "bench_fig9_nyse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nyse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
