#include "workload/replay.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace pulse {

Status TraceFile::Write(const std::string& path, const Schema& schema,
                        const std::vector<Tuple>& tuples) {
  PULSE_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  std::vector<std::string> header = {"timestamp"};
  for (const Field& f : schema.fields()) header.push_back(f.name);
  writer.WriteRow(header);
  std::vector<std::string> row;
  for (const Tuple& t : tuples) {
    row.clear();
    row.push_back(FormatDouble(t.timestamp));
    for (const Value& v : t.values) row.push_back(v.ToString());
    writer.WriteRow(row);
  }
  return writer.Close();
}

Result<std::vector<Tuple>> TraceFile::Load(const std::string& path,
                                           const Schema& schema) {
  PULSE_ASSIGN_OR_RETURN(CsvReader reader, CsvReader::Open(path));
  std::vector<Tuple> out;
  std::vector<std::string> row;
  bool first = true;
  while (reader.Next(&row)) {
    if (first) {
      first = false;  // header
      continue;
    }
    if (row.size() != schema.num_fields() + 1) {
      return Status::IoError("trace row has " + std::to_string(row.size()) +
                             " fields, expected " +
                             std::to_string(schema.num_fields() + 1));
    }
    Tuple t;
    PULSE_ASSIGN_OR_RETURN(t.timestamp, ParseDouble(row[0]));
    t.values.reserve(schema.num_fields());
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      switch (schema.field(i).type) {
        case ValueType::kInt64: {
          PULSE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(row[i + 1]));
          t.values.push_back(Value(v));
          break;
        }
        case ValueType::kDouble: {
          PULSE_ASSIGN_OR_RETURN(double v, ParseDouble(row[i + 1]));
          t.values.push_back(Value(v));
          break;
        }
        case ValueType::kString:
          t.values.push_back(Value(row[i + 1]));
          break;
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> RescaleRate(const std::vector<Tuple>& trace,
                               double factor) {
  std::vector<Tuple> out = trace;
  if (out.empty() || factor <= 0.0) return out;
  const double t0 = out.front().timestamp;
  for (Tuple& t : out) {
    t.timestamp = t0 + (t.timestamp - t0) / factor;
  }
  return out;
}

PacedReplay::PacedReplay(std::vector<Tuple> trace, double tuples_per_second)
    : trace_(std::move(trace)), rate_(tuples_per_second) {
  if (!trace_.empty()) t0_ = trace_.front().timestamp;
}

bool PacedReplay::Next(Tuple* tuple, uint64_t* offset_ns) {
  if (pos_ >= trace_.size()) return false;
  const Tuple& next = trace_[pos_];
  double offset_s;
  if (rate_ > 0.0) {
    offset_s = static_cast<double>(pos_) / rate_;
  } else {
    offset_s = next.timestamp - t0_;
    if (offset_s < 0.0) offset_s = 0.0;  // out-of-order event time
  }
  *tuple = next;
  *offset_ns = static_cast<uint64_t>(offset_s * 1e9);
  ++pos_;
  return true;
}

}  // namespace pulse
