#ifndef PULSE_WORKLOAD_AIS_H_
#define PULSE_WORKLOAD_AIS_H_

#include <memory>
#include <vector>

#include "core/query.h"
#include "engine/tuple.h"
#include "util/rng.h"

namespace pulse {

/// Synthetic AIS-like vessel track feed.
///
/// The paper uses six days of U.S. Coast Guard Automatic Identification
/// System data (vessel id, time, longitude, longitudinal velocity,
/// latitude, latitudinal velocity). That trace is not redistributable;
/// this generator substitutes simulated vessels sailing waypoint legs at
/// near-constant velocity with small noise — preserving the two features
/// the "following" query depends on: near-linear trajectories (so linear
/// models fit long segments) and sustained pairwise proximity episodes
/// (a configurable fraction of vessels shadows another vessel).
struct AisOptions {
  size_t num_vessels = 50;
  /// Aggregate report rate (tuples/second).
  double tuple_rate = 500.0;
  /// Mean vessel speed (distance units/second).
  double speed = 5.0;
  /// Seconds per constant-velocity leg.
  double leg_duration = 60.0;
  /// Operating area [0, area]^2.
  double area = 100000.0;
  /// Fraction of vessels that follow (shadow) another vessel.
  double following_fraction = 0.2;
  /// Offset kept by a follower from its leader.
  double follow_distance = 500.0;
  /// Positional noise per report.
  double noise = 0.0;
  double start_time = 0.0;
  uint64_t seed = 42;
};

class AisGenerator {
 public:
  explicit AisGenerator(AisOptions options);

  /// Schema (id:int64, x:double, vx:double, y:double, vy:double) — the
  /// paper's (lon, lon velocity, lat, lat velocity) in planar units.
  static std::shared_ptr<const Schema> TupleSchema();

  /// Stream spec with MODELs x = x + vx*t, y = y + vy*t.
  static StreamSpec MakeStreamSpec(std::string name,
                                   double segment_horizon);

  Tuple NextTuple();
  std::vector<Tuple> Generate(size_t n);

  double now() const { return now_; }

  /// Vessels configured as followers (index -> leader index), for test
  /// ground truth.
  const std::vector<std::pair<size_t, size_t>>& follower_pairs() const {
    return follower_pairs_;
  }

 private:
  struct VesselState {
    double x = 0.0;
    double y = 0.0;
    double vx = 0.0;
    double vy = 0.0;
    double last_update = 0.0;
    double next_leg_change = 0.0;
    // Follower behaviour: shadow `leader` at follow_distance.
    bool is_follower = false;
    size_t leader = 0;
  };

  void AdvanceVessel(size_t idx, double t);
  void NewLeg(VesselState* v, double t);

  AisOptions options_;
  Rng rng_;
  std::vector<VesselState> vessels_;
  std::vector<std::pair<size_t, size_t>> follower_pairs_;
  size_t next_vessel_ = 0;
  double now_ = 0.0;
};

}  // namespace pulse

#endif  // PULSE_WORKLOAD_AIS_H_
