#include "engine/plan.h"

#include <deque>

namespace pulse {

QueryPlan::NodeId QueryPlan::AddOperator(std::shared_ptr<Operator> op) {
  nodes_.push_back(std::move(op));
  edges_.emplace_back();
  return nodes_.size() - 1;
}

Status QueryPlan::Connect(NodeId from, NodeId to, size_t port) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("Connect: node id out of range");
  }
  if (port >= nodes_[to]->num_inputs()) {
    return Status::InvalidArgument("Connect: port " + std::to_string(port) +
                                   " out of range for operator '" +
                                   nodes_[to]->name() + "'");
  }
  edges_[from].push_back(Edge{to, port});
  return Status::OK();
}

Status QueryPlan::BindSource(const std::string& stream, NodeId to,
                             size_t port) {
  if (to >= nodes_.size()) {
    return Status::InvalidArgument("BindSource: node id out of range");
  }
  if (port >= nodes_[to]->num_inputs()) {
    return Status::InvalidArgument("BindSource: port out of range");
  }
  sources_[stream].push_back(Edge{to, port});
  return Status::OK();
}

const std::vector<QueryPlan::Edge>& QueryPlan::source_bindings(
    const std::string& stream) const {
  static const std::vector<Edge>* empty = new std::vector<Edge>();
  auto it = sources_.find(stream);
  return it == sources_.end() ? *empty : it->second;
}

std::vector<std::string> QueryPlan::source_names() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, _] : sources_) names.push_back(name);
  return names;
}

std::vector<QueryPlan::NodeId> QueryPlan::SinkNodes() const {
  std::vector<NodeId> sinks;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (edges_[id].empty()) sinks.push_back(id);
  }
  return sinks;
}

Result<std::vector<QueryPlan::NodeId>> QueryPlan::TopologicalOrder() const {
  std::vector<size_t> indegree(nodes_.size(), 0);
  for (const auto& out : edges_) {
    for (const Edge& e : out) ++indegree[e.to];
  }
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const Edge& e : edges_[id]) {
      if (--indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("query plan contains a cycle");
  }
  return order;
}

}  // namespace pulse
