#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <string>

namespace pulse {
namespace {

Status RunGuarded(const std::function<Status()>& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pool task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("pool task threw a non-std exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<Status> ThreadPool::Submit(std::function<Status()> fn) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [fn = std::move(fn)] { return RunGuarded(fn); });
  std::future<Status> result = task->get_future();
  if (workers_.empty()) {
    tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
    (*task)();
    return result;
  }
  Enqueue([task] { (*task)(); });
  return result;
}

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  const uint64_t t0 = NowNs();
  // CPU time sums every call's full span; wall time is the union of the
  // busy intervals, opened on the 0->1 activity edge and closed on 1->0.
  // Both use the same end timestamp, so for a single serial call the two
  // contributions are identical and wall <= cpu holds in every schedule.
  if (parallel_depth_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    wall_start_ns_.store(t0, std::memory_order_relaxed);
  }
  auto account = [&](Status st) {
    const uint64_t now = NowNs();
    parallel_cpu_ns_.fetch_add(now - t0, std::memory_order_relaxed);
    if (parallel_depth_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const uint64_t start = wall_start_ns_.load(std::memory_order_relaxed);
      // `start` can postdate `now` if another call re-opened the window
      // concurrently; drop the sliver rather than wrap.
      if (now > start) {
        parallel_wall_ns_.fetch_add(now - start, std::memory_order_relaxed);
      }
    }
    return st;
  };

  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      Status st = RunGuarded([&fn, i] { return fn(i); });
      if (!st.ok()) return account(std::move(st));
    }
    return account(Status::OK());
  }

  // Dynamic chunking: small enough to balance uneven solve costs, large
  // enough that the fetch_add per chunk is noise next to a root-find.
  const size_t parallelism = std::min(num_threads(), n);
  const size_t chunk = std::max<size_t>(1, n / (parallelism * 4));
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  size_t err_index = n;
  Status err;

  auto run_chunks = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        Status st = RunGuarded([&fn, i] { return fn(i); });
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (i < err_index) {
            err_index = i;
            err = std::move(st);
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  // The completion state must outlive this frame: a helper's final
  // notify_all can race with the caller returning (and unwinding stack
  // locals) once it observes remaining == 0, so the state is shared-owned
  // by every helper closure and released only when the closure dies.
  struct Completion {
    std::atomic<size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  const size_t helpers = parallelism - 1;
  auto done = std::make_shared<Completion>();
  done->remaining.store(helpers, std::memory_order_relaxed);
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([&run_chunks, done]() {
      run_chunks();
      if (done->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done->done_mu);
        done->done_cv.notify_all();
      }
    });
  }
  run_chunks();

  // Wait for the helper shards, draining other queued tasks meanwhile so
  // a ParallelFor issued from inside a pool task cannot deadlock on its
  // own queued helpers.
  while (done->remaining.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(done->done_mu);
    done->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return done->remaining.load(std::memory_order_acquire) == 0;
    });
  }

  if (failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(err_mu);
    return account(std::move(err));
  }
  return account(Status::OK());
}

}  // namespace pulse
