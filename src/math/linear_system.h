#ifndef PULSE_MATH_LINEAR_SYSTEM_H_
#define PULSE_MATH_LINEAR_SYSTEM_H_

#include <vector>

#include "math/matrix.h"
#include "util/result.h"

namespace pulse {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// A must be square with rows() == b.size(). Fails with NumericError when
/// A is (numerically) singular. This is the "efficient numerical algorithm"
/// fast path the paper applies to all-equality predicate systems
/// (Section III-A).
Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b);

/// LU factorization with row pivoting: P A = L U. Reusable across multiple
/// right-hand sides.
struct LuDecomposition {
  Matrix lu;                   // L (unit diagonal, below) and U (on/above)
  std::vector<size_t> perm;    // row permutation
  int permutation_sign = 1;    // +1 / -1, for the determinant

  /// Solves A x = b using the stored factors.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

  /// det(A) = sign * prod(diag(U)).
  double Determinant() const;
};

/// Factorizes square A; fails with NumericError when singular.
Result<LuDecomposition> LuDecompose(Matrix a);

/// Least squares: minimizes ||A x - b||_2 via the normal equations
/// (A^T A) x = A^T b. Suited to the small well-conditioned Vandermonde
/// systems of polynomial model fitting. Requires rows >= cols.
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b);

/// Matrix inverse via LU; fails when singular.
Result<Matrix> Invert(const Matrix& a);

}  // namespace pulse

#endif  // PULSE_MATH_LINEAR_SYSTEM_H_
