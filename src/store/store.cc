#include "store/store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/span.h"
#include "store/checksum.h"

namespace pulse {
namespace store {

namespace {

constexpr char kLogName[] = "segments.log";
constexpr char kCheckpointName[] = "checkpoint.bin";

std::string LogPath(const std::string& dir) { return dir + "/" + kLogName; }
std::string CheckpointPath(const std::string& dir) {
  return dir + "/" + kCheckpointName;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("create store directory '" + dir +
                         "': " + std::strerror(errno));
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  os << "store recovery: " << log_records << " record(s), " << log_bytes
     << " byte(s)";
  if (log_missing) {
    os << ", no log (fresh directory)";
  } else {
    os << ", tail=" << LogTailStateToString(tail);
    if (!tail_detail.empty()) os << " (" << tail_detail << ")";
    if (truncated_bytes > 0) {
      os << ", truncated " << truncated_bytes << " torn byte(s)";
    }
  }
  if (!checkpoint_found) {
    os << "; checkpoint: missing (redelivering all outputs)";
  } else if (!checkpoint_error.empty()) {
    os << "; checkpoint: unreadable (" << checkpoint_error
       << "), redelivering all outputs";
  } else if (checkpoint_ahead) {
    os << "; checkpoint: ahead of log (covers " << checkpoint.log_records
       << " record(s), log holds " << log_records
       << "), watermark ignored, redelivering from consistent prefix";
  } else {
    os << "; checkpoint: covers " << checkpoint.log_records
       << " record(s), " << checkpoint.delivered_outputs
       << " output(s) delivered"
       << (checkpoint.finished ? ", finished" : "");
  }
  return os.str();
}

void SegmentStore::BindCounters() {
  c_appends_ = metrics_->GetCounter("store/appends");
  c_append_bytes_ = metrics_->GetCounter("store/append_bytes");
  c_backfills_ = metrics_->GetCounter("store/backfills");
  c_checkpoints_ = metrics_->GetCounter("store/checkpoints");
  c_delivered_ = metrics_->GetCounter("store/delivered_outputs");
  c_tree_rebuilds_ = metrics_->GetCounter("store/tree_rebuilds");
  c_tree_queries_ = metrics_->GetCounter("store/tree_queries");
}

Result<SegmentStore> SegmentStore::Open(StoreOptions options) {
  PULSE_RETURN_IF_ERROR(EnsureDir(options.dir));
  const std::string log_path = LogPath(options.dir);
  struct ::stat st;
  if (::stat(log_path.c_str(), &st) == 0 &&
      st.st_size > static_cast<off_t>(EncodeLogHeader().size())) {
    return Status::FailedPrecondition(
        "store directory '" + options.dir +
        "' holds an existing log; reopen it with SegmentStore::Recover");
  }
  SegmentStore store;
  store.options_ = std::move(options);
  PULSE_ASSIGN_OR_RETURN(store.writer_, SegmentLogWriter::Open(log_path));
  store.delivered_hash_ = kCanonicalHashSeed;
  if (store.options_.metrics != nullptr) {
    store.metrics_ = store.options_.metrics;
  } else {
    store.owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    store.metrics_ = store.owned_metrics_.get();
  }
  store.BindCounters();
  return store;
}

Status SegmentStore::AppendRecord(const LogRecord& record) {
  const uint64_t before = writer_.size_bytes();
  PULSE_ASSIGN_OR_RETURN(uint64_t size, writer_.Append(record));
  if (options_.sync_each_append) {
    PULSE_RETURN_IF_ERROR(writer_.Sync());
  }
  ++log_records_;
  c_appends_->Increment();
  c_append_bytes_->Add(size - before);
  return Status::OK();
}

void SegmentStore::Index(const std::string& stream, const Segment& segment) {
  Series& series = series_[stream][segment.key];
  ApplySegmentUpdate(&series.timeline, segment);
  series.dirty = true;
}

Status SegmentStore::AppendSegment(const std::string& stream,
                                   const Segment& segment) {
  std::lock_guard<std::mutex> lock(*mu_);
  obs::ScopedMetricsRegistry scoped(metrics_);
  PULSE_SPAN("store/append");
  LogRecord record;
  record.type = LogRecordType::kSegment;
  record.stream = stream;
  record.segment = segment;
  PULSE_RETURN_IF_ERROR(AppendRecord(record));
  Index(stream, segment);
  return Status::OK();
}

Status SegmentStore::AppendTuple(const std::string& stream,
                                 const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(*mu_);
  obs::ScopedMetricsRegistry scoped(metrics_);
  PULSE_SPAN("store/append");
  LogRecord record;
  record.type = LogRecordType::kTuple;
  record.stream = stream;
  record.tuple = tuple;
  return AppendRecord(record);
}

Result<BackfillResult> SegmentStore::Backfill(const std::string& stream,
                                              const Segment& patch) {
  std::lock_guard<std::mutex> lock(*mu_);
  obs::ScopedMetricsRegistry scoped(metrics_);
  PULSE_SPAN("store/append");
  if (patch.range.IsEmpty()) {
    return Status::InvalidArgument("backfill patch covers no time");
  }
  LogRecord record;
  record.type = LogRecordType::kBackfill;
  record.stream = stream;
  record.segment = patch;
  PULSE_RETURN_IF_ERROR(AppendRecord(record));
  Index(stream, patch);
  c_backfills_->Increment();
  BackfillResult result;
  result.affected = patch.range;
  result.republished = RepublishEpochs(stream, patch);
  return result;
}

std::vector<EpochAggregate> SegmentStore::RepublishEpochs(
    const std::string& stream, const Segment& patch) {
  std::vector<EpochAggregate> out;
  const double len = options_.epoch_length;
  if (len <= 0) return out;
  Series* series = FindSeries(stream, patch.key);
  if (series == nullptr) return out;
  if (series->dirty) RebuildTrees(series);
  const int64_t first = static_cast<int64_t>(std::floor(patch.range.lo / len));
  // Epochs are [e*len, (e+1)*len): a patch ending exactly on a boundary
  // does not touch the epoch starting there.
  int64_t last = static_cast<int64_t>(std::floor(patch.range.hi / len));
  if (patch.range.hi == last * len && last > first) --last;
  for (int64_t e = first; e <= last; ++e) {
    for (const auto& [attr, tree] : series->trees) {
      if (patch.attributes.find(attr) == patch.attributes.end()) continue;
      EpochAggregate epoch;
      epoch.epoch = e;
      epoch.lo = static_cast<double>(e) * len;
      epoch.hi = epoch.lo + len;
      epoch.attribute = attr;
      epoch.aggregate = tree.Query(epoch.lo, epoch.hi);
      c_tree_queries_->Increment();
      out.push_back(std::move(epoch));
    }
  }
  return out;
}

Status SegmentStore::Sync() {
  std::lock_guard<std::mutex> lock(*mu_);
  return writer_.Sync();
}

void SegmentStore::NoteDelivered(const Segment& segment) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++delivered_count_;
  delivered_hash_ = CanonicalSegmentHash(segment, delivered_hash_);
  c_delivered_->Increment();
}

Status SegmentStore::WriteCheckpoint(bool finished) {
  std::lock_guard<std::mutex> lock(*mu_);
  PULSE_RETURN_IF_ERROR(writer_.Sync());
  Checkpoint ckp;
  ckp.log_records = log_records_;
  ckp.log_bytes = writer_.size_bytes();
  ckp.delivered_outputs = delivered_count_;
  ckp.output_hash = delivered_hash_;
  ckp.finished = finished;
  PULSE_RETURN_IF_ERROR(
      WriteCheckpointFile(CheckpointPath(options_.dir), ckp));
  c_checkpoints_->Increment();
  return Status::OK();
}

SegmentStore::Series* SegmentStore::FindSeries(const std::string& stream,
                                               Key key) {
  auto sit = series_.find(stream);
  if (sit == series_.end()) return nullptr;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return nullptr;
  return &kit->second;
}

const SegmentStore::Series* SegmentStore::FindSeries(
    const std::string& stream, Key key) const {
  auto sit = series_.find(stream);
  if (sit == series_.end()) return nullptr;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return nullptr;
  return &kit->second;
}

void SegmentStore::RebuildTrees(Series* series) {
  series->trees.clear();
  std::map<std::string, std::vector<SegmentTree::Leaf>> leaves;
  for (const Segment& s : series->timeline) {
    for (const auto& [attr, poly] : s.attributes) {
      leaves[attr].push_back(
          SegmentTree::Leaf{s.range.lo, s.range.hi, poly});
    }
  }
  for (auto& [attr, attr_leaves] : leaves) {
    series->trees[attr].Build(std::move(attr_leaves));
  }
  series->dirty = false;
  c_tree_rebuilds_->Increment();
}

RangeAggregate SegmentStore::QueryRange(const std::string& stream, Key key,
                                        const std::string& attribute,
                                        double lo, double hi,
                                        TreeQueryStats* stats) {
  std::lock_guard<std::mutex> lock(*mu_);
  obs::ScopedMetricsRegistry scoped(metrics_);
  PULSE_SPAN("store/tree_query");
  c_tree_queries_->Increment();
  Series* series = FindSeries(stream, key);
  if (series == nullptr) return RangeAggregate{};
  if (series->dirty) RebuildTrees(series);
  auto it = series->trees.find(attribute);
  if (it == series->trees.end()) return RangeAggregate{};
  return it->second.Query(lo, hi, stats);
}

std::vector<Key> SegmentStore::KeysOf(const std::string& stream) const {
  std::vector<Key> keys;
  auto sit = series_.find(stream);
  if (sit == series_.end()) return keys;
  keys.reserve(sit->second.size());
  for (const auto& [key, series] : sit->second) keys.push_back(key);
  return keys;
}

const std::vector<Segment>* SegmentStore::Timeline(const std::string& stream,
                                                   Key key) const {
  const Series* series = FindSeries(stream, key);
  return series == nullptr ? nullptr : &series->timeline;
}

Result<RecoveredStore> SegmentStore::Recover(StoreOptions options) {
  PULSE_RETURN_IF_ERROR(EnsureDir(options.dir));
  RecoveredStore recovered;
  RecoveryReport& report = recovered.report;
  const std::string log_path = LogPath(options.dir);

  // 1. Scan the log and repair the torn tail.
  Result<LogScan> scanned = ScanLogFile(log_path, options.limits);
  if (!scanned.ok() && scanned.status().code() == StatusCode::kNotFound) {
    report.log_missing = true;
  } else if (!scanned.ok()) {
    return scanned.status();
  } else {
    LogScan& scan = *scanned;
    report.tail = scan.tail;
    report.tail_detail = scan.detail;
    report.log_records = scan.records.size();
    report.log_bytes = scan.consistent_bytes;
    if (!scan.clean()) {
      report.truncated_bytes = scan.scanned_bytes - scan.consistent_bytes;
      PULSE_RETURN_IF_ERROR(
          TruncateFile(log_path, scan.consistent_bytes));
    }
    recovered.records = std::move(scan.records);
  }

  // 2. Reconcile the checkpoint against the consistent prefix.
  Result<Checkpoint> ckp = ReadCheckpointFile(CheckpointPath(options.dir));
  if (ckp.ok()) {
    report.checkpoint_found = true;
    report.checkpoint = *ckp;
    if (ckp->log_records > recovered.records.size()) {
      report.checkpoint_ahead = true;
    } else {
      report.effective_delivered = ckp->delivered_outputs;
    }
  } else if (ckp.status().code() != StatusCode::kNotFound) {
    report.checkpoint_found = true;
    report.checkpoint_error = ckp.status().message();
  }

  // 3. Rebuild the in-memory tiers and reopen the log for append.
  SegmentStore& store = recovered.store;
  store.options_ = std::move(options);
  PULSE_ASSIGN_OR_RETURN(store.writer_, SegmentLogWriter::Open(log_path));
  store.log_records_ = recovered.records.size();
  // Resume the delivered-output chain where the checkpoint left it so a
  // later checkpoint hashes identically to an uninterrupted run's.
  if (report.effective_delivered > 0) {
    store.delivered_count_ = report.checkpoint.delivered_outputs;
    store.delivered_hash_ = report.checkpoint.output_hash;
  } else {
    store.delivered_hash_ = kCanonicalHashSeed;
  }
  if (store.options_.metrics != nullptr) {
    store.metrics_ = store.options_.metrics;
  } else {
    store.owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    store.metrics_ = store.owned_metrics_.get();
  }
  store.BindCounters();
  {
    obs::ScopedMetricsRegistry scoped(store.metrics_);
    PULSE_SPAN("store/recover");
    for (const LogRecord& record : recovered.records) {
      if (record.type != LogRecordType::kTuple) {
        store.Index(record.stream, record.segment);
      }
    }
  }
  store.metrics_->GetCounter("store/recovered_records")
      ->Add(recovered.records.size());
  store.metrics_->GetCounter("store/truncated_bytes")
      ->Add(report.truncated_bytes);
  return recovered;
}

}  // namespace store
}  // namespace pulse
