#ifndef PULSE_ENGINE_PLAN_H_
#define PULSE_ENGINE_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "util/result.h"

namespace pulse {

/// A dataflow query plan: a DAG of operators plus bindings from named
/// input streams to operator input ports. Built once, then executed by an
/// Executor. Node ids are dense indices assigned by AddOperator.
class QueryPlan {
 public:
  using NodeId = size_t;

  struct Edge {
    NodeId to = 0;
    size_t port = 0;
  };

  QueryPlan() = default;
  QueryPlan(QueryPlan&&) = default;
  QueryPlan& operator=(QueryPlan&&) = default;

  /// Registers an operator; returns its node id.
  NodeId AddOperator(std::shared_ptr<Operator> op);

  /// Routes `from`'s output tuples into input `port` of `to`.
  Status Connect(NodeId from, NodeId to, size_t port = 0);

  /// Routes tuples pushed on the named external stream into `to`:`port`.
  /// A stream may feed multiple operators (fan-out).
  Status BindSource(const std::string& stream, NodeId to, size_t port = 0);

  size_t num_nodes() const { return nodes_.size(); }
  Operator* node(NodeId id) const { return nodes_[id].get(); }
  const std::vector<Edge>& downstream(NodeId id) const {
    return edges_[id];
  }
  /// Bindings for a named source stream (empty when unknown).
  const std::vector<Edge>& source_bindings(const std::string& stream) const;

  /// All registered source stream names.
  std::vector<std::string> source_names() const;

  /// Nodes with no outgoing edges: their outputs are the query result.
  std::vector<NodeId> SinkNodes() const;

  /// Topological order of nodes; fails on cycles.
  Result<std::vector<NodeId>> TopologicalOrder() const;

 private:
  std::vector<std::shared_ptr<Operator>> nodes_;
  std::vector<std::vector<Edge>> edges_;
  std::map<std::string, std::vector<Edge>> sources_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_PLAN_H_
