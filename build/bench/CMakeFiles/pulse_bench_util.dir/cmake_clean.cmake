file(REMOVE_RECURSE
  "CMakeFiles/pulse_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/pulse_bench_util.dir/bench_util.cc.o.d"
  "libpulse_bench_util.a"
  "libpulse_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
