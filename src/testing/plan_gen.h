#ifndef PULSE_TESTING_PLAN_GEN_H_
#define PULSE_TESTING_PLAN_GEN_H_

#include <string>
#include <vector>

#include "core/query.h"
#include "testing/workload_gen.h"
#include "util/result.h"
#include "util/rng.h"

namespace pulse {
namespace testing {

/// Shapes of generated query plans. Every operator kind of the paper's
/// transformation is covered; chains exercise operator composition.
enum class PlanArchetype {
  /// stream -> filter [-> filter] (random boolean predicate trees).
  kFilterChain,
  /// streamA join streamB [-> filter] [-> map diff]; co-temporal band
  /// join (window = dt/2, see docs/TESTING.md).
  kJoin,
  /// stream self-join with require_distinct_keys (proximity-style).
  kSelfJoin,
  /// stream -> windowed aggregate (min/max/sum/avg) [-> HAVING filter].
  kAggregate,
  /// stream -> per-key aggregate (GROUP BY id) [-> HAVING filter].
  kGroupBy,
  /// stream -> epoch (tumbling boundary marker; output matched
  /// pointwise — the discrete epoch column is invisible to the matcher,
  /// the Pulse boundary splits must not change any sampled value).
  kEpochMark,
  /// stream -> epoch -> filter(attr cmp const) -> distinct: one event
  /// per (epoch, key), timestamped at the key's first qualifying
  /// instant. Uses bursty telemetry-mode workloads.
  kEpochDistinct,
};

const char* PlanArchetypeToString(PlanArchetype a);

/// Everything the differential matcher needs to know about the sink.
struct SinkInfo {
  enum class Kind {
    /// Sink emits per-entity values on the raw sample grid (filters,
    /// joins, maps): the match is pointwise and exact.
    kPointwise,
    /// Sink emits windowed-aggregate series (possibly HAVING-filtered):
    /// the match is at window-close times with discretization-aware
    /// tolerances.
    kAggregateSeries,
    /// Sink emits at most one event per (epoch, key): the first instant
    /// the key's model enters the predicate region in that epoch. The
    /// match compares event sets against the ground-truth first
    /// crossing, with grid-resolution slack on the timestamps.
    kDistinctSeries,
  };
  Kind kind = Kind::kPointwise;

  /// Name of the sink schema field carrying the entity key ("id" for
  /// unary chains, "pair_key" after joins, "group" after grouped
  /// aggregates). Empty when the sink is keyless (global aggregate).
  std::string key_field;

  // kAggregateSeries only:
  AggFn fn = AggFn::kAvg;
  double window_seconds = 1.0;
  double slide_seconds = 1.0;
  bool per_key = false;
  /// Aggregate output attribute name.
  std::string value_attribute = "agg";
  /// HAVING filter over the aggregate output (agg `op` threshold).
  bool having = false;
  CmpOp having_op = CmpOp::kGt;
  double having_threshold = 0.0;

  // kDistinctSeries only: the single-atom predicate guarding the
  // distinct, and the epoch length both realizations dedup on.
  std::string distinct_attribute = "x";
  CmpOp distinct_op = CmpOp::kGt;
  double distinct_threshold = 0.0;
  double epoch_seconds = 1.0;
};

/// One generated differential case: a logical query plus the ground-truth
/// workload of every stream it reads, replayable from its seed alone.
struct GeneratedCase {
  uint64_t seed = 0;
  PlanArchetype archetype = PlanArchetype::kFilterChain;
  QuerySpec spec;
  std::vector<StreamWorkload> workloads;
  /// Global sample grid period (tuples at j * sample_dt).
  double sample_dt = 0.05;
  SinkInfo sink;
  /// Human-readable one-liner for failure messages.
  std::string description;
};

struct PlanGenOptions {
  WorkloadGenOptions workload;
  double sample_dt = 0.05;
  /// Restrict generation to a subset of archetypes (empty = all).
  std::vector<PlanArchetype> archetypes;
};

/// Generates the case for `seed` deterministically: same seed, same
/// options => identical case, so any reported failure replays exactly.
Result<GeneratedCase> GenerateCase(uint64_t seed,
                                   const PlanGenOptions& options = {});

}  // namespace testing
}  // namespace pulse

#endif  // PULSE_TESTING_PLAN_GEN_H_
