#include "math/roots.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

void ExpectRootsNear(const std::vector<double>& actual,
                     std::vector<double> expected, double tol = 1e-8) {
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(actual.size(), expected.size())
      << "wrong root count";
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "root " << i;
  }
}

// Builds the monic polynomial with the given roots.
Polynomial FromRoots(const std::vector<double>& roots) {
  Polynomial p = Polynomial::Constant(1.0);
  for (double r : roots) {
    p = p * Polynomial({-r, 1.0});
  }
  return p;
}

TEST(FindRealRoots, Linear) {
  // 2t - 4 = 0 at t = 2.
  ExpectRootsNear(FindRealRoots(Polynomial({-4.0, 2.0}), 0.0, 10.0), {2.0});
  // Outside the window: no roots.
  EXPECT_TRUE(FindRealRoots(Polynomial({-4.0, 2.0}), 3.0, 10.0).empty());
}

TEST(FindRealRoots, QuadraticTwoRoots) {
  // (t-1)(t-3) = 3 - 4t + t^2.
  ExpectRootsNear(FindRealRoots(Polynomial({3.0, -4.0, 1.0}), 0.0, 10.0),
                  {1.0, 3.0});
}

TEST(FindRealRoots, QuadraticNoRealRoots) {
  EXPECT_TRUE(FindRealRoots(Polynomial({1.0, 0.0, 1.0}), -10.0, 10.0)
                  .empty());
}

TEST(FindRealRoots, QuadraticDoubleRootReportedOnce) {
  // (t-2)^2.
  ExpectRootsNear(FindRealRoots(Polynomial({4.0, -4.0, 1.0}), 0.0, 10.0),
                  {2.0});
}

TEST(FindRealRoots, QuadraticCancellationStable) {
  // Large b relative to ac: classic catastrophic-cancellation case.
  // t^2 - 1e8 t + 1 has roots ~1e8 and ~1e-8.
  std::vector<double> roots =
      FindRealRoots(Polynomial({1.0, -1e8, 1.0}), -1.0, 2e8);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1e-8, 1e-14);
  EXPECT_NEAR(roots[1], 1e8, 1.0);
}

TEST(FindRealRoots, CubicThreeRoots) {
  ExpectRootsNear(FindRealRoots(FromRoots({-2.0, 1.0, 4.0}), -10.0, 10.0),
                  {-2.0, 1.0, 4.0}, 1e-7);
}

TEST(FindRealRoots, CubicOneRealRoot) {
  // (t-1)(t^2+1) = -1 + t - t^2 + t^3.
  ExpectRootsNear(
      FindRealRoots(Polynomial({-1.0, 1.0, -1.0, 1.0}), -10.0, 10.0),
      {1.0}, 1e-7);
}

TEST(FindRealRoots, QuarticViaSturm) {
  ExpectRootsNear(
      FindRealRoots(FromRoots({-3.0, -1.0, 2.0, 5.0}), -10.0, 10.0),
      {-3.0, -1.0, 2.0, 5.0}, 1e-6);
}

TEST(FindRealRoots, SexticWithClusteredRoots) {
  ExpectRootsNear(
      FindRealRoots(FromRoots({0.5, 0.625, 0.75, 2.0, 7.0, 9.5}), 0.0,
                    10.0),
      {0.5, 0.625, 0.75, 2.0, 7.0, 9.5}, 1e-5);
}

TEST(FindRealRoots, RepeatedRootSquareFreeReduction) {
  // (t-1)^3 (t-4): Sturm needs the square-free part.
  Polynomial p = FromRoots({1.0, 1.0, 1.0, 4.0});
  ExpectRootsNear(FindRealRoots(p, -10.0, 10.0), {1.0, 4.0}, 1e-6);
}

TEST(FindRealRoots, MethodsAgree) {
  Polynomial p = FromRoots({-2.5, 0.25, 3.0, 8.0});
  for (RootMethod m : {RootMethod::kNewtonPolish, RootMethod::kBrent,
                       RootMethod::kBisection}) {
    ExpectRootsNear(FindRealRoots(p, -10.0, 10.0, m),
                    {-2.5, 0.25, 3.0, 8.0}, 1e-6);
  }
}

TEST(FindRealRoots, ClosedFormRefusesHighDegree) {
  Polynomial p = FromRoots({1.0, 2.0, 3.0, 4.0});
  EXPECT_TRUE(
      FindRealRoots(p, 0.0, 10.0, RootMethod::kClosedForm).empty());
}

TEST(BrentRoot, ConvergesOnBracket) {
  auto f = [](double x) { return std::cos(x) - x; };
  Result<double> r = BrentRoot(f, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.7390851332151607, 1e-9);
}

TEST(BrentRoot, RejectsNonBracketingInterval) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(BrentRoot(f, -1.0, 1.0).ok());
}

TEST(NewtonRoot, ConvergesQuadratically) {
  Polynomial p({-2.0, 0.0, 1.0});  // t^2 - 2
  Result<double> r = NewtonRoot(p, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-9);
}

TEST(NewtonRoot, FailsOnFlatDerivative) {
  Polynomial p({1.0});  // constant, derivative zero
  EXPECT_FALSE(NewtonRoot(p, 0.0).ok());
}

TEST(DividePolynomials, QuotientAndRemainder) {
  // t^3 - 2t + 1 = (t^2 + t - 1)(t - 1) + 0t + 0... verify identity.
  Polynomial num({1.0, -2.0, 0.0, 1.0});
  Polynomial den({-1.0, 1.0});
  Polynomial q, r;
  DividePolynomials(num, den, &q, &r);
  EXPECT_TRUE((q * den + r).AlmostEquals(num, 1e-9));
  EXPECT_LT(r.degree(), den.degree());
}

TEST(PolynomialGcd, SharedFactor) {
  Polynomial a = FromRoots({1.0, 2.0});
  Polynomial b = FromRoots({2.0, 3.0});
  Polynomial g = PolynomialGcd(a, b);
  ASSERT_EQ(g.degree(), 1u);
  EXPECT_NEAR(FindRealRoots(g, 0.0, 10.0)[0], 2.0, 1e-9);
}

TEST(SturmSequence, CountsRoots) {
  Polynomial p = FromRoots({-1.0, 2.0, 5.0});
  auto sturm = SturmSequence(p);
  EXPECT_EQ(CountRootsInInterval(sturm, -10.0, 10.0), 3);
  EXPECT_EQ(CountRootsInInterval(sturm, 0.0, 3.0), 1);
  EXPECT_EQ(CountRootsInInterval(sturm, 6.0, 10.0), 0);
}

TEST(CmpOpHelpers, Strings) {
  EXPECT_STREQ(CmpOpToString(CmpOp::kLt), "<");
  EXPECT_STREQ(CmpOpToString(CmpOp::kNe), "<>");
}

TEST(CmpOpHelpers, FlipAndNegate) {
  EXPECT_EQ(FlipCmpOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmpOp(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(NegateCmpOp(CmpOp::kLe), CmpOp::kGt);
  EXPECT_EQ(NegateCmpOp(CmpOp::kNe), CmpOp::kEq);
  EXPECT_TRUE(CmpOpIncludesEquality(CmpOp::kGe));
  EXPECT_FALSE(CmpOpIncludesEquality(CmpOp::kGt));
}

TEST(SolveComparison, LinearStrictLess) {
  // t - 5 < 0 on [0, 10): holds on [0, 5).
  Polynomial p({-5.0, 1.0});
  IntervalSet s =
      SolveComparison(p, CmpOp::kLt, Interval::ClosedOpen(0.0, 10.0));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(0.0));
  EXPECT_TRUE(s.Contains(4.999));
  EXPECT_FALSE(s.Contains(5.0));
}

TEST(SolveComparison, LinearNonStrictIncludesBoundary) {
  Polynomial p({-5.0, 1.0});
  IntervalSet s =
      SolveComparison(p, CmpOp::kLe, Interval::ClosedOpen(0.0, 10.0));
  EXPECT_TRUE(s.Contains(5.0));
  EXPECT_FALSE(s.Contains(5.0001));
}

TEST(SolveComparison, EqualityYieldsPoints) {
  // (t-2)(t-7) = 0.
  Polynomial p = FromRoots({2.0, 7.0});
  IntervalSet s =
      SolveComparison(p, CmpOp::kEq, Interval::Closed(0.0, 10.0));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(2.0));
  EXPECT_TRUE(s.Contains(7.0));
  EXPECT_DOUBLE_EQ(s.TotalLength(), 0.0);
}

TEST(SolveComparison, NotEqualExcludesRoots) {
  Polynomial p = FromRoots({2.0});
  IntervalSet s =
      SolveComparison(p, CmpOp::kNe, Interval::Closed(0.0, 4.0));
  EXPECT_FALSE(s.Contains(2.0));
  EXPECT_TRUE(s.Contains(1.9999));
  EXPECT_TRUE(s.Contains(2.0001));
}

TEST(SolveComparison, ZeroPolynomial) {
  Polynomial zero;
  const Interval dom = Interval::Closed(0.0, 1.0);
  EXPECT_FALSE(SolveComparison(zero, CmpOp::kEq, dom).IsEmpty());
  EXPECT_FALSE(SolveComparison(zero, CmpOp::kLe, dom).IsEmpty());
  EXPECT_TRUE(SolveComparison(zero, CmpOp::kLt, dom).IsEmpty());
  EXPECT_TRUE(SolveComparison(zero, CmpOp::kNe, dom).IsEmpty());
}

TEST(SolveComparison, ConstantPolynomial) {
  const Interval dom = Interval::Closed(0.0, 1.0);
  EXPECT_FALSE(
      SolveComparison(Polynomial({-3.0}), CmpOp::kLt, dom).IsEmpty());
  EXPECT_TRUE(
      SolveComparison(Polynomial({3.0}), CmpOp::kLt, dom).IsEmpty());
}

TEST(SolveComparison, TangencyPointIncludedForNonStrict) {
  // t^2 >= 0 everywhere; t^2 <= 0 only at t = 0.
  Polynomial p({0.0, 0.0, 1.0});
  const Interval dom = Interval::Closed(-1.0, 1.0);
  IntervalSet le = SolveComparison(p, CmpOp::kLe, dom);
  EXPECT_TRUE(le.Contains(0.0));
  EXPECT_DOUBLE_EQ(le.TotalLength(), 0.0);
  IntervalSet lt = SolveComparison(p, CmpOp::kLt, dom);
  EXPECT_TRUE(lt.IsEmpty());
  IntervalSet ge = SolveComparison(p, CmpOp::kGe, dom);
  EXPECT_DOUBLE_EQ(ge.TotalLength(), 2.0);
}

// Property sweep: SolveComparison must agree with pointwise evaluation
// away from the roots.
class SolveComparisonSweep : public ::testing::TestWithParam<CmpOp> {};

TEST_P(SolveComparisonSweep, MatchesPointwise) {
  const CmpOp op = GetParam();
  Polynomial p = FromRoots({1.5, 4.0, 8.0});
  const Interval dom = Interval::Closed(0.0, 10.0);
  IntervalSet s = SolveComparison(p, op, dom);
  for (double t = 0.05; t < 10.0; t += 0.1) {  // grid avoids exact roots
    const double v = p.Evaluate(t);
    bool expected = false;
    switch (op) {
      case CmpOp::kLt:
        expected = v < 0.0;
        break;
      case CmpOp::kLe:
        expected = v <= 0.0;
        break;
      case CmpOp::kEq:
        expected = v == 0.0;
        break;
      case CmpOp::kNe:
        expected = v != 0.0;
        break;
      case CmpOp::kGe:
        expected = v >= 0.0;
        break;
      case CmpOp::kGt:
        expected = v > 0.0;
        break;
    }
    EXPECT_EQ(s.Contains(t), expected)
        << CmpOpToString(op) << " at t=" << t << " (p=" << v << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, SolveComparisonSweep,
                         ::testing::Values(CmpOp::kLt, CmpOp::kLe,
                                           CmpOp::kEq, CmpOp::kNe,
                                           CmpOp::kGe, CmpOp::kGt));

// --- Scratch reuse ----------------------------------------------------

TEST(RootScratch, ReuseAcrossDifferingDegrees) {
  // One scratch, a mixed-degree solve sequence: high-degree Sturm solves
  // leave long chains and wide buffers behind; subsequent low-degree
  // (closed-form) and mid-degree solves must not be confused by the
  // leftover state. Every scratch result must match the allocating API.
  RootScratch scratch;
  const std::vector<Polynomial> sequence = {
      FromRoots({-3.0, -1.0, 0.5, 2.0, 4.0}),  // degree 5: Sturm path
      FromRoots({1.0, 2.0}),                   // degree 2: closed form
      FromRoots({-4.0, -2.0, 0.0, 1.0, 2.5, 3.0, 4.5}),  // degree 7
      Polynomial({-1.0, 1.0}),                 // degree 1
      FromRoots({0.0, 0.0, 1.0}),              // repeated root
      FromRoots({-3.0, -1.0, 0.5, 2.0, 4.0}),  // degree 5 again
  };
  for (size_t i = 0; i < sequence.size(); ++i) {
    const Polynomial& p = sequence[i];
    const std::vector<double> expected =
        FindRealRoots(p, -5.0, 5.0, RootMethod::kAuto);
    FindRealRootsInto(p, -5.0, 5.0, RootMethod::kAuto, &scratch);
    ASSERT_EQ(scratch.roots.size(), expected.size()) << "solve " << i;
    for (size_t r = 0; r < expected.size(); ++r) {
      EXPECT_NEAR(scratch.roots[r], expected[r], 1e-8)
          << "solve " << i << " root " << r;
    }
  }
}

TEST(RootScratch, SturmChainShrinksCleanly) {
  // A long chain followed by a short one: the reused vector must report
  // the short chain's length, not the warm capacity.
  RootScratch scratch;
  const Polynomial deep = FromRoots({-2.0, -1.0, 0.0, 1.0, 2.0, 3.0});
  SturmSequenceInto(deep, &scratch);
  const size_t deep_len = scratch.sturm.size();
  EXPECT_EQ(deep_len, SturmSequence(deep).size());

  const Polynomial shallow = FromRoots({1.0, 4.0});
  SturmSequenceInto(shallow, &scratch);
  EXPECT_LT(scratch.sturm.size(), deep_len);
  const std::vector<Polynomial> expected = SturmSequence(shallow);
  ASSERT_EQ(scratch.sturm.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(scratch.sturm[i].AlmostEquals(expected[i], 1e-9))
        << "chain entry " << i;
  }
}

TEST(RootScratch, SolveComparisonIntoMatchesAllocatingForm) {
  RootScratch scratch;
  IntervalSet out;
  const Interval domain{-5.0, 5.0};
  const std::vector<Polynomial> polys = {
      FromRoots({-1.0, 1.0, 3.0}),
      FromRoots({0.5, 2.0}),
      Polynomial({2.0}),   // constant, no roots
      Polynomial(),        // zero polynomial
      FromRoots({-4.0, -3.0, -2.0, 2.0, 3.5}),
  };
  for (const Polynomial& p : polys) {
    for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNe,
                     CmpOp::kGe, CmpOp::kGt}) {
      const IntervalSet expected =
          SolveComparison(p, op, domain, RootMethod::kAuto);
      SolveComparisonInto(p, op, domain, RootMethod::kAuto, &scratch, &out);
      EXPECT_EQ(out, expected)
          << p.ToString() << " " << CmpOpToString(op);
    }
  }
}

}  // namespace
}  // namespace pulse
