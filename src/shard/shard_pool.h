#ifndef PULSE_SHARD_SHARD_POOL_H_
#define PULSE_SHARD_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query.h"
#include "core/runtime.h"
#include "core/solve_cache.h"
#include "obs/metrics.h"
#include "serve/ingest_queue.h"
#include "shard/shard_router.h"
#include "util/result.h"

namespace pulse {
namespace shard {

class ShardClient;

struct ShardPoolOptions {
  /// Worker shards; clamped to at least 1. The shard-per-core shape is
  /// num_shards == hardware_concurrency.
  size_t num_shards = 1;
  /// Per-shard exchange queue capacity (items). Producers block when
  /// full (lossless; loss policies live at the serving admission edge,
  /// not inside the engine).
  size_t exchange_capacity = 256;
  /// Template for every client runtime the pool creates. `metrics` and
  /// `shared_solve_cache` are overridden per shard; `solve_cache` (the
  /// cache geometry) configures each shard's shared cache. A nonzero
  /// quantum disables cross-client cache sharing — quantized hits could
  /// leak one client's solutions into another's answers.
  HistoricalRuntime::Options runtime;
  /// Registry the pool's SyncMetrics publishes into: per-shard mirrors
  /// under `shard/<i>/...` plus merged rollups under the plain names.
  /// nullptr: the pool owns a private one, reachable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  /// SyncMetrics throttle: refreshes closer together than this are
  /// dropped (callers may invoke it on hot paths).
  uint64_t metrics_sync_interval_ns = 2'000'000;
};

/// Key-partitioned shard-per-core engine (docs/SHARDING.md): N worker
/// threads, each owning one shard — a MetricsRegistry, a SolveCache,
/// and, per client, a HistoricalRuntime holding exactly the keys the
/// ShardRouter maps to that shard. Producers (ShardClient routers)
/// exchange work over the serve-layer bounded ingest queues, one per
/// shard; workers never block on output, so a full exchange queue
/// surfaces as producer backpressure, never deadlock.
///
/// Determinism contract: for a partitionable plan (AnalyzePartition-
/// ability), a client's output is byte-identical for every num_shards,
/// including 1 — the sequence-number merge in ShardClient restores the
/// exact serial data-phase order, and the canonical finish-phase key
/// sort (HistoricalRuntime::Finish) makes the finish tail
/// shard-count-invariant. Non-partitionable plans route every key to
/// shard 0 and are trivially identical.
class ShardPool {
 public:
  static Result<std::unique_ptr<ShardPool>> Make(const QuerySpec& spec,
                                                 ShardPoolOptions options);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Registers a new client: builds its per-shard runtimes (sharing the
  /// shard's cache and registry) and returns the routing handle. Every
  /// client must be destroyed before the pool.
  Result<std::unique_ptr<ShardClient>> AddClient();

  /// Closes the exchange queues, lets workers drain what was already
  /// queued, and joins them. Idempotent; called by the destructor.
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }
  const PartitionAnalysis& partition() const { return partition_; }
  const ShardRouter& router() const { return router_; }

  /// The pool-level registry (mirrors + rollups target).
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// Shard `i`'s own registry (every client runtime on that shard
  /// reports here).
  obs::MetricsRegistry* shard_metrics(size_t i) const;

  /// Publishes per-shard registries into metrics() as `shard/<i>/...`
  /// mirrors plus merged rollups under the plain names (the rollup
  /// `span/runtime/push_segment` histogram is the serving admission
  /// controller's latency signal). Throttled by
  /// metrics_sync_interval_ns unless `force`.
  void SyncMetrics(bool force = false);

 private:
  friend class ShardClient;

  /// One routed work item's completion: the output segments produced
  /// while processing it (usually none). `count` is the number of data
  /// seqs the record covers (1 today; the field keeps batched shard
  /// dispatch possible without a protocol change).
  struct Completion {
    uint64_t count = 1;
    std::vector<Segment> outputs;
  };

  /// Client bookkeeping shared between its router thread and the shard
  /// workers. Runtimes are indexed by shard and only ever touched by
  /// that shard's worker; everything ordered lives under `mu`.
  struct ClientState {
    uint64_t id = 0;
    std::atomic<bool> aborted{false};

    std::mutex mu;
    std::condition_variable cv;
    /// Completions not yet released, keyed by first data seq.
    std::map<uint64_t, Completion> pending;
    /// Next data seq to release (all seqs below are in `ready`).
    uint64_t released_seq = 0;
    /// In-order output prefix (the deterministic merge result).
    std::vector<Segment> ready;
    /// Shards that have not yet acknowledged the finish sentinel.
    size_t finish_remaining = 0;
    /// Finish-phase outputs per shard, merged canonically by Finish().
    std::vector<std::vector<Segment>> finish_outputs;
    std::string error;

    /// Only the owning shard worker touches runtimes[s]; the vector
    /// itself is immutable after AddClient publishes the state.
    std::vector<std::unique_ptr<HistoricalRuntime>> runtimes;
  };

  struct Shard {
    serve::WorkSignal signal;
    std::unique_ptr<serve::IngestQueue> queue;
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<SolveCache> cache;  // null when sharing is off
    std::thread worker;
  };

  ShardPool() = default;

  void WorkerLoop(size_t shard_index);
  void Dispatch(size_t shard_index, serve::IngestItem item);
  std::shared_ptr<ClientState> FindClient(uint64_t id);
  void RemoveClient(uint64_t id);
  /// Appends released completions to `ready` in seq order. Caller holds
  /// `state->mu`.
  static void ReleaseLocked(ClientState* state);

  QuerySpec spec_;
  ShardPoolOptions options_;
  ShardRouter router_{1};
  PartitionAnalysis partition_;
  /// Sorted stream table: names (index == IngestItem::stream) and the
  /// tuple field holding each stream's key.
  std::vector<std::string> stream_names_;
  std::vector<size_t> stream_key_index_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex clients_mu_;
  std::map<uint64_t, std::shared_ptr<ClientState>> clients_;
  uint64_t next_client_id_ = 1;
  std::atomic<bool> shutdown_{false};

  std::mutex sync_mu_;
  std::atomic<uint64_t> last_sync_ns_{0};
};

/// One producer's handle onto the pool: routes items by key to shard
/// exchange queues, stamps each with a client-global sequence number,
/// and merges completions back into the exact serial order. All calls
/// must come from one thread (the same contract as HistoricalRuntime);
/// the API mirrors HistoricalRuntime so serving sessions and the
/// ShardedRuntime facade can swap it in.
class ShardClient {
 public:
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  Status ProcessTuple(const std::string& stream, const Tuple& tuple);
  Status ProcessTuples(const std::string& stream, const Tuple* tuples,
                       size_t n);
  Status ProcessSegment(const std::string& stream, Segment segment);

  /// End of input: pushes a finish sentinel down every shard lane,
  /// waits for all of them to flush, then appends the canonically
  /// merged finish outputs (concatenate per shard, stable-sort by key —
  /// byte-identical to the serial finish tail). Blocks; returns the
  /// first error any shard hit.
  Status Finish();

  /// Mid-run synchronization point: blocks until every item routed so
  /// far has been processed and its outputs released, WITHOUT the
  /// finish sentinel — processing may continue afterwards. The released
  /// prefix is then deterministic (byte-identical to a serial replay of
  /// the same items), which is what lets the segment store checkpoint a
  /// sharded run mid-stream (docs/STORAGE.md).
  Status Barrier();

  /// The in-order released output prefix: everything whose data seq (or
  /// finish merge) is complete. Safe to call while shards are still
  /// working — later outputs simply show up on a later call.
  std::vector<Segment> TakeOutputSegments();

  /// Sums over this client's per-shard runtimes.
  RuntimeStats stats() const;

  /// Drops this client's queued work: shard workers skip items of an
  /// aborted client. Already-processed outputs stay takeable.
  void Abort();

  uint64_t id() const { return state_->id; }
  ShardPool* pool() const { return pool_; }

 private:
  friend class ShardPool;
  ShardClient(ShardPool* pool, std::shared_ptr<ShardPool::ClientState> state)
      : pool_(pool), state_(std::move(state)) {}

  /// Routes one stamped item to its shard, blocking on a full exchange
  /// queue. Fails when the pool is shut down or the client errored.
  Status Route(size_t shard_index, serve::IngestItem item);
  Status ResolveStream(const std::string& stream, uint32_t* index);

  ShardPool* pool_ = nullptr;
  std::shared_ptr<ShardPool::ClientState> state_;
  uint64_t next_seq_ = 0;
  bool finished_ = false;
  /// Memoized stream lookup (sessions feed long same-stream runs).
  std::string memo_stream_;
  uint32_t memo_index_ = 0;
  bool memo_valid_ = false;
};

}  // namespace shard
}  // namespace pulse

#endif  // PULSE_SHARD_SHARD_POOL_H_
