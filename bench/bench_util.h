#ifndef PULSE_BENCH_BENCH_UTIL_H_
#define PULSE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace pulse::bench {

/// Measures the wall-clock seconds one call of `fn` takes.
double MeasureSeconds(const std::function<void()>& fn);

/// std::thread::hardware_concurrency() with the "unknown" 0 preserved —
/// benches record it verbatim so a reader can distinguish "one core"
/// from "the host would not say", and key their core_bound flags off it.
unsigned HardwareConcurrency();

/// True when running `workers` concurrent workers on this host
/// oversubscribes it (workers exceed the reported core count). Unknown
/// concurrency (0) is treated as not oversubscribed: the per-row flag
/// must not claim certainty the host never provided.
bool CoreBound(size_t workers);

/// Steady-state queueing summary for a stage that needs `total_service`
/// seconds to process `n` tuples arriving uniformly at `offered_rate`
/// tuples/second (deterministic arrivals and service, the replay setting
/// of the paper's experiments).
///
/// When the offered rate is below capacity the stage keeps up: achieved
/// throughput equals the offered rate and latency is the bare service
/// time. Beyond capacity the queue grows for the whole run, reproducing
/// the paper's "system is no longer stable, queues grow" tail-offs
/// (Fig. 8/9) and the exponential latency blow-up (Fig. 9iii).
struct QueueSummary {
  double capacity_tps = 0.0;   // n / total_service
  double achieved_tps = 0.0;   // min(offered, capacity)
  double mean_latency_s = 0.0; // average completion - arrival
  double final_backlog = 0.0;  // tuples still queued at end of run
};

QueueSummary SimulateQueue(uint64_t n, double total_service_seconds,
                           double offered_rate);

/// Paper-style series table printer: one row per x value, one column per
/// named series. Used by every bench to emit the rows/series the paper's
/// figures plot, in addition to google-benchmark's own output.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> series_names);

  void AddRow(double x, std::vector<double> values);

  /// Prints the table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<std::pair<double, std::vector<double>>> rows_;
};

/// The one writer for checked-in BENCH_*.json documents. Every bench
/// that persists results goes through this class so the top-level schema
/// cannot drift between hand-rolled fprintf call sites (the drift this
/// replaced: bench_parallel_scaling kept params at the top level while
/// bench_solver_hotpath mixed them with reference figures).
///
/// Emitted document (tests/bench_schema_test.cc validates it):
///
///   {
///     "bench": "<name>",
///     "schema_version": 2,
///     "params": { ... scalar workload/configuration values ... },
///     "results": [ {row}, ... ],     // field names chosen per bench
///     "metrics": { counters/gauges/histograms }   // optional snapshot
///   }
///
/// Row field names are free-form but stable: scripts/check.sh parses
/// rows by name ("scenario", "tuples_per_sec", ...), so renames are a
/// gate-breaking change.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Scalar parameters (the `params` block), insertion-ordered.
  void ParamUint(const std::string& key, uint64_t value);
  void ParamDouble(const std::string& key, double value);
  void ParamString(const std::string& key, std::string value);

  /// One `results` row; set fields in emission order.
  class Row {
   public:
    Row& Uint(const std::string& key, uint64_t value);
    Row& Double(const std::string& key, double value);
    Row& Bool(const std::string& key, bool value);
    Row& String(const std::string& key, std::string value);

   private:
    friend class BenchReport;
    enum class Kind { kUint, kDouble, kBool, kString };
    struct Field {
      std::string key;
      Kind kind;
      uint64_t u = 0;
      double d = 0.0;
      bool b = false;
      std::string s;
    };
    std::vector<Field> fields_;
  };

  Row& AddRow();

  /// Attaches a registry snapshot as the `metrics` block (omitted when
  /// never called or the snapshot is empty — e.g. under PULSE_NO_METRICS).
  void AttachMetrics(const obs::MetricsSnapshot& snapshot);

  /// The complete document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a message on stderr) when the
  /// file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  struct Param {
    std::string key;
    Row::Kind kind;
    uint64_t u = 0;
    double d = 0.0;
    std::string s;
  };

  std::string name_;
  std::vector<Param> params_;
  std::vector<Row> rows_;
  obs::MetricsSnapshot metrics_;
  bool has_metrics_ = false;
};

/// Shared handling of the one CLI flag benches accept:
/// `--metrics-out=PATH` writes `snapshot` in Prometheus text format to
/// PATH after the run. Returns false on an unrecognized argument or an
/// unwritable path (after printing a usage message).
bool HandleMetricsOutFlag(int argc, char** argv,
                          const obs::MetricsSnapshot& snapshot);

}  // namespace pulse::bench

#endif  // PULSE_BENCH_BENCH_UTIL_H_
