#include <gtest/gtest.h>

#include "engine/filter.h"
#include "engine/join.h"
#include "engine/map.h"
#include "engine/schema.h"
#include "engine/stream.h"
#include "engine/tuple.h"
#include "engine/value.h"

namespace pulse {
namespace {

std::shared_ptr<const Schema> XySchema() {
  return Schema::Make({{"id", ValueType::kInt64},
                       {"x", ValueType::kDouble},
                       {"y", ValueType::kDouble}});
}

Tuple XyTuple(double ts, int64_t id, double x, double y) {
  return Tuple(ts, {Value(id), Value(x), Value(y)});
}

TEST(Value, TypesAndCoercion) {
  Value i(int64_t{3});
  EXPECT_TRUE(i.is_int64());
  EXPECT_DOUBLE_EQ(i.as_double(), 3.0);
  Value d(2.5);
  EXPECT_TRUE(d.is_double());
  Value s("hello");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
}

TEST(Value, ComparisonAcrossNumericTypes) {
  EXPECT_TRUE(Value(int64_t{2}) < Value(2.5));
  EXPECT_FALSE(Value(3.0) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_EQ(Value(1.5), Value(1.5));
  EXPECT_NE(Value(1.5), Value(2.5));
}

TEST(Schema, LookupAndConcat) {
  auto s = XySchema();
  EXPECT_EQ(s->num_fields(), 3u);
  Result<size_t> idx = s->IndexOf("x");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s->IndexOf("zzz").ok());
  auto joined = Schema::Concat(*s, *s, "l.", "r.");
  EXPECT_EQ(joined->num_fields(), 6u);
  EXPECT_TRUE(joined->HasField("l.x"));
  EXPECT_TRUE(joined->HasField("r.y"));
}

TEST(Tuple, ConcatTakesLaterTimestamp) {
  Tuple a = XyTuple(1.0, 1, 2.0, 3.0);
  Tuple b = XyTuple(5.0, 2, 4.0, 5.0);
  Tuple c = Tuple::Concat(a, b);
  EXPECT_DOUBLE_EQ(c.timestamp, 5.0);
  EXPECT_EQ(c.values.size(), 6u);
  EXPECT_EQ(c.at(3).as_int64(), 2);
}

TEST(Stream, PushPopAndCapacity) {
  Stream s("s", XySchema(), 2);
  EXPECT_TRUE(s.Push(XyTuple(0, 1, 0, 0)).ok());
  EXPECT_TRUE(s.Push(XyTuple(1, 2, 0, 0)).ok());
  Status st = s.Push(XyTuple(2, 3, 0, 0));
  EXPECT_EQ(st.code(), StatusCode::kCapacity);
  Tuple t;
  EXPECT_TRUE(s.Pop(&t));
  EXPECT_EQ(t.at(0).as_int64(), 1);
  EXPECT_EQ(s.high_watermark(), 2u);
}

TEST(ComparisonFilter, ConjunctionSemantics) {
  // x > 1 AND y < 5.
  std::vector<FieldComparison> pred = {
      {1, CmpOp::kGt, Comparand::Const(Value(1.0))},
      {2, CmpOp::kLt, Comparand::Const(Value(5.0))}};
  ComparisonFilter f("f", XySchema(), pred);
  std::vector<Tuple> out;
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 2.0, 3.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 0.5, 3.0), &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 2.0, 7.0), &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(f.metrics().tuples_in, 3u);
  EXPECT_EQ(f.metrics().tuples_out, 1u);
}

TEST(ComparisonFilter, FieldToFieldComparison) {
  std::vector<FieldComparison> pred = {
      {1, CmpOp::kEq, Comparand::FieldRef(2)}};
  ComparisonFilter f("f", XySchema(), pred);
  std::vector<Tuple> out;
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 4.0, 4.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 4.0, 5.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(EvaluateComparison, AllOperators) {
  Tuple t = XyTuple(0, 1, 2.0, 2.0);
  auto cmp = [&](CmpOp op, double rhs) {
    return EvaluateComparison(
        t, FieldComparison{1, op, Comparand::Const(Value(rhs))});
  };
  EXPECT_TRUE(cmp(CmpOp::kLt, 3.0));
  EXPECT_FALSE(cmp(CmpOp::kLt, 2.0));
  EXPECT_TRUE(cmp(CmpOp::kLe, 2.0));
  EXPECT_TRUE(cmp(CmpOp::kEq, 2.0));
  EXPECT_TRUE(cmp(CmpOp::kNe, 2.5));
  EXPECT_TRUE(cmp(CmpOp::kGe, 2.0));
  EXPECT_FALSE(cmp(CmpOp::kGt, 2.0));
}

TEST(LambdaFilter, ArbitraryPredicate) {
  LambdaFilter f("f", XySchema(), [](const Tuple& t) {
    return t.at(1).as_double() + t.at(2).as_double() > 5.0;
  });
  std::vector<Tuple> out;
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 3.0, 3.0), &out).ok());
  ASSERT_TRUE(f.Process(0, XyTuple(0, 1, 1.0, 1.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(MapOperator, ProjectionAndComputedColumns) {
  auto schema = XySchema();
  std::vector<MapColumn> cols;
  cols.push_back(MapColumn::FieldExpr({"id", ValueType::kInt64}, 0));
  cols.push_back(MapColumn{{"sum", ValueType::kDouble}, [](const Tuple& t) {
                             return Value(t.at(1).as_double() +
                                          t.at(2).as_double());
                           }});
  MapOperator m("m", cols);
  EXPECT_EQ(m.output_schema()->num_fields(), 2u);
  std::vector<Tuple> out;
  ASSERT_TRUE(m.Process(0, XyTuple(3.0, 7, 1.5, 2.5), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 3.0);
  EXPECT_EQ(out[0].at(0).as_int64(), 7);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 4.0);
}

TEST(SlidingWindowJoin, MatchesWithinWindowOnly) {
  auto schema = XySchema();
  SlidingWindowJoin j("j", schema, schema, /*window=*/1.0,
                      {JoinComparison{0, CmpOp::kEq, 0}});
  std::vector<Tuple> out;
  ASSERT_TRUE(j.Process(0, XyTuple(0.0, 1, 0, 0), &out).ok());
  EXPECT_TRUE(out.empty());
  // Same key within the window: match.
  ASSERT_TRUE(j.Process(1, XyTuple(0.5, 1, 9, 9), &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.size(), 6u);
  // Outside the window: the left tuple at t=0 has expired by t=2.5.
  out.clear();
  ASSERT_TRUE(j.Process(1, XyTuple(2.5, 1, 9, 9), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SlidingWindowJoin, ExtraPredicateAndComparisonCount) {
  auto schema = XySchema();
  SlidingWindowJoin j(
      "j", schema, schema, 10.0, {},
      [](const Tuple& l, const Tuple& r) {
        return l.at(0).as_int64() != r.at(0).as_int64();
      });
  std::vector<Tuple> out;
  ASSERT_TRUE(j.Process(0, XyTuple(0.0, 1, 0, 0), &out).ok());
  ASSERT_TRUE(j.Process(0, XyTuple(0.1, 2, 0, 0), &out).ok());
  ASSERT_TRUE(j.Process(1, XyTuple(0.2, 1, 0, 0), &out).ok());
  // Probes both left tuples, matches only the distinct-id one.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(j.metrics().comparisons, 2u);
}

TEST(SlidingWindowJoin, QuadraticComparisonGrowth) {
  // The NL join's defining cost behaviour (paper Fig. 7ii): comparisons
  // grow quadratically with the tuples per window.
  auto schema = XySchema();
  auto run = [&](size_t n) {
    SlidingWindowJoin j("j", schema, schema, 1e9, {},
                        [](const Tuple&, const Tuple&) { return false; });
    std::vector<Tuple> out;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(j.Process(0, XyTuple(i * 0.001, 1, 0, 0), &out).ok());
      EXPECT_TRUE(j.Process(1, XyTuple(i * 0.001, 2, 0, 0), &out).ok());
    }
    return j.metrics().comparisons;
  };
  const uint64_t c100 = run(100);
  const uint64_t c200 = run(200);
  // Doubling input roughly quadruples comparisons.
  EXPECT_GT(c200, 3 * c100);
}

}  // namespace
}  // namespace pulse
