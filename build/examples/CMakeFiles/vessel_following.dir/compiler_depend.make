# Empty compiler generated dependencies file for vessel_following.
# This may be replaced when dependencies are built.
