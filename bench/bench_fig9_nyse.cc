// Reproduces paper Fig. 9i: NYSE MACD query throughput, 1% error
// threshold. Three series: tuple-based MACD, Pulse (predictive,
// validation-driven), and historical processing (pre-segmented input, no
// validation overhead).
//
// Paper shape: tuple query tails off first (~4000 tup/s in the paper),
// Pulse scales ~1.6x further (~6500 tup/s), historical segment processing
// scales best in this range.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "engine/stream.h"
#include "workload/nyse.h"
#include "workload/queries.h"

namespace pulse {
namespace {

QuerySpec MacdSpec() {
  QuerySpec spec;
  (void)spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
  MacdParams params;  // paper windows: 10 s / 60 s, slide 2 s
  (void)AddMacdQuery(&spec, params);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  NyseOptions gen_opts;
  gen_opts.num_symbols = 50;
  gen_opts.tuple_rate = 3000.0;
  gen_opts.trades_per_trend = 300;
  gen_opts.noise = 0.02;
  const std::vector<Tuple> trace =
      NyseGenerator(gen_opts).Generate(360000);  // 120 s of trades
  const QuerySpec spec = MacdSpec();
  std::printf("Fig 9i reproduction: MACD over %zu synthetic NYSE trades\n",
              trace.size());

  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
  dexec->set_discard_output(true);
  // System-level measurement: discrete tuples pass through the engine's
  // admission queue (Borealis enqueues every tuple before processing;
  // Pulse's validator and the historical modeler intercept tuples before
  // the engine — paper Fig. 4).
  Stream admission("nyse.in", NyseGenerator::TupleSchema());
  const double tuple_s = bench::MeasureSeconds([&] {
    Tuple queued;
    for (const Tuple& t : trace) {
      (void)admission.Push(t);
      (void)admission.Pop(&queued);
      (void)dexec->PushTuple("nyse", queued);
    }
    (void)dexec->Finish();
  });

  PredictiveRuntime::Options popts;
  popts.bounds = {BoundSpec::Relative("s.ap", 0.01)};  // 1% of trade value
  popts.collect_outputs = false;
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, popts);
  const double pulse_s = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) (void)rt->ProcessTuple("nyse", t);
    (void)rt->Finish();
  });

  HistoricalRuntime::Options hopts;
  hopts.segmentation.degree = 1;
  hopts.segmentation.max_error = 0.05;
  hopts.segmentation.max_points_per_segment = 500;
  hopts.collect_outputs = false;
  Result<HistoricalRuntime> hist = HistoricalRuntime::Make(spec, hopts);
  const double hist_s = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) (void)hist->ProcessTuple("nyse", t);
    (void)hist->Finish();
  });

  const double n = static_cast<double>(trace.size());
  std::printf("\nMeasured capacities (tuples/s):\n");
  std::printf("  tuple MACD       : %12.0f\n", n / tuple_s);
  std::printf("  pulse MACD       : %12.0f  (validated %llu / pushed %llu"
              " segments, %llu violations)\n",
              n / pulse_s,
              static_cast<unsigned long long>(rt->stats().tuples_validated),
              static_cast<unsigned long long>(rt->stats().segments_pushed),
              static_cast<unsigned long long>(rt->stats().violations));
  std::printf("  historical MACD  : %12.0f  (%llu segments)\n", n / hist_s,
              static_cast<unsigned long long>(
                  hist->stats().segments_pushed));

  const double c_tuple = n / tuple_s;
  bench::SeriesTable table(
      "Fig 9i: achieved MACD throughput vs offered rate (1% threshold)",
      "offered_tps", {"tuple_tps", "pulse_tps", "historical_tps"});
  for (double f = 0.25; f <= 3.01; f += 0.25) {
    const double offered = f * c_tuple;
    table.AddRow(
        offered,
        {bench::SimulateQueue(trace.size(), tuple_s, offered).achieved_tps,
         bench::SimulateQueue(trace.size(), pulse_s, offered).achieved_tps,
         bench::SimulateQueue(trace.size(), hist_s, offered)
             .achieved_tps});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): tuple MACD saturates first; Pulse "
      "sustains a higher rate (~1.6x in the paper);\nhistorical segment "
      "processing scales further still.\n");
  return 0;
}
