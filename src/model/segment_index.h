#ifndef PULSE_MODEL_SEGMENT_INDEX_H_
#define PULSE_MODEL_SEGMENT_INDEX_H_

#include <deque>
#include <map>
#include <vector>

#include "model/segment.h"

namespace pulse {

/// Time-interval index over segments — the paper's future-work item
/// ("segment indexing techniques to process highly segmented datasets",
/// Section VII). A continuous join probes its partner buffer for segments
/// overlapping the newcomer's validity range; a linear scan is O(n) per
/// probe, which dominates when unmodeled attributes fragment the input
/// into many small segments.
///
/// Segments arrive in (roughly) ascending range.lo order, so the index
/// keeps an insertion-ordered deque sorted by lower endpoint plus the
/// running maximum of upper endpoints — a flattened augmented interval
/// list. An overlap query [a, b) binary-searches:
///   - the first entry whose running max end exceeds `a` (the running max
///     is monotone by construction), and
///   - the last entry whose lower endpoint is below `b`,
/// then scans only that candidate span. For time-ordered stream state the
/// span is tight, giving O(log n + k) typical probes.
class SegmentIndex {
 public:
  SegmentIndex() = default;

  /// Inserts a segment; `segment.range.lo` must be >= every earlier
  /// insertion's lo minus `kOrderSlack` (streaming order). Out-of-order
  /// arrivals within the slack are placed correctly.
  void Insert(Segment segment);

  /// Removes every segment whose range ends before `t`.
  void ExpireBefore(double t);

  /// Appends pointers to all stored segments overlapping `range`.
  /// Pointers are invalidated by the next Insert/ExpireBefore.
  void QueryOverlaps(const Interval& range,
                     std::vector<const Segment*>* out) const;

  /// Per-key variant of QueryOverlaps used by key-partitioned joins.
  void QueryOverlapsWithKey(const Interval& range, Key key,
                            std::vector<const Segment*>* out) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Probe statistics: segments examined vs. returned (ablation metric).
  uint64_t probes_examined() const { return probes_examined_; }
  uint64_t probes_matched() const { return probes_matched_; }

 private:
  struct Entry {
    Segment segment;
    double max_end = 0.0;  // running max of range.hi up to this entry
  };

  // First candidate index for a query with lower bound `a`.
  size_t LowerCandidate(double a) const;
  void RebuildMaxEnd(size_t from);

  std::deque<Entry> entries_;  // sorted by segment.range.lo
  size_t popped_since_rebuild_ = 0;
  mutable uint64_t probes_examined_ = 0;
  mutable uint64_t probes_matched_ = 0;
};

}  // namespace pulse

#endif  // PULSE_MODEL_SEGMENT_INDEX_H_
