#include "serve/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

namespace pulse {
namespace serve {
namespace {

// One direction of an in-process connection: a bounded byte FIFO with
// socket-like blocking. Shared by the two endpoints via shared_ptr so
// either side may be destroyed first.
class ByteChannel {
 public:
  explicit ByteChannel(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Status Write(const char* data, size_t n) {
    size_t written = 0;
    while (written < n) {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock,
                     [&] { return closed_ || buf_.size() < capacity_; });
      if (closed_) {
        return Status::IoError("in-process transport closed");
      }
      const size_t room = capacity_ - buf_.size();
      const size_t chunk = std::min(room, n - written);
      buf_.insert(buf_.end(), data + written, data + written + chunk);
      written += chunk;
      lock.unlock();
      data_cv_.notify_one();
    }
    return Status::OK();
  }

  Result<size_t> Read(char* out, size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    data_cv_.wait(lock, [&] { return closed_ || !buf_.empty(); });
    if (buf_.empty()) return size_t{0};  // closed and drained: EOF
    const size_t chunk = std::min(n, buf_.size());
    std::copy(buf_.begin(), buf_.begin() + static_cast<long>(chunk), out);
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(chunk));
    lock.unlock();
    space_cv_.notify_one();
    return chunk;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable data_cv_;
  std::condition_variable space_cv_;
  std::deque<char> buf_;
  bool closed_ = false;
};

class InProcessTransport : public Transport {
 public:
  InProcessTransport(std::shared_ptr<ByteChannel> in,
                     std::shared_ptr<ByteChannel> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~InProcessTransport() override { Close(); }

  Result<size_t> Read(char* buf, size_t n) override {
    return in_->Read(buf, n);
  }

  Status Write(const char* data, size_t n) override {
    return out_->Write(data, n);
  }

  void Close() override {
    // Both directions: a closing endpoint stops reading AND signals EOF
    // to the peer (TCP close semantics, not half-close).
    in_->Close();
    out_->Close();
  }

 private:
  std::shared_ptr<ByteChannel> in_;
  std::shared_ptr<ByteChannel> out_;
};

}  // namespace

TransportPair MakeInProcessPair(size_t buffer_capacity) {
  auto c2s = std::make_shared<ByteChannel>(buffer_capacity);
  auto s2c = std::make_shared<ByteChannel>(buffer_capacity);
  TransportPair pair;
  pair.client = std::make_unique<InProcessTransport>(s2c, c2s);
  pair.server = std::make_unique<InProcessTransport>(c2s, s2c);
  return pair;
}

}  // namespace serve
}  // namespace pulse
