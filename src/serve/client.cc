#include "serve/client.h"

#include <utility>

namespace pulse {
namespace serve {

ServeClient::ServeClient(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {}

Status ServeClient::Write(const Frame& frame) {
  write_buf_.clear();
  EncodeFrame(frame, &write_buf_);
  return transport_->Write(write_buf_);
}

Status ServeClient::Hello() { return Write(Frame::Hello()); }

Status ServeClient::OpenStream(uint32_t stream_id, std::string name) {
  return Write(Frame::OpenStream(stream_id, std::move(name)));
}

Status ServeClient::SendTuple(uint32_t stream_id, Tuple tuple) {
  return Write(Frame::OneTuple(stream_id, std::move(tuple)));
}

Status ServeClient::SendBatch(uint32_t stream_id,
                              std::vector<Tuple> tuples) {
  return Write(Frame::TupleBatch(stream_id, std::move(tuples)));
}

Status ServeClient::SendSegment(uint32_t stream_id, Segment segment) {
  return Write(Frame::OneSegment(stream_id, std::move(segment)));
}

Result<std::optional<Frame>> ServeClient::ReadFrame() {
  char buf[8192];
  for (;;) {
    PULSE_ASSIGN_OR_RETURN(std::optional<Frame> frame, reader_.Next());
    if (frame.has_value()) return frame;
    PULSE_ASSIGN_OR_RETURN(size_t got,
                           transport_->Read(buf, sizeof(buf)));
    if (got == 0) return std::optional<Frame>();  // EOF
    PULSE_RETURN_IF_ERROR(reader_.Feed(buf, got));
  }
}

Result<ServeClient::DrainResult> ServeClient::Drain() {
  PULSE_RETURN_IF_ERROR(Write(Frame::Drain()));
  DrainResult result;
  for (;;) {
    PULSE_ASSIGN_OR_RETURN(std::optional<Frame> frame, ReadFrame());
    if (!frame.has_value()) {
      return Status::IoError("connection closed before kDrained");
    }
    switch (frame->type) {
      case FrameType::kOutputSegment:
        for (Segment& s : frame->segments) {
          result.output_segments.push_back(std::move(s));
        }
        break;
      case FrameType::kOutputTuple:
        for (Tuple& t : frame->tuples) {
          result.output_tuples.push_back(std::move(t));
        }
        break;
      case FrameType::kFlow:
        if (frame->flow_event == FlowEvent::kDroppedOldest) {
          result.dropped += frame->flow_count;
        } else if (frame->flow_event == FlowEvent::kShed) {
          result.shed += frame->flow_count;
        }
        result.flow_frames.push_back(std::move(*frame));
        break;
      case FrameType::kProvisional: {
        ProvisionalFrame provisional;
        provisional.lineage = frame->lineage;
        provisional.bound = frame->bound;
        if (!frame->segments.empty()) {
          provisional.segment = std::move(frame->segments.front());
        }
        result.provisionals.push_back(std::move(provisional));
        break;
      }
      case FrameType::kConfirm:
        result.confirmed.push_back(frame->lineage);
        break;
      case FrameType::kRetract:
        result.retracted.emplace_back(frame->lineage,
                                      frame->retract_reason);
        break;
      case FrameType::kDrained:
        return result;
      case FrameType::kError:
        return Status::Internal("server error: " + frame->text);
      default:
        return Status::IoError(
            std::string("unexpected frame during drain: ") +
            FrameTypeToString(frame->type));
    }
  }
}

Status ServeClient::Bye() {
  const Status status = Write(Frame::Bye());
  transport_->Close();
  return status;
}

}  // namespace serve
}  // namespace pulse
