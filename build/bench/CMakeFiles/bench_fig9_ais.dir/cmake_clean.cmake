file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ais.dir/bench_fig9_ais.cc.o"
  "CMakeFiles/bench_fig9_ais.dir/bench_fig9_ais.cc.o.d"
  "bench_fig9_ais"
  "bench_fig9_ais.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ais.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
