#include "store/recovery.h"

#include <utility>

#include "store/checksum.h"

namespace pulse {
namespace store {

namespace {

template <typename RuntimeT>
Status ReplayRecords(const std::vector<LogRecord>& records, RuntimeT* rt) {
  for (const LogRecord& record : records) {
    switch (record.type) {
      case LogRecordType::kSegment:
        PULSE_RETURN_IF_ERROR(
            rt->ProcessSegment(record.stream, record.segment));
        break;
      case LogRecordType::kTuple:
        PULSE_RETURN_IF_ERROR(rt->ProcessTuple(record.stream, record.tuple));
        break;
      case LogRecordType::kBackfill:
        // Backfill patches the store's historical view only; the live
        // dataflow saw the original segments (docs/STORAGE.md).
        break;
    }
  }
  return Status::OK();
}

/// Splits `replayed` at the delivered watermark: verifies the prefix
/// hash against the checkpoint and returns the suffix as pending. On
/// any mismatch everything is pending (at-least-once redelivery, never
/// silent divergence) and `verified` stays false with a diagnosis.
std::vector<Segment> ReconcileOutputs(std::vector<Segment> replayed,
                                      const RecoveryReport& report,
                                      bool* verified,
                                      std::string* detail) {
  const uint64_t delivered = report.effective_delivered;
  if (delivered == 0) {
    *verified = report.clean() || !report.checkpoint_found;
    return replayed;
  }
  if (replayed.size() < delivered) {
    *verified = false;
    *detail = "checkpoint says " + std::to_string(delivered) +
              " output(s) were delivered but replay reproduced only " +
              std::to_string(replayed.size()) + "; redelivering all";
    return replayed;
  }
  uint64_t hash = kCanonicalHashSeed;
  for (uint64_t i = 0; i < delivered; ++i) {
    hash = CanonicalSegmentHash(replayed[i], hash);
  }
  if (hash != report.checkpoint.output_hash) {
    *verified = false;
    *detail = "replayed output prefix hash mismatch (replayed " +
              std::to_string(hash) + ", checkpoint " +
              std::to_string(report.checkpoint.output_hash) +
              "); redelivering all";
    return replayed;
  }
  *verified = true;
  replayed.erase(replayed.begin(),
                 replayed.begin() + static_cast<std::ptrdiff_t>(delivered));
  return replayed;
}

}  // namespace

Result<RecoveredHistorical> RecoverHistorical(
    const QuerySpec& spec, HistoricalRuntime::Options options,
    StoreOptions store_options) {
  PULSE_ASSIGN_OR_RETURN(RecoveredStore recovered,
                         SegmentStore::Recover(std::move(store_options)));
  options.collect_outputs = true;
  PULSE_ASSIGN_OR_RETURN(HistoricalRuntime runtime,
                         HistoricalRuntime::Make(spec, std::move(options)));
  PULSE_RETURN_IF_ERROR(ReplayRecords(recovered.records, &runtime));
  if (recovered.report.checkpoint_found &&
      recovered.report.checkpoint.finished &&
      !recovered.report.checkpoint_ahead) {
    PULSE_RETURN_IF_ERROR(runtime.Finish());
  }
  RecoveredHistorical out{std::move(recovered.store), std::move(runtime),
                          std::move(recovered.report), {}, false, {}};
  out.pending_outputs =
      ReconcileOutputs(out.runtime.TakeOutputSegments(), out.report,
                       &out.state_verified, &out.verify_detail);
  return out;
}

Result<RecoveredSharded> RecoverSharded(const QuerySpec& spec,
                                        shard::ShardedRuntimeOptions options,
                                        StoreOptions store_options) {
  PULSE_ASSIGN_OR_RETURN(RecoveredStore recovered,
                         SegmentStore::Recover(std::move(store_options)));
  options.runtime.collect_outputs = true;
  PULSE_ASSIGN_OR_RETURN(shard::ShardedRuntime runtime,
                         shard::ShardedRuntime::Make(spec, std::move(options)));
  PULSE_RETURN_IF_ERROR(ReplayRecords(recovered.records, &runtime));
  if (recovered.report.checkpoint_found &&
      recovered.report.checkpoint.finished &&
      !recovered.report.checkpoint_ahead) {
    PULSE_RETURN_IF_ERROR(runtime.Finish());
  } else {
    PULSE_RETURN_IF_ERROR(runtime.Barrier());
  }
  RecoveredSharded out{std::move(recovered.store), std::move(runtime),
                       std::move(recovered.report), {}, false, {}};
  out.pending_outputs =
      ReconcileOutputs(out.runtime.TakeOutputSegments(), out.report,
                       &out.state_verified, &out.verify_detail);
  return out;
}

}  // namespace store
}  // namespace pulse
