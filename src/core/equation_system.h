#ifndef PULSE_CORE_EQUATION_SYSTEM_H_
#define PULSE_CORE_EQUATION_SYSTEM_H_

#include <string>
#include <vector>

#include "math/interval_set.h"
#include "math/matrix.h"
#include "math/polynomial.h"
#include "math/roots.h"
#include "util/result.h"

namespace pulse {

class SolveCache;
class ThreadPool;

/// Caller-provided scratch for system solving: the root-finding scratch
/// plus the per-row solution set the intersection loop reuses. One per
/// thread (SolveSystems keeps a thread_local instance per worker).
struct SolveScratch {
  RootScratch roots;
  IntervalSet row_solution;
};

/// One row of a simultaneous equation system: a difference polynomial and
/// the comparison it must satisfy. Produced by the paper's three-step
/// predicate transform (Section III-A):
///   1. rewrite x R y in difference form      x - y R 0
///   2. substitute the continuous models      x(t) - y(t) R 0
///   3. factorize model coefficients          (x-y)(t) R 0
struct DifferenceEquation {
  Polynomial diff;
  CmpOp op = CmpOp::kEq;

  std::string ToString() const;
};

/// Builds a difference equation from two attribute models. `lhs` is taken
/// by value: it becomes the row's difference polynomial in place, so
/// callers that are done with it should std::move it in.
DifferenceEquation MakeDifferenceEquation(Polynomial lhs, CmpOp op,
                                          const Polynomial& rhs);

/// The basic computation element of Pulse (paper Eq. 1): a set of
/// difference equations that must hold simultaneously, with the single
/// unknown t. Solving the system yields the time ranges over which a
/// selective operator produces results.
class EquationSystem {
 public:
  EquationSystem() = default;
  explicit EquationSystem(std::vector<DifferenceEquation> rows)
      : rows_(std::move(rows)) {}

  void AddRow(DifferenceEquation row) { rows_.push_back(std::move(row)); }

  /// Moves every row of `other` onto the end of this system.
  void AddRowsFrom(EquationSystem&& other) {
    for (DifferenceEquation& row : other.rows_) {
      rows_.push_back(std::move(row));
    }
    other.rows_.clear();
  }

  /// Drops all rows but keeps the row vector's capacity, so a reused
  /// system rebuilds without reallocating (the join's task scratch).
  void Clear() { rows_.clear(); }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<DifferenceEquation>& rows() const { return rows_; }

  /// Largest polynomial degree across rows.
  size_t Degree() const;

  /// The paper's difference-equation coefficient matrix D: row i holds the
  /// coefficients of rows_[i].diff, padded to Degree()+1 columns (constant
  /// term first, i.e. D * [1, t, t^2, ...]^T evaluates all rows at t).
  Matrix CoefficientMatrix() const;

  /// General solution algorithm (Section III-A): solve each equation
  /// independently, intersect the per-row time-range solutions over
  /// `domain`. Empty result means the predicate never holds within the
  /// given models' ranges — the operator emits nothing.
  IntervalSet Solve(const Interval& domain,
                    RootMethod method = RootMethod::kAuto) const;

  /// Scratch/cache form of Solve: writes the solution into *out, reusing
  /// scratch buffers across calls. When `cache` is non-null, each row's
  /// comparison solve is looked up in (and on miss inserted into) the
  /// cache — with exact keys the result is bit-identical either way.
  void SolveInto(const Interval& domain, RootMethod method,
                 SolveScratch* scratch, SolveCache* cache,
                 IntervalSet* out) const;

  /// Fast path for all-equality systems of degree <= 1 (the equi-join
  /// case the paper routes to Gaussian elimination): solves the stacked
  /// linear system for t directly. Returns NotFound when the system has
  /// no common solution in `domain`, FailedPrecondition when the system
  /// shape does not qualify for this path.
  Result<double> SolveLinearEquality(const Interval& domain) const;

  /// True when every row is an equality of degree <= 1.
  bool QualifiesForLinearEquality() const;

  /// The paper's slack measure (Section IV):
  ///   slack = min_t ||D t||_inf  over t in `domain`,
  /// i.e. the smallest maximum-row magnitude — a continuous measure of the
  /// query's proximity to producing a result. The max-norm ensures no
  /// mispredicted tuple that could produce results is missed. Exact for
  /// polynomials: candidates are domain endpoints, per-row derivative
  /// roots, and pairwise |row_i| = |row_j| crossing points.
  double Slack(const Interval& domain) const;

  std::string ToString() const;

 private:
  std::vector<DifferenceEquation> rows_;
};

/// One independent solve instance for batch execution: an equation
/// system plus the time domain to solve it over. Instances share no
/// state, which is what makes the batch embarrassingly parallel.
struct EquationSystemTask {
  EquationSystem system;
  Interval domain;
};

/// Solves every task independently — the per-segment / per-segment-pair
/// fan-out of the parallel runtime (docs/CONCURRENCY.md). Root-finding
/// and sign-testing shard across `pool` when it has more than one thread
/// (nullptr or single-thread pools solve inline on the caller), and
/// solutions are returned in task order, so the concatenated result is
/// deterministic regardless of execution interleaving. Each executing
/// thread keeps a thread_local SolveScratch, so the batch allocates
/// nothing once those are warm; `cache` (optional) memoizes per-row
/// solves across tasks and batches.
Result<std::vector<IntervalSet>> SolveSystems(
    const std::vector<EquationSystemTask>& tasks,
    RootMethod method = RootMethod::kAuto, ThreadPool* pool = nullptr,
    SolveCache* cache = nullptr);

/// Buffer-reusing form of SolveSystems: solves tasks[0..n) into
/// *solutions (resized to n; interval storage of previous batches is
/// reused). This is the per-push hot path of the join — combined with a
/// caller-owned task scratch it makes the fan-out allocation-free.
Status SolveSystemsInto(const EquationSystemTask* tasks, size_t n,
                        RootMethod method, ThreadPool* pool,
                        SolveCache* cache,
                        std::vector<IntervalSet>* solutions);

}  // namespace pulse

#endif  // PULSE_CORE_EQUATION_SYSTEM_H_
