#ifndef PULSE_CORE_OPERATORS_JOIN_H_
#define PULSE_CORE_OPERATORS_JOIN_H_

#include <deque>
#include <string>
#include <vector>

#include "core/operators/pulse_operator.h"
#include "core/predicate.h"
#include "model/segment_index.h"

namespace pulse {

/// Packs a pair of entity keys into one output key. Requires both keys to
/// fit 32 bits (entity populations in the paper's workloads are far
/// smaller). Join outputs describe entity *pairs*, and downstream
/// group-bys (e.g. the AIS following query's GROUP BY id1, id2) group on
/// this composite.
Key CombineKeys(Key left, Key right);

/// Inverse of CombineKeys.
void SplitKeys(Key combined, Key* left, Key* right);

/// Options controlling key handling in the continuous join.
struct PulseJoinOptions {
  /// Time window bounding each side's segment buffer, seconds.
  double window_seconds = 1.0;
  /// Only match segments with equal keys (hash-partition equi-join on the
  /// key attribute, e.g. MACD's "S.Symbol = L.Symbol").
  bool match_keys = false;
  /// Only match segments with distinct keys (self-join guards such as
  /// "R.id <> S.id" in the collision query).
  bool require_distinct_keys = false;
  /// Attribute name prefixes applied to the joined segment.
  std::string left_prefix = "left.";
  std::string right_prefix = "right.";
  RootMethod method = RootMethod::kAuto;
  /// Probe partner state through a time-interval SegmentIndex instead of
  /// a linear buffer scan — the paper's future-work extension for highly
  /// segmented inputs (Section VII). Same results, different probe cost.
  bool use_segment_index = false;
};

/// Continuous-time join (paper Fig. 3, row "Join"): order-based segment
/// buffers per side; an arriving segment is aligned against every stored
/// opposite-side segment it overlaps in time (equi-join semantics along
/// the time dimension, Section III-A), and the system D = [x_i - y_i] is
/// solved over the overlap. Outputs {(t, x_i, y_i) | D t R 0} — joined
/// segments carrying both sides' models, valid on the solution ranges.
class PulseJoin : public PulseOperator {
 public:
  PulseJoin(std::string name, Predicate predicate, PulseJoinOptions options);

  size_t num_inputs() const override { return 2; }

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

  /// Slack against the stored opposite-side segments overlapping
  /// `segment` (min over partners; +inf when no partner overlaps).
  Result<double> ComputeSlack(size_t port, const Segment& segment) const;

  size_t left_buffer_size() const {
    return options_.use_segment_index ? left_index_.size() : left_.size();
  }
  size_t right_buffer_size() const {
    return options_.use_segment_index ? right_index_.size()
                                      : right_.size();
  }

  /// Probe statistics when the segment index is enabled (ablation A4).
  const SegmentIndex& left_index() const { return left_index_; }
  const SegmentIndex& right_index() const { return right_index_; }

 private:
  // --- Compiled predicate row program -------------------------------
  // Conjunctive predicates are flattened once at construction into
  // comparison rows whose attribute references are slot indices into
  // per-side name tables. Stored segments then carry tables of resolved
  // `const Polynomial*` (attribute-map nodes are pointer-stable and
  // deque elements never move), so the per-pair system build is pointer
  // dereferences instead of a resolver std::function, per-row attribute
  // map probes, and Result<Polynomial> copies — the dominant non-solve
  // cost of the Fig. 7 join hot path. Pairs touching a segment that
  // lacks a referenced attribute fall back to the resolver path, so
  // error statuses are identical to the uncompiled build.
  struct SlotRef {
    Side side = Side::kLeft;
    size_t slot = 0;
  };
  struct CompiledRow {
    ComparisonTerm::Kind kind = ComparisonTerm::Kind::kSimple;
    CmpOp op = CmpOp::kEq;
    // kSimple operands.
    SlotRef lhs;
    bool rhs_is_attr = false;
    SlotRef rhs;
    double rhs_constant = 0.0;
    // kDistance2 operands.
    SlotRef x1, y1, x2, y2;
    double threshold = 0.0;
  };
  // Slot -> polynomial table for one side of one segment. `complete` is
  // false when any referenced attribute is absent from the segment.
  struct ResolvedAttrs {
    std::vector<const Polynomial*> ptr;
    bool complete = false;
  };

  void CompilePredicate();
  SlotRef SlotRefFor(const AttrRef& ref);
  ResolvedAttrs Resolve(Side side, const Segment& segment) const;
  // Rebuilds *out from resolved operand pointers with the exact
  // polynomial-arithmetic sequence of Predicate::BuildRow, so the rows
  // (and everything solved from them) are bit-identical to the resolver
  // path's.
  void BuildCompiledSystem(const ResolvedAttrs& left,
                           const ResolvedAttrs& right,
                           EquationSystem* out) const;

  // Solves `segment` (arrived on `port`) against every admissible stored
  // partner. Root-finding fans out across the operator's thread pool
  // when one is installed; emission (ids, lineage, output order) stays
  // on the calling thread in partner order, so parallel and serial runs
  // produce identical batches. `probe_resolved` / `partner_resolved`
  // (nullable) carry the compiled row program's pointer tables for the
  // incoming segment and the partner deque (parallel to `partners`).
  Status MatchPartners(size_t port, const Segment& segment,
                       const std::vector<const Segment*>& partners,
                       const ResolvedAttrs* probe_resolved,
                       const std::deque<ResolvedAttrs>* partner_resolved,
                       SegmentBatch* out);
  bool KeysAdmissible(const Segment& a, const Segment& b) const;
  void Expire(double now);
  Segment MakeJoined(const Segment& left, const Segment& right,
                     const Interval& valid) const;

  Predicate predicate_;
  PulseJoinOptions options_;
  bool compiled_ = false;
  std::vector<CompiledRow> compiled_rows_;
  std::vector<std::string> slot_names_[2];  // [0] = left, [1] = right
  // Resolved tables for the stored segments, kept in lockstep with
  // left_ / right_ (maintained only when compiled_).
  std::deque<ResolvedAttrs> left_resolved_;
  std::deque<ResolvedAttrs> right_resolved_;
  // Per-push scratch for the conjunctive fan-out, reused across pushes
  // so pair-system construction and solution collection stop allocating
  // once warm (docs/PERFORMANCE.md). Only MatchPartners (serial, calling
  // thread) touches them; entries are grown, never shrunk.
  std::vector<EquationSystemTask> task_scratch_;
  std::vector<IntervalSet> solution_scratch_;
  std::deque<Segment> left_;
  std::deque<Segment> right_;
  SegmentIndex left_index_;
  SegmentIndex right_index_;
  double latest_time_ = 0.0;
  double last_lineage_expire_ = 0.0;
};

/// Resolver mapping kLeft/kRight references onto a segment pair.
AttrResolver MakeBinaryResolver(const Segment& left, const Segment& right);

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_JOIN_H_
