#ifndef PULSE_UTIL_JSON_H_
#define PULSE_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace pulse {
namespace json {

/// Streaming JSON writer with automatic comma/indent management. Every
/// JSON document the project emits (metrics snapshots, BENCH_*.json
/// files) goes through this one writer so field quoting, separators, and
/// number formatting cannot drift between call sites.
///
///   Writer w;
///   w.BeginObject();
///   w.Key("bench").String("solver_hotpath");
///   w.Key("results").BeginArray();
///   ...
///   w.EndArray().EndObject();
///   std::string doc = w.Take();
class Writer {
 public:
  /// `indent` spaces per nesting level; 0 emits compact one-line JSON.
  explicit Writer(int indent = 2) : indent_(indent) {}

  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();
  Writer& Key(const std::string& key);
  Writer& String(const std::string& value);
  Writer& Double(double value);
  Writer& Uint(uint64_t value);
  Writer& Int(int64_t value);
  Writer& Bool(bool value);
  Writer& Null();

  /// The finished document. The writer must be balanced (all containers
  /// closed); unbalanced use is a programming error caught by tests via
  /// Parse().
  std::string Take();

  static std::string Escape(const std::string& raw);

 private:
  void BeforeValue();
  void Newline();

  std::string out_;
  int indent_ = 2;
  // One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  // Parallel to stack_: whether the container already has an element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Parsed JSON value (null, bool, number, string, array, object).
/// Numbers are stored as double — sufficient for validating the bench
/// schema and metric snapshots this project produces.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& as_array() const { return array_; }
  const std::map<std::string, Value>& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  static Value MakeNull();
  static Value MakeBool(bool b);
  static Value MakeNumber(double d);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Strict recursive-descent parse of one JSON document (trailing
/// whitespace allowed, trailing garbage is an error). Used by tests to
/// validate emitted documents against their schema.
Result<Value> Parse(const std::string& text);

}  // namespace json
}  // namespace pulse

#endif  // PULSE_UTIL_JSON_H_
