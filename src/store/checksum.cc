#include "store/checksum.h"

#include <array>

#include "serve/wire.h"

namespace pulse {
namespace store {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC-32C, reflected.

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t FnvMix(const char* data, size_t n, uint64_t h) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= kPrime;
  }
  return h;
}

uint64_t CanonicalSegmentHash(const Segment& s, uint64_t h) {
  Segment canonical = s;
  canonical.id = 0;
  std::string bytes;
  serve::wire::PutSegment(&bytes, canonical);
  return FnvMix(bytes.data(), bytes.size(), h);
}

}  // namespace store
}  // namespace pulse
