#include "serve/frame.h"

#include <bit>
#include <cstring>
#include <utility>

namespace pulse {
namespace serve {

namespace {

// ---------------------------------------------------------------------
// Primitive writers. All integers little-endian; doubles travel as their
// IEEE-754 bit pattern so values round-trip bit-exactly (the serving
// differential relies on byte-for-byte output equality).

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// ---------------------------------------------------------------------
// Primitive readers over a bounded cursor. Every read checks the bound;
// a truncated payload surfaces as DataLoss, never as an out-of-range
// memory access (the fuzz-friendly contract).

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
};

Status Truncated(const char* what) {
  return Status::IoError(std::string("truncated frame payload: ") + what);
}

Result<uint8_t> GetU8(Cursor* c, const char* what) {
  if (c->remaining() < 1) return Truncated(what);
  return static_cast<uint8_t>(c->data[c->pos++]);
}

Result<uint16_t> GetU16(Cursor* c, const char* what) {
  if (c->remaining() < 2) return Truncated(what);
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<uint32_t> GetU32(Cursor* c, const char* what) {
  if (c->remaining() < 4) return Truncated(what);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> GetU64(Cursor* c, const char* what) {
  if (c->remaining() < 8) return Truncated(what);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<int64_t> GetI64(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint64_t v, GetU64(c, what));
  return static_cast<int64_t>(v);
}

Result<double> GetF64(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint64_t bits, GetU64(c, what));
  return std::bit_cast<double>(bits);
}

Result<std::string> GetString(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint32_t n, GetU32(c, what));
  if (c->remaining() < n) return Truncated(what);
  std::string s(c->data + c->pos, n);
  c->pos += n;
  return s;
}

// ---------------------------------------------------------------------
// Tuple body: f64 timestamp, u16 field count, then tagged values
// (u8 tag: 0 = int64, 1 = double, 2 = string).

void PutTuple(std::string* out, const Tuple& tuple) {
  PutF64(out, tuple.timestamp);
  PutU16(out, static_cast<uint16_t>(tuple.values.size()));
  for (const Value& v : tuple.values) {
    switch (v.type()) {
      case ValueType::kInt64:
        PutU8(out, 0);
        PutI64(out, v.as_int64());
        break;
      case ValueType::kDouble:
        PutU8(out, 1);
        PutF64(out, v.as_double());
        break;
      case ValueType::kString:
        PutU8(out, 2);
        PutString(out, v.as_string());
        break;
    }
  }
}

Result<Tuple> GetTuple(Cursor* c) {
  Tuple tuple;
  PULSE_ASSIGN_OR_RETURN(tuple.timestamp, GetF64(c, "tuple timestamp"));
  PULSE_ASSIGN_OR_RETURN(uint16_t n, GetU16(c, "tuple field count"));
  tuple.values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    PULSE_ASSIGN_OR_RETURN(uint8_t tag, GetU8(c, "value tag"));
    switch (tag) {
      case 0: {
        PULSE_ASSIGN_OR_RETURN(int64_t v, GetI64(c, "int64 value"));
        tuple.values.emplace_back(v);
        break;
      }
      case 1: {
        PULSE_ASSIGN_OR_RETURN(double v, GetF64(c, "double value"));
        tuple.values.emplace_back(v);
        break;
      }
      case 2: {
        PULSE_ASSIGN_OR_RETURN(std::string v, GetString(c, "string value"));
        tuple.values.emplace_back(std::move(v));
        break;
      }
      default:
        return Status::IoError("unknown value tag " + std::to_string(tag));
    }
  }
  return tuple;
}

// ---------------------------------------------------------------------
// Segment body: i64 key, u64 id, range (f64 lo, f64 hi, u8 openness
// flags), modeled attributes (name + low-order-first coefficients), and
// unmodeled constants. The zero polynomial is encoded with coefficient
// count 0 so IsZero() survives the round trip.

void PutSegment(std::string* out, const Segment& s) {
  PutI64(out, s.key);
  PutU64(out, s.id);
  PutF64(out, s.range.lo);
  PutF64(out, s.range.hi);
  PutU8(out, static_cast<uint8_t>((s.range.lo_open ? 1 : 0) |
                                  (s.range.hi_open ? 2 : 0)));
  PutU16(out, static_cast<uint16_t>(s.attributes.size()));
  for (const auto& [name, poly] : s.attributes) {
    PutString(out, name);
    const uint16_t ncoeff =
        poly.IsZero() ? 0 : static_cast<uint16_t>(poly.degree() + 1);
    PutU16(out, ncoeff);
    for (uint16_t i = 0; i < ncoeff; ++i) PutF64(out, poly.coeff(i));
  }
  PutU16(out, static_cast<uint16_t>(s.unmodeled.size()));
  for (const auto& [name, value] : s.unmodeled) {
    PutString(out, name);
    PutF64(out, value);
  }
}

Result<Segment> GetSegment(Cursor* c) {
  Segment s;
  PULSE_ASSIGN_OR_RETURN(s.key, GetI64(c, "segment key"));
  PULSE_ASSIGN_OR_RETURN(s.id, GetU64(c, "segment id"));
  PULSE_ASSIGN_OR_RETURN(s.range.lo, GetF64(c, "segment range lo"));
  PULSE_ASSIGN_OR_RETURN(s.range.hi, GetF64(c, "segment range hi"));
  PULSE_ASSIGN_OR_RETURN(uint8_t flags, GetU8(c, "segment range flags"));
  s.range.lo_open = (flags & 1) != 0;
  s.range.hi_open = (flags & 2) != 0;
  PULSE_ASSIGN_OR_RETURN(uint16_t nattrs, GetU16(c, "attribute count"));
  for (uint16_t i = 0; i < nattrs; ++i) {
    PULSE_ASSIGN_OR_RETURN(std::string name, GetString(c, "attribute name"));
    PULSE_ASSIGN_OR_RETURN(uint16_t ncoeff,
                           GetU16(c, "coefficient count"));
    if (ncoeff == 0) {
      s.attributes[std::move(name)] = Polynomial();
      continue;
    }
    std::vector<double> coeffs(ncoeff);
    for (uint16_t j = 0; j < ncoeff; ++j) {
      PULSE_ASSIGN_OR_RETURN(coeffs[j], GetF64(c, "coefficient"));
    }
    s.attributes[std::move(name)] = Polynomial(std::move(coeffs));
  }
  PULSE_ASSIGN_OR_RETURN(uint16_t nunmodeled, GetU16(c, "unmodeled count"));
  for (uint16_t i = 0; i < nunmodeled; ++i) {
    PULSE_ASSIGN_OR_RETURN(std::string name, GetString(c, "unmodeled name"));
    PULSE_ASSIGN_OR_RETURN(double value, GetF64(c, "unmodeled value"));
    s.unmodeled[std::move(name)] = value;
  }
  return s;
}

Result<Frame> DecodePayload(const char* data, size_t size) {
  Cursor c{data, size};
  PULSE_ASSIGN_OR_RETURN(uint8_t type_byte, GetU8(&c, "frame type"));
  Frame frame;
  switch (static_cast<FrameType>(type_byte)) {
    case FrameType::kHello: {
      frame.type = FrameType::kHello;
      PULSE_ASSIGN_OR_RETURN(frame.version, GetU32(&c, "hello version"));
      break;
    }
    case FrameType::kOpenStream: {
      frame.type = FrameType::kOpenStream;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(frame.text, GetString(&c, "stream name"));
      break;
    }
    case FrameType::kTuple: {
      frame.type = FrameType::kTuple;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
      frame.tuples.push_back(std::move(t));
      break;
    }
    case FrameType::kTupleBatch: {
      frame.type = FrameType::kTupleBatch;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(uint32_t n, GetU32(&c, "batch size"));
      // Guard: each tuple needs >= 10 payload bytes, so a hostile count
      // cannot force a huge reserve ahead of the truncation check.
      if (static_cast<size_t>(n) * 10 > c.remaining()) {
        return Truncated("tuple batch");
      }
      frame.tuples.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
        frame.tuples.push_back(std::move(t));
      }
      break;
    }
    case FrameType::kSegment: {
      frame.type = FrameType::kSegment;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(Segment s, GetSegment(&c));
      frame.segments.push_back(std::move(s));
      break;
    }
    case FrameType::kFlow: {
      frame.type = FrameType::kFlow;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(uint8_t event, GetU8(&c, "flow event"));
      if (event > static_cast<uint8_t>(FlowEvent::kShed)) {
        return Status::IoError("unknown flow event " +
                                std::to_string(event));
      }
      frame.flow_event = static_cast<FlowEvent>(event);
      PULSE_ASSIGN_OR_RETURN(frame.flow_count, GetU64(&c, "flow count"));
      break;
    }
    case FrameType::kOutputSegment: {
      frame.type = FrameType::kOutputSegment;
      PULSE_ASSIGN_OR_RETURN(Segment s, GetSegment(&c));
      frame.segments.push_back(std::move(s));
      break;
    }
    case FrameType::kOutputTuple: {
      frame.type = FrameType::kOutputTuple;
      PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
      frame.tuples.push_back(std::move(t));
      break;
    }
    case FrameType::kDrain:
      frame.type = FrameType::kDrain;
      break;
    case FrameType::kDrained:
      frame.type = FrameType::kDrained;
      break;
    case FrameType::kError: {
      frame.type = FrameType::kError;
      PULSE_ASSIGN_OR_RETURN(frame.text, GetString(&c, "error message"));
      break;
    }
    case FrameType::kBye:
      frame.type = FrameType::kBye;
      break;
    default:
      return Status::IoError("unknown frame type " +
                              std::to_string(type_byte));
  }
  if (c.pos != c.size) {
    return Status::IoError(
        "frame payload has " + std::to_string(c.size - c.pos) +
        " trailing byte(s) after " +
        FrameTypeToString(static_cast<FrameType>(type_byte)));
  }
  return frame;
}

}  // namespace

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "Hello";
    case FrameType::kOpenStream:
      return "OpenStream";
    case FrameType::kTuple:
      return "Tuple";
    case FrameType::kTupleBatch:
      return "TupleBatch";
    case FrameType::kSegment:
      return "Segment";
    case FrameType::kFlow:
      return "Flow";
    case FrameType::kOutputSegment:
      return "OutputSegment";
    case FrameType::kOutputTuple:
      return "OutputTuple";
    case FrameType::kDrain:
      return "Drain";
    case FrameType::kDrained:
      return "Drained";
    case FrameType::kError:
      return "Error";
    case FrameType::kBye:
      return "Bye";
  }
  return "Unknown";
}

const char* FlowEventToString(FlowEvent event) {
  switch (event) {
    case FlowEvent::kPaused:
      return "Paused";
    case FlowEvent::kResumed:
      return "Resumed";
    case FlowEvent::kDroppedOldest:
      return "DroppedOldest";
    case FlowEvent::kShed:
      return "Shed";
  }
  return "Unknown";
}

Frame Frame::Hello() {
  Frame f;
  f.type = FrameType::kHello;
  return f;
}

Frame Frame::OpenStream(uint32_t stream_id, std::string name) {
  Frame f;
  f.type = FrameType::kOpenStream;
  f.stream_id = stream_id;
  f.text = std::move(name);
  return f;
}

Frame Frame::OneTuple(uint32_t stream_id, Tuple tuple) {
  Frame f;
  f.type = FrameType::kTuple;
  f.stream_id = stream_id;
  f.tuples.push_back(std::move(tuple));
  return f;
}

Frame Frame::TupleBatch(uint32_t stream_id, std::vector<Tuple> tuples) {
  Frame f;
  f.type = FrameType::kTupleBatch;
  f.stream_id = stream_id;
  f.tuples = std::move(tuples);
  return f;
}

Frame Frame::OneSegment(uint32_t stream_id, Segment segment) {
  Frame f;
  f.type = FrameType::kSegment;
  f.stream_id = stream_id;
  f.segments.push_back(std::move(segment));
  return f;
}

Frame Frame::Flow(uint32_t stream_id, FlowEvent event, uint64_t count) {
  Frame f;
  f.type = FrameType::kFlow;
  f.stream_id = stream_id;
  f.flow_event = event;
  f.flow_count = count;
  return f;
}

Frame Frame::OutputSegment(Segment segment) {
  Frame f;
  f.type = FrameType::kOutputSegment;
  f.segments.push_back(std::move(segment));
  return f;
}

Frame Frame::OutputTuple(Tuple tuple) {
  Frame f;
  f.type = FrameType::kOutputTuple;
  f.tuples.push_back(std::move(tuple));
  return f;
}

Frame Frame::Drain() {
  Frame f;
  f.type = FrameType::kDrain;
  return f;
}

Frame Frame::Drained() {
  Frame f;
  f.type = FrameType::kDrained;
  return f;
}

Frame Frame::Error(std::string message) {
  Frame f;
  f.type = FrameType::kError;
  f.text = std::move(message);
  return f;
}

Frame Frame::Bye() {
  Frame f;
  f.type = FrameType::kBye;
  return f;
}

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(frame.type));
  switch (frame.type) {
    case FrameType::kHello:
      PutU32(&payload, frame.version);
      break;
    case FrameType::kOpenStream:
      PutU32(&payload, frame.stream_id);
      PutString(&payload, frame.text);
      break;
    case FrameType::kTuple:
      PutU32(&payload, frame.stream_id);
      PutTuple(&payload, frame.tuples.at(0));
      break;
    case FrameType::kTupleBatch:
      PutU32(&payload, frame.stream_id);
      PutU32(&payload, static_cast<uint32_t>(frame.tuples.size()));
      for (const Tuple& t : frame.tuples) PutTuple(&payload, t);
      break;
    case FrameType::kSegment:
      PutU32(&payload, frame.stream_id);
      PutSegment(&payload, frame.segments.at(0));
      break;
    case FrameType::kFlow:
      PutU32(&payload, frame.stream_id);
      PutU8(&payload, static_cast<uint8_t>(frame.flow_event));
      PutU64(&payload, frame.flow_count);
      break;
    case FrameType::kOutputSegment:
      PutSegment(&payload, frame.segments.at(0));
      break;
    case FrameType::kOutputTuple:
      PutTuple(&payload, frame.tuples.at(0));
      break;
    case FrameType::kDrain:
    case FrameType::kDrained:
    case FrameType::kBye:
      break;
    case FrameType::kError:
      PutString(&payload, frame.text);
      break;
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

std::string EncodeFrameToString(const Frame& frame) {
  std::string out;
  EncodeFrame(frame, &out);
  return out;
}

FrameReader::FrameReader(DecodeLimits limits) : limits_(limits) {}

Status FrameReader::Feed(const char* data, size_t n) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "frame stream previously failed to decode");
  }
  buffer_.append(data, n);
  return Status::OK();
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "frame stream previously failed to decode");
  }
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::optional<Frame>{};
  Cursor c{buffer_.data() + consumed_, available};
  uint32_t len = *GetU32(&c, "length prefix");
  if (len > limits_.max_frame_bytes) {
    poisoned_ = true;
    return Status::IoError(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(limits_.max_frame_bytes));
  }
  if (available - 4 < len) return std::optional<Frame>{};
  Result<Frame> frame = DecodePayload(buffer_.data() + consumed_ + 4, len);
  if (!frame.ok()) {
    poisoned_ = true;
    return frame.status();
  }
  consumed_ += 4 + len;
  return std::optional<Frame>(std::move(*frame));
}

}  // namespace serve
}  // namespace pulse
