#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/export.h"
#include "util/json.h"

namespace pulse::bench {

double MeasureSeconds(const std::function<void()>& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedSeconds();
}

unsigned HardwareConcurrency() {
  return std::thread::hardware_concurrency();
}

bool CoreBound(size_t workers) {
  const unsigned cores = HardwareConcurrency();
  return cores > 0 && workers > cores;
}

QueueSummary SimulateQueue(uint64_t n, double total_service_seconds,
                           double offered_rate) {
  QueueSummary out;
  if (n == 0 || total_service_seconds <= 0.0 || offered_rate <= 0.0) {
    return out;
  }
  const double service = total_service_seconds / static_cast<double>(n);
  out.capacity_tps = 1.0 / service;
  out.achieved_tps = std::min(offered_rate, out.capacity_tps);
  const double run_seconds = static_cast<double>(n) / offered_rate;
  if (offered_rate <= out.capacity_tps) {
    out.mean_latency_s = service;
    out.final_backlog = 0.0;
    return out;
  }
  // Overloaded D/D/1: the queue grows linearly for the whole run. Tuple i
  // arrives at i/rate and completes at i*service; the mean of the
  // difference over the run is half the final lag.
  const double lag_per_tuple = service - 1.0 / offered_rate;
  out.final_backlog = lag_per_tuple * static_cast<double>(n) * offered_rate;
  out.mean_latency_s =
      service + 0.5 * lag_per_tuple * static_cast<double>(n);
  (void)run_seconds;
  return out;
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series_names)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_(std::move(series_names)) {}

void SeriesTable::AddRow(double x, std::vector<double> values) {
  rows_.emplace_back(x, std::move(values));
}

void SeriesTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%18s", x_label_.c_str());
  for (const std::string& s : series_) std::printf("  %18s", s.c_str());
  std::printf("\n");
  for (const auto& [x, values] : rows_) {
    std::printf("%18.4g", x);
    for (double v : values) std::printf("  %18.4g", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReport::ParamUint(const std::string& key, uint64_t value) {
  Param p;
  p.key = key;
  p.kind = Row::Kind::kUint;
  p.u = value;
  params_.push_back(std::move(p));
}

void BenchReport::ParamDouble(const std::string& key, double value) {
  Param p;
  p.key = key;
  p.kind = Row::Kind::kDouble;
  p.d = value;
  params_.push_back(std::move(p));
}

void BenchReport::ParamString(const std::string& key, std::string value) {
  Param p;
  p.key = key;
  p.kind = Row::Kind::kString;
  p.s = std::move(value);
  params_.push_back(std::move(p));
}

BenchReport::Row& BenchReport::Row::Uint(const std::string& key,
                                         uint64_t value) {
  Field f;
  f.key = key;
  f.kind = Kind::kUint;
  f.u = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Row& BenchReport::Row::Double(const std::string& key,
                                           double value) {
  Field f;
  f.key = key;
  f.kind = Kind::kDouble;
  f.d = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Row& BenchReport::Row::Bool(const std::string& key,
                                         bool value) {
  Field f;
  f.key = key;
  f.kind = Kind::kBool;
  f.b = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Row& BenchReport::Row::String(const std::string& key,
                                           std::string value) {
  Field f;
  f.key = key;
  f.kind = Kind::kString;
  f.s = std::move(value);
  fields_.push_back(std::move(f));
  return *this;
}

BenchReport::Row& BenchReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

void BenchReport::AttachMetrics(const obs::MetricsSnapshot& snapshot) {
  metrics_ = snapshot;
  has_metrics_ = true;
}

std::string BenchReport::ToJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("bench").String(name_);
  w.Key("schema_version").Uint(2);
  w.Key("params").BeginObject();
  for (const Param& p : params_) {
    switch (p.kind) {
      case Row::Kind::kUint:
        w.Key(p.key).Uint(p.u);
        break;
      case Row::Kind::kDouble:
        w.Key(p.key).Double(p.d);
        break;
      case Row::Kind::kString:
        w.Key(p.key).String(p.s);
        break;
      case Row::Kind::kBool:
        break;  // params are scalar-only; bool unused
    }
  }
  w.EndObject();
  w.Key("results").BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject();
    for (const Row::Field& f : row.fields_) {
      switch (f.kind) {
        case Row::Kind::kUint:
          w.Key(f.key).Uint(f.u);
          break;
        case Row::Kind::kDouble:
          w.Key(f.key).Double(f.d);
          break;
        case Row::Kind::kBool:
          w.Key(f.key).Bool(f.b);
          break;
        case Row::Kind::kString:
          w.Key(f.key).String(f.s);
          break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
  if (has_metrics_ && !metrics_.empty()) {
    w.Key("metrics");
    obs::WriteJson(metrics_, w);
  }
  w.EndObject();
  std::string doc = w.Take();
  doc += '\n';
  return doc;
}

bool BenchReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string doc = ToJson();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

bool HandleMetricsOutFlag(int argc, char** argv,
                          const obs::MetricsSnapshot& snapshot) {
  constexpr const char kFlag[] = "--metrics-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) != 0) {
      std::fprintf(stderr, "usage: %s [--metrics-out=PATH]\n", argv[0]);
      return false;
    }
    const std::string path = argv[i] + sizeof(kFlag) - 1;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string text = obs::ToPrometheus(snapshot);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("Wrote metrics to %s.\n", path.c_str());
  }
  return true;
}

}  // namespace pulse::bench
