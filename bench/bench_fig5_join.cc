// Reproduces paper Fig. 5iii: join microbenchmark. Continuous-time join
// throughput vs tuples/segment against a nested-loops sliding-window join
// (window 0.1 s; stream rates 1000-10000 tup/s; 1% threshold).
//
// Paper shape: the NL join performs a quadratic number of comparisons per
// window, so the continuous join wins almost immediately (crossover at
// 1.45 tuples/segment in the paper) — validation cost is linear in the
// model coefficients while the discrete join's cost is quadratic in rate.
#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kTraceTuples = 20000;
constexpr double kArea = 1000.0;

std::vector<Tuple> MakeTrace(size_t tuples_per_segment, double rate) {
  MovingObjectOptions opts;
  opts.num_objects = 10;
  opts.tuple_rate = rate;
  opts.tuples_per_segment = tuples_per_segment;
  opts.area = kArea;  // small area: proximity matches actually occur
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(kTraceTuples);
}

QuerySpec ProximityJoin(size_t tuples_per_segment, double rate) {
  QuerySpec spec;
  const double horizon =
      static_cast<double>(tuples_per_segment) * 10.0 / rate;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", horizon));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kArea / 10.0));
  join.window_seconds = 0.1;  // Fig. 6: window size 0.1 s
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

void BM_TupleNestedLoopsJoin(benchmark::State& state) {
  const double rate = 5000.0;
  const std::vector<Tuple> trace = MakeTrace(100, rate);
  const QuerySpec spec = ProximityJoin(100, rate);
  for (auto _ : state) {
    state.PauseTiming();
    Result<DiscretePlan> plan = BuildDiscretePlan(spec);
    Result<Executor> exec = Executor::Make(std::move(plan->plan));
    exec->set_discard_output(true);
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(exec->PushTuple("objects", t));
    }
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}

void BM_PulseJoin(benchmark::State& state) {
  const size_t tps = static_cast<size_t>(state.range(0));
  const double rate = 5000.0;
  const std::vector<Tuple> trace = MakeTrace(tps, rate);
  const QuerySpec spec = ProximityJoin(tps, rate);
  for (auto _ : state) {
    state.PauseTiming();
    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("left.x", 0.01)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt =
        PredictiveRuntime::Make(spec, std::move(opts));
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(rt->ProcessTuple("objects", t));
    }
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}

BENCHMARK(BM_TupleNestedLoopsJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PulseJoin)
    ->Arg(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(20)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pulse

BENCHMARK_MAIN();
