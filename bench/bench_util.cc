#include "bench_util.h"

#include <algorithm>
#include <cstdio>

namespace pulse::bench {

double MeasureSeconds(const std::function<void()>& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedSeconds();
}

QueueSummary SimulateQueue(uint64_t n, double total_service_seconds,
                           double offered_rate) {
  QueueSummary out;
  if (n == 0 || total_service_seconds <= 0.0 || offered_rate <= 0.0) {
    return out;
  }
  const double service = total_service_seconds / static_cast<double>(n);
  out.capacity_tps = 1.0 / service;
  out.achieved_tps = std::min(offered_rate, out.capacity_tps);
  const double run_seconds = static_cast<double>(n) / offered_rate;
  if (offered_rate <= out.capacity_tps) {
    out.mean_latency_s = service;
    out.final_backlog = 0.0;
    return out;
  }
  // Overloaded D/D/1: the queue grows linearly for the whole run. Tuple i
  // arrives at i/rate and completes at i*service; the mean of the
  // difference over the run is half the final lag.
  const double lag_per_tuple = service - 1.0 / offered_rate;
  out.final_backlog = lag_per_tuple * static_cast<double>(n) * offered_rate;
  out.mean_latency_s =
      service + 0.5 * lag_per_tuple * static_cast<double>(n);
  (void)run_seconds;
  return out;
}

SeriesTable::SeriesTable(std::string title, std::string x_label,
                         std::vector<std::string> series_names)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      series_(std::move(series_names)) {}

void SeriesTable::AddRow(double x, std::vector<double> values) {
  rows_.emplace_back(x, std::move(values));
}

void SeriesTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%18s", x_label_.c_str());
  for (const std::string& s : series_) std::printf("  %18s", s.c_str());
  std::printf("\n");
  for (const auto& [x, values] : rows_) {
    std::printf("%18.4g", x);
    for (double v : values) std::printf("  %18.4g", v);
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace pulse::bench
