file(REMOVE_RECURSE
  "CMakeFiles/pulse_model.dir/model/fitting.cc.o"
  "CMakeFiles/pulse_model.dir/model/fitting.cc.o.d"
  "CMakeFiles/pulse_model.dir/model/piecewise.cc.o"
  "CMakeFiles/pulse_model.dir/model/piecewise.cc.o.d"
  "CMakeFiles/pulse_model.dir/model/segment.cc.o"
  "CMakeFiles/pulse_model.dir/model/segment.cc.o.d"
  "CMakeFiles/pulse_model.dir/model/segment_index.cc.o"
  "CMakeFiles/pulse_model.dir/model/segment_index.cc.o.d"
  "CMakeFiles/pulse_model.dir/model/segmentation.cc.o"
  "CMakeFiles/pulse_model.dir/model/segmentation.cc.o.d"
  "libpulse_model.a"
  "libpulse_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
