#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pulse {

namespace {

SimdLevel Detect() {
#if defined(__aarch64__) || defined(_M_ARM64)
  // NEON is part of the aarch64 baseline.
  return SimdLevel::kNeon;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline.
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel BaseLevel() {
  // Cached on first call: hardware detection plus the PULSE_FORCE_SCALAR
  // environment override, both immutable for the process lifetime.
  static const SimdLevel level = [] {
    const char* force = std::getenv("PULSE_FORCE_SCALAR");
    if (force != nullptr && std::strcmp(force, "1") == 0) {
      return SimdLevel::kScalar;
    }
    return Detect();
  }();
  return level;
}

// -1 encodes "no override"; otherwise the SimdLevel enum value.
std::atomic<int> g_override{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = Detect();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int override_level = g_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<SimdLevel>(override_level);
  return BaseLevel();
}

void SetSimdOverrideForTesting(std::optional<SimdLevel> level) {
  if (!level.has_value()) {
    g_override.store(-1, std::memory_order_relaxed);
    return;
  }
  SimdLevel clamped = *level;
  if (static_cast<int>(clamped) > static_cast<int>(DetectedSimdLevel())) {
    clamped = DetectedSimdLevel();
  }
  g_override.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

}  // namespace pulse
