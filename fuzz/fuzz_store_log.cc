// Fuzz target: the segment-log scanner and checkpoint decoder
// (docs/STORAGE.md) over adversarial bytes — the exact bytes a crashed
// or bit-rotted disk could hand recovery.
//
// Invariants exercised:
//  - ScanLog never crashes and never reports a consistent prefix longer
//    than the input (or shorter than the file header when it parsed
//    records).
//  - Scanning is idempotent: re-encoding the records ScanLog accepted
//    and rescanning yields a clean log with the same record count — the
//    truncate-to-consistent-prefix repair cannot lose or invent records.
//  - DecodeCheckpoint never crashes; a successful decode re-encodes to
//    an image that decodes to the same watermark.
//
// Structure-aware modes (first byte):
//  - 0xFE: the remaining bytes parameterize a syntactically valid log
//    (header + records) with one optional mutation, reaching the CRC
//    and payload-decode branches that raw bytes almost never hit.
//  - 0xFD: remaining bytes are wrapped in a checkpoint header so the
//    payload decoder (not just the magic check) is exercised.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "store/checkpoint.h"
#include "store/log.h"

#include "fuzz_util.h"

namespace {

using pulse::Interval;
using pulse::Polynomial;
using pulse::Result;
using pulse::Segment;
using pulse::Tuple;
using pulse::Value;
using pulse::store::Checkpoint;
using pulse::store::DecodeCheckpoint;
using pulse::store::EncodeCheckpoint;
using pulse::store::EncodeLogHeader;
using pulse::store::EncodeLogRecord;
using pulse::store::LogRecord;
using pulse::store::LogRecordType;
using pulse::store::LogScan;
using pulse::store::LogTailState;
using pulse::store::ScanLog;

void CheckScanInvariants(const std::string& image, const LogScan& scan) {
  if (scan.consistent_bytes > image.size()) std::abort();
  if (scan.scanned_bytes != image.size()) std::abort();
  if (!scan.records.empty() &&
      scan.consistent_bytes < EncodeLogHeader().size()) {
    std::abort();
  }
  if (scan.clean() && scan.consistent_bytes != image.size() &&
      scan.tail == LogTailState::kClean && !scan.records.empty()) {
    std::abort();
  }
  // Idempotence: the accepted prefix re-encodes to a clean log with the
  // same records (the recovery repair loses nothing it accepted).
  std::string repaired = EncodeLogHeader();
  for (const LogRecord& record : scan.records) {
    EncodeLogRecord(record, &repaired);
  }
  LogScan rescan = ScanLog(repaired.data(), repaired.size());
  if (!rescan.clean()) std::abort();
  if (rescan.records.size() != scan.records.size()) std::abort();
}

void DriveScan(const std::string& image) {
  LogScan scan = ScanLog(image.data(), image.size());
  CheckScanInvariants(image, scan);
}

void DriveCheckpoint(const std::string& image) {
  Result<Checkpoint> decoded = DecodeCheckpoint(image.data(), image.size());
  if (!decoded.ok()) return;
  const std::string reencoded = EncodeCheckpoint(*decoded);
  Result<Checkpoint> again =
      DecodeCheckpoint(reencoded.data(), reencoded.size());
  if (!again.ok()) std::abort();
  if (again->log_records != decoded->log_records ||
      again->log_bytes != decoded->log_bytes ||
      again->delivered_outputs != decoded->delivered_outputs ||
      again->output_hash != decoded->output_hash ||
      again->finished != decoded->finished) {
    std::abort();
  }
}

// Builds a well-formed log whose shape (record count, types, attribute
// counts) comes from the fuzz input, then optionally flips one byte.
std::string StructuredLog(pulse::fuzz::FuzzInput& in) {
  std::string image = EncodeLogHeader();
  const uint32_t n = in.TakeBelow(6);
  for (uint32_t i = 0; i < n; ++i) {
    LogRecord record;
    record.stream = i % 2 == 0 ? "s" : "t";
    switch (in.TakeBelow(3)) {
      case 0: {
        record.type = LogRecordType::kTuple;
        record.tuple = Tuple(in.TakeDouble(1e6),
                             {Value(static_cast<int64_t>(in.TakeU32())),
                              Value(in.TakeDouble(1e3))});
        break;
      }
      default: {
        record.type = in.TakeByte() % 2 == 0 ? LogRecordType::kSegment
                                             : LogRecordType::kBackfill;
        Segment seg(static_cast<pulse::Key>(in.TakeBelow(16)),
                    Interval::ClosedOpen(in.TakeDouble(1e3),
                                         in.TakeDouble(1e3)));
        const uint32_t attrs = in.TakeBelow(3);
        for (uint32_t a = 0; a < attrs; ++a) {
          seg.attributes["a" + std::to_string(a)] =
              Polynomial({in.TakeDouble(1e3), in.TakeDouble(10.0)});
        }
        if (in.TakeByte() % 2 == 0) seg.unmodeled["u"] = in.TakeDouble(1.0);
        record.segment = std::move(seg);
        break;
      }
    }
    EncodeLogRecord(record, &image);
  }
  // One optional byte mutation: exercises torn/bad-checksum/bad-payload
  // classification on otherwise-valid images.
  if (!image.empty() && in.TakeByte() % 2 == 0) {
    const size_t pos = in.TakeBelow(static_cast<uint32_t>(image.size()));
    image[pos] = static_cast<char>(image[pos] ^ (1u << in.TakeBelow(8)));
  }
  // Optional truncation: the torn-tail path.
  if (in.TakeByte() % 2 == 0) {
    image.resize(in.TakeBelow(static_cast<uint32_t>(image.size()) + 1));
  }
  return image;
}

std::string CheckpointWrapped(pulse::fuzz::FuzzInput& in) {
  // Magic + version, then attacker bytes as the framed payload.
  Checkpoint ckp;
  ckp.log_records = in.TakeU32();
  std::string valid = EncodeCheckpoint(ckp);
  std::string image = valid.substr(0, 12);  // magic + version
  std::string payload = in.TakeRemainingString();
  image += payload;
  return image;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  pulse::fuzz::FuzzInput in(data, size);
  if (size > 0 && data[0] == 0xFE) {
    in.TakeByte();
    const std::string image = StructuredLog(in);
    DriveScan(image);
    return 0;
  }
  if (size > 0 && data[0] == 0xFD) {
    in.TakeByte();
    const std::string image = CheckpointWrapped(in);
    DriveCheckpoint(image);
    return 0;
  }
  // Raw mode: the same bytes thrown at both decoders.
  const std::string image(reinterpret_cast<const char*>(data), size);
  DriveScan(image);
  DriveCheckpoint(image);
  return 0;
}
