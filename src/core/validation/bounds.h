#ifndef PULSE_CORE_VALIDATION_BOUNDS_H_
#define PULSE_CORE_VALIDATION_BOUNDS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "model/segment.h"
#include "util/result.h"

namespace pulse {

/// User-supplied accuracy bound on a query-output attribute (paper
/// Section IV): Pulse guarantees continuous-time results lie within this
/// range of the discrete-time results. Bounds may be absolute or relative
/// to the result's magnitude (the NYSE experiments use relative bounds,
/// e.g. "1% of the trade's value").
struct BoundSpec {
  std::string attribute;
  double value = 0.0;
  bool relative = false;

  static BoundSpec Absolute(std::string attribute, double value) {
    return BoundSpec{std::move(attribute), value, false};
  }
  static BoundSpec Relative(std::string attribute, double fraction) {
    return BoundSpec{std::move(attribute), fraction, true};
  }

  /// The absolute margin implied for a result near `reference`.
  double MarginFor(double reference) const;
};

/// The bounds actually enforced at a stream's inputs after inversion:
/// a symmetric margin per (key, attribute). Registered margins are
/// conservative — validating |actual - predicted| <= margin at the input
/// guarantees the output bound (two-sided, paper Section IV-C).
///
/// Margin/Within sit on the per-tuple validation hot path, so lookups are
/// allocation-free (transparent string_view comparison).
class BoundRegistry {
 public:
  /// Installs (or tightens) the margin for (key, attribute).
  void Set(Key key, std::string_view attribute, double margin);

  /// Margin for (key, attribute); falls back to the attribute-wide
  /// default (key kAnyKey), then +infinity (unbounded = never violated).
  double Margin(Key key, std::string_view attribute) const;

  /// True when |actual - predicted| is within the registered margin.
  bool Within(Key key, std::string_view attribute, double predicted,
              double actual) const;

  /// Wildcard key for attribute-wide defaults.
  static constexpr Key kAnyKey = -1;

  /// Monotone change counter: bumped by every Set. Hot paths cache
  /// margins and refresh when the version moves.
  uint64_t version() const { return version_; }

  size_t size() const;
  void Clear() { margins_.clear(); }

 private:
  using AttrMargins = std::map<std::string, double, std::less<>>;

  // Returns the margin in `m` for `attribute`, or +infinity.
  static double Find(const AttrMargins& m, std::string_view attribute);

  std::map<Key, AttrMargins> margins_;
  uint64_t version_ = 0;
};

}  // namespace pulse

#endif  // PULSE_CORE_VALIDATION_BOUNDS_H_
