#include "core/operators/join.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pulse {

Key CombineKeys(Key left, Key right) {
  PULSE_CHECK(left >= 0 && left <= 0x7fffffff);
  PULSE_CHECK(right >= 0 && right <= 0x7fffffff);
  return (left << 32) | right;
}

void SplitKeys(Key combined, Key* left, Key* right) {
  *left = combined >> 32;
  *right = combined & 0x7fffffff;
}

AttrResolver MakeBinaryResolver(const Segment& left, const Segment& right) {
  return [&left, &right](const AttrRef& ref) -> Result<Polynomial> {
    const Segment& seg = (ref.side == Side::kLeft) ? left : right;
    return seg.attribute(ref.name);
  };
}

PulseJoin::PulseJoin(std::string name, Predicate predicate,
                     PulseJoinOptions options)
    : PulseOperator(std::move(name)),
      predicate_(std::move(predicate)),
      options_(std::move(options)) {
  PULSE_CHECK(options_.window_seconds > 0.0);
  PULSE_CHECK(!(options_.match_keys && options_.require_distinct_keys));
  CompilePredicate();
}

PulseJoin::SlotRef PulseJoin::SlotRefFor(const AttrRef& ref) {
  std::vector<std::string>& names =
      slot_names_[ref.side == Side::kLeft ? 0 : 1];
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == ref.name) return SlotRef{ref.side, i};
  }
  names.push_back(ref.name);
  return SlotRef{ref.side, names.size() - 1};
}

void PulseJoin::CompilePredicate() {
  if (!predicate_.IsConjunctive()) return;
  // Flatten in AppendSystemRows order: depth-first, children in order.
  auto flatten = [this](auto&& self, const Predicate& p) -> void {
    if (p.kind() == Predicate::Kind::kComparison) {
      const ComparisonTerm& t = p.term();
      CompiledRow row;
      row.kind = t.kind;
      row.op = t.op;
      if (t.kind == ComparisonTerm::Kind::kSimple) {
        row.lhs = SlotRefFor(t.lhs);
        if (t.rhs.kind == Operand::Kind::kAttribute) {
          row.rhs_is_attr = true;
          row.rhs = SlotRefFor(t.rhs.attr);
        } else {
          row.rhs_constant = t.rhs.constant;
        }
      } else {
        row.x1 = SlotRefFor(t.x1);
        row.y1 = SlotRefFor(t.y1);
        row.x2 = SlotRefFor(t.x2);
        row.y2 = SlotRefFor(t.y2);
        row.threshold = t.threshold;
      }
      compiled_rows_.push_back(std::move(row));
      return;
    }
    for (const Predicate& c : p.children()) self(self, c);
  };
  flatten(flatten, predicate_);
  compiled_ = true;
}

PulseJoin::ResolvedAttrs PulseJoin::Resolve(Side side,
                                            const Segment& segment) const {
  ResolvedAttrs r;
  const std::vector<std::string>& names =
      slot_names_[side == Side::kLeft ? 0 : 1];
  r.ptr.reserve(names.size());
  for (const std::string& name : names) {
    auto it = segment.attributes.find(name);
    if (it == segment.attributes.end()) return r;  // complete = false
    r.ptr.push_back(&it->second);
  }
  r.complete = true;
  return r;
}

void PulseJoin::BuildCompiledSystem(const ResolvedAttrs& left,
                                    const ResolvedAttrs& right,
                                    EquationSystem* out) const {
  out->Clear();
  auto poly = [&left, &right](const SlotRef& s) -> const Polynomial& {
    return *(s.side == Side::kLeft ? left : right).ptr[s.slot];
  };
  for (const CompiledRow& row : compiled_rows_) {
    if (row.kind == ComparisonTerm::Kind::kSimple) {
      Polynomial lhs = poly(row.lhs);
      if (row.rhs_is_attr) {
        out->AddRow(
            MakeDifferenceEquation(std::move(lhs), row.op, poly(row.rhs)));
      } else {
        out->AddRow(MakeDifferenceEquation(
            std::move(lhs), row.op, Polynomial::Constant(row.rhs_constant)));
      }
      continue;
    }
    // Distance term, same op sequence as Predicate::BuildRow:
    // (x1-x2)^2 + (y1-y2)^2 - c^2 R 0.
    Polynomial dx = poly(row.x1);
    dx.SubInPlace(poly(row.x2));
    Polynomial dy = poly(row.y1);
    dy.SubInPlace(poly(row.y2));
    Polynomial diff;
    Polynomial::Mul(dx, dx, &diff);
    Polynomial dy2;
    Polynomial::Mul(dy, dy, &dy2);
    diff.AddInPlace(dy2);
    diff.SubInPlace(Polynomial::Constant(row.threshold * row.threshold));
    out->AddRow(DifferenceEquation{std::move(diff), row.op});
  }
}

bool PulseJoin::KeysAdmissible(const Segment& a, const Segment& b) const {
  if (options_.match_keys && a.key != b.key) return false;
  if (options_.require_distinct_keys && a.key == b.key) return false;
  return true;
}

void PulseJoin::Expire(double now) {
  const double horizon = now - options_.window_seconds;
  auto expire_side = [horizon](std::deque<Segment>* side,
                               std::deque<ResolvedAttrs>* resolved) {
    while (!side->empty() && side->front().range.hi < horizon) {
      side->pop_front();
      // Kept in lockstep with the segment deque (empty when the
      // predicate is not compiled).
      if (!resolved->empty()) resolved->pop_front();
    }
  };
  expire_side(&left_, &left_resolved_);
  expire_side(&right_, &right_resolved_);
  if (options_.use_segment_index) {
    left_index_.ExpireBefore(horizon);
    right_index_.ExpireBefore(horizon);
  }
  // The lineage sweep is linear in stored outputs: run it periodically.
  if (now - last_lineage_expire_ > options_.window_seconds / 16.0) {
    lineage_.ExpireBefore(horizon);
    last_lineage_expire_ = now;
  }
}

Segment PulseJoin::MakeJoined(const Segment& left, const Segment& right,
                              const Interval& valid) const {
  Segment out;
  out.key = CombineKeys(left.key, right.key);
  out.range = valid;
  for (const auto& [name, poly] : left.attributes) {
    out.attributes[options_.left_prefix + name] = poly;
  }
  for (const auto& [name, poly] : right.attributes) {
    out.attributes[options_.right_prefix + name] = poly;
  }
  for (const auto& [name, v] : left.unmodeled) {
    out.unmodeled[options_.left_prefix + name] = v;
  }
  for (const auto& [name, v] : right.unmodeled) {
    out.unmodeled[options_.right_prefix + name] = v;
  }
  out.unmodeled[options_.left_prefix + "key"] =
      static_cast<double>(left.key);
  out.unmodeled[options_.right_prefix + "key"] =
      static_cast<double>(right.key);
  return out;
}

Status PulseJoin::MatchPartners(size_t port, const Segment& segment,
                                const std::vector<const Segment*>& partners,
                                const ResolvedAttrs* probe_resolved,
                                const std::deque<ResolvedAttrs>* partner_resolved,
                                SegmentBatch* out) {
  struct Pair {
    const Segment* left;
    const Segment* right;
    const ResolvedAttrs* left_resolved;
    const ResolvedAttrs* right_resolved;
    Interval overlap;
  };
  std::vector<Pair> pairs;
  pairs.reserve(partners.size());
  for (size_t idx = 0; idx < partners.size(); ++idx) {
    const Segment* partner = partners[idx];
    if (!KeysAdmissible(segment, *partner)) continue;
    const ResolvedAttrs* partner_res =
        partner_resolved != nullptr ? &(*partner_resolved)[idx] : nullptr;
    const Segment* left = (port == 0) ? &segment : partner;
    const Segment* right = (port == 0) ? partner : &segment;
    const ResolvedAttrs* lr = (port == 0) ? probe_resolved : partner_res;
    const ResolvedAttrs* rr = (port == 0) ? partner_res : probe_resolved;
    const Interval overlap = left->range.Intersect(right->range);
    if (overlap.IsEmpty()) continue;
    pairs.push_back(Pair{left, right, lr, rr, overlap});
  }
  if (pairs.empty()) return Status::OK();
  metrics_.solves += pairs.size();
  PULSE_SPAN("join/match_partners");

  // Each pair is an independent equation system: fan the solves out
  // across the pool. Conjunctive predicates (the common case) go through
  // the EquationSystem batch API; boolean trees solve the full predicate
  // per pair. Both keep solutions in pair order. Task and solution
  // buffers are operator members reused across pushes (grown, never
  // shrunk), so once warm the fan-out performs no allocation.
  std::vector<IntervalSet>& solutions = solution_scratch_;
  if (predicate_.IsConjunctive()) {
    if (task_scratch_.size() < pairs.size()) {
      task_scratch_.resize(pairs.size());
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      const Pair& p = pairs[i];
      // Compiled fast path when both sides resolved every referenced
      // attribute; resolver path otherwise (identical rows and, when an
      // attribute is missing, identical error statuses).
      if (p.left_resolved != nullptr && p.left_resolved->complete &&
          p.right_resolved != nullptr && p.right_resolved->complete) {
        BuildCompiledSystem(*p.left_resolved, *p.right_resolved,
                            &task_scratch_[i].system);
      } else {
        PULSE_RETURN_IF_ERROR(predicate_.BuildSystemInto(
            MakeBinaryResolver(*p.left, *p.right), &task_scratch_[i].system));
      }
      task_scratch_[i].domain = p.overlap;
    }
    PULSE_RETURN_IF_ERROR(SolveSystemsInto(task_scratch_.data(),
                                           pairs.size(), options_.method,
                                           pool_, solve_cache_, &solutions));
  } else {
    solutions.resize(pairs.size());
    auto solve_one = [&](size_t i) -> Status {
      static thread_local SolveScratch scratch;
      const Pair& p = pairs[i];
      const AttrResolver resolver = MakeBinaryResolver(*p.left, *p.right);
      PULSE_RETURN_IF_ERROR(
          predicate_.SolveInto(resolver, p.overlap, options_.method,
                               &scratch, solve_cache_, &solutions[i]));
      return Status::OK();
    };
    if (pool_ != nullptr && pool_->num_threads() > 1 && pairs.size() > 1) {
      PULSE_RETURN_IF_ERROR(pool_->ParallelFor(pairs.size(), solve_one));
    } else {
      for (size_t i = 0; i < pairs.size(); ++i) {
        PULSE_RETURN_IF_ERROR(solve_one(i));
      }
    }
  }

  // Serial emission in pair order: segment ids, lineage, and output
  // order are identical to the single-threaded engine's.
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (const Interval& iv : solutions[i].intervals()) {
      Segment joined = MakeJoined(*pairs[i].left, *pairs[i].right, iv);
      joined.id = NextSegmentId();
      lineage_.Record(joined.id, iv,
                      {LineageEntry{0, *pairs[i].left},
                       LineageEntry{1, *pairs[i].right}});
      out->push_back(std::move(joined));
      ++metrics_.segments_out;
    }
  }
  return Status::OK();
}

Status PulseJoin::Process(size_t port, const Segment& segment,
                          SegmentBatch* out) {
  PULSE_CHECK(port < 2);
  ++metrics_.segments_in;
  latest_time_ = std::max(latest_time_, segment.range.lo);
  Expire(latest_time_);
  if (options_.use_segment_index) {
    // Indexed probing (future-work extension): only partner segments
    // overlapping the newcomer's range are examined. The index owns its
    // own segment storage, so no resolved tables exist for it — pairs
    // build through the resolver path.
    const SegmentIndex& partners =
        (port == 0) ? right_index_ : left_index_;
    std::vector<const Segment*> overlaps;
    if (options_.match_keys) {
      partners.QueryOverlapsWithKey(segment.range, segment.key, &overlaps);
    } else {
      partners.QueryOverlaps(segment.range, &overlaps);
    }
    PULSE_RETURN_IF_ERROR(MatchPartners(port, segment, overlaps,
                                        /*probe_resolved=*/nullptr,
                                        /*partner_resolved=*/nullptr, out));
    if (port == 0) {
      left_index_.Insert(segment);
    } else {
      right_index_.Insert(segment);
    }
    metrics_.state_size = left_index_.size() + right_index_.size();
    return Status::OK();
  }
  const std::deque<Segment>& partners = (port == 0) ? right_ : left_;
  std::vector<const Segment*> candidates;
  candidates.reserve(partners.size());
  for (const Segment& partner : partners) candidates.push_back(&partner);
  ResolvedAttrs probe_resolved;
  const ResolvedAttrs* probe = nullptr;
  const std::deque<ResolvedAttrs>* partner_resolved = nullptr;
  if (compiled_) {
    probe_resolved =
        Resolve(port == 0 ? Side::kLeft : Side::kRight, segment);
    probe = &probe_resolved;
    partner_resolved = (port == 0) ? &right_resolved_ : &left_resolved_;
  }
  PULSE_RETURN_IF_ERROR(
      MatchPartners(port, segment, candidates, probe, partner_resolved, out));
  if (port == 0) {
    left_.push_back(segment);
    // Resolve against the stored copy: its attribute-map nodes are the
    // ones the pointer table must outlive-match.
    if (compiled_) {
      left_resolved_.push_back(Resolve(Side::kLeft, left_.back()));
    }
  } else {
    right_.push_back(segment);
    if (compiled_) {
      right_resolved_.push_back(Resolve(Side::kRight, right_.back()));
    }
  }
  metrics_.state_size = left_.size() + right_.size();
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseJoin::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  // Bound translation: strip the side prefix to find the input attribute
  // the output column aliases (Section IV-B, "bound translations").
  std::set<std::pair<size_t, std::string>> deps;
  if (attribute.rfind(options_.left_prefix, 0) == 0) {
    deps.emplace(0, attribute.substr(options_.left_prefix.size()));
  } else if (attribute.rfind(options_.right_prefix, 0) == 0) {
    deps.emplace(1, attribute.substr(options_.right_prefix.size()));
  } else {
    return Status::InvalidArgument("join output attribute '" + attribute +
                                   "' lacks a side prefix");
  }
  // Inferences: every predicate attribute constrains the result.
  std::vector<AttrRef> refs;
  predicate_.CollectAttributes(&refs);
  for (const AttrRef& ref : refs) {
    deps.emplace(ref.side == Side::kLeft ? 0 : 1, ref.name);
  }

  std::vector<AllocatedBound> out;
  for (const auto& [port, input_attr] : deps) {
    std::vector<const Segment*> inputs;
    std::vector<const LineageEntry*> entries;
    for (const LineageEntry& e : *causes) {
      if (e.port == port) {
        inputs.push_back(&e.input);
        entries.push_back(&e);
      }
    }
    if (inputs.empty()) continue;
    SplitContext ctx;
    ctx.output = &output;
    ctx.attribute = attribute;
    ctx.margin = margin;
    ctx.inputs = inputs;
    ctx.input_attribute = input_attr;
    ctx.num_dependencies = deps.size();
    PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                           split.Apportion(ctx));
    for (size_t i = 0; i < allocs.size(); ++i) {
      allocs[i].port = entries[i]->port;
      allocs[i].segment_id = entries[i]->input.id;
      out.push_back(std::move(allocs[i]));
    }
  }
  return out;
}

Result<double> PulseJoin::ComputeSlack(size_t port,
                                       const Segment& segment) const {
  if (!predicate_.IsConjunctive()) return 0.0;
  double slack = std::numeric_limits<double>::infinity();
  const std::deque<Segment>& partners = (port == 0) ? right_ : left_;
  for (const Segment& partner : partners) {
    if (!KeysAdmissible(segment, partner)) continue;
    const Interval overlap = segment.range.Intersect(partner.range);
    if (overlap.IsEmpty()) continue;
    const Segment& l = (port == 0) ? segment : partner;
    const Segment& r = (port == 0) ? partner : segment;
    const AttrResolver resolver = MakeBinaryResolver(l, r);
    PULSE_ASSIGN_OR_RETURN(EquationSystem system,
                           predicate_.BuildSystem(resolver));
    slack = std::min(slack, system.Slack(overlap));
  }
  return slack;
}

}  // namespace pulse
