// Exercises the solver thread pool: ParallelFor coverage, exception and
// Status propagation, nesting, and the end-to-end determinism guarantee —
// parallel and serial equation-system solving produce identical interval
// sets (docs/CONCURRENCY.md).
#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/equation_system.h"
#include "core/operators/join.h"
#include "core/predicate.h"
#include "math/interval_set.h"
#include "math/polynomial.h"
#include "util/rng.h"

namespace pulse {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  Status st = pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GT(pool.tasks_spawned(), 0u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  size_t sum = 0;  // no synchronization: everything runs on this thread
  Status st = pool.ParallelFor(100, [&](size_t i) {
    sum += i;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sum, 4950u);
  EXPECT_EQ(pool.tasks_spawned(), 0u);
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(0, [&](size_t) {
    ADD_FAILURE() << "body must not run";
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
}

TEST(ThreadPoolTest, ParallelForPropagatesStatusErrors) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(1000, [&](size_t i) {
    if (i == 137) return Status::NumericError("diverged at 137");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kNumericError);
  EXPECT_NE(st.message().find("137"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForConvertsExceptionsToStatus) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(64, [&](size_t i) -> Status {
    if (i == 7) throw std::runtime_error("boom");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndReturnsStatus) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::future<Status> fut = pool.Submit([&] {
    ran.store(true);
    return Status::OK();
  });
  EXPECT_TRUE(fut.get().ok());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, SubmitConvertsExceptionsToStatus) {
  ThreadPool pool(2);
  std::future<Status> fut =
      pool.Submit([]() -> Status { throw std::logic_error("bad task"); });
  Status st = fut.get();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("bad task"), std::string::npos);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  Status st = pool.ParallelFor(4, [&](size_t) {
    return pool.ParallelFor(16, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCpuAndWallClock) {
  ThreadPool pool(2);
  ASSERT_TRUE(
      pool.ParallelFor(32, [](size_t) { return Status::OK(); }).ok());
  EXPECT_GT(pool.parallel_cpu_ns(), 0u);
  EXPECT_GT(pool.parallel_wall_ns(), 0u);
  EXPECT_LE(pool.parallel_wall_ns(), pool.parallel_cpu_ns());
}

// Regression for the parallel_solve_ns accounting bug: the old single
// counter summed each ParallelFor call's full span, so nested fan-outs
// (a pool task issuing its own ParallelFor) made the figure exceed wall
// time. The split reports both: cpu_ns keeps the per-call sum, wall_ns
// tracks the union of busy intervals, and wall <= cpu must hold under
// any schedule — nested, concurrent, or serial.
TEST(ThreadPoolTest, NestedParallelForWallDoesNotExceedCpu) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  Status st = pool.ParallelFor(4, [&](size_t) {
    return pool.ParallelFor(8, [&](size_t) {
      // Enough work per leaf that the nested spans measurably overlap.
      volatile double x = 1.0;
      for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
      total.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(total.load(), 32);
  EXPECT_GT(pool.parallel_wall_ns(), 0u);
  EXPECT_LE(pool.parallel_wall_ns(), pool.parallel_cpu_ns());
}

// Concurrent ParallelFor calls from independent threads: the per-call
// sum double-counts the overlap, the wall union must not.
TEST(ThreadPoolTest, ConcurrentParallelForWallDoesNotExceedCpu) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  auto issue = [&]() {
    return pool.ParallelFor(16, [&](size_t) {
      volatile double x = 1.0;
      for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
      total.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  };
  std::thread other([&] { ASSERT_TRUE(issue().ok()); });
  ASSERT_TRUE(issue().ok());
  other.join();
  EXPECT_EQ(total.load(), 32);
  EXPECT_LE(pool.parallel_wall_ns(), pool.parallel_cpu_ns());
}

// --- Determinism: the acceptance property of the parallel runtime. ---

Polynomial RandomPolynomial(Rng* rng, size_t degree) {
  std::vector<double> coeffs(degree + 1);
  for (double& c : coeffs) c = rng->Uniform(-5.0, 5.0);
  return Polynomial(std::move(coeffs));
}

// 100 random piecewise inputs: each task is an equation system built
// from random difference polynomials (the per-piece system an operator
// instantiates), solved over that piece's time range.
std::vector<EquationSystemTask> RandomSystems(uint64_t seed) {
  Rng rng(seed);
  std::vector<EquationSystemTask> tasks;
  tasks.reserve(100);
  constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                            CmpOp::kNe, CmpOp::kGe, CmpOp::kGt};
  for (int k = 0; k < 100; ++k) {
    EquationSystem system;
    const int rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int r = 0; r < rows; ++r) {
      const size_t degree = static_cast<size_t>(rng.UniformInt(1, 4));
      const CmpOp op = kOps[rng.UniformInt(0, 5)];
      system.AddRow(DifferenceEquation{RandomPolynomial(&rng, degree), op});
    }
    const double lo = rng.Uniform(0.0, 5.0);
    tasks.push_back(EquationSystemTask{
        std::move(system),
        Interval::ClosedOpen(lo, lo + rng.Uniform(0.5, 10.0))});
  }
  return tasks;
}

TEST(ParallelSolveDeterminismTest, MatchesSerialOn100RandomPiecewiseInputs) {
  SCOPED_TRACE("replay: RandomSystems(20260807)");
  const std::vector<EquationSystemTask> tasks = RandomSystems(20260807);

  Result<std::vector<IntervalSet>> serial =
      SolveSystems(tasks, RootMethod::kAuto, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status();

  ThreadPool pool(4);
  Result<std::vector<IntervalSet>> parallel =
      SolveSystems(tasks, RootMethod::kAuto, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i], (*parallel)[i])
        << "task " << i << ": serial=" << (*serial)[i].ToString()
        << " parallel=" << (*parallel)[i].ToString();
  }
}

// Same property one layer up: a pool-equipped PulseJoin must emit the
// same output segments (ranges, keys, models) as the serial join, in the
// same order. Engine-assigned segment ids are excluded — they come from
// a global counter shared by both operators under test.
TEST(ParallelSolveDeterminismTest, ParallelJoinEmitsIdenticalSegments) {
  auto make_join = [] {
    PulseJoinOptions options;
    options.window_seconds = 100.0;
    options.require_distinct_keys = true;
    return PulseJoin(
        "join",
        Predicate::Comparison(ComparisonTerm::Distance2(
            AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
            AttrRef::Right("y"), CmpOp::kLt, 40.0)),
        options);
  };
  PulseJoin serial_join = make_join();
  PulseJoin parallel_join = make_join();
  ThreadPool pool(4);
  parallel_join.set_thread_pool(&pool);

  SCOPED_TRACE("replay: Rng(7) join workload");
  Rng rng(7);
  std::vector<Segment> inputs;
  for (int i = 0; i < 60; ++i) {
    Segment s;
    s.key = i % 6;
    const double t0 = rng.Uniform(0.0, 20.0);
    s.range = Interval::ClosedOpen(t0, t0 + rng.Uniform(1.0, 4.0));
    s.set_attribute("x", RandomPolynomial(&rng, 1));
    s.set_attribute("y", RandomPolynomial(&rng, 1));
    inputs.push_back(std::move(s));
  }

  SegmentBatch serial_out;
  SegmentBatch parallel_out;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const size_t port = i % 2;
    ASSERT_TRUE(serial_join.Process(port, inputs[i], &serial_out).ok());
    ASSERT_TRUE(parallel_join.Process(port, inputs[i], &parallel_out).ok());
  }

  ASSERT_GT(serial_out.size(), 0u) << "workload produced no joins";
  ASSERT_EQ(serial_out.size(), parallel_out.size());
  for (size_t i = 0; i < serial_out.size(); ++i) {
    const Segment& a = serial_out[i];
    const Segment& b = parallel_out[i];
    EXPECT_EQ(a.key, b.key) << "segment " << i;
    EXPECT_EQ(a.range, b.range) << "segment " << i;
    EXPECT_EQ(a.attributes, b.attributes) << "segment " << i;
    EXPECT_EQ(a.unmodeled, b.unmodeled) << "segment " << i;
  }
  EXPECT_EQ(serial_join.metrics().solves, parallel_join.metrics().solves);
}

}  // namespace
}  // namespace pulse
