file(REMOVE_RECURSE
  "CMakeFiles/pulse_aggregate_test.dir/pulse_aggregate_test.cc.o"
  "CMakeFiles/pulse_aggregate_test.dir/pulse_aggregate_test.cc.o.d"
  "pulse_aggregate_test"
  "pulse_aggregate_test.pdb"
  "pulse_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
