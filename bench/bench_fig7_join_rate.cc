// Reproduces paper Fig. 7ii: join processing cost vs stream rate
// (100-900 tup/s, window 0.1 s, 1% threshold).
//
// Paper shape: the tuple-based nested-loops join's cost grows
// quadratically with the stream rate (each arrival probes a buffer whose
// population is proportional to the rate); Pulse's cost stays low —
// validation is linear in the number of model coefficients.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr double kArea = 1000.0;

std::vector<Tuple> MakeTrace(double rate, double duration_s) {
  MovingObjectOptions opts;
  opts.num_objects = 10;
  opts.tuple_rate = rate;
  opts.tuples_per_segment = 100;
  opts.area = kArea;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(
      static_cast<size_t>(rate * duration_s));
}

QuerySpec ProximityJoin(double rate) {
  QuerySpec spec;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", 100.0 * 10 / rate));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kArea / 10.0));
  join.window_seconds = 0.1;  // Fig. 6: window size 0.1 s
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  const double kDuration = 60.0;
  std::printf("Fig 7ii reproduction: %g s of stream per rate\n", kDuration);

  bench::SeriesTable table(
      "Fig 7ii: join processing cost vs stream rate (window 0.1 s)",
      "rate_tps",
      {"tuple_cost_s", "pulse_cost_s", "tuple_comparisons"});

  for (double rate = 100.0; rate <= 900.0; rate += 200.0) {
    const std::vector<Tuple> trace = MakeTrace(rate, kDuration);
    const QuerySpec spec = ProximityJoin(rate);

    Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
    Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
    dexec->set_discard_output(true);
    const double tuple_cost = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) {
        (void)dexec->PushTuple("objects", t);
      }
    });
    uint64_t comparisons = 0;
    for (size_t n = 0; n < dexec->plan().num_nodes(); ++n) {
      comparisons += dexec->plan().node(n)->metrics().comparisons;
    }

    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("left.x", 0.01)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt =
        PredictiveRuntime::Make(spec, std::move(opts));
    const double pulse_cost = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) {
        (void)rt->ProcessTuple("objects", t);
      }
    });

    table.AddRow(rate, {tuple_cost, pulse_cost,
                        static_cast<double>(comparisons)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): tuple cost (and its comparison count) "
      "grows quadratically with rate;\npulse cost remains significantly "
      "lower and near-flat.\n");
  return 0;
}
