# Empty dependencies file for engine_operator_test.
# This may be replaced when dependencies are built.
