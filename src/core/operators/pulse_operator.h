#ifndef PULSE_CORE_OPERATORS_PULSE_OPERATOR_H_
#define PULSE_CORE_OPERATORS_PULSE_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/validation/lineage.h"
#include "core/validation/splits.h"
#include "model/segment.h"
#include "obs/op_metrics.h"
#include "util/atomic_counter.h"
#include "util/result.h"
#include "util/status.h"

namespace pulse {

class SolveCache;
class ThreadPool;

/// Base class of continuous-time operators. Each operator is a closed
/// equation system: it consumes segments and produces segments, so
/// segments are the plan's first-class datatype (paper Section III-C).
/// Update segments drive execution: arrival of a segment triggers
/// instantiation and solving of the operator's system.
class PulseOperator {
 public:
  explicit PulseOperator(std::string name) : name_(std::move(name)) {}
  virtual ~PulseOperator() = default;

  PulseOperator(const PulseOperator&) = delete;
  PulseOperator& operator=(const PulseOperator&) = delete;

  const std::string& name() const { return name_; }

  virtual size_t num_inputs() const { return 1; }

  /// Consumes one segment on `port`; appends output segments to `out`.
  virtual Status Process(size_t port, const Segment& segment,
                         SegmentBatch* out) = 0;

  /// End-of-stream: emit residual state (e.g. pending window functions).
  virtual Status Flush(SegmentBatch* out);

  /// Local bound inversion (paper Section IV-B): given an output segment
  /// this operator produced and a symmetric margin on one of its output
  /// attributes, apportion conservative margins onto the causing input
  /// segments (identified through lineage) using `split`. The default
  /// implementation fails with Unimplemented.
  virtual Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const;

  PulseOperatorMetrics& metrics() { return metrics_; }
  const PulseOperatorMetrics& metrics() const { return metrics_; }

  /// Installs the solver thread pool (nullptr = serial, the default).
  /// Operators with independent work units — join partner matching,
  /// group-by flush — fan out across it; all others ignore it. The pool
  /// must outlive the operator's last Process/Flush call.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Installs the shared solve cache (nullptr = uncached, the default).
  /// Selective operators — filter, join, group-by children — memoize
  /// per-row comparison solves through it. The cache must outlive the
  /// operator's last Process/Flush call. Virtual so containers (group-by)
  /// can forward the cache to operators they own.
  virtual void set_solve_cache(SolveCache* cache) { solve_cache_ = cache; }
  SolveCache* solve_cache() const { return solve_cache_; }

  /// Lineage recorded by this operator (outputs -> causing inputs), used
  /// by query inversion.
  LineageStore& lineage() { return lineage_; }
  const LineageStore& lineage() const { return lineage_; }

 protected:
  PulseOperatorMetrics metrics_;
  LineageStore lineage_;
  ThreadPool* pool_ = nullptr;
  SolveCache* solve_cache_ = nullptr;

 private:
  std::string name_;
};

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_PULSE_OPERATOR_H_
