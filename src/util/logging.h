#ifndef PULSE_UTIL_LOGGING_H_
#define PULSE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pulse {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level emitted by PULSE_LOG. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Used via PULSE_LOG only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pulse

/// PULSE_LOG(INFO) << "message"; levels: DEBUG, INFO, WARNING, ERROR.
#define PULSE_LOG(level)                                              \
  ::pulse::internal::LogMessage(::pulse::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

/// Invariant check active in all build types. Aborts with location info.
#define PULSE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pulse::internal::CheckFailed(#cond, __FILE__, __LINE__);            \
    }                                                                       \
  } while (false)

namespace pulse::internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace pulse::internal

#endif  // PULSE_UTIL_LOGGING_H_
