#include "shard/shard_router.h"

namespace pulse {
namespace shard {

uint64_t ShardKeyHash(Key key) {
  // splitmix64 finalizer (Steele et al.), constants pinned forever —
  // see the header contract. Keys are int64 entity ids; the cast is a
  // bit reinterpretation, so negative keys hash fine.
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShardRouter::ShardRouter(size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {}

size_t ShardRouter::ShardOf(Key key) const {
  if (num_shards_ == 1) return 0;
  // Lemire multiply-shift: maps the 64-bit hash to [0, num_shards)
  // without modulo bias and without a division on the per-tuple path.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(ShardKeyHash(key)) *
      static_cast<unsigned __int128>(num_shards_);
  return static_cast<size_t>(wide >> 64);
}

PartitionAnalysis AnalyzePartitionability(const QuerySpec& spec) {
  PartitionAnalysis analysis;
  for (const QuerySpec::Node& node : spec.nodes()) {
    switch (node.kind) {
      case QuerySpec::OpKind::kFilter:
      case QuerySpec::OpKind::kMap:
      case QuerySpec::OpKind::kEpoch:
        // Stateless per segment: any partition works.
        break;
      case QuerySpec::OpKind::kDistinct:
        // Per-epoch dedup keeps one epoch index per key; a key-hash
        // partition keeps every key's state on one shard.
        break;
      case QuerySpec::OpKind::kJoin:
        if (!node.join->match_keys) {
          analysis.reason = "join '" + node.name +
                            "' matches across keys (no key equi-join)";
          return analysis;
        }
        if (node.join->require_distinct_keys) {
          // key-matched + distinct-keys is a contradiction the join
          // resolves by comparing across keys; its state is global.
          analysis.reason = "join '" + node.name +
                            "' requires distinct keys (cross-key state)";
          return analysis;
        }
        break;
      case QuerySpec::OpKind::kAggregate:
        if (!node.aggregate->per_key) {
          analysis.reason = "aggregate '" + node.name +
                            "' folds across keys (no GROUP BY key)";
          return analysis;
        }
        break;
    }
  }
  analysis.partitionable = true;
  return analysis;
}

}  // namespace shard
}  // namespace pulse
