# Empty dependencies file for engine_aggregate_test.
# This may be replaced when dependencies are built.
