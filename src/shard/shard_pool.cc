#include "shard/shard_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace pulse {
namespace shard {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------
// ShardPool

Result<std::unique_ptr<ShardPool>> ShardPool::Make(const QuerySpec& spec,
                                                   ShardPoolOptions options) {
  auto pool = std::unique_ptr<ShardPool>(new ShardPool());
  pool->spec_ = spec;
  pool->options_ = std::move(options);
  if (pool->options_.num_shards == 0) pool->options_.num_shards = 1;
  if (pool->options_.exchange_capacity == 0) {
    pool->options_.exchange_capacity = 1;
  }
  pool->partition_ = AnalyzePartitionability(spec);
  // A non-partitionable plan degrades to one engine shard (all keys ->
  // shard 0); worker threads beyond the first would sit idle.
  const size_t effective =
      pool->partition_.partitionable ? pool->options_.num_shards : 1;
  pool->router_ = ShardRouter(effective);

  for (const auto& [name, stream] : spec.streams()) {
    PULSE_ASSIGN_OR_RETURN(size_t key_index,
                           stream.schema->IndexOf(stream.key_field));
    pool->stream_names_.push_back(name);
    pool->stream_key_index_.push_back(key_index);
  }

  if (pool->options_.metrics != nullptr) {
    pool->metrics_ = pool->options_.metrics;
  } else {
    pool->owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    pool->metrics_ = pool->owned_metrics_.get();
  }

  // Cross-client cache sharing is only sound with exact keys: a
  // quantized hit may replay a *nearby* system's solution, and leaking
  // those across clients would make one client's answers depend on
  // another's traffic.
  const bool share_cache =
      pool->options_.runtime.solve_cache.has_value() &&
      pool->options_.runtime.solve_cache->quantum == 0.0 &&
      pool->options_.runtime.shared_solve_cache == nullptr;

  for (size_t i = 0; i < effective; ++i) {
    auto s = std::make_unique<Shard>();
    s->queue = std::make_unique<serve::IngestQueue>(
        pool->options_.exchange_capacity, &s->signal);
    s->registry = std::make_unique<obs::MetricsRegistry>();
    if (share_cache) {
      s->cache =
          std::make_unique<SolveCache>(*pool->options_.runtime.solve_cache);
    }
    pool->shards_.push_back(std::move(s));
  }
  for (size_t i = 0; i < pool->shards_.size(); ++i) {
    pool->shards_[i]->worker =
        std::thread([raw = pool.get(), i] { raw->WorkerLoop(i); });
  }
  return pool;
}

ShardPool::~ShardPool() { Shutdown(); }

void ShardPool::Shutdown() {
  if (shutdown_.exchange(true)) {
    for (auto& s : shards_) {
      if (s->worker.joinable()) s->worker.join();
    }
    return;
  }
  for (auto& s : shards_) {
    s->queue->Close();
    s->signal.Notify();
  }
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
}

obs::MetricsRegistry* ShardPool::shard_metrics(size_t i) const {
  return i < shards_.size() ? shards_[i]->registry.get() : nullptr;
}

Result<std::unique_ptr<ShardClient>> ShardPool::AddClient() {
  if (shutdown_.load()) {
    return Status::FailedPrecondition("shard pool is shut down");
  }
  auto state = std::make_shared<ClientState>();
  state->finish_outputs.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    HistoricalRuntime::Options rt = options_.runtime;
    rt.metrics = shards_[i]->registry.get();
    if (shards_[i]->cache != nullptr) {
      rt.shared_solve_cache = shards_[i]->cache.get();
    }
    PULSE_ASSIGN_OR_RETURN(HistoricalRuntime runtime,
                           HistoricalRuntime::Make(spec_, std::move(rt)));
    state->runtimes.push_back(
        std::make_unique<HistoricalRuntime>(std::move(runtime)));
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    state->id = next_client_id_++;
    clients_.emplace(state->id, state);
  }
  return std::unique_ptr<ShardClient>(new ShardClient(this, state));
}

std::shared_ptr<ShardPool::ClientState> ShardPool::FindClient(uint64_t id) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second;
}

void ShardPool::RemoveClient(uint64_t id) {
  std::shared_ptr<ClientState> state;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    state = std::move(it->second);
    clients_.erase(it);
  }
  // `state` (and its runtimes) dies here unless a worker still holds a
  // reference mid-dispatch, in which case the worker's release frees it.
}

void ShardPool::ReleaseLocked(ClientState* state) {
  while (!state->pending.empty() &&
         state->pending.begin()->first == state->released_seq) {
    Completion& c = state->pending.begin()->second;
    state->ready.insert(state->ready.end(),
                        std::make_move_iterator(c.outputs.begin()),
                        std::make_move_iterator(c.outputs.end()));
    state->released_seq += c.count;
    state->pending.erase(state->pending.begin());
  }
}

void ShardPool::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    const uint64_t epoch = shard.signal.epoch();
    serve::IngestItem item;
    if (!shard.queue->Pop(&item)) {
      if (shard.queue->closed()) break;
      shard.signal.Wait(epoch);
      continue;
    }
    Dispatch(shard_index, std::move(item));
  }
}

void ShardPool::Dispatch(size_t shard_index, serve::IngestItem item) {
  std::shared_ptr<ClientState> client = FindClient(item.client);
  if (client == nullptr) return;  // client gone: drop
  HistoricalRuntime* runtime = client->runtimes[shard_index].get();

  if (item.is_finish) {
    Status status;
    std::vector<Segment> outputs;
    if (!client->aborted.load()) {
      status = runtime->Finish();
      if (status.ok()) outputs = runtime->TakeOutputSegments();
    }
    std::lock_guard<std::mutex> lock(client->mu);
    if (!status.ok() && client->error.empty()) {
      client->error = status.ToString();
    }
    client->finish_outputs[shard_index] = std::move(outputs);
    --client->finish_remaining;
    client->cv.notify_all();
    return;
  }

  Status status;
  std::vector<Segment> outputs;
  if (!client->aborted.load()) {
    const std::string& stream = stream_names_[item.stream];
    if (item.is_segment) {
      status = runtime->ProcessSegment(stream, std::move(item.segment));
    } else {
      status = runtime->ProcessTuple(stream, item.tuple);
    }
    if (status.ok()) outputs = runtime->TakeOutputSegments();
  }
  std::lock_guard<std::mutex> lock(client->mu);
  if (!status.ok()) {
    if (client->error.empty()) client->error = status.ToString();
    client->aborted.store(true);
  }
  client->pending.emplace(item.seq, Completion{1, std::move(outputs)});
  ReleaseLocked(client.get());
  client->cv.notify_all();
}

void ShardPool::SyncMetrics(bool force) {
  if constexpr (!obs::kMetricsEnabled) return;
  const uint64_t now = NowNs();
  uint64_t last = last_sync_ns_.load(std::memory_order_relaxed);
  if (!force && now - last < options_.metrics_sync_interval_ns) return;
  if (!last_sync_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    if (!force) return;  // another caller is refreshing right now
  }
  std::lock_guard<std::mutex> lock(sync_mu_);
  std::vector<const obs::MetricsRegistry*> sources;
  sources.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->registry->MirrorInto(metrics_,
                                     "shard/" + std::to_string(i) + "/");
    sources.push_back(shards_[i]->registry.get());
  }
  obs::MetricsRegistry::Rollup(sources, metrics_);
}

// ---------------------------------------------------------------------
// ShardClient

ShardClient::~ShardClient() {
  Abort();
  if (pool_ != nullptr) pool_->RemoveClient(state_->id);
}

void ShardClient::Abort() { state_->aborted.store(true); }

Status ShardClient::ResolveStream(const std::string& stream,
                                  uint32_t* index) {
  if (memo_valid_ && memo_stream_ == stream) {
    *index = memo_index_;
    return Status::OK();
  }
  const auto& names = pool_->stream_names_;
  const auto it = std::lower_bound(names.begin(), names.end(), stream);
  if (it == names.end() || *it != stream) {
    return Status::NotFound("stream '" + stream + "' not declared");
  }
  memo_stream_ = stream;
  memo_index_ = static_cast<uint32_t>(it - names.begin());
  memo_valid_ = true;
  *index = memo_index_;
  return Status::OK();
}

Status ShardClient::Route(size_t shard_index, serve::IngestItem item) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->error.empty()) {
      return Status::Internal("shard worker failed: " + state_->error);
    }
  }
  serve::IngestQueue& queue = *pool_->shards_[shard_index]->queue;
  uint64_t dropped = 0;
  const serve::PushResult result =
      queue.TryPush(&item, serve::BackpressurePolicy::kBlock, &dropped);
  switch (result) {
    case serve::PushResult::kAccepted:
      return Status::OK();
    case serve::PushResult::kClosed:
      return Status::FailedPrecondition("shard pool is shut down");
    case serve::PushResult::kWouldBlock:
      break;
    default:
      return Status::Internal("unexpected exchange push result");
  }
  if (queue.PushBlocking(std::move(item), nullptr)) return Status::OK();
  return Status::FailedPrecondition("shard pool is shut down");
}

Status ShardClient::ProcessTuple(const std::string& stream,
                                 const Tuple& tuple) {
  return ProcessTuples(stream, &tuple, 1);
}

Status ShardClient::ProcessTuples(const std::string& stream,
                                  const Tuple* tuples, size_t n) {
  if (finished_) {
    return Status::FailedPrecondition("client already finished");
  }
  uint32_t index = 0;
  PULSE_RETURN_IF_ERROR(ResolveStream(stream, &index));
  const size_t key_index = pool_->stream_key_index_[index];
  for (size_t i = 0; i < n; ++i) {
    if (key_index >= tuples[i].values.size()) {
      return Status::InvalidArgument("tuple missing key field");
    }
    const Key key = tuples[i].at(key_index).as_int64();
    serve::IngestItem item;
    item.seq = next_seq_++;
    item.client = state_->id;
    item.stream = index;
    item.tuple = tuples[i];
    PULSE_RETURN_IF_ERROR(
        Route(pool_->router_.ShardOf(key), std::move(item)));
  }
  return Status::OK();
}

Status ShardClient::ProcessSegment(const std::string& stream,
                                   Segment segment) {
  if (finished_) {
    return Status::FailedPrecondition("client already finished");
  }
  uint32_t index = 0;
  PULSE_RETURN_IF_ERROR(ResolveStream(stream, &index));
  const Key key = segment.key;
  serve::IngestItem item;
  item.seq = next_seq_++;
  item.client = state_->id;
  item.stream = index;
  item.is_segment = true;
  item.segment = std::move(segment);
  return Route(pool_->router_.ShardOf(key), std::move(item));
}

Status ShardClient::Barrier() {
  std::unique_lock<std::mutex> lock(state_->mu);
  // Workers emplace a completion for every data seq — even for aborted
  // clients — so released_seq always catches up to next_seq_ and the
  // wait cannot hang.
  state_->cv.wait(lock, [&] {
    return state_->released_seq >= next_seq_ || !state_->error.empty();
  });
  return state_->error.empty()
             ? Status::OK()
             : Status::Internal("shard worker failed: " + state_->error);
}

Status ShardClient::Finish() {
  if (finished_) {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->error.empty()
               ? Status::OK()
               : Status::Internal("shard worker failed: " + state_->error);
  }
  finished_ = true;
  const size_t shards = pool_->shards_.size();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->finish_remaining = shards;
  }
  for (size_t s = 0; s < shards; ++s) {
    serve::IngestItem item;
    item.seq = ~uint64_t{0};  // sentinels are outside the data seq space
    item.client = state_->id;
    item.is_finish = true;
    PULSE_RETURN_IF_ERROR(Route(s, std::move(item)));
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->finish_remaining == 0; });
  // Every data item of this client was dispatched before its shard's
  // sentinel (FIFO per exchange queue), so the data merge is complete.
  // Canonical finish merge: concatenate per-shard finish tails, then
  // the same stable key sort the serial Finish applies. Each key lives
  // on exactly one shard, so same-key relative order is the shard's ==
  // the serial runtime's, and the sort makes cross-key order identical.
  std::vector<Segment> finish;
  for (std::vector<Segment>& part : state_->finish_outputs) {
    finish.insert(finish.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    part.clear();
  }
  std::stable_sort(
      finish.begin(), finish.end(),
      [](const Segment& a, const Segment& b) { return a.key < b.key; });
  state_->ready.insert(state_->ready.end(),
                       std::make_move_iterator(finish.begin()),
                       std::make_move_iterator(finish.end()));
  if (!state_->error.empty()) {
    return Status::Internal("shard worker failed: " + state_->error);
  }
  return Status::OK();
}

std::vector<Segment> ShardClient::TakeOutputSegments() {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<Segment> out = std::move(state_->ready);
  state_->ready.clear();
  return out;
}

RuntimeStats ShardClient::stats() const {
  RuntimeStats sum;
  for (const auto& runtime : state_->runtimes) {
    const RuntimeStats s = runtime->stats();
    sum.tuples_in += s.tuples_in;
    sum.tuples_validated += s.tuples_validated;
    sum.violations += s.violations;
    sum.segments_pushed += s.segments_pushed;
    sum.output_segments += s.output_segments;
    sum.output_tuples += s.output_tuples;
    sum.inversions += s.inversions;
    sum.tasks_spawned += s.tasks_spawned;
    sum.parallel_solve_cpu_ns += s.parallel_solve_cpu_ns;
    sum.parallel_solve_wall_ns += s.parallel_solve_wall_ns;
    sum.solve_cache_hits += s.solve_cache_hits;
    sum.solve_cache_misses += s.solve_cache_misses;
    sum.solve_cache_lookups += s.solve_cache_lookups;
    sum.solve_cache_uncacheable += s.solve_cache_uncacheable;
  }
  return sum;
}

}  // namespace shard
}  // namespace pulse
