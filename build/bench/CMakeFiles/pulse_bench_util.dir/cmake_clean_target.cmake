file(REMOVE_RECURSE
  "libpulse_bench_util.a"
)
