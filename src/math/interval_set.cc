#include "math/interval_set.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace pulse {

namespace {

// Orders lower endpoints; at equal values a closed endpoint precedes an
// open one (it covers more on the left).
bool LowerEndpointLess(const Interval& a, const Interval& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  return !a.lo_open && b.lo_open;
}

}  // namespace

Interval Interval::Intersect(const Interval& other) const {
  Interval out;
  if (lo > other.lo) {
    out.lo = lo;
    out.lo_open = lo_open;
  } else if (other.lo > lo) {
    out.lo = other.lo;
    out.lo_open = other.lo_open;
  } else {
    out.lo = lo;
    out.lo_open = lo_open || other.lo_open;
  }
  if (hi < other.hi) {
    out.hi = hi;
    out.hi_open = hi_open;
  } else if (other.hi < hi) {
    out.hi = other.hi;
    out.hi_open = other.hi_open;
  } else {
    out.hi = hi;
    out.hi_open = hi_open || other.hi_open;
  }
  return out;
}

std::string Interval::ToString() const {
  std::ostringstream os;
  if (IsPoint()) {
    os << "{" << lo << "}";
    return os.str();
  }
  os << (lo_open ? "(" : "[") << lo << ", " << hi << (hi_open ? ")" : "]");
  return os.str();
}

IntervalSet IntervalSet::FromIntervals(std::vector<Interval> intervals) {
  IntervalSet out;
  out.intervals_ = std::move(intervals);
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::All() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return IntervalSet(Interval::Closed(-kInf, kInf));
}

void IntervalSet::Add(const Interval& iv) {
  if (iv.IsEmpty()) return;
  intervals_.push_back(iv);
  Normalize();
}

void IntervalSet::Normalize() {
  // Fully in place: drop empties, sort, merge with a write cursor. No
  // allocation happens once the vector's capacity is warm — this routine
  // runs on every solver result (docs/PERFORMANCE.md).
  intervals_.erase(std::remove_if(intervals_.begin(), intervals_.end(),
                                  [](const Interval& iv) {
                                    return iv.IsEmpty();
                                  }),
                   intervals_.end());
  std::sort(intervals_.begin(), intervals_.end(), LowerEndpointLess);

  size_t w = 0;  // index of the last merged interval
  for (size_t r = 1; r < intervals_.size(); ++r) {
    const Interval& iv = intervals_[r];
    Interval& last = intervals_[w];
    // Mergeable when the intervals overlap or touch at a covered point:
    // [a,b) + [b,c) touch at b which [b,c) covers; (a,b) + (b,c) leave b
    // uncovered and must stay separate.
    const bool overlaps = iv.lo < last.hi;
    const bool touches = iv.lo == last.hi && !(iv.lo_open && last.hi_open);
    if (overlaps || touches) {
      if (iv.hi > last.hi) {
        last.hi = iv.hi;
        last.hi_open = iv.hi_open;
      } else if (iv.hi == last.hi && !iv.hi_open) {
        last.hi_open = false;
      }
    } else {
      intervals_[++w] = iv;
    }
  }
  if (!intervals_.empty()) intervals_.resize(w + 1);
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  IntervalSet out = *this;
  out.UnionWith(other);
  return out;
}

void IntervalSet::UnionWith(const IntervalSet& other) {
  intervals_.insert(intervals_.end(), other.intervals_.begin(),
                    other.intervals_.end());
  Normalize();
}

void IntervalSet::Assign(std::vector<Interval>* intervals) {
  intervals_.swap(*intervals);
  Normalize();
}

void IntervalSet::AssignInterval(const Interval& iv) {
  intervals_.clear();
  if (!iv.IsEmpty()) intervals_.push_back(iv);
}

namespace {

// Merge-intersects two sorted disjoint interval lists into `out`
// (cleared first). The result is sorted and disjoint by construction, so
// no Normalize pass is needed.
void IntersectInto(const std::vector<Interval>& a,
                   const std::vector<Interval>& b,
                   std::vector<Interval>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    Interval cand = a[i].Intersect(b[j]);
    if (!cand.IsEmpty()) out->push_back(cand);
    // Advance whichever interval ends first.
    const Interval& x = a[i];
    const Interval& y = b[j];
    if (x.hi < y.hi || (x.hi == y.hi && x.hi_open && !y.hi_open)) {
      ++i;
    } else if (y.hi < x.hi || (x.hi == y.hi && y.hi_open && !x.hi_open)) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
}

}  // namespace

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  IntersectInto(intervals_, other.intervals_, &out.intervals_);
  return out;
}

void IntervalSet::IntersectWith(const IntervalSet& other,
                                std::vector<Interval>* scratch) {
  IntersectInto(intervals_, other.intervals_, scratch);
  intervals_.swap(*scratch);
}

IntervalSet IntervalSet::Complement(const Interval& domain) const {
  IntervalSet out;
  ComplementInto(domain, &out);
  return out;
}

void IntervalSet::ComplementInto(const Interval& domain,
                                 IntervalSet* out) const {
  PULSE_CHECK(out != this);
  out->intervals_.clear();
  if (domain.IsEmpty()) return;
  // Walk the clipped intervals; gaps between them (with flipped endpoint
  // openness) form the complement. Clipped intervals stay sorted and
  // disjoint, so the gaps do too: no Normalize pass is needed.
  double cursor = domain.lo;
  bool cursor_open = domain.lo_open;
  for (const Interval& raw : intervals_) {
    Interval iv = raw.Intersect(domain);
    if (iv.IsEmpty()) continue;
    Interval gap{cursor, iv.lo, cursor_open, !iv.lo_open};
    if (!gap.IsEmpty()) out->intervals_.push_back(gap);
    cursor = iv.hi;
    cursor_open = !iv.hi_open;
  }
  Interval tail{cursor, domain.hi, cursor_open, domain.hi_open};
  if (!tail.IsEmpty()) out->intervals_.push_back(tail);
}

IntervalSet IntervalSet::Difference(const IntervalSet& other) const {
  if (IsEmpty()) return IntervalSet();
  const Interval hull{Min(), Max(), false, false};
  return Intersect(other.Complement(hull));
}

bool IntervalSet::Contains(double t) const {
  // Binary search for the first interval whose upper endpoint reaches t.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), t,
      [](const Interval& iv, double value) { return iv.hi < value; });
  for (; it != intervals_.end() && it->lo <= t; ++it) {
    if (it->Contains(t)) return true;
  }
  return false;
}

double IntervalSet::TotalLength() const {
  double total = 0.0;
  for (const Interval& iv : intervals_) total += iv.Length();
  return total;
}

double IntervalSet::Min() const {
  PULSE_CHECK(!intervals_.empty());
  return intervals_.front().lo;
}

double IntervalSet::Max() const {
  PULSE_CHECK(!intervals_.empty());
  return intervals_.back().hi;
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) os << ", ";
    os << intervals_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace pulse
