#include "serve/ingest_queue.h"

#include <chrono>
#include <utility>

namespace pulse {
namespace serve {

const char* BackpressurePolicyToString(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop_oldest";
    case BackpressurePolicy::kShed:
      return "shed";
  }
  return "unknown";
}

uint64_t WorkSignal::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void WorkSignal::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

uint64_t WorkSignal::Wait(uint64_t seen) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return epoch_ != seen; });
  return epoch_;
}

IngestQueue::IngestQueue(size_t capacity, WorkSignal* signal)
    : capacity_(capacity == 0 ? 1 : capacity), signal_(signal) {}

PushResult IngestQueue::TryPush(IngestItem* item, BackpressurePolicy policy,
                                uint64_t* dropped) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() < capacity_) {
      items_.push_back(std::move(*item));
      if (signal_ != nullptr) signal_->Notify();
      return PushResult::kAccepted;
    }
    switch (policy) {
      case BackpressurePolicy::kBlock:
        return PushResult::kWouldBlock;
      case BackpressurePolicy::kShed:
        return PushResult::kShed;
      case BackpressurePolicy::kDropOldest: {
        uint64_t evicted = 0;
        while (items_.size() >= capacity_) {
          items_.pop_front();
          ++evicted;
        }
        items_.push_back(std::move(*item));
        if (dropped != nullptr) *dropped = evicted;
        if (signal_ != nullptr) signal_->Notify();
        return PushResult::kDroppedOldest;
      }
    }
  }
  return PushResult::kShed;  // unreachable
}

bool IngestQueue::PushBlocking(IngestItem item, uint64_t* blocked_ns) {
  const auto start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (blocked_ns != nullptr) {
      *blocked_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
  }
  if (signal_ != nullptr) signal_->Notify();
  return true;
}

bool IngestQueue::PeekSeq(uint64_t* seq, bool* is_segment,
                          uint8_t* tier) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  *seq = items_.front().seq;
  if (is_segment != nullptr) *is_segment = items_.front().is_segment;
  if (tier != nullptr) *tier = items_.front().tier;
  return true;
}

bool IngestQueue::Pop(IngestItem* out) {
  bool freed_space = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    freed_space = true;
  }
  if (freed_space) space_cv_.notify_one();
  return true;
}

size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  space_cv_.notify_all();
  if (signal_ != nullptr) signal_->Notify();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace serve
}  // namespace pulse
