#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/span.h"
#include "store/store.h"

namespace pulse {
namespace serve {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The precision controller runs only when the session actually has an
// adaptive runtime to apply the tier to, and never offers more tiers
// than the runtime ladder has rungs.
PrecisionOptions EffectivePrecision(const SessionOptions& options,
                                    const AdaptiveRuntime* adaptive) {
  PrecisionOptions precision = options.precision;
  if (adaptive == nullptr) {
    precision.enabled = false;
  } else {
    precision.num_tiers = std::min(
        precision.num_tiers, adaptive->precision_options().ladder.size());
  }
  return precision;
}

}  // namespace

Session::Session(uint64_t id, std::unique_ptr<Transport> transport,
                 std::unique_ptr<shard::ShardClient> client,
                 SessionOptions options,
                 std::vector<std::string> valid_streams,
                 obs::MetricsRegistry* serve_metrics,
                 store::SegmentStore* store,
                 std::unique_ptr<AdaptiveRuntime> adaptive)
    : id_(id),
      transport_(std::move(transport)),
      client_(std::move(client)),
      adaptive_(std::move(adaptive)),
      options_(options),
      valid_streams_(std::move(valid_streams)),
      serve_metrics_(serve_metrics),
      store_(store),
      // The latency signal is the pool-level rollup of every shard's
      // solver span: sessions share the shard pool, so overload is a
      // property of the pool, not of one session's private runtime.
      // AdmitData refreshes the rollup (throttled) before sampling.
      // Adaptive sessions own their runtime, so both controllers read
      // its private registry instead.
      admission_(options.admission,
                 adaptive_ != nullptr
                     ? adaptive_->metrics()->GetHistogram(
                           "span/runtime/push_segment")
                     : client_->pool()->metrics()->GetHistogram(
                           "span/runtime/push_segment")),
      precision_ctl_(EffectivePrecision(options, adaptive_.get()),
                     adaptive_ != nullptr
                         ? adaptive_->metrics()->GetHistogram(
                               "span/runtime/push_segment")
                         : nullptr) {
  c_accepted_ = serve_metrics_->GetCounter("serve/queue/accepted");
  c_dropped_ = serve_metrics_->GetCounter("serve/queue/dropped");
  c_shed_ = serve_metrics_->GetCounter("serve/queue/shed");
  c_blocked_ns_ = serve_metrics_->GetCounter("serve/queue/blocked_ns");
  g_depth_ = serve_metrics_->GetGauge("serve/queue/depth");
  c_batch_dispatched_ = serve_metrics_->GetCounter("serve/batch/dispatched");
  c_batch_tuples_ = serve_metrics_->GetCounter("serve/batch/tuples");
  c_shed_queue_ = serve_metrics_->GetCounter("serve/admission/shed_queue");
  c_shed_latency_ =
      serve_metrics_->GetCounter("serve/admission/shed_latency");
  c_overloaded_ = serve_metrics_->GetCounter("serve/admission/overloaded");
  if (adaptive_ != nullptr) {
    c_provisional_ = serve_metrics_->GetCounter("precision/provisional");
    c_confirmed_ = serve_metrics_->GetCounter("precision/confirmed");
    c_retracted_ = serve_metrics_->GetCounter("precision/retracted");
    c_widened_ = serve_metrics_->GetCounter("precision/widened");
    c_tightened_ = serve_metrics_->GetCounter("precision/tightened");
    c_deferred_ = serve_metrics_->GetCounter("precision/deferred_items");
    c_replayed_ = serve_metrics_->GetCounter("precision/replayed_items");
    c_retract_deviation_ =
        serve_metrics_->GetCounter("retract/deviation");
    c_retract_spurious_ = serve_metrics_->GetCounter("retract/spurious");
    g_tier_ = serve_metrics_->GetGauge("precision/tier");
    g_open_ = serve_metrics_->GetGauge("precision/open");
  }
}

Session::~Session() {
  Abort();
  Join();
}

void Session::Start() {
  reader_ = std::thread([this] { ReaderLoop(); });
  worker_ = std::thread([this] { WorkerLoop(); });
}

bool Session::finished() const {
  return reader_done_.load() && worker_done_.load();
}

void Session::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_) return;
  if (reader_.joinable()) reader_.join();
  if (worker_.joinable()) worker_.join();
  joined_ = true;
}

void Session::BeginDrain() {
  accepting_.store(false);
  CloseLaneQueues();
  drain_requested_.store(true);
  signal_.Notify();
}

void Session::Abort() {
  if (stop_.exchange(true)) return;
  accepting_.store(false);
  CloseLaneQueues();
  // Drop this session's queued shard work too — hard stop discards.
  client_->Abort();
  transport_->Close();
  signal_.Notify();
}

std::string Session::error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

void Session::RecordFatal(const Status& status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.empty()) error_ = status.ToString();
}

Session::Lane* Session::FindLane(uint32_t stream_id) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (const auto& lane : lanes_) {
    if (lane->stream_id == stream_id) return lane.get();
  }
  return nullptr;
}

void Session::TotalDepth(size_t* depth, size_t* capacity) {
  *depth = 0;
  *capacity = 0;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (const auto& lane : lanes_) {
    *depth += lane->queue.size();
    *capacity += lane->queue.capacity();
  }
}

void Session::CloseLaneQueues() {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (const auto& lane : lanes_) lane->queue.Close();
}

Status Session::WriteFrame(const Frame& frame) {
  std::lock_guard<std::mutex> lock(write_mu_);
  write_buf_.clear();
  EncodeFrame(frame, &write_buf_);
  return transport_->Write(write_buf_);
}

Status Session::FlushOutputs() {
  std::vector<Segment> outputs;
  std::vector<ProvisionalRecord> provisionals;
  std::vector<VerdictRecord> verdicts;
  if (adaptive_ != nullptr) {
    outputs = adaptive_->TakeSettledOutputs();
    provisionals = adaptive_->TakeProvisionals();
    verdicts = adaptive_->TakeVerdicts();
    if (outputs.empty() && provisionals.empty() && verdicts.empty()) {
      return Status::OK();
    }
  } else {
    outputs = client_->TakeOutputSegments();
    if (outputs.empty()) return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    write_buf_.clear();
    // Settled outputs ride the same kOutputSegment frames as a static
    // session — only the provisional/verdict side-band is new, so the
    // settled stream stays byte-comparable across precision modes.
    for (const Segment& segment : outputs) {
      EncodeFrame(Frame::OutputSegment(segment), &write_buf_);
    }
    for (const ProvisionalRecord& record : provisionals) {
      EncodeFrame(Frame::Provisional(record.lineage, record.bound,
                                     record.segment),
                  &write_buf_);
    }
    for (const VerdictRecord& verdict : verdicts) {
      EncodeFrame(verdict.confirmed
                      ? Frame::Confirm(verdict.lineage)
                      : Frame::Retract(
                            verdict.lineage,
                            static_cast<uint8_t>(verdict.reason)),
                  &write_buf_);
    }
    PULSE_RETURN_IF_ERROR(transport_->Write(write_buf_));
  }
  // The watermark advances only after the transport accepted the
  // bytes: a crash between write and note redelivers (at-least-once),
  // never suppresses an output the client did not see.
  if (store_ != nullptr) {
    for (const Segment& segment : outputs) store_->NoteDelivered(segment);
  }
  if (adaptive_ != nullptr) {
    for (const VerdictRecord& verdict : verdicts) {
      if (!verdict.confirmed) {
        (verdict.reason == RetractReason::kDeviation
             ? c_retract_deviation_
             : c_retract_spurious_)
            ->Increment();
      }
    }
    const PrecisionStats& stats = adaptive_->stats();
    c_provisional_->Store(stats.provisional);
    c_confirmed_->Store(stats.confirmed);
    c_retracted_->Store(stats.retracted);
    c_widened_->Store(stats.widen_events);
    c_tightened_->Store(stats.tighten_events);
    c_deferred_->Store(stats.deferred_items);
    c_replayed_->Store(stats.replayed_items);
    g_tier_->Set(static_cast<double>(adaptive_->tier()));
    g_open_->Set(static_cast<double>(stats.open()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Reader: transport bytes -> frames -> admission -> queues.

void Session::ReaderLoop() {
  // Serve-side spans (serve/admit) land in the server-wide registry,
  // not the session runtime's.
  obs::ScopedMetricsRegistry scoped(serve_metrics_);
  FrameReader frames;
  char buf[8192];
  bool reader_exit = false;
  while (!reader_exit && !stop_.load()) {
    Result<size_t> got = transport_->Read(buf, sizeof(buf));
    if (!got.ok()) {
      if (!stop_.load()) RecordFatal(got.status());
      break;
    }
    if (*got == 0) break;  // clean EOF
    Status status = frames.Feed(buf, *got);
    while (status.ok()) {
      Result<std::optional<Frame>> next = frames.Next();
      if (!next.ok()) {
        status = next.status();
        break;
      }
      if (!next->has_value()) break;
      Frame frame = std::move(**next);
      const bool was_bye = frame.type == FrameType::kBye;
      status = HandleFrame(std::move(frame));
      if (was_bye) {
        reader_exit = true;
        break;
      }
    }
    if (!status.ok()) {
      RecordFatal(status);
      (void)WriteFrame(Frame::Error(status.message()));
      Abort();
      break;
    }
  }
  // No more input will ever be admitted: whatever the exit reason
  // (EOF, kBye, error, abort), close the queues and let the worker
  // finish what was accepted.
  accepting_.store(false);
  CloseLaneQueues();
  drain_requested_.store(true);
  reader_done_.store(true);
  signal_.Notify();
}

Status Session::HandleFrame(Frame frame) {
  if (!saw_hello_ && frame.type != FrameType::kHello) {
    return Status::FailedPrecondition(
        "protocol: first frame must be hello");
  }
  switch (frame.type) {
    case FrameType::kHello:
      if (saw_hello_) {
        return Status::FailedPrecondition("protocol: duplicate hello");
      }
      if (frame.version != kProtocolVersion) {
        return Status::InvalidArgument(
            "protocol version " + std::to_string(frame.version) +
            " unsupported (want " + std::to_string(kProtocolVersion) + ")");
      }
      saw_hello_ = true;
      return Status::OK();
    case FrameType::kOpenStream: {
      if (std::find(valid_streams_.begin(), valid_streams_.end(),
                    frame.text) == valid_streams_.end()) {
        return Status::NotFound("unknown stream '" + frame.text + "'");
      }
      std::lock_guard<std::mutex> lock(lanes_mu_);
      for (const auto& lane : lanes_) {
        if (lane->stream_id == frame.stream_id) {
          return Status::AlreadyExists(
              "stream id " + std::to_string(frame.stream_id) +
              " already open");
        }
      }
      lanes_.push_back(std::make_unique<Lane>(
          frame.stream_id, std::move(frame.text), options_.queue_capacity,
          &signal_, options_.batcher));
      return Status::OK();
    }
    case FrameType::kTuple:
    case FrameType::kTupleBatch:
    case FrameType::kSegment:
      return AdmitData(std::move(frame));
    case FrameType::kDrain:
      client_drain_.store(true);
      accepting_.store(false);
      CloseLaneQueues();
      drain_requested_.store(true);
      signal_.Notify();
      return Status::OK();
    case FrameType::kBye:
      // Orderly goodbye without a drain barrier: admitted items still
      // get processed (the reader exit path drains), but no kDrained
      // acknowledgment is owed.
      return Status::OK();
    default:
      return Status::InvalidArgument(
          std::string("protocol: unexpected client frame ") +
          FrameTypeToString(frame.type));
  }
}

Status Session::AdmitData(Frame frame) {
  const uint64_t items =
      static_cast<uint64_t>(frame.tuples.size() + frame.segments.size());
  if (!accepting_.load()) {
    // Draining or shutting down: refuse politely (not a protocol
    // error — the client may legitimately race its last sends against
    // a server-initiated drain).
    c_shed_->Add(items);
    return WriteFrame(
        Frame::Flow(frame.stream_id, FlowEvent::kShed, items));
  }
  Lane* lane = FindLane(frame.stream_id);
  if (lane == nullptr) {
    return Status::FailedPrecondition(
        "stream id " + std::to_string(frame.stream_id) + " not open");
  }

  PULSE_SPAN("serve/admit");
  // Refresh the pool rollup the latency signal reads (throttled inside
  // the pool; most calls are a single relaxed load). Adaptive sessions
  // read their own runtime's registry, which needs no sync.
  if (adaptive_ == nullptr) client_->pool()->SyncMetrics();
  size_t depth = 0;
  size_t capacity = 0;
  TotalDepth(&depth, &capacity);
  const AdmitDecision decision = admission_.Admit(depth, capacity);
  const bool overloaded = admission_.overloaded();
  if (overloaded && !admission_overloaded_prev_) {
    c_overloaded_->Increment();
  }
  admission_overloaded_prev_ = overloaded;
  if (decision != AdmitDecision::kAdmit) {
    (decision == AdmitDecision::kShedQueue ? c_shed_queue_
                                           : c_shed_latency_)
        ->Add(items);
    c_shed_->Add(items);
    return WriteFrame(
        Frame::Flow(frame.stream_id, FlowEvent::kShed, items));
  }

  // Durable mode: the log append precedes the enqueue, so an item is
  // never dispatched to a runtime without first being on disk — the
  // property the kill-and-restore differential depends on. An append
  // failure is fatal to the session (better to drop the connection
  // than to process input that recovery could not replay).
  if (store_ != nullptr) {
    for (const Tuple& tuple : frame.tuples) {
      PULSE_RETURN_IF_ERROR(store_->AppendTuple(lane->name, tuple));
    }
    for (const Segment& segment : frame.segments) {
      PULSE_RETURN_IF_ERROR(store_->AppendSegment(lane->name, segment));
    }
  }

  // Precision stage: the tier decided here is stamped onto every item
  // of the frame, so the worker applies tier changes at exact
  // admission-order boundaries (docs/PRECISION.md). A frame never
  // straddles a tier change.
  const uint8_t tier =
      static_cast<uint8_t>(precision_ctl_.Update(depth, capacity));

  const uint64_t now_ns = NowNs();
  for (Tuple& tuple : frame.tuples) {
    lane->batcher.RecordArrival(now_ns);
    IngestItem item;
    item.seq = next_seq_++;
    item.tier = tier;
    item.tuple = std::move(tuple);
    PULSE_RETURN_IF_ERROR(EnqueueItem(lane, std::move(item)));
  }
  for (Segment& segment : frame.segments) {
    IngestItem item;
    item.seq = next_seq_++;
    item.tier = tier;
    item.is_segment = true;
    item.segment = std::move(segment);
    PULSE_RETURN_IF_ERROR(EnqueueItem(lane, std::move(item)));
  }
  g_depth_->Set(static_cast<double>(depth + items));
  return Status::OK();
}

Status Session::EnqueueItem(Lane* lane, IngestItem item) {
  uint64_t dropped = 0;
  const PushResult result =
      lane->queue.TryPush(&item, options_.policy, &dropped);
  switch (result) {
    case PushResult::kAccepted:
      c_accepted_->Increment();
      return Status::OK();
    case PushResult::kDroppedOldest:
      c_accepted_->Increment();
      c_dropped_->Add(dropped);
      return WriteFrame(Frame::Flow(lane->stream_id,
                                    FlowEvent::kDroppedOldest, dropped));
    case PushResult::kShed:
    case PushResult::kClosed:
      c_shed_->Increment();
      return WriteFrame(
          Frame::Flow(lane->stream_id, FlowEvent::kShed, 1));
    case PushResult::kWouldBlock:
      break;
  }
  // kBlock slow path: tell the client it is paused, wait for space,
  // tell it to resume. The pause itself is what pushes backpressure
  // through the transport — while we block here, no further client
  // bytes are read, so the client's own sends eventually block too.
  PULSE_RETURN_IF_ERROR(WriteFrame(Frame::Flow(
      lane->stream_id, FlowEvent::kPaused, lane->queue.size())));
  uint64_t blocked_ns = 0;
  const bool pushed = lane->queue.PushBlocking(std::move(item), &blocked_ns);
  c_blocked_ns_->Add(blocked_ns);
  if (!pushed) {
    c_shed_->Increment();
    return WriteFrame(Frame::Flow(lane->stream_id, FlowEvent::kShed, 1));
  }
  c_accepted_->Increment();
  return WriteFrame(
      Frame::Flow(lane->stream_id, FlowEvent::kResumed, 0));
}

// ---------------------------------------------------------------------
// Worker: queues -> micro-batches -> runtime -> output frames.

void Session::WorkerLoop() {
  std::vector<Lane*> lanes;
  std::vector<Tuple> batch;
  for (;;) {
    if (stop_.load()) break;
    const uint64_t epoch = signal_.epoch();
    {
      std::lock_guard<std::mutex> lock(lanes_mu_);
      lanes.clear();
      for (const auto& lane : lanes_) lanes.push_back(lane.get());
    }
    // Min-seq merge: the lane whose head was admitted earliest goes
    // first, reproducing the client's arrival order across streams.
    Lane* best = nullptr;
    uint64_t best_seq = 0;
    for (Lane* lane : lanes) {
      uint64_t seq = 0;
      if (lane->queue.PeekSeq(&seq) &&
          (best == nullptr || seq < best_seq)) {
        best = lane;
        best_seq = seq;
      }
    }
    if (best == nullptr) {
      // drain_requested_ is stored only after the queues are closed, so
      // seeing it with all queues empty means no item can ever arrive.
      if (drain_requested_.load() || stop_.load()) break;
      signal_.Wait(epoch);
      continue;
    }

    IngestItem item;
    if (!best->queue.Pop(&item)) continue;
    Status status;
    // Adaptive sessions apply the admission-stamped tier at the item
    // boundary, before the item itself is dispatched.
    if (adaptive_ != nullptr) {
      status = adaptive_->SetTier(item.tier);
    }
    if (!status.ok()) {
      // fall through to the fatal-error path below
    } else if (item.is_segment) {
      status = adaptive_ != nullptr
                   ? adaptive_->ProcessSegment(best->name,
                                               std::move(item.segment))
                   : client_->ProcessSegment(best->name,
                                             std::move(item.segment));
    } else {
      batch.clear();
      batch.push_back(std::move(item.tuple));
      uint64_t last_seq = item.seq;
      const size_t target = best->batcher.TargetBatchSize();
      while (batch.size() < target) {
        uint64_t seq = 0;
        bool is_segment = false;
        uint8_t tier = 0;
        // Only items with *consecutive* session seqs may join the
        // batch: a gap means another stream's item was admitted in
        // between, and batching across it would reorder arrival order.
        // A tier change is also a batch boundary: the whole batch must
        // be processed under one precision tier.
        if (!best->queue.PeekSeq(&seq, &is_segment, &tier) ||
            seq != last_seq + 1 || is_segment || tier != item.tier) {
          break;
        }
        IngestItem next;
        if (!best->queue.Pop(&next)) break;
        batch.push_back(std::move(next.tuple));
        last_seq = seq;
      }
      status = adaptive_ != nullptr
                   ? adaptive_->ProcessTuples(best->name, batch.data(),
                                              batch.size())
                   : client_->ProcessTuples(best->name, batch.data(),
                                            batch.size());
      c_batch_dispatched_->Increment();
      c_batch_tuples_->Add(batch.size());
    }
    if (status.ok()) status = FlushOutputs();
    if (!status.ok()) {
      RecordFatal(status);
      (void)WriteFrame(Frame::Error(status.message()));
      Abort();
      break;
    }
  }

  // Drain epilogue: flush residual operator state on every shard and
  // deliver the last outputs. Skipped on Abort (hard stop discards).
  // In adaptive mode Finish also settles every open provisional, so
  // the final flush carries the last confirm/retract verdicts.
  if (!stop_.load()) {
    Status status =
        adaptive_ != nullptr ? adaptive_->Finish() : client_->Finish();
    if (status.ok()) status = FlushOutputs();
    if (status.ok() && client_drain_.load()) {
      status = WriteFrame(Frame::Drained());
    }
    if (!status.ok()) RecordFatal(status);
  }
  worker_done_.store(true);
  // Wakes a reader still blocked on a dead peer and signals EOF to the
  // client after kDrained.
  transport_->Close();
}

}  // namespace serve
}  // namespace pulse
