// Parallel solver scaling on the Fig. 7 proximity-join workload.
//
// The workload is the paper's Fig. 7ii moving-object self-join (distance
// predicate => one degree-4 equation system per overlapping segment
// pair), driven in historical/segment mode so the equation-system solver
// dominates and widened to a multi-second window so every pushed segment
// probes a meaningful partner population. The same trace is replayed at
// 1/2/4/8 solver threads (ParallelOptions::num_threads); tuples/sec and
// speedup vs the serial run are printed and written to
// BENCH_parallel_scaling.json.
//
// Expected shape: near-linear speedup while threads <= physical cores
// (the per-pair solves are independent; only id assignment and lineage
// recording stay serial), flattening at the core count. On hosts with
// fewer cores than a configuration's thread count the extra threads
// time-slice one core and the speedup stays ~1x — the JSON records
// hardware_concurrency so trajectories from different hosts stay
// comparable.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr double kArea = 1000.0;
constexpr size_t kNumObjects = 32;
constexpr double kRate = 800.0;      // aggregate tuples/second
constexpr double kDuration = 60.0;   // seconds of stream
constexpr size_t kTuplesPerModel = 40;
constexpr double kWindowSeconds = 4.0;

std::vector<Tuple> MakeTrace() {
  MovingObjectOptions opts;
  opts.num_objects = kNumObjects;
  opts.tuple_rate = kRate;
  opts.tuples_per_segment = kTuplesPerModel;
  opts.area = kArea;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(
      static_cast<size_t>(kRate * kDuration));
}

QuerySpec ProximityJoin() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec(
      "objects", 100.0 * kNumObjects / kRate));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kArea / 10.0));
  join.window_seconds = kWindowSeconds;
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

struct RunResult {
  size_t threads = 0;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  uint64_t tasks_spawned = 0;
  uint64_t solves = 0;
  // Registry snapshot after the run; the widest configuration's snapshot
  // becomes the BENCH JSON `metrics` block (parallel cpu/wall counters).
  obs::MetricsSnapshot metrics;
};

RunResult RunOnce(const std::vector<Tuple>& trace, size_t threads) {
  const QuerySpec spec = ProximityJoin();
  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 0.5;
  opts.segmentation.max_points_per_segment = kTuplesPerModel;
  opts.collect_outputs = false;
  opts.parallel.num_threads = threads;
  Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, opts);
  if (!rt.ok()) {
    std::fprintf(stderr, "runtime setup failed: %s\n",
                 rt.status().ToString().c_str());
    return RunResult{};
  }
  RunResult result;
  result.threads = threads;
  result.seconds = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) {
      (void)rt->ProcessTuple("objects", t);
    }
    (void)rt->Finish();
  });
  result.tuples_per_sec = static_cast<double>(trace.size()) / result.seconds;
  result.tasks_spawned = rt->stats().tasks_spawned;
  for (size_t n = 0; n < rt->plan().num_nodes(); ++n) {
    result.solves += rt->plan().node(n)->metrics().solves;
  }
  result.metrics = rt->metrics()->Snapshot();
  return result;
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Parallel scaling: Fig. 7 proximity join, %zu objects, %g s of "
      "stream, window %g s (host reports %u hardware threads)\n",
      kNumObjects, kDuration, kWindowSeconds, cores);

  const std::vector<Tuple> trace = MakeTrace();
  // Cap the sweep at the host's core count: thread counts beyond it
  // time-slice one core and measure scheduler overhead, not scaling.
  // When hardware_concurrency is unknown (0) the full sweep runs and
  // each row's core_bound flag marks configurations that may be
  // over-subscribed.
  std::vector<size_t> thread_counts;
  for (size_t threads : {1, 2, 4, 8}) {
    if (cores > 0 && threads > cores) {
      std::printf(
          "  (skipping %zu threads: exceeds %u hardware threads)\n",
          threads, cores);
      continue;
    }
    thread_counts.push_back(threads);
  }

  bench::SeriesTable table(
      "Parallel equation-system solving: tuples/sec vs solver threads",
      "threads", {"tuples_per_sec", "speedup", "solves", "tasks_spawned"});

  std::vector<RunResult> results;
  double serial_tps = 0.0;
  for (size_t threads : thread_counts) {
    const RunResult r = RunOnce(trace, threads);
    if (r.threads == 0) return 1;
    if (threads == 1) serial_tps = r.tuples_per_sec;
    results.push_back(r);
    table.AddRow(static_cast<double>(threads),
                 {r.tuples_per_sec, r.tuples_per_sec / serial_tps,
                  static_cast<double>(r.solves),
                  static_cast<double>(r.tasks_spawned)});
  }
  table.Print();

  bench::BenchReport report("parallel_scaling");
  report.ParamString("workload", "fig7_proximity_join");
  report.ParamUint("num_objects", kNumObjects);
  report.ParamDouble("window_seconds", kWindowSeconds);
  report.ParamUint("tuples", trace.size());
  report.ParamUint("hardware_concurrency", cores);
  for (const RunResult& r : results) {
    report.AddRow()
        .Uint("threads", r.threads)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", r.tuples_per_sec)
        .Double("speedup", r.tuples_per_sec / serial_tps)
        .Uint("solves", r.solves)
        .Uint("tasks_spawned", r.tasks_spawned)
        .Bool("core_bound", cores > 0 && r.threads > cores);
  }
  // The widest configuration's registry snapshot (the run whose
  // runtime/parallel_solve_{cpu,wall}_ns counters matter most).
  report.AttachMetrics(results.back().metrics);
  if (!report.WriteFile("BENCH_parallel_scaling.json")) return 1;
  std::printf(
      "\nWrote BENCH_parallel_scaling.json. Expected shape: near-linear "
      "speedup up to the\nphysical core count (>= 2.5x at 4 threads on a "
      ">= 4-core host); ~1x on fewer cores.\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, results.back().metrics)) {
    return 1;
  }
  return 0;
}
