#include "math/matrix.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace pulse {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  PULSE_CHECK(data_.size() == rows_ * cols_);
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    PULSE_CHECK(rows[r].size() == cols);
    for (size_t c = 0; c < cols; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  PULSE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  PULSE_CHECK(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  PULSE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  PULSE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

bool Matrix::AlmostEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::InfinityNorm() const {
  double max_row = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += std::abs(At(r, c));
    max_row = std::max(max_row, sum);
  }
  return max_row;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

}  // namespace pulse
