# Empty compiler generated dependencies file for observations_test.
# This may be replaced when dependencies are built.
