// End-to-end integration: the canonical NYSE MACD and AIS following
// queries run through both the discrete baseline and the Pulse plan, and
// the two must agree on result structure within the configured error
// tolerances (paper Sections V-B/V-C; exact equivalence is not expected —
// Observations 1 and 2 in Section IV-A document the false-positive /
// false-negative semantics).
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/operators/join.h"
#include "core/runtime.h"
#include "core/transform.h"
#include "engine/executor.h"
#include "workload/ais.h"
#include "workload/nyse.h"
#include "workload/queries.h"

namespace pulse {
namespace {

TEST(MacdIntegration, PulsePlanProducesCrossoverResults) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 4.0)).ok());
  MacdParams params;
  params.short_window = 4.0;
  params.long_window = 12.0;
  params.slide = 1.0;
  ASSERT_TRUE(AddMacdQuery(&spec, params).ok());

  Result<TransformedPlan> tplan = BuildPulsePlan(spec);
  ASSERT_TRUE(tplan.ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(tplan->plan));
  ASSERT_TRUE(exec.ok());

  // One symbol whose price rises then falls: the short average crosses
  // above the long average during the rise.
  auto push = [&](double lo, double hi, double p0, double drift) {
    Segment s(7, Interval::ClosedOpen(lo, hi));
    s.set_attribute("price", Polynomial({p0, drift}).Shift(-lo));
    ASSERT_TRUE(exec->PushSegment("nyse", s).ok());
  };
  push(0.0, 30.0, 100.0, 1.0);    // rising: short avg > long avg
  push(30.0, 60.0, 130.0, -1.0);  // falling: crossover flips

  ASSERT_FALSE(exec->output().empty());
  for (const Segment& out : exec->output()) {
    ASSERT_TRUE(out.has_attribute("diff"));
    // The join predicate guarantees s.ap > l.ap wherever results exist:
    // diff must be positive across each output range.
    const Polynomial diff = *out.attribute("diff");
    const double mid = 0.5 * (out.range.lo + out.range.hi);
    EXPECT_GT(diff.Evaluate(mid), -1e-6)
        << "diff negative at " << mid << " in " << out.range.ToString();
  }
  // Outputs exist during the rising phase (short > long there).
  IntervalSet covered;
  for (const Segment& out : exec->output()) covered.Add(out.range);
  EXPECT_TRUE(covered.Contains(25.0));
}

TEST(MacdIntegration, DiscreteAndPulseAgreeOnCrossoverTimes) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 4.0)).ok());
  MacdParams params;
  params.short_window = 4.0;
  params.long_window = 12.0;
  params.slide = 1.0;
  ASSERT_TRUE(AddMacdQuery(&spec, params).ok());

  // Discrete run over a dense sampling of the same price path.
  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  ASSERT_TRUE(dplan.ok());
  Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
  ASSERT_TRUE(dexec.ok());
  auto price = [](double t) {
    return t < 30.0 ? 100.0 + t : 130.0 - (t - 30.0);
  };
  for (double t = 0.0; t < 60.0; t += 0.05) {
    Tuple tuple(t, {Value(int64_t{7}), Value(price(t)),
                    Value(t < 30.0 ? 1.0 : -1.0), Value(int64_t{100})});
    ASSERT_TRUE(dexec->PushTuple("nyse", tuple).ok());
  }
  ASSERT_TRUE(dexec->Finish().ok());
  ASSERT_FALSE(dexec->output().empty());

  // Pulse run over the exact segment models of the same path.
  Result<TransformedPlan> tplan = BuildPulsePlan(spec);
  ASSERT_TRUE(tplan.ok());
  Result<PulseExecutor> pexec = PulseExecutor::Make(std::move(tplan->plan));
  ASSERT_TRUE(pexec.ok());
  Segment rise(7, Interval::ClosedOpen(0.0, 30.0));
  rise.set_attribute("price", Polynomial({100.0, 1.0}));
  Segment fall(7, Interval::ClosedOpen(30.0, 60.0));
  fall.set_attribute("price", Polynomial({160.0, -1.0}));
  ASSERT_TRUE(pexec->PushSegment("nyse", rise).ok());
  ASSERT_TRUE(pexec->PushSegment("nyse", fall).ok());
  IntervalSet pulse_times;
  for (const Segment& s : pexec->output()) pulse_times.Add(s.range);
  ASSERT_FALSE(pulse_times.IsEmpty());

  // Every discrete result in the steady rising regime falls inside the
  // continuous solution (tolerate boundary effects of 2 * slide).
  size_t checked = 0;
  for (const Tuple& t : dexec->output()) {
    if (t.timestamp < 14.0 || t.timestamp > 28.0) continue;
    EXPECT_TRUE(pulse_times.Contains(t.timestamp))
        << "discrete MACD result at t=" << t.timestamp
        << " missing from the continuous solution "
        << pulse_times.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(FollowingIntegration, DetectsShadowingVesselPair) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(AisGenerator::MakeStreamSpec("ais", 20.0)).ok());
  FollowingParams params;
  params.join_window = 50.0;
  params.avg_window = 20.0;
  params.avg_slide = 5.0;
  params.threshold = 100.0;
  ASSERT_TRUE(AddFollowingQuery(&spec, params).ok());

  Result<TransformedPlan> tplan = BuildPulsePlan(spec);
  ASSERT_TRUE(tplan.ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(tplan->plan));
  ASSERT_TRUE(exec.ok());

  // Vessel 1 and its shadow at offset 50 (< threshold); vessel 3 far away.
  auto push = [&](Key id, double x0, double y0, double vx) {
    Segment s(id, Interval::ClosedOpen(0.0, 100.0));
    s.set_attribute("x", Polynomial({x0, vx}));
    s.set_attribute("y", Polynomial({y0}));
    ASSERT_TRUE(exec->PushSegment("ais", s).ok());
  };
  push(1, 0.0, 0.0, 2.0);
  push(2, 50.0, 0.0, 2.0);       // follower of 1
  push(3, 100000.0, 50000.0, -2.0);  // unrelated

  ASSERT_TRUE(exec->Finish().ok());
  ASSERT_FALSE(exec->output().empty());
  bool found_pair = false;
  for (const Segment& out : exec->output()) {
    Key l = 0, r = 0;
    SplitKeys(out.key, &l, &r);
    const std::pair<Key, Key> pair = {std::min(l, r), std::max(l, r)};
    EXPECT_EQ(pair, (std::pair<Key, Key>{1, 2}))
        << "unexpected following pair " << l << "," << r;
    if (pair == std::pair<Key, Key>{1, 2}) found_pair = true;
    // avg(dist^2) stays below threshold^2 on every reported range.
    const Polynomial avg = *out.attribute("avg_dist2");
    const double mid = 0.5 * (out.range.lo + out.range.hi);
    EXPECT_LT(avg.Evaluate(mid),
              params.threshold * params.threshold + 1e-6);
  }
  EXPECT_TRUE(found_pair);
}

TEST(FollowingIntegration, DiscretePlanAgreesOnPair) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(AisGenerator::MakeStreamSpec("ais", 20.0)).ok());
  FollowingParams params;
  params.join_window = 5.0;
  params.avg_window = 20.0;
  params.avg_slide = 5.0;
  params.threshold = 100.0;
  ASSERT_TRUE(AddFollowingQuery(&spec, params).ok());
  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  ASSERT_TRUE(dplan.ok());
  Result<Executor> exec = Executor::Make(std::move(dplan->plan));
  ASSERT_TRUE(exec.ok());
  // Sampled tracks of the same 3-vessel scenario.
  for (double t = 0.0; t < 100.0; t += 0.5) {
    auto push = [&](int64_t id, double x, double y, double vx) {
      Tuple tuple(t, {Value(id), Value(x), Value(vx), Value(y),
                      Value(0.0)});
      ASSERT_TRUE(exec->PushTuple("ais", tuple).ok());
    };
    push(1, 2.0 * t, 0.0, 2.0);
    push(2, 50.0 + 2.0 * t, 0.0, 2.0);
    push(3, 100000.0 - 2.0 * t, 50000.0, -2.0);
  }
  ASSERT_TRUE(exec->Finish().ok());
  ASSERT_FALSE(exec->output().empty());
  // Output schema: (group=pair_key, avg_dist2); the HAVING filter kept
  // only the close pair, in both orders.
  for (const Tuple& t : exec->output()) {
    Key l = 0, r = 0;
    SplitKeys(t.at(0).as_int64(), &l, &r);
    EXPECT_EQ(std::min(l, r), 1);
    EXPECT_EQ(std::max(l, r), 2);
    EXPECT_LT(t.at(1).as_double(), params.threshold * params.threshold);
  }
}

TEST(PredictiveEndToEnd, NyseFeedThroughMacd) {
  // Full predictive pipeline on generated NYSE data: models built from
  // tuples, validated, query solved on violations only.
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 10.0)).ok());
  MacdParams params;
  params.short_window = 2.0;
  params.long_window = 6.0;
  params.slide = 1.0;
  ASSERT_TRUE(AddMacdQuery(&spec, params).ok());

  PredictiveRuntime::Options opts;
  opts.bounds = {BoundSpec::Relative("diff", 0.01)};
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(spec, std::move(opts));
  ASSERT_TRUE(rt.ok());

  NyseOptions gen_opts;
  gen_opts.num_symbols = 5;
  gen_opts.tuple_rate = 100.0;
  gen_opts.trades_per_trend = 50;
  gen_opts.noise = 0.0;
  NyseGenerator gen(gen_opts);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(rt->ProcessTuple("nyse", gen.NextTuple()).ok());
  }
  ASSERT_TRUE(rt->Finish().ok());
  const RuntimeStats& stats = rt->stats();
  EXPECT_EQ(stats.tuples_in, 2000u);
  // The whole point of Pulse: most tuples validate against the model and
  // never reach the solver.
  EXPECT_GT(stats.tuples_validated, stats.segments_pushed);
  EXPECT_GT(stats.output_segments, 0u);
}

}  // namespace
}  // namespace pulse
