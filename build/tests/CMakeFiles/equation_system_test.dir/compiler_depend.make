# Empty compiler generated dependencies file for equation_system_test.
# This may be replaced when dependencies are built.
