file(REMOVE_RECURSE
  "CMakeFiles/macd_monitor.dir/macd_monitor.cpp.o"
  "CMakeFiles/macd_monitor.dir/macd_monitor.cpp.o.d"
  "macd_monitor"
  "macd_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macd_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
