file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_historical.dir/bench_fig8_historical.cc.o"
  "CMakeFiles/bench_fig8_historical.dir/bench_fig8_historical.cc.o.d"
  "bench_fig8_historical"
  "bench_fig8_historical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
