#ifndef PULSE_WORKLOAD_REPLAY_H_
#define PULSE_WORKLOAD_REPLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "engine/tuple.h"
#include "util/result.h"

namespace pulse {

/// Persists a recorded tuple trace as CSV (timestamp first, then fields
/// in schema order) and loads it back — the paper's experiments "replay
/// from disk into Pulse" (Section V-B). Rates are applied by the caller;
/// the trace itself carries event time.
class TraceFile {
 public:
  /// Writes `tuples` to `path`, with a header row.
  static Status Write(const std::string& path, const Schema& schema,
                      const std::vector<Tuple>& tuples);

  /// Loads a trace; field types follow `schema`.
  static Result<std::vector<Tuple>> Load(const std::string& path,
                                         const Schema& schema);
};

/// Rescales a trace's event time so the same data plays at a different
/// stream rate (the paper's "stream replay rates" axis): timestamps are
/// compressed/stretched around the trace start by `factor`.
std::vector<Tuple> RescaleRate(const std::vector<Tuple>& trace,
                               double factor);

}  // namespace pulse

#endif  // PULSE_WORKLOAD_REPLAY_H_
