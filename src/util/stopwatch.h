#ifndef PULSE_UTIL_STOPWATCH_H_
#define PULSE_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pulse {

/// Monotonic wall-clock timer used by benchmark harnesses and the engine's
/// throughput/latency metrics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pulse

#endif  // PULSE_UTIL_STOPWATCH_H_
