#include "math/interval_set.h"

#include <gtest/gtest.h>

namespace pulse {
namespace {

TEST(Interval, EmptinessRules) {
  EXPECT_TRUE(Interval::Closed(2.0, 1.0).IsEmpty());
  EXPECT_FALSE(Interval::Closed(1.0, 2.0).IsEmpty());
  EXPECT_FALSE(Interval::Point(3.0).IsEmpty());
  EXPECT_TRUE(Interval::Open(1.0, 1.0).IsEmpty());
  EXPECT_TRUE(Interval::ClosedOpen(1.0, 1.0).IsEmpty());
}

TEST(Interval, ContainsHonoursOpenness) {
  const Interval co = Interval::ClosedOpen(0.0, 1.0);
  EXPECT_TRUE(co.Contains(0.0));
  EXPECT_TRUE(co.Contains(0.999));
  EXPECT_FALSE(co.Contains(1.0));
  const Interval oc = Interval::OpenClosed(0.0, 1.0);
  EXPECT_FALSE(oc.Contains(0.0));
  EXPECT_TRUE(oc.Contains(1.0));
  EXPECT_TRUE(Interval::Point(2.0).Contains(2.0));
  EXPECT_FALSE(Interval::Point(2.0).Contains(2.0001));
}

TEST(Interval, IntersectOverlapping) {
  Interval a = Interval::Closed(0.0, 5.0);
  Interval b = Interval::ClosedOpen(3.0, 8.0);
  Interval c = a.Intersect(b);
  EXPECT_EQ(c, Interval::Closed(3.0, 5.0));
}

TEST(Interval, IntersectAtSharedEndpointRespectsFlags) {
  // [0,1) ∩ [1,2) is empty; [0,1] ∩ [1,2) is the point {1}.
  EXPECT_TRUE(Interval::ClosedOpen(0.0, 1.0)
                  .Intersect(Interval::ClosedOpen(1.0, 2.0))
                  .IsEmpty());
  Interval p = Interval::Closed(0.0, 1.0)
                   .Intersect(Interval::ClosedOpen(1.0, 2.0));
  EXPECT_TRUE(p.IsPoint());
  EXPECT_DOUBLE_EQ(p.lo, 1.0);
}

TEST(Interval, LengthAndToString) {
  EXPECT_DOUBLE_EQ(Interval::Closed(1.0, 4.0).Length(), 3.0);
  EXPECT_DOUBLE_EQ(Interval::Point(2.0).Length(), 0.0);
  EXPECT_EQ(Interval::ClosedOpen(0.0, 1.0).ToString(), "[0, 1)");
  EXPECT_EQ(Interval::Point(3.0).ToString(), "{3}");
}

TEST(IntervalSet, NormalizesOverlapsAndAdjacency) {
  IntervalSet s = IntervalSet::FromIntervals(
      {Interval::ClosedOpen(0.0, 2.0), Interval::ClosedOpen(1.0, 3.0),
       Interval::ClosedOpen(3.0, 4.0)});
  // All three merge into [0, 4).
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval::ClosedOpen(0.0, 4.0));
}

TEST(IntervalSet, DoesNotMergeAcrossUncoveredPoint) {
  // (0,1) and (1,2) leave 1 uncovered: stay separate.
  IntervalSet s = IntervalSet::FromIntervals(
      {Interval::Open(0.0, 1.0), Interval::Open(1.0, 2.0)});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains(1.0));
  // Adding the point {1} glues everything together.
  s.Add(Interval::Point(1.0));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(1.0));
}

TEST(IntervalSet, UnionAndIntersection) {
  IntervalSet a(Interval::Closed(0.0, 2.0));
  IntervalSet b = IntervalSet::FromIntervals(
      {Interval::Closed(1.0, 3.0), Interval::Closed(5.0, 6.0)});
  IntervalSet u = a.Union(b);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u.TotalLength(), 4.0);
  IntervalSet i = a.Intersect(b);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_EQ(i.intervals()[0], Interval::Closed(1.0, 2.0));
}

TEST(IntervalSet, IntersectionWithPoints) {
  IntervalSet a(Interval::Closed(0.0, 2.0));
  IntervalSet pts = IntervalSet::FromIntervals(
      {Interval::Point(1.0), Interval::Point(5.0)});
  IntervalSet i = a.Intersect(pts);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_FALSE(i.Contains(5.0));
}

TEST(IntervalSet, ComplementWithinDomain) {
  IntervalSet s = IntervalSet::FromIntervals(
      {Interval::ClosedOpen(1.0, 2.0), Interval::ClosedOpen(3.0, 4.0)});
  IntervalSet c = s.Complement(Interval::ClosedOpen(0.0, 5.0));
  // Expect [0,1), [2,3), [4,5).
  ASSERT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.Contains(0.5));
  EXPECT_TRUE(c.Contains(2.5));
  EXPECT_TRUE(c.Contains(4.5));
  EXPECT_FALSE(c.Contains(1.5));
  EXPECT_FALSE(c.Contains(3.5));
  // Double complement restores the clipped set.
  EXPECT_EQ(c.Complement(Interval::ClosedOpen(0.0, 5.0)), s);
}

TEST(IntervalSet, ComplementOfEmptyIsDomain) {
  IntervalSet empty;
  IntervalSet c = empty.Complement(Interval::Closed(1.0, 2.0));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.intervals()[0], Interval::Closed(1.0, 2.0));
}

TEST(IntervalSet, ComplementFlipsEndpointOpenness) {
  IntervalSet s(Interval::Open(1.0, 2.0));
  IntervalSet c = s.Complement(Interval::Closed(0.0, 3.0));
  // [0,1] and [2,3]: the boundary points 1 and 2 belong to the complement.
  EXPECT_TRUE(c.Contains(1.0));
  EXPECT_TRUE(c.Contains(2.0));
  EXPECT_FALSE(c.Contains(1.5));
}

TEST(IntervalSet, Difference) {
  IntervalSet a(Interval::Closed(0.0, 10.0));
  IntervalSet b(Interval::Open(2.0, 4.0));
  IntervalSet d = a.Difference(b);
  EXPECT_TRUE(d.Contains(2.0));
  EXPECT_FALSE(d.Contains(3.0));
  EXPECT_TRUE(d.Contains(4.0));
  EXPECT_NEAR(d.TotalLength(), 8.0, 1e-12);
}

TEST(IntervalSet, MinMaxAndContains) {
  IntervalSet s = IntervalSet::FromIntervals(
      {Interval::Closed(5.0, 6.0), Interval::Closed(1.0, 2.0)});
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 6.0);
  EXPECT_TRUE(s.Contains(5.5));
  EXPECT_FALSE(s.Contains(3.0));
}

TEST(IntervalSet, AllContainsEverything) {
  IntervalSet all = IntervalSet::All();
  EXPECT_TRUE(all.Contains(-1e300));
  EXPECT_TRUE(all.Contains(0.0));
  EXPECT_TRUE(all.Contains(1e300));
}

TEST(IntervalSet, EmptyIntervalsIgnored) {
  IntervalSet s;
  s.Add(Interval::ClosedOpen(1.0, 1.0));
  EXPECT_TRUE(s.IsEmpty());
}

// Property sweep: union/intersection against brute-force membership on a
// grid of probe points.
struct SetPair {
  std::vector<Interval> a;
  std::vector<Interval> b;
};

class IntervalSetAlgebra : public ::testing::TestWithParam<SetPair> {};

TEST_P(IntervalSetAlgebra, MatchesPointwiseSemantics) {
  const SetPair& p = GetParam();
  IntervalSet a = IntervalSet::FromIntervals(p.a);
  IntervalSet b = IntervalSet::FromIntervals(p.b);
  IntervalSet u = a.Union(b);
  IntervalSet i = a.Intersect(b);
  IntervalSet d = a.Difference(b);
  for (double t = -1.0; t <= 11.0; t += 0.125) {
    const bool in_a = a.Contains(t);
    const bool in_b = b.Contains(t);
    EXPECT_EQ(u.Contains(t), in_a || in_b) << "union at " << t;
    EXPECT_EQ(i.Contains(t), in_a && in_b) << "intersect at " << t;
    EXPECT_EQ(d.Contains(t), in_a && !in_b) << "difference at " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IntervalSetAlgebra,
    ::testing::Values(
        SetPair{{Interval::Closed(0.0, 5.0)}, {Interval::Closed(2.0, 7.0)}},
        SetPair{{Interval::ClosedOpen(0.0, 2.0),
                 Interval::ClosedOpen(4.0, 6.0)},
                {Interval::ClosedOpen(1.0, 5.0)}},
        SetPair{{Interval::Open(0.0, 10.0)},
                {Interval::Point(3.0), Interval::Point(5.0)}},
        SetPair{{Interval::Closed(0.0, 1.0), Interval::Closed(2.0, 3.0),
                 Interval::Closed(4.0, 5.0)},
                {Interval::OpenClosed(0.5, 2.5),
                 Interval::ClosedOpen(4.5, 9.0)}},
        SetPair{{}, {Interval::Closed(1.0, 2.0)}},
        SetPair{{Interval::Closed(1.0, 2.0)}, {}}));

}  // namespace
}  // namespace pulse
