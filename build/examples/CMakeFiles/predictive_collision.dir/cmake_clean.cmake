file(REMOVE_RECURSE
  "CMakeFiles/predictive_collision.dir/predictive_collision.cpp.o"
  "CMakeFiles/predictive_collision.dir/predictive_collision.cpp.o.d"
  "predictive_collision"
  "predictive_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
