#include "serve/frame.h"

#include <cstring>
#include <utility>

#include "serve/wire.h"

namespace pulse {
namespace serve {

namespace {

// Primitive writers/readers plus the tuple and segment body codecs live
// in serve/wire.h — shared with the durable segment store (src/store/),
// which persists records in the same byte layout the protocol ships.
using wire::Cursor;
using wire::GetF64;
using wire::GetI64;
using wire::GetSegment;
using wire::GetString;
using wire::GetTuple;
using wire::GetU16;
using wire::GetU32;
using wire::GetU64;
using wire::GetU8;
using wire::PutF64;
using wire::PutI64;
using wire::PutSegment;
using wire::PutString;
using wire::PutTuple;
using wire::PutU16;
using wire::PutU32;
using wire::PutU64;
using wire::PutU8;
using wire::Truncated;

Result<Frame> DecodePayload(const char* data, size_t size) {
  Cursor c{data, size};
  PULSE_ASSIGN_OR_RETURN(uint8_t type_byte, GetU8(&c, "frame type"));
  Frame frame;
  switch (static_cast<FrameType>(type_byte)) {
    case FrameType::kHello: {
      frame.type = FrameType::kHello;
      PULSE_ASSIGN_OR_RETURN(frame.version, GetU32(&c, "hello version"));
      break;
    }
    case FrameType::kOpenStream: {
      frame.type = FrameType::kOpenStream;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(frame.text, GetString(&c, "stream name"));
      break;
    }
    case FrameType::kTuple: {
      frame.type = FrameType::kTuple;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
      frame.tuples.push_back(std::move(t));
      break;
    }
    case FrameType::kTupleBatch: {
      frame.type = FrameType::kTupleBatch;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(uint32_t n, GetU32(&c, "batch size"));
      // Guard: each tuple needs >= 10 payload bytes, so a hostile count
      // cannot force a huge reserve ahead of the truncation check.
      if (static_cast<size_t>(n) * 10 > c.remaining()) {
        return Truncated("tuple batch");
      }
      frame.tuples.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
        frame.tuples.push_back(std::move(t));
      }
      break;
    }
    case FrameType::kSegment: {
      frame.type = FrameType::kSegment;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(Segment s, GetSegment(&c));
      frame.segments.push_back(std::move(s));
      break;
    }
    case FrameType::kFlow: {
      frame.type = FrameType::kFlow;
      PULSE_ASSIGN_OR_RETURN(frame.stream_id, GetU32(&c, "stream id"));
      PULSE_ASSIGN_OR_RETURN(uint8_t event, GetU8(&c, "flow event"));
      if (event > static_cast<uint8_t>(FlowEvent::kShed)) {
        return Status::IoError("unknown flow event " +
                                std::to_string(event));
      }
      frame.flow_event = static_cast<FlowEvent>(event);
      PULSE_ASSIGN_OR_RETURN(frame.flow_count, GetU64(&c, "flow count"));
      break;
    }
    case FrameType::kOutputSegment: {
      frame.type = FrameType::kOutputSegment;
      PULSE_ASSIGN_OR_RETURN(Segment s, GetSegment(&c));
      frame.segments.push_back(std::move(s));
      break;
    }
    case FrameType::kOutputTuple: {
      frame.type = FrameType::kOutputTuple;
      PULSE_ASSIGN_OR_RETURN(Tuple t, GetTuple(&c));
      frame.tuples.push_back(std::move(t));
      break;
    }
    case FrameType::kDrain:
      frame.type = FrameType::kDrain;
      break;
    case FrameType::kDrained:
      frame.type = FrameType::kDrained;
      break;
    case FrameType::kError: {
      frame.type = FrameType::kError;
      PULSE_ASSIGN_OR_RETURN(frame.text, GetString(&c, "error message"));
      break;
    }
    case FrameType::kBye:
      frame.type = FrameType::kBye;
      break;
    case FrameType::kProvisional: {
      frame.type = FrameType::kProvisional;
      PULSE_ASSIGN_OR_RETURN(frame.lineage, GetU64(&c, "lineage id"));
      PULSE_ASSIGN_OR_RETURN(frame.bound, GetF64(&c, "provisional bound"));
      PULSE_ASSIGN_OR_RETURN(Segment s, GetSegment(&c));
      frame.segments.push_back(std::move(s));
      break;
    }
    case FrameType::kConfirm: {
      frame.type = FrameType::kConfirm;
      PULSE_ASSIGN_OR_RETURN(frame.lineage, GetU64(&c, "lineage id"));
      break;
    }
    case FrameType::kRetract: {
      frame.type = FrameType::kRetract;
      PULSE_ASSIGN_OR_RETURN(frame.lineage, GetU64(&c, "lineage id"));
      PULSE_ASSIGN_OR_RETURN(frame.retract_reason,
                             GetU8(&c, "retract reason"));
      if (frame.retract_reason > 1) {
        return Status::IoError(
            "unknown retract reason " +
            std::to_string(frame.retract_reason));
      }
      break;
    }
    default:
      return Status::IoError("unknown frame type " +
                              std::to_string(type_byte));
  }
  if (c.pos != c.size) {
    return Status::IoError(
        "frame payload has " + std::to_string(c.size - c.pos) +
        " trailing byte(s) after " +
        FrameTypeToString(static_cast<FrameType>(type_byte)));
  }
  return frame;
}

}  // namespace

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "Hello";
    case FrameType::kOpenStream:
      return "OpenStream";
    case FrameType::kTuple:
      return "Tuple";
    case FrameType::kTupleBatch:
      return "TupleBatch";
    case FrameType::kSegment:
      return "Segment";
    case FrameType::kFlow:
      return "Flow";
    case FrameType::kOutputSegment:
      return "OutputSegment";
    case FrameType::kOutputTuple:
      return "OutputTuple";
    case FrameType::kDrain:
      return "Drain";
    case FrameType::kDrained:
      return "Drained";
    case FrameType::kError:
      return "Error";
    case FrameType::kBye:
      return "Bye";
    case FrameType::kProvisional:
      return "Provisional";
    case FrameType::kConfirm:
      return "Confirm";
    case FrameType::kRetract:
      return "Retract";
  }
  return "Unknown";
}

const char* FlowEventToString(FlowEvent event) {
  switch (event) {
    case FlowEvent::kPaused:
      return "Paused";
    case FlowEvent::kResumed:
      return "Resumed";
    case FlowEvent::kDroppedOldest:
      return "DroppedOldest";
    case FlowEvent::kShed:
      return "Shed";
  }
  return "Unknown";
}

Frame Frame::Hello() {
  Frame f;
  f.type = FrameType::kHello;
  return f;
}

Frame Frame::OpenStream(uint32_t stream_id, std::string name) {
  Frame f;
  f.type = FrameType::kOpenStream;
  f.stream_id = stream_id;
  f.text = std::move(name);
  return f;
}

Frame Frame::OneTuple(uint32_t stream_id, Tuple tuple) {
  Frame f;
  f.type = FrameType::kTuple;
  f.stream_id = stream_id;
  f.tuples.push_back(std::move(tuple));
  return f;
}

Frame Frame::TupleBatch(uint32_t stream_id, std::vector<Tuple> tuples) {
  Frame f;
  f.type = FrameType::kTupleBatch;
  f.stream_id = stream_id;
  f.tuples = std::move(tuples);
  return f;
}

Frame Frame::OneSegment(uint32_t stream_id, Segment segment) {
  Frame f;
  f.type = FrameType::kSegment;
  f.stream_id = stream_id;
  f.segments.push_back(std::move(segment));
  return f;
}

Frame Frame::Flow(uint32_t stream_id, FlowEvent event, uint64_t count) {
  Frame f;
  f.type = FrameType::kFlow;
  f.stream_id = stream_id;
  f.flow_event = event;
  f.flow_count = count;
  return f;
}

Frame Frame::OutputSegment(Segment segment) {
  Frame f;
  f.type = FrameType::kOutputSegment;
  f.segments.push_back(std::move(segment));
  return f;
}

Frame Frame::OutputTuple(Tuple tuple) {
  Frame f;
  f.type = FrameType::kOutputTuple;
  f.tuples.push_back(std::move(tuple));
  return f;
}

Frame Frame::Drain() {
  Frame f;
  f.type = FrameType::kDrain;
  return f;
}

Frame Frame::Drained() {
  Frame f;
  f.type = FrameType::kDrained;
  return f;
}

Frame Frame::Error(std::string message) {
  Frame f;
  f.type = FrameType::kError;
  f.text = std::move(message);
  return f;
}

Frame Frame::Bye() {
  Frame f;
  f.type = FrameType::kBye;
  return f;
}

Frame Frame::Provisional(uint64_t lineage, double bound, Segment segment) {
  Frame f;
  f.type = FrameType::kProvisional;
  f.lineage = lineage;
  f.bound = bound;
  f.segments.push_back(std::move(segment));
  return f;
}

Frame Frame::Confirm(uint64_t lineage) {
  Frame f;
  f.type = FrameType::kConfirm;
  f.lineage = lineage;
  return f;
}

Frame Frame::Retract(uint64_t lineage, uint8_t reason) {
  Frame f;
  f.type = FrameType::kRetract;
  f.lineage = lineage;
  f.retract_reason = reason;
  return f;
}

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(frame.type));
  switch (frame.type) {
    case FrameType::kHello:
      PutU32(&payload, frame.version);
      break;
    case FrameType::kOpenStream:
      PutU32(&payload, frame.stream_id);
      PutString(&payload, frame.text);
      break;
    case FrameType::kTuple:
      PutU32(&payload, frame.stream_id);
      PutTuple(&payload, frame.tuples.at(0));
      break;
    case FrameType::kTupleBatch:
      PutU32(&payload, frame.stream_id);
      PutU32(&payload, static_cast<uint32_t>(frame.tuples.size()));
      for (const Tuple& t : frame.tuples) PutTuple(&payload, t);
      break;
    case FrameType::kSegment:
      PutU32(&payload, frame.stream_id);
      PutSegment(&payload, frame.segments.at(0));
      break;
    case FrameType::kFlow:
      PutU32(&payload, frame.stream_id);
      PutU8(&payload, static_cast<uint8_t>(frame.flow_event));
      PutU64(&payload, frame.flow_count);
      break;
    case FrameType::kOutputSegment:
      PutSegment(&payload, frame.segments.at(0));
      break;
    case FrameType::kOutputTuple:
      PutTuple(&payload, frame.tuples.at(0));
      break;
    case FrameType::kDrain:
    case FrameType::kDrained:
    case FrameType::kBye:
      break;
    case FrameType::kError:
      PutString(&payload, frame.text);
      break;
    case FrameType::kProvisional:
      PutU64(&payload, frame.lineage);
      PutF64(&payload, frame.bound);
      // A hand-built provisional with no segment encodes an empty one
      // rather than throwing out_of_range from inside the encoder.
      PutSegment(&payload,
                 frame.segments.empty() ? Segment() : frame.segments[0]);
      break;
    case FrameType::kConfirm:
      PutU64(&payload, frame.lineage);
      break;
    case FrameType::kRetract:
      PutU64(&payload, frame.lineage);
      PutU8(&payload, frame.retract_reason);
      break;
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

std::string EncodeFrameToString(const Frame& frame) {
  std::string out;
  EncodeFrame(frame, &out);
  return out;
}

FrameReader::FrameReader(DecodeLimits limits) : limits_(limits) {}

Status FrameReader::Feed(const char* data, size_t n) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "frame stream previously failed to decode");
  }
  buffer_.append(data, n);
  return Status::OK();
}

Result<std::optional<Frame>> FrameReader::Next() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "frame stream previously failed to decode");
  }
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::optional<Frame>{};
  Cursor c{buffer_.data() + consumed_, available};
  uint32_t len = *GetU32(&c, "length prefix");
  if (len > limits_.max_frame_bytes) {
    poisoned_ = true;
    return Status::IoError(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(limits_.max_frame_bytes));
  }
  if (available - 4 < len) return std::optional<Frame>{};
  Result<Frame> frame = DecodePayload(buffer_.data() + consumed_ + 4, len);
  if (!frame.ok()) {
    poisoned_ = true;
    return frame.status();
  }
  consumed_ += 4 + len;
  return std::optional<Frame>(std::move(*frame));
}

}  // namespace serve
}  // namespace pulse
