#ifndef PULSE_CORE_OPERATORS_EPOCH_H_
#define PULSE_CORE_OPERATORS_EPOCH_H_

#include <string>

#include "core/operators/pulse_operator.h"

namespace pulse {

/// Continuous-time realization of the tumbling `epoch` operator: splits
/// every incoming segment at epoch boundaries k*E (origin 0, half-open
/// [k*E, (k+1)*E) epochs) so that no output segment straddles a boundary.
/// Attributes pass through unchanged — polynomials are in absolute time,
/// so clipping a validity range never re-bases coefficients.
///
/// Unlike the discrete EpochMark, no `epoch` attribute is added: the
/// epoch index of an output segment is recoverable as
/// EpochIndexOf(range.lo, E), and adding an integer column to a
/// continuous segment would have no polynomial meaning. Downstream
/// per-epoch operators (PulseDistinct) re-derive the index the same way.
class PulseEpoch : public PulseOperator {
 public:
  PulseEpoch(std::string name, double epoch_seconds);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  double epoch_seconds() const { return epoch_seconds_; }

 private:
  double epoch_seconds_;
};

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_EPOCH_H_
