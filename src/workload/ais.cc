#include "workload/ais.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pulse {

namespace {
constexpr double kTwoPi = 6.28318530717958647692;
}  // namespace

AisGenerator::AisGenerator(AisOptions options)
    : options_(options), rng_(options.seed) {
  PULSE_CHECK(options_.num_vessels > 0);
  PULSE_CHECK(options_.tuple_rate > 0.0);
  now_ = options_.start_time;
  vessels_.resize(options_.num_vessels);
  for (size_t i = 0; i < vessels_.size(); ++i) {
    VesselState& v = vessels_[i];
    v.x = rng_.Uniform(0.0, options_.area);
    v.y = rng_.Uniform(0.0, options_.area);
    v.last_update = now_;
    NewLeg(&v, now_);
  }
  // Configure followers: vessel i shadows vessel i-1 for the configured
  // fraction (never vessel 0; leaders are non-followers).
  const size_t num_followers = static_cast<size_t>(
      options_.following_fraction * static_cast<double>(vessels_.size()));
  for (size_t k = 0; k < num_followers && 2 * k + 1 < vessels_.size();
       ++k) {
    const size_t follower = 2 * k + 1;
    const size_t leader = 2 * k;
    vessels_[follower].is_follower = true;
    vessels_[follower].leader = leader;
    // Start the follower at the configured offset from its leader.
    vessels_[follower].x = vessels_[leader].x + options_.follow_distance;
    vessels_[follower].y = vessels_[leader].y;
    follower_pairs_.emplace_back(follower, leader);
  }
}

std::shared_ptr<const Schema> AisGenerator::TupleSchema() {
  return Schema::Make({{"id", ValueType::kInt64},
                       {"x", ValueType::kDouble},
                       {"vx", ValueType::kDouble},
                       {"y", ValueType::kDouble},
                       {"vy", ValueType::kDouble}});
}

StreamSpec AisGenerator::MakeStreamSpec(std::string name,
                                        double segment_horizon) {
  StreamSpec spec;
  spec.name = std::move(name);
  spec.schema = TupleSchema();
  spec.key_field = "id";
  spec.models = {{"x", {"x", "vx"}}, {"y", {"y", "vy"}}};
  spec.segment_horizon = segment_horizon;
  return spec;
}

void AisGenerator::NewLeg(VesselState* v, double t) {
  const double angle = rng_.Uniform(0.0, kTwoPi);
  const double speed = options_.speed * rng_.Uniform(0.6, 1.4);
  v->vx = speed * std::cos(angle);
  v->vy = speed * std::sin(angle);
  v->next_leg_change = t + options_.leg_duration * rng_.Uniform(0.5, 1.5);
}

void AisGenerator::AdvanceVessel(size_t idx, double t) {
  VesselState& v = vessels_[idx];
  if (v.is_follower) {
    // Shadow the leader: advance the leader first, then hold station at
    // the offset with the leader's velocity.
    AdvanceVessel(v.leader, t);
    const VesselState& leader = vessels_[v.leader];
    v.x = leader.x + options_.follow_distance;
    v.y = leader.y;
    v.vx = leader.vx;
    v.vy = leader.vy;
    v.last_update = t;
    return;
  }
  const double dt = t - v.last_update;
  if (dt <= 0.0) return;
  v.x += v.vx * dt;
  v.y += v.vy * dt;
  v.last_update = t;
  if (t >= v.next_leg_change) NewLeg(&v, t);
  // Stay in the operating area.
  if (v.x < 0.0 || v.x > options_.area) {
    v.vx = -v.vx;
    v.x = std::clamp(v.x, 0.0, options_.area);
  }
  if (v.y < 0.0 || v.y > options_.area) {
    v.vy = -v.vy;
    v.y = std::clamp(v.y, 0.0, options_.area);
  }
}

Tuple AisGenerator::NextTuple() {
  const size_t idx = next_vessel_;
  next_vessel_ = (next_vessel_ + 1) % vessels_.size();
  AdvanceVessel(idx, now_);
  const VesselState& v = vessels_[idx];

  Tuple t;
  t.timestamp = now_;
  const double nx =
      options_.noise > 0.0 ? rng_.Gaussian(0.0, options_.noise) : 0.0;
  const double ny =
      options_.noise > 0.0 ? rng_.Gaussian(0.0, options_.noise) : 0.0;
  t.values = {Value(static_cast<int64_t>(idx)), Value(v.x + nx),
              Value(v.vx), Value(v.y + ny), Value(v.vy)};
  now_ += 1.0 / options_.tuple_rate;
  return t;
}

std::vector<Tuple> AisGenerator::Generate(size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextTuple());
  return out;
}

}  // namespace pulse
