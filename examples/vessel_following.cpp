// Vessel-following detector: the paper's AIS scenario (Section V-B).
//
// A synthetic Coast-Guard-style feed of vessel positions runs through the
// "following" query: a continuous self-join on proximity, a derived
// dist^2 model, a per-pair sliding average, and a HAVING filter. The
// continuous join solves for the exact time ranges during which two
// vessels sail within the threshold of each other.
//
// Build & run:  ./build/examples/vessel_following
#include <cstdio>
#include <set>

#include "core/operators/join.h"
#include "core/runtime.h"
#include "workload/ais.h"
#include "workload/queries.h"

using namespace pulse;

int main() {
  QuerySpec spec;
  Status st = spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  FollowingParams params;
  params.join_window = 10.0;
  params.avg_window = 120.0;
  params.avg_slide = 10.0;
  params.threshold = 1000.0;  // paper: having avg(dist) < 1000
  Result<QuerySpec::NodeId> sink = AddFollowingQuery(&spec, params);
  if (!sink.ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    return 1;
  }

  PredictiveRuntime::Options options;
  options.bounds = {BoundSpec::Relative("avg_dist2", 0.0005)};  // 0.05%
  Result<PredictiveRuntime> runtime =
      PredictiveRuntime::Make(spec, options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }

  AisOptions gen_options;
  gen_options.num_vessels = 30;
  gen_options.tuple_rate = 200.0;
  gen_options.leg_duration = 90.0;
  gen_options.following_fraction = 0.2;
  gen_options.follow_distance = 400.0;
  gen_options.noise = 1.0;
  AisGenerator generator(gen_options);
  std::printf("ground truth: %zu follower pairs configured\n",
              generator.follower_pairs().size());

  std::set<std::pair<Key, Key>> detected;
  for (int i = 0; i < 80000; ++i) {
    st = runtime->ProcessTuple("ais", generator.NextTuple());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    for (const Segment& s : runtime->TakeOutputSegments()) {
      Key a = 0, b = 0;
      SplitKeys(s.key, &a, &b);
      auto pair = std::minmax(a, b);
      if (detected.insert({pair.first, pair.second}).second) {
        std::printf(
            "following detected: vessels %lld and %lld during %s\n",
            (long long)pair.first, (long long)pair.second,
            s.range.ToString().c_str());
      }
    }
  }
  (void)runtime->Finish();

  const RuntimeStats& stats = runtime->stats();
  std::printf("\n--- session summary ---\n");
  std::printf("reports processed: %llu\n",
              (unsigned long long)stats.tuples_in);
  std::printf("model-validated  : %llu (%.1f%%)\n",
              (unsigned long long)stats.tuples_validated,
              100.0 * stats.tuples_validated / stats.tuples_in);
  std::printf("pairs detected   : %zu\n", detected.size());
  return 0;
}
