// Tiered-store benchmark (docs/STORAGE.md): recovery time as a
// function of log size, and tree-served historical range aggregates
// against the no-index baseline, written to BENCH_storage.json.
//
// Scenarios:
//   recover      — a store directory holding N logged segments is
//                  reopened with SegmentStore::Recover (scan + torn-tail
//                  check + checkpoint reconcile + timeline/tree
//                  rebuild). One row per log size; the interesting shape
//                  is records_per_sec staying flat as the log grows
//                  (recovery is a linear replay).
//   replay_query — the baseline a store without the tree would run: a
//                  linear scan over the full per-key timeline per range
//                  query, clipping each overlapping segment exactly
//                  (this is what replaying the log per historical query
//                  costs). Answers are checked against the tree's.
//   tree_query   — the same queries served by SegmentStore::QueryRange
//                  (O(log n) pre-aggregated node payloads + two exact
//                  edge leaves). The `speedup` field on this row is
//                  replay seconds / tree seconds; the check.sh storage
//                  gate requires >= 5x.
//
// Each scenario repetition is bracketed by the fixed floating-point
// calibration kernel (same policy as bench_solver_hotpath): the median
// rep by work-per-calibration-op is kept and the JSON records the
// bracketing calibration throughput, so the checked-in baseline
// survives host load swings. Everything here is single-threaded, so
// core_bound is honestly false unless the host reports one core.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "math/polynomial.h"
#include "model/segment.h"
#include "obs/metrics.h"
#include "store/store.h"
#include "util/rng.h"

namespace pulse {
namespace {

namespace fs = std::filesystem;

constexpr int kRepeats = 3;
constexpr uint64_t kRecoverSizes[] = {4096, 16384, 65536};
constexpr uint64_t kQueryLeaves = 32768;
constexpr uint64_t kNumQueries = 256;
constexpr double kEpochLength = 10.0;

// Sink keeping the calibration loop observable.
volatile double g_calibration_sink = 0.0;

// The same fixed reference kernel as bench_solver_hotpath: its
// throughput tracks how fast the host runs *right now*, and the
// check.sh gate compares work-per-calibration-op.
double MeasureCalibrationOpsPerSec() {
  constexpr size_t kIters = 10000000;
  double x = 1.0;
  const double s = bench::MeasureSeconds([&] {
    for (size_t i = 0; i < kIters; ++i) {
      x = x * 1.000000119 + 1e-9;
      if (x > 2.0) x -= 1.0;
    }
  });
  g_calibration_sink = g_calibration_sink + x;
  return static_cast<double>(kIters) / s;
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "pulse_bench_store_XXXXXX").string();
    char* got = ::mkdtemp(tmpl.data());
    path = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

// Contiguous mixed-degree segments for one key/attribute: the modeled
// series every scenario queries. Same shape as the segment-tree oracle
// test's leaves so bench and test exercise the same polynomial paths.
std::vector<Segment> MakeSeries(uint64_t n) {
  Rng rng(271828);
  std::vector<Segment> out;
  out.reserve(n);
  double t = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double len = rng.Uniform(0.1, 2.0);
    Segment seg(1, Interval::ClosedOpen(t, t + len));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        seg.attributes["x"] = Polynomial({rng.Uniform(-5.0, 5.0)});
        break;
      case 1:
        seg.attributes["x"] =
            Polynomial({rng.Uniform(-5.0, 5.0), rng.Uniform(-1.0, 1.0)});
        break;
      default:
        seg.attributes["x"] =
            Polynomial({rng.Uniform(-5.0, 5.0), rng.Uniform(-1.0, 1.0),
                        rng.Uniform(-0.5, 0.5), rng.Uniform(-0.1, 0.1)});
        break;
    }
    out.push_back(std::move(seg));
    t += len;
  }
  return out;
}

// Fills a fresh store directory with `segments` and seals a checkpoint
// (the state a drained durable server leaves behind).
bool PopulateDir(const std::string& dir, const std::vector<Segment>& segments,
                 uint64_t* log_bytes) {
  Result<store::SegmentStore> st =
      store::SegmentStore::Open({.dir = dir, .epoch_length = kEpochLength});
  if (!st.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 st.status().ToString().c_str());
    return false;
  }
  for (const Segment& seg : segments) {
    if (Status s = st->AppendSegment("series", seg); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return false;
    }
  }
  if (Status s = st->WriteCheckpoint(/*finished=*/true); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return false;
  }
  *log_bytes = st->log_bytes();
  return true;
}

struct RepData {
  double seconds = 0.0;
  double calib = 0.0;
};

// Median by work-per-calibration-op (same statistic as the solver
// bench: mid-distribution on both baseline and gate runs).
RepData MedianRep(std::vector<RepData> reps) {
  std::sort(reps.begin(), reps.end(), [](const RepData& a, const RepData& b) {
    return (1.0 / a.seconds) / a.calib < (1.0 / b.seconds) / b.calib;
  });
  return reps[reps.size() / 2];
}

struct RecoverResult {
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  RepData rep;
};

RecoverResult RunRecover(uint64_t n) {
  RecoverResult out;
  out.log_records = n;
  const std::vector<Segment> series = MakeSeries(n);
  std::vector<RepData> reps;
  for (int rep = 0; rep < kRepeats; ++rep) {
    TempDir dir;
    if (dir.path.empty() ||
        !PopulateDir(dir.path, series, &out.log_bytes)) {
      return out;
    }
    RepData r;
    const double calib_before = MeasureCalibrationOpsPerSec();
    r.seconds = bench::MeasureSeconds([&] {
      Result<store::RecoveredStore> rec = store::SegmentStore::Recover(
          {.dir = dir.path, .epoch_length = kEpochLength});
      if (!rec.ok() || !rec->report.clean() ||
          rec->store.log_records() != n) {
        std::fprintf(stderr, "recovery wrong: %s\n",
                     rec.ok() ? rec->report.ToString().c_str()
                              : rec.status().ToString().c_str());
        std::exit(1);
      }
    });
    r.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    reps.push_back(r);
  }
  out.rep = MedianRep(std::move(reps));
  return out;
}

// The no-index baseline: clip every timeline segment against the query
// range with the store's closed-range convention (a segment ending
// exactly at lo is excluded; one starting exactly at hi contributes a
// point). Linear in the timeline — the cost of replaying history per
// query.
store::RangeAggregate ReplayQuery(const std::vector<Segment>& timeline,
                                  double lo, double hi) {
  store::RangeAggregate out;
  for (const Segment& seg : timeline) {
    if (seg.range.hi <= lo) continue;
    if (seg.range.lo > hi) break;  // timelines are time-ordered
    const double a = std::max(seg.range.lo, lo);
    const double b = std::min(seg.range.hi, hi);
    const auto it = seg.attributes.find("x");
    if (it == seg.attributes.end()) continue;
    out.Combine(store::AggregatePolynomial(it->second, a, b));
  }
  return out;
}

struct QueryBenchResult {
  RepData replay;
  RepData tree;
  double max_rel_diff = 0.0;  // worst integral disagreement, sanity
  obs::MetricsSnapshot metrics;
};

QueryBenchResult RunQueries() {
  QueryBenchResult out;
  const std::vector<Segment> series = MakeSeries(kQueryLeaves);
  const double t_end = series.back().range.hi;

  obs::MetricsRegistry registry;
  TempDir dir;
  uint64_t log_bytes = 0;
  if (dir.path.empty() || !PopulateDir(dir.path, series, &log_bytes)) {
    return out;
  }
  Result<store::RecoveredStore> rec = store::SegmentStore::Recover(
      {.dir = dir.path, .epoch_length = kEpochLength, .metrics = &registry});
  if (!rec.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 rec.status().ToString().c_str());
    return out;
  }
  store::SegmentStore& st = rec->store;
  const std::vector<Segment>* timeline = st.Timeline("series", 1);
  if (timeline == nullptr) {
    std::fprintf(stderr, "timeline missing\n");
    return out;
  }

  // Dashboard-style ranges: random offsets, widths up to 10% of the
  // modeled history.
  Rng rng(314159);
  std::vector<std::pair<double, double>> ranges;
  ranges.reserve(kNumQueries);
  for (uint64_t i = 0; i < kNumQueries; ++i) {
    const double width = rng.Uniform(0.0, 0.1 * t_end);
    const double lo = rng.Uniform(0.0, t_end - width);
    ranges.emplace_back(lo, lo + width);
  }

  // Answers must agree before timings mean anything.
  for (const auto& [lo, hi] : ranges) {
    const store::RangeAggregate a = ReplayQuery(*timeline, lo, hi);
    const store::RangeAggregate b = st.QueryRange("series", 1, "x", lo, hi);
    if (a.count != b.count) {
      std::fprintf(stderr, "tree/replay count mismatch on [%f, %f]\n", lo,
                   hi);
      std::exit(1);
    }
    const double denom = std::max(1.0, std::fabs(a.integral));
    out.max_rel_diff = std::max(
        out.max_rel_diff, std::fabs(a.integral - b.integral) / denom);
  }
  if (out.max_rel_diff > 1e-9) {
    std::fprintf(stderr, "tree/replay integral drift %.3g\n",
                 out.max_rel_diff);
    std::exit(1);
  }

  volatile double sink = 0.0;
  std::vector<RepData> replay_reps;
  std::vector<RepData> tree_reps;
  for (int rep = 0; rep < kRepeats; ++rep) {
    RepData r;
    double calib_before = MeasureCalibrationOpsPerSec();
    r.seconds = bench::MeasureSeconds([&] {
      for (const auto& [lo, hi] : ranges) {
        sink = sink + ReplayQuery(*timeline, lo, hi).integral;
      }
    });
    r.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    replay_reps.push_back(r);

    RepData t;
    calib_before = MeasureCalibrationOpsPerSec();
    t.seconds = bench::MeasureSeconds([&] {
      for (const auto& [lo, hi] : ranges) {
        sink = sink + st.QueryRange("series", 1, "x", lo, hi).integral;
      }
    });
    t.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    tree_reps.push_back(t);
  }
  g_calibration_sink = g_calibration_sink + sink;
  out.replay = MedianRep(std::move(replay_reps));
  out.tree = MedianRep(std::move(tree_reps));
  out.metrics = registry.Snapshot();
  return out;
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  std::printf(
      "Tiered segment store: recovery scaling + tree vs replay range "
      "queries\n(median of %d reps per scenario, "
      "calibration-normalized)\n\n",
      kRepeats);

  bench::BenchReport report("storage");
  report.ParamUint("repeats", static_cast<uint64_t>(kRepeats));
  report.ParamDouble("epoch_length", kEpochLength);
  report.ParamUint("query_leaves", kQueryLeaves);
  report.ParamUint("queries", kNumQueries);
  report.ParamUint("hardware_concurrency", bench::HardwareConcurrency());

  bench::SeriesTable recover_table("Recovery time vs log size",
                                   "log_records",
                                   {"seconds", "records_per_sec"});
  for (uint64_t n : kRecoverSizes) {
    const RecoverResult r = RunRecover(n);
    if (r.rep.seconds == 0.0) return 1;
    const double rps = static_cast<double>(n) / r.rep.seconds;
    recover_table.AddRow(static_cast<double>(n), {r.rep.seconds, rps});
    report.AddRow()
        .String("scenario", "recover")
        .Uint("log_records", r.log_records)
        .Uint("log_bytes", r.log_bytes)
        .Double("seconds", r.rep.seconds)
        .Double("records_per_sec", rps)
        .Double("queries_per_sec", 0.0)
        .Double("speedup", 1.0)
        .Double("calibration_ops_per_sec", r.rep.calib)
        .Bool("core_bound", bench::CoreBound(1));
  }
  recover_table.Print();

  const QueryBenchResult q = RunQueries();
  if (q.replay.seconds == 0.0 || q.tree.seconds == 0.0) return 1;
  const double replay_qps =
      static_cast<double>(kNumQueries) / q.replay.seconds;
  const double tree_qps = static_cast<double>(kNumQueries) / q.tree.seconds;
  const double speedup = q.replay.seconds / q.tree.seconds;
  std::printf(
      "\nRange queries over %llu segments (%llu queries):\n"
      "  replay  %12.0f queries/s\n"
      "  tree    %12.0f queries/s   (%.1fx, worst integral drift %.2g)\n",
      static_cast<unsigned long long>(kQueryLeaves),
      static_cast<unsigned long long>(kNumQueries), replay_qps, tree_qps,
      speedup, q.max_rel_diff);

  report.AddRow()
      .String("scenario", "replay_query")
      .Uint("log_records", kQueryLeaves)
      .Uint("log_bytes", 0)
      .Double("seconds", q.replay.seconds)
      .Double("records_per_sec", 0.0)
      .Double("queries_per_sec", replay_qps)
      .Double("speedup", 1.0)
      .Double("calibration_ops_per_sec", q.replay.calib)
      .Bool("core_bound", bench::CoreBound(1));
  report.AddRow()
      .String("scenario", "tree_query")
      .Uint("log_records", kQueryLeaves)
      .Uint("log_bytes", 0)
      .Double("seconds", q.tree.seconds)
      .Double("records_per_sec", 0.0)
      .Double("queries_per_sec", tree_qps)
      .Double("speedup", speedup)
      .Double("calibration_ops_per_sec", q.tree.calib)
      .Bool("core_bound", bench::CoreBound(1));
  report.AttachMetrics(q.metrics);

  if (!report.WriteFile("BENCH_storage.json")) return 1;
  std::printf("\nWrote BENCH_storage.json.\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, q.metrics)) return 1;
  return 0;
}
