#ifndef PULSE_CORE_SAMPLER_H_
#define PULSE_CORE_SAMPLER_H_

#include <string>
#include <vector>

#include "engine/tuple.h"
#include "model/segment.h"

namespace pulse {

/// Output discretization (paper Section III-C): once a processed segment
/// reaches an output stream, tuples are produced by sampling it. Selective
/// operators require a user-defined sampling rate; aggregates infer their
/// rate from the window slide.
struct SamplerOptions {
  /// Samples per second for range outputs.
  double rate = 10.0;
  /// When > 0, sample on the absolute grid k * slide (aggregate window
  /// closes) instead of the rate grid.
  double slide = 0.0;
};

/// Samples output segments into discrete tuples.
class Sampler {
 public:
  explicit Sampler(SamplerOptions options);

  /// Discretizes one segment. Produced tuples have layout
  ///   [key:int64, attr0:double, attr1:double, ...]
  /// with the sample time as the tuple timestamp; `attributes` picks the
  /// modeled attributes and their order. Point segments produce exactly
  /// one tuple at their instant.
  std::vector<Tuple> Sample(const Segment& segment,
                            const std::vector<std::string>& attributes) const;

  /// Convenience over a batch.
  std::vector<Tuple> SampleAll(
      const SegmentBatch& segments,
      const std::vector<std::string>& attributes) const;

 private:
  SamplerOptions options_;
};

}  // namespace pulse

#endif  // PULSE_CORE_SAMPLER_H_
