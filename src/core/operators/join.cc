#include "core/operators/join.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pulse {

Key CombineKeys(Key left, Key right) {
  PULSE_CHECK(left >= 0 && left <= 0x7fffffff);
  PULSE_CHECK(right >= 0 && right <= 0x7fffffff);
  return (left << 32) | right;
}

void SplitKeys(Key combined, Key* left, Key* right) {
  *left = combined >> 32;
  *right = combined & 0x7fffffff;
}

AttrResolver MakeBinaryResolver(const Segment& left, const Segment& right) {
  return [&left, &right](const AttrRef& ref) -> Result<Polynomial> {
    const Segment& seg = (ref.side == Side::kLeft) ? left : right;
    return seg.attribute(ref.name);
  };
}

PulseJoin::PulseJoin(std::string name, Predicate predicate,
                     PulseJoinOptions options)
    : PulseOperator(std::move(name)),
      predicate_(std::move(predicate)),
      options_(std::move(options)) {
  PULSE_CHECK(options_.window_seconds > 0.0);
  PULSE_CHECK(!(options_.match_keys && options_.require_distinct_keys));
}

bool PulseJoin::KeysAdmissible(const Segment& a, const Segment& b) const {
  if (options_.match_keys && a.key != b.key) return false;
  if (options_.require_distinct_keys && a.key == b.key) return false;
  return true;
}

void PulseJoin::Expire(double now) {
  const double horizon = now - options_.window_seconds;
  auto expire_side = [horizon](std::deque<Segment>* side) {
    while (!side->empty() && side->front().range.hi < horizon) {
      side->pop_front();
    }
  };
  expire_side(&left_);
  expire_side(&right_);
  if (options_.use_segment_index) {
    left_index_.ExpireBefore(horizon);
    right_index_.ExpireBefore(horizon);
  }
  // The lineage sweep is linear in stored outputs: run it periodically.
  if (now - last_lineage_expire_ > options_.window_seconds / 16.0) {
    lineage_.ExpireBefore(horizon);
    last_lineage_expire_ = now;
  }
}

Segment PulseJoin::MakeJoined(const Segment& left, const Segment& right,
                              const Interval& valid) const {
  Segment out;
  out.key = CombineKeys(left.key, right.key);
  out.range = valid;
  for (const auto& [name, poly] : left.attributes) {
    out.attributes[options_.left_prefix + name] = poly;
  }
  for (const auto& [name, poly] : right.attributes) {
    out.attributes[options_.right_prefix + name] = poly;
  }
  for (const auto& [name, v] : left.unmodeled) {
    out.unmodeled[options_.left_prefix + name] = v;
  }
  for (const auto& [name, v] : right.unmodeled) {
    out.unmodeled[options_.right_prefix + name] = v;
  }
  out.unmodeled[options_.left_prefix + "key"] =
      static_cast<double>(left.key);
  out.unmodeled[options_.right_prefix + "key"] =
      static_cast<double>(right.key);
  return out;
}

Status PulseJoin::MatchPartners(size_t port, const Segment& segment,
                                const std::vector<const Segment*>& partners,
                                SegmentBatch* out) {
  struct Pair {
    const Segment* left;
    const Segment* right;
    Interval overlap;
  };
  std::vector<Pair> pairs;
  pairs.reserve(partners.size());
  for (const Segment* partner : partners) {
    if (!KeysAdmissible(segment, *partner)) continue;
    const Segment* left = (port == 0) ? &segment : partner;
    const Segment* right = (port == 0) ? partner : &segment;
    const Interval overlap = left->range.Intersect(right->range);
    if (overlap.IsEmpty()) continue;
    pairs.push_back(Pair{left, right, overlap});
  }
  if (pairs.empty()) return Status::OK();
  metrics_.solves += pairs.size();
  PULSE_SPAN("join/match_partners");

  // Each pair is an independent equation system: fan the solves out
  // across the pool. Conjunctive predicates (the common case) go through
  // the EquationSystem batch API; boolean trees solve the full predicate
  // per pair. Both keep solutions in pair order. Task and solution
  // buffers are operator members reused across pushes (grown, never
  // shrunk), so once warm the fan-out performs no allocation.
  std::vector<IntervalSet>& solutions = solution_scratch_;
  if (predicate_.IsConjunctive()) {
    if (task_scratch_.size() < pairs.size()) {
      task_scratch_.resize(pairs.size());
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      const Pair& p = pairs[i];
      PULSE_RETURN_IF_ERROR(predicate_.BuildSystemInto(
          MakeBinaryResolver(*p.left, *p.right), &task_scratch_[i].system));
      task_scratch_[i].domain = p.overlap;
    }
    PULSE_RETURN_IF_ERROR(SolveSystemsInto(task_scratch_.data(),
                                           pairs.size(), options_.method,
                                           pool_, solve_cache_, &solutions));
  } else {
    solutions.resize(pairs.size());
    auto solve_one = [&](size_t i) -> Status {
      static thread_local SolveScratch scratch;
      const Pair& p = pairs[i];
      const AttrResolver resolver = MakeBinaryResolver(*p.left, *p.right);
      PULSE_RETURN_IF_ERROR(
          predicate_.SolveInto(resolver, p.overlap, options_.method,
                               &scratch, solve_cache_, &solutions[i]));
      return Status::OK();
    };
    if (pool_ != nullptr && pool_->num_threads() > 1 && pairs.size() > 1) {
      PULSE_RETURN_IF_ERROR(pool_->ParallelFor(pairs.size(), solve_one));
    } else {
      for (size_t i = 0; i < pairs.size(); ++i) {
        PULSE_RETURN_IF_ERROR(solve_one(i));
      }
    }
  }

  // Serial emission in pair order: segment ids, lineage, and output
  // order are identical to the single-threaded engine's.
  for (size_t i = 0; i < pairs.size(); ++i) {
    for (const Interval& iv : solutions[i].intervals()) {
      Segment joined = MakeJoined(*pairs[i].left, *pairs[i].right, iv);
      joined.id = NextSegmentId();
      lineage_.Record(joined.id, iv,
                      {LineageEntry{0, *pairs[i].left},
                       LineageEntry{1, *pairs[i].right}});
      out->push_back(std::move(joined));
      ++metrics_.segments_out;
    }
  }
  return Status::OK();
}

Status PulseJoin::Process(size_t port, const Segment& segment,
                          SegmentBatch* out) {
  PULSE_CHECK(port < 2);
  ++metrics_.segments_in;
  latest_time_ = std::max(latest_time_, segment.range.lo);
  Expire(latest_time_);
  if (options_.use_segment_index) {
    // Indexed probing (future-work extension): only partner segments
    // overlapping the newcomer's range are examined.
    const SegmentIndex& partners =
        (port == 0) ? right_index_ : left_index_;
    std::vector<const Segment*> overlaps;
    if (options_.match_keys) {
      partners.QueryOverlapsWithKey(segment.range, segment.key, &overlaps);
    } else {
      partners.QueryOverlaps(segment.range, &overlaps);
    }
    PULSE_RETURN_IF_ERROR(MatchPartners(port, segment, overlaps, out));
    if (port == 0) {
      left_index_.Insert(segment);
    } else {
      right_index_.Insert(segment);
    }
    metrics_.state_size = left_index_.size() + right_index_.size();
    return Status::OK();
  }
  const std::deque<Segment>& partners = (port == 0) ? right_ : left_;
  std::vector<const Segment*> candidates;
  candidates.reserve(partners.size());
  for (const Segment& partner : partners) candidates.push_back(&partner);
  PULSE_RETURN_IF_ERROR(MatchPartners(port, segment, candidates, out));
  if (port == 0) {
    left_.push_back(segment);
  } else {
    right_.push_back(segment);
  }
  metrics_.state_size = left_.size() + right_.size();
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseJoin::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  // Bound translation: strip the side prefix to find the input attribute
  // the output column aliases (Section IV-B, "bound translations").
  std::set<std::pair<size_t, std::string>> deps;
  if (attribute.rfind(options_.left_prefix, 0) == 0) {
    deps.emplace(0, attribute.substr(options_.left_prefix.size()));
  } else if (attribute.rfind(options_.right_prefix, 0) == 0) {
    deps.emplace(1, attribute.substr(options_.right_prefix.size()));
  } else {
    return Status::InvalidArgument("join output attribute '" + attribute +
                                   "' lacks a side prefix");
  }
  // Inferences: every predicate attribute constrains the result.
  std::vector<AttrRef> refs;
  predicate_.CollectAttributes(&refs);
  for (const AttrRef& ref : refs) {
    deps.emplace(ref.side == Side::kLeft ? 0 : 1, ref.name);
  }

  std::vector<AllocatedBound> out;
  for (const auto& [port, input_attr] : deps) {
    std::vector<const Segment*> inputs;
    std::vector<const LineageEntry*> entries;
    for (const LineageEntry& e : *causes) {
      if (e.port == port) {
        inputs.push_back(&e.input);
        entries.push_back(&e);
      }
    }
    if (inputs.empty()) continue;
    SplitContext ctx;
    ctx.output = &output;
    ctx.attribute = attribute;
    ctx.margin = margin;
    ctx.inputs = inputs;
    ctx.input_attribute = input_attr;
    ctx.num_dependencies = deps.size();
    PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                           split.Apportion(ctx));
    for (size_t i = 0; i < allocs.size(); ++i) {
      allocs[i].port = entries[i]->port;
      allocs[i].segment_id = entries[i]->input.id;
      out.push_back(std::move(allocs[i]));
    }
  }
  return out;
}

Result<double> PulseJoin::ComputeSlack(size_t port,
                                       const Segment& segment) const {
  if (!predicate_.IsConjunctive()) return 0.0;
  double slack = std::numeric_limits<double>::infinity();
  const std::deque<Segment>& partners = (port == 0) ? right_ : left_;
  for (const Segment& partner : partners) {
    if (!KeysAdmissible(segment, partner)) continue;
    const Interval overlap = segment.range.Intersect(partner.range);
    if (overlap.IsEmpty()) continue;
    const Segment& l = (port == 0) ? segment : partner;
    const Segment& r = (port == 0) ? partner : segment;
    const AttrResolver resolver = MakeBinaryResolver(l, r);
    PULSE_ASSIGN_OR_RETURN(EquationSystem system,
                           predicate_.BuildSystem(resolver));
    slack = std::min(slack, system.Slack(overlap));
  }
  return slack;
}

}  // namespace pulse
