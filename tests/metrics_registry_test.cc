// Contract suite for the observability layer (src/obs/): counter, gauge,
// and histogram semantics, the bucket and percentile math against a
// brute-force sorted oracle, snapshot consistency under concurrent
// writers (runs under TSan in scripts/check.sh), view metrics, spans,
// and golden files for the JSON and Prometheus exporters.
#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/span.h"
#include "util/json.h"
#include "util/rng.h"

namespace pulse {
namespace obs {
namespace {

TEST(CounterTest, AddIncrementStoreValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Store(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.Set(-1e-9);
  EXPECT_EQ(g.value(), -1e-9);
  g.Set(0.0);
  EXPECT_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------------
// Bucket math

TEST(HistogramBucketTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 4; ++v) {
    const size_t b = Histogram::BucketOf(v);
    EXPECT_EQ(b, v);
    const auto [lo, hi] = Histogram::BucketBounds(b);
    EXPECT_EQ(lo, v);
    EXPECT_EQ(hi, v + 1);
  }
}

TEST(HistogramBucketTest, EveryValueLandsInsideItsBucketBounds) {
  Rng rng(11);
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 5000; ++v) values.push_back(v);
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t base = uint64_t{1} << shift;
    for (int64_t d : {-2, -1, 0, 1, 2}) {
      if (d < 0 && base < static_cast<uint64_t>(-d)) continue;
      values.push_back(base + static_cast<uint64_t>(d));
    }
  }
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform 64-bit values: every octave gets coverage.
    const int shift = static_cast<int>(rng.UniformInt(0, 63));
    values.push_back((uint64_t{1} << shift) |
                     static_cast<uint64_t>(rng.UniformInt(0, 1 << 30)));
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (const uint64_t v : values) {
    const size_t b = Histogram::BucketOf(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "value " << v;
    const auto [lo, hi] = Histogram::BucketBounds(b);
    EXPECT_GE(v, lo) << "value " << v << " bucket " << b;
    // The top bucket saturates: its bound is inclusive of UINT64_MAX.
    if (hi == std::numeric_limits<uint64_t>::max()) {
      EXPECT_LE(v, hi) << "value " << v << " bucket " << b;
    } else {
      EXPECT_LT(v, hi) << "value " << v << " bucket " << b;
    }
  }
}

TEST(HistogramBucketTest, BucketsAreContiguousAndAtMost25PercentWide) {
  for (size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    const auto [lo, hi] = Histogram::BucketBounds(b);
    const auto [next_lo, next_hi] = Histogram::BucketBounds(b + 1);
    ASSERT_LT(lo, hi) << "bucket " << b;
    EXPECT_EQ(hi, next_lo) << "gap after bucket " << b;
    // Width <= 25% of the lower bound (the histogram's error contract),
    // modulo the exact unit buckets at the bottom.
    if (lo >= 4) {
      EXPECT_LE(hi - lo, lo / 4 + 1) << "bucket " << b;
    }
  }
}

// ---------------------------------------------------------------------
// Recording and percentile math

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0.0);  // empty
  for (uint64_t v : {5u, 1u, 100u, 0u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.max(), 100u);
}

// The percentile estimate interpolates inside the bucket holding the
// target order statistic, so the estimate must lie within that bucket's
// value range — checked against a brute-force sorted oracle.
void CheckPercentilesAgainstOracle(const Histogram& h,
                                   std::vector<uint64_t> sorted) {
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  for (const double p :
       {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const double target = std::max(1.0, p / 100.0 * static_cast<double>(n));
    const size_t idx = static_cast<size_t>(std::ceil(target)) - 1;
    const uint64_t truth = sorted[std::min(idx, n - 1)];
    const auto [lo, hi] = Histogram::BucketBounds(Histogram::BucketOf(truth));
    const double est = h.Percentile(p);
    EXPECT_GE(est, static_cast<double>(lo)) << "p" << p;
    EXPECT_LE(est, static_cast<double>(std::min(hi, h.max()) ))
        << "p" << p << " truth " << truth;
  }
}

TEST(HistogramTest, PercentileMatchesSortedOracleUniform) {
  Histogram h;
  Rng rng(17);
  std::vector<uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<uint64_t>(rng.UniformInt(0, 1000000)));
    h.Record(values.back());
  }
  CheckPercentilesAgainstOracle(h, values);
}

TEST(HistogramTest, PercentileMatchesSortedOracleLogUniform) {
  Histogram h;
  Rng rng(23);
  std::vector<uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    // Latency-shaped: spans many octaves, like span timings do.
    const int shift = static_cast<int>(rng.UniformInt(4, 40));
    values.push_back(
        (uint64_t{1} << shift) +
        static_cast<uint64_t>(rng.UniformInt(0, int64_t{1} << shift)));
    h.Record(values.back());
  }
  CheckPercentilesAgainstOracle(h, values);
}

TEST(HistogramTest, PercentileSingleValueIsExactWithinBucket) {
  Histogram h;
  h.Record(1000);
  // One observation: every percentile collapses to its bucket, clamped
  // to the recorded max.
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    const auto [lo, hi] = Histogram::BucketBounds(Histogram::BucketOf(1000));
    EXPECT_GE(h.Percentile(p), static_cast<double>(lo));
    EXPECT_LE(h.Percentile(p), 1000.0) << "clamped to max";
    (void)hi;
  }
}

// ---------------------------------------------------------------------
// Registry: handles, views, snapshots

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("runtime/tuples_in");
  EXPECT_EQ(registry.GetCounter("runtime/tuples_in"), c);
  c->Add(5);
  Gauge* g = registry.GetGauge("op/join/state_size");
  g->Set(12.0);
  Histogram* h = registry.GetHistogram("span/solve/batch");
  h->Record(100);
  EXPECT_EQ(registry.size(), 3u);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("runtime/tuples_in"), 5u);
  EXPECT_EQ(snap.gauges.at("op/join/state_size"), 12.0);
  EXPECT_EQ(snap.histograms.at("span/solve/batch").count, 1u);
  EXPECT_EQ(snap.histograms.at("span/solve/batch").max, 100u);
}

TEST(MetricsRegistryTest, ViewsReadForeignCountersAndUnbindOnRelease) {
  MetricsRegistry registry;
  RelaxedCounter in;
  RelaxedCounter state;
  {
    ViewGroup group;
    registry.BindViews(&group);
    group.AddCounterView("op/filter/in", &in);
    group.AddGaugeView("op/filter/state_size", &state);
    in += 3;
    state = 9;
    const MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("op/filter/in"), 3u);
    EXPECT_EQ(snap.gauges.at("op/filter/state_size"), 9.0);
  }
  // Group destroyed: the registry no longer reads the (now notionally
  // dead) sources.
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.count("op/filter/in"), 0u);
  EXPECT_EQ(snap.gauges.count("op/filter/state_size"), 0u);
}

TEST(MetricsRegistryTest, DuplicateViewNamesGetSuffixedNotMerged) {
  MetricsRegistry registry;
  RelaxedCounter a;
  RelaxedCounter b;
  a += 1;
  b += 2;
  ViewGroup group;
  registry.BindViews(&group);
  group.AddCounterView("op/join/in", &a);
  group.AddCounterView("op/join/in", &b);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("op/join/in"), 1u);
  EXPECT_EQ(snap.counters.at("op/join/in#2"), 2u);
}

TEST(MetricsRegistryTest, SnapshotIsConsistentUnder8WriterThreads) {
  MetricsRegistry registry;
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 20000;
  Counter* shared = registry.GetCounter("shared");
  Histogram* hist = registry.GetHistogram("lat");
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Counter* own = registry.GetCounter("w" + std::to_string(w));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        own->Increment();
        shared->Add(1);
        hist->Record(i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots: totals are bounded and monotone while writers
  // run (relaxed counters never go backwards).
  uint64_t last_shared = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Snapshot();
    const uint64_t s = snap.counters.at("shared");
    EXPECT_LE(s, kWriters * kPerWriter);
    EXPECT_GE(s, last_shared);
    last_shared = s;
    EXPECT_LE(snap.histograms.at("lat").count, kWriters * kPerWriter);
  }
  for (std::thread& t : writers) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"), kWriters * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(snap.counters.at("w" + std::to_string(w)), kPerWriter);
  }
  const HistogramStats& lat = snap.histograms.at("lat");
  EXPECT_EQ(lat.count, kWriters * kPerWriter);
  EXPECT_EQ(lat.max, kPerWriter - 1);
  EXPECT_EQ(lat.sum, kWriters * (kPerWriter * (kPerWriter - 1) / 2));
}

// ---------------------------------------------------------------------
// Spans

TEST(SpanTest, RecordsIntoTheScopedRegistry) {
  MetricsRegistry registry;
  {
    ScopedMetricsRegistry scoped(&registry);
    for (int i = 0; i < 3; ++i) {
      PULSE_SPAN("test/unit_span");
    }
  }
  const MetricsSnapshot snap = registry.Snapshot();
  if (kMetricsEnabled) {
    ASSERT_EQ(snap.histograms.count("span/test/unit_span"), 1u);
    EXPECT_EQ(snap.histograms.at("span/test/unit_span").count, 3u);
  } else {
    EXPECT_TRUE(snap.empty());
  }
}

TEST(SpanTest, SiteRebindsWhenTheScopedRegistryChanges) {
  MetricsRegistry a;
  MetricsRegistry b;
  auto emit = [] { PULSE_SPAN("test/rebind_span"); };
  {
    ScopedMetricsRegistry scoped(&a);
    emit();
  }
  {
    ScopedMetricsRegistry scoped(&b);
    emit();
    emit();
  }
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  EXPECT_EQ(a.Snapshot().histograms.at("span/test/rebind_span").count, 1u);
  EXPECT_EQ(b.Snapshot().histograms.at("span/test/rebind_span").count, 2u);
}

// Regression: the span-site cache must not key on the registry address
// alone. Short-lived runtimes allocate their registries back-to-back,
// so a fresh registry routinely lands at the previous one's recycled
// address; a pointer-keyed cache then serves a histogram pointer into
// the destroyed registry's freed map nodes and Record() corrupts the
// heap (glibc "corrupted size vs. prev_size" in differential seeds
// with aggregate/having plans). The epoch-keyed cache re-resolves.
TEST(SpanTest, SiteRebindsWhenARegistryIsRecreatedAtTheSameAddress) {
  auto emit = [] { PULSE_SPAN("test/reuse_span"); };
  // Many create/scope/destroy cycles: with the glibc allocator the
  // same-size registry reliably recycles an address within a few
  // iterations, which is what triggers the ABA on a pointer-keyed
  // cache. Each cycle's snapshot must see exactly its own record.
  for (int i = 0; i < 16; ++i) {
    auto registry = std::make_unique<MetricsRegistry>();
    ScopedMetricsRegistry scoped(registry.get());
    emit();
    if (!kMetricsEnabled) continue;
    EXPECT_EQ(
        registry->Snapshot().histograms.at("span/test/reuse_span").count,
        1u)
        << "cycle " << i;
  }
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
}

// ---------------------------------------------------------------------
// Exporters (golden files)

MetricsSnapshot GoldenSnapshot() {
  MetricsSnapshot snap;
  snap.counters["runtime/tuples_in"] = 42;
  snap.gauges["op/join/state_size"] = 7.0;
  HistogramStats h;
  h.count = 3;
  h.sum = 30;
  h.max = 16;
  h.p50 = 8.0;
  h.p95 = 15.5;
  h.p99 = 16.0;
  snap.histograms["span/solve/batch"] = h;
  return snap;
}

TEST(ExportTest, JsonGolden) {
  json::Writer writer(0);  // compact: a one-line golden
  WriteJson(GoldenSnapshot(), writer);
  EXPECT_EQ(writer.Take(),
            "{\"counters\":{\"runtime/tuples_in\":42},"
            "\"gauges\":{\"op/join/state_size\":7},"
            "\"histograms\":{\"span/solve/batch\":"
            "{\"count\":3,\"sum\":30,\"max\":16,"
            "\"p50\":8,\"p95\":15.5,\"p99\":16}}}");
}

TEST(ExportTest, JsonParsesBackStructurally) {
  const std::string doc = ToJson(GoldenSnapshot());
  Result<json::Value> parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << doc;
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("runtime/tuples_in")->as_number(), 42.0);
  const json::Value* hist =
      parsed->Find("histograms")->Find("span/solve/batch");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->as_number(), 3.0);
  EXPECT_EQ(hist->Find("p95")->as_number(), 15.5);
}

TEST(ExportTest, PrometheusGolden) {
  EXPECT_EQ(ToPrometheus(GoldenSnapshot()),
            "# TYPE pulse_runtime_tuples_in counter\n"
            "pulse_runtime_tuples_in 42\n"
            "# TYPE pulse_op_join_state_size gauge\n"
            "pulse_op_join_state_size 7\n"
            "# TYPE pulse_span_solve_batch summary\n"
            "pulse_span_solve_batch{quantile=\"0.5\"} 8\n"
            "pulse_span_solve_batch{quantile=\"0.95\"} 15.5\n"
            "pulse_span_solve_batch{quantile=\"0.99\"} 16\n"
            "pulse_span_solve_batch_sum 30\n"
            "pulse_span_solve_batch_count 3\n"
            "pulse_span_solve_batch_max 16\n");
}

TEST(ExportTest, PrometheusNameSanitization) {
  EXPECT_EQ(PrometheusName("op/join.2/in"), "pulse_op_join_2_in");
  EXPECT_EQ(PrometheusName("already_ok_123"), "pulse_already_ok_123");
}

}  // namespace
}  // namespace obs
}  // namespace pulse

