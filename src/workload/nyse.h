#ifndef PULSE_WORKLOAD_NYSE_H_
#define PULSE_WORKLOAD_NYSE_H_

#include <memory>
#include <vector>

#include "core/query.h"
#include "engine/tuple.h"
#include "util/rng.h"

namespace pulse {

/// Synthetic NYSE TAQ-like trade feed.
///
/// The paper replays trade prices from the January 2006 TAQ release
/// (schema: time, symbol, price, quantity). That dataset is proprietary;
/// this generator substitutes a per-symbol trending random walk that
/// preserves the properties the MACD experiment depends on: piecewise-
/// smooth per-key price series whose local drift fits low-degree
/// polynomials, interleaved across many symbols with Zipf-skewed trade
/// frequency. The `dprice` field exposes the symbol's current drift
/// (price change per second) so predictive MODEL clauses can build
/// linear price models, mirroring how the original system fit trends.
struct NyseOptions {
  size_t num_symbols = 100;
  /// Aggregate trade rate (tuples/second).
  double tuple_rate = 3000.0;
  double base_price = 50.0;
  /// Price drift magnitude ($/second) while a trend lasts.
  double drift = 0.02;
  /// Trades per symbol between drift changes.
  size_t trades_per_trend = 200;
  /// Per-trade price noise (bid/ask bounce), in dollars.
  double noise = 0.0;
  /// Zipf skew for symbol popularity (0 = uniform).
  double zipf_skew = 0.8;
  double start_time = 0.0;
  uint64_t seed = 42;
};

class NyseGenerator {
 public:
  explicit NyseGenerator(NyseOptions options);

  /// Schema (symbol:int64, price:double, dprice:double, qty:int64).
  static std::shared_ptr<const Schema> TupleSchema();

  /// Stream spec with MODEL price = price + dprice * t.
  static StreamSpec MakeStreamSpec(std::string name,
                                   double segment_horizon);

  Tuple NextTuple();
  std::vector<Tuple> Generate(size_t n);

  double now() const { return now_; }

 private:
  struct SymbolState {
    double price = 0.0;
    double drift = 0.0;
    double last_update = 0.0;
    size_t trades_since_trend = 0;
  };

  void Retrend(SymbolState* sym);

  NyseOptions options_;
  Rng rng_;
  ZipfDistribution zipf_;
  std::vector<SymbolState> symbols_;
  double now_ = 0.0;
};

}  // namespace pulse

#endif  // PULSE_WORKLOAD_NYSE_H_
