// Reproduces paper Fig. 5i: filter microbenchmark. Throughput of the
// continuous-time filter vs the discrete tuple filter as model
// expressiveness (tuples that fit one model segment) varies, with a 1%
// error threshold (Fig. 6 parameters: stream rate 6000-20000 tup/s).
//
// Paper shape: the tuple filter's throughput is flat (one trivial
// comparison per tuple); the continuous filter's throughput grows with
// tuples/segment (the solve amortizes) and crosses over only at a high
// fit (~1050 tuples/segment in the paper) because a plain filter is the
// cheapest possible discrete operator.
#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kTraceTuples = 60000;
constexpr double kArea = 10000.0;

std::vector<Tuple> MakeTrace(size_t tuples_per_segment) {
  MovingObjectOptions opts;
  opts.num_objects = 10;
  opts.tuple_rate = 10000.0;
  opts.tuples_per_segment = tuples_per_segment;
  opts.area = kArea;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(kTraceTuples);
}

QuerySpec FilterQuery(size_t tuples_per_segment) {
  QuerySpec spec;
  // Horizon: one segment's wall-clock duration (10 objects at 10k tup/s).
  const double horizon =
      static_cast<double>(tuples_per_segment) * 10.0 / 10000.0;
  StreamSpec stream =
      MovingObjectGenerator::MakeStreamSpec("objects", horizon);
  (void)spec.AddStream(std::move(stream));
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(kArea / 2.0)));
  spec.AddFilter("filter", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

void BM_TupleFilter(benchmark::State& state) {
  const std::vector<Tuple> trace =
      MakeTrace(static_cast<size_t>(state.range(0)));
  const QuerySpec spec = FilterQuery(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Result<DiscretePlan> plan = BuildDiscretePlan(spec);
    Result<Executor> exec = Executor::Make(std::move(plan->plan));
    exec->set_discard_output(true);
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(exec->PushTuple("objects", t));
    }
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}

void BM_PulseFilter(benchmark::State& state) {
  const std::vector<Tuple> trace =
      MakeTrace(static_cast<size_t>(state.range(0)));
  const QuerySpec spec = FilterQuery(state.range(0));
  uint64_t solves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("x", 0.01)};  // 1% threshold
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt =
        PredictiveRuntime::Make(spec, std::move(opts));
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(rt->ProcessTuple("objects", t));
    }
    solves = rt->stats().segments_pushed;
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.counters["segments"] = static_cast<double>(solves);
}

BENCHMARK(BM_TupleFilter)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PulseFilter)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pulse

BENCHMARK_MAIN();
