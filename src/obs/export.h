#ifndef PULSE_OBS_EXPORT_H_
#define PULSE_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace pulse {
namespace obs {

/// Writes `snapshot` as one JSON object value into an in-progress
/// document:
///
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count":..,"sum":..,"max":..,
///                            "p50":..,"p95":..,"p99":..}, ...}}
///
/// bench_util embeds this as the `metrics` block of BENCH_*.json; the
/// standalone ToJson below wraps it into a full document.
void WriteJson(const MetricsSnapshot& snapshot, json::Writer& writer);

/// `snapshot` as a complete JSON document.
std::string ToJson(const MetricsSnapshot& snapshot, int indent = 2);

/// `snapshot` in Prometheus text exposition format (one
/// `# TYPE`-annotated family per metric; histograms as summaries with
/// quantile labels plus _sum/_count/_max series). Metric names are
/// sanitized ([^a-zA-Z0-9_] -> '_') and prefixed with `pulse_`.
std::string ToPrometheus(const MetricsSnapshot& snapshot);

/// Prometheus-legal series name for a registry metric name (exposed for
/// golden-file tests).
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace pulse

#endif  // PULSE_OBS_EXPORT_H_
