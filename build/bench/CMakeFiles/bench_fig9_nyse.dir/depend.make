# Empty dependencies file for bench_fig9_nyse.
# This may be replaced when dependencies are built.
