#include "core/query.h"

#include <set>

namespace pulse {

Status QuerySpec::AddStream(StreamSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  if (spec.schema == nullptr) {
    return Status::InvalidArgument("stream schema must not be null");
  }
  if (!spec.schema->HasField(spec.key_field)) {
    return Status::InvalidArgument("key field '" + spec.key_field +
                                   "' not in schema of '" + spec.name + "'");
  }
  for (const ModelClause& m : spec.models) {
    for (const std::string& f : m.coefficient_fields) {
      if (!spec.schema->HasField(f)) {
        return Status::InvalidArgument("coefficient field '" + f +
                                       "' not in schema of '" + spec.name +
                                       "'");
      }
    }
  }
  auto [it, inserted] = streams_.emplace(spec.name, std::move(spec));
  if (!inserted) {
    return Status::AlreadyExists("stream '" + it->first +
                                 "' already declared");
  }
  return Status::OK();
}

QuerySpec::NodeId QuerySpec::AddFilter(std::string name, Input input,
                                       FilterSpec spec) {
  Node node;
  node.kind = OpKind::kFilter;
  node.name = std::move(name);
  node.inputs = {std::move(input)};
  node.filter = std::make_shared<FilterSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

QuerySpec::NodeId QuerySpec::AddJoin(std::string name, Input left,
                                     Input right, JoinSpec spec) {
  Node node;
  node.kind = OpKind::kJoin;
  node.name = std::move(name);
  node.inputs = {std::move(left), std::move(right)};
  node.join = std::make_shared<JoinSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

QuerySpec::NodeId QuerySpec::AddAggregate(std::string name, Input input,
                                          AggregateSpec spec) {
  Node node;
  node.kind = OpKind::kAggregate;
  node.name = std::move(name);
  node.inputs = {std::move(input)};
  node.aggregate = std::make_shared<AggregateSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

QuerySpec::NodeId QuerySpec::AddMap(std::string name, Input input,
                                    MapSpec spec) {
  Node node;
  node.kind = OpKind::kMap;
  node.name = std::move(name);
  node.inputs = {std::move(input)};
  node.map = std::make_shared<MapSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

QuerySpec::NodeId QuerySpec::AddEpoch(std::string name, Input input,
                                      EpochSpec spec) {
  Node node;
  node.kind = OpKind::kEpoch;
  node.name = std::move(name);
  node.inputs = {std::move(input)};
  node.epoch = std::make_shared<EpochSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

QuerySpec::NodeId QuerySpec::AddDistinct(std::string name, Input input,
                                         DistinctSpec spec) {
  Node node;
  node.kind = OpKind::kDistinct;
  node.name = std::move(name);
  node.inputs = {std::move(input)};
  node.distinct = std::make_shared<DistinctSpec>(std::move(spec));
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

Result<StreamSpec> QuerySpec::stream(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' not declared");
  }
  return it->second;
}

std::vector<QuerySpec::NodeId> QuerySpec::SinkNodes() const {
  std::set<NodeId> consumed;
  for (const Node& node : nodes_) {
    for (const Input& in : node.inputs) {
      if (!in.is_stream) consumed.insert(in.node);
    }
  }
  std::vector<NodeId> sinks;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (consumed.count(id) == 0) sinks.push_back(id);
  }
  return sinks;
}

}  // namespace pulse
