#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pulse {
namespace obs {

namespace {

// Prometheus floats: integral values render without exponent noise.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

void WriteJson(const MetricsSnapshot& snapshot, json::Writer& writer) {
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    writer.Key(name).Uint(value);
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    writer.Key(name).Double(value);
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    writer.Key(name).BeginObject();
    writer.Key("count").Uint(h.count);
    writer.Key("sum").Uint(h.sum);
    writer.Key("max").Uint(h.max);
    writer.Key("p50").Double(h.p50);
    writer.Key("p95").Double(h.p95);
    writer.Key("p99").Double(h.p99);
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
}

std::string ToJson(const MetricsSnapshot& snapshot, int indent) {
  json::Writer writer(indent);
  WriteJson(snapshot, writer);
  return writer.Take();
}

std::string PrometheusName(const std::string& name) {
  std::string out = "pulse_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) || c == '_' ? c : '_';
  }
  return out;
}

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + FormatNumber(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + FormatNumber(h.p50) + "\n";
    out += p + "{quantile=\"0.95\"} " + FormatNumber(h.p95) + "\n";
    out += p + "{quantile=\"0.99\"} " + FormatNumber(h.p99) + "\n";
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
    out += p + "_max " + std::to_string(h.max) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace pulse
