#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/operators/join.h"
#include "core/precision.h"
#include "core/runtime.h"
#include "core/transform.h"
#include "engine/epoch.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/sharded_runtime.h"
#include "store/recovery.h"
#include "util/cpu_features.h"
#include "util/logging.h"

namespace pulse {
namespace testing {

namespace {

// Allowed slop when locating a time inside solver-produced coverage:
// root refinement stops at kRootTolerance (1e-10), so any boundary of a
// Pulse validity range is within that of the exact predicate root.
constexpr double kTimeGuard = 1e-6;
// Identifies "the same instant" across representations (grid timestamps
// are re-derived by identical fp accumulation, so this only absorbs the
// round trip through close-index arithmetic).
constexpr double kGridEps = 1e-9;

double Tol(double bound) { return 1e-6 * std::max(1.0, bound); }

bool Near(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

bool CmpHolds(double lhs, CmpOp op, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
  }
  return false;
}

// The sample grid, re-derived with the exact fp accumulation ToTuples
// uses so timestamps match bitwise.
std::vector<double> SampleGrid(const StreamWorkload& ws, double dt) {
  std::vector<double> grid;
  for (double t = ws.t_begin; t < ws.t_end - 1e-12; t += dt) {
    grid.push_back(t);
  }
  return grid;
}

// Per-key view of Pulse sink output: segments in arrival order (the
// last segment covering an instant is the current model — update
// semantics) plus their coverage union.
struct PulseTrack {
  std::vector<const Segment*> segments;
  IntervalSet coverage;
};

std::map<Key, PulseTrack> IndexByKey(const std::vector<Segment>& segments) {
  std::map<Key, PulseTrack> out;
  for (const Segment& s : segments) {
    if (s.range.IsEmpty()) continue;
    PulseTrack& track = out[s.key];
    track.segments.push_back(&s);
    track.coverage.Add(s.range);
  }
  return out;
}

// Last-arriving segment covering t; with `slack` > 0, ranges are widened
// by slack (hairline cracks between solver-produced ranges).
const Segment* FindCovering(const PulseTrack& track, double t,
                            double slack) {
  for (auto it = track.segments.rbegin(); it != track.segments.rend();
       ++it) {
    if ((*it)->range.Contains(t)) return *it;
  }
  if (slack > 0.0) {
    for (auto it = track.segments.rbegin(); it != track.segments.rend();
         ++it) {
      const Interval& r = (*it)->range;
      if (!r.IsEmpty() && t >= r.lo - slack && t <= r.hi + slack) {
        return *it;
      }
    }
  }
  return nullptr;
}

double DistanceToCoverage(const IntervalSet& coverage, double t) {
  double best = std::numeric_limits<double>::infinity();
  for (const Interval& iv : coverage.intervals()) {
    if (iv.Contains(t)) return 0.0;
    best = std::min(best, std::min(std::fabs(t - iv.lo),
                                   std::fabs(t - iv.hi)));
  }
  return best;
}

// True when [t - guard, t + guard] lies inside the coverage (interior
// instants, where both representations must agree unconditionally).
bool StrictlyInside(const IntervalSet& coverage, double t, double guard) {
  return coverage.Contains(t) && coverage.Contains(t - guard) &&
         coverage.Contains(t + guard);
}

class Reporter {
 public:
  Reporter(DiffReport* report, size_t max) : report_(report), max_(max) {}

  void Add(Divergence d) {
    ++report_->divergence_count;
    if (report_->divergences.size() < max_) {
      report_->divergences.push_back(std::move(d));
    }
  }

  bool full() const { return report_->divergence_count >= max_; }

 private:
  DiffReport* report_;
  size_t max_;
};

// ---------------------------------------------------------------------
// Runs

struct DiscreteRun {
  std::vector<Tuple> output;
  std::shared_ptr<const Schema> schema;
  obs::MetricsSnapshot metrics;
};

Result<DiscreteRun> RunDiscrete(const GeneratedCase& kase) {
  PULSE_ASSIGN_OR_RETURN(DiscretePlan dp, BuildDiscretePlan(kase.spec));
  if (dp.sink_schemas.size() != 1) {
    return Status::InvalidArgument(
        "differential cases must have exactly one sink");
  }
  DiscreteRun run;
  run.schema = dp.sink_schemas[0];
  // Registry declared before the executor: the executor's view bindings
  // must release before the registry they point into dies.
  obs::MetricsRegistry registry;
  PULSE_ASSIGN_OR_RETURN(Executor exec, Executor::Make(std::move(dp.plan)));
  exec.set_metrics_registry(&registry);

  // Merge the per-stream tuple sequences into one arrival order:
  // timestamp-major, stream declaration order within a timestamp (stable
  // sort keeps each stream's internal key order).
  struct Item {
    size_t stream;
    Tuple tuple;
  };
  std::vector<Item> items;
  for (size_t i = 0; i < kase.workloads.size(); ++i) {
    for (Tuple& t : kase.workloads[i].ToTuples(kase.sample_dt)) {
      items.push_back(Item{i, std::move(t)});
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.tuple.timestamp < b.tuple.timestamp;
                   });
  for (const Item& item : items) {
    PULSE_RETURN_IF_ERROR(
        exec.PushTuple(kase.workloads[item.stream].name, item.tuple));
  }
  PULSE_RETURN_IF_ERROR(exec.Finish());
  run.output = exec.TakeOutput();
  run.metrics = registry.Snapshot();
  return run;
}

// Segment arrival order shared by every metamorphic variant.
struct SegmentFeed {
  std::vector<std::pair<size_t, Segment>> items;  // (workload idx, segment)
};

SegmentFeed MakeSegmentFeed(const GeneratedCase& kase) {
  SegmentFeed feed;
  for (size_t i = 0; i < kase.workloads.size(); ++i) {
    for (Segment& s : kase.workloads[i].ToSegments()) {
      feed.items.push_back({i, std::move(s)});
    }
  }
  std::stable_sort(feed.items.begin(), feed.items.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.range.lo < b.second.range.lo;
                   });
  return feed;
}

struct PulseRun {
  std::vector<Segment> segments;
  obs::MetricsSnapshot metrics;
  RuntimeStats stats;
};

Result<PulseRun> RunPulse(const GeneratedCase& kase, const SegmentFeed& feed,
                          size_t num_threads, bool cache) {
  HistoricalRuntime::Options options;
  options.collect_outputs = true;
  options.parallel.num_threads = num_threads;
  if (!cache) options.solve_cache = std::nullopt;
  PULSE_ASSIGN_OR_RETURN(HistoricalRuntime rt,
                         HistoricalRuntime::Make(kase.spec, options));
  for (const auto& [stream_idx, segment] : feed.items) {
    PULSE_RETURN_IF_ERROR(
        rt.ProcessSegment(kase.workloads[stream_idx].name, segment));
  }
  PULSE_RETURN_IF_ERROR(rt.Finish());
  PulseRun run;
  run.segments = rt.TakeOutputSegments();
  run.metrics = rt.metrics()->Snapshot();
  run.stats = rt.stats();
  return run;
}

// Replays the same segment feed through the key-partitioned
// shard-per-core runtime: the ShardRouter spreads keys over
// `num_shards` worker threads, each running its own HistoricalRuntime,
// and the sequence-number merge plus canonical finish sort must
// reassemble the output byte-identically to the serial unsharded run
// (docs/SHARDING.md).
Result<std::vector<Segment>> RunPulseSharded(const GeneratedCase& kase,
                                             const SegmentFeed& feed,
                                             size_t num_shards,
                                             size_t num_threads, bool cache) {
  shard::ShardedRuntimeOptions options;
  options.num_shards = num_shards;
  options.runtime.collect_outputs = true;
  options.runtime.parallel.num_threads = num_threads;
  if (!cache) options.runtime.solve_cache = std::nullopt;
  PULSE_ASSIGN_OR_RETURN(
      shard::ShardedRuntime rt,
      shard::ShardedRuntime::Make(kase.spec, std::move(options)));
  for (const auto& [stream_idx, segment] : feed.items) {
    PULSE_RETURN_IF_ERROR(
        rt.ProcessSegment(kase.workloads[stream_idx].name, segment));
  }
  PULSE_RETURN_IF_ERROR(rt.Finish());
  return rt.TakeOutputSegments();
}

// Drives the same segment feed through the in-process serving stack:
// frame codec (doubles as IEEE-754 bit patterns), session ingest
// queues, the min-seq merging micro-batched worker, and drain. The
// lossless configuration — kBlock backpressure, admission controller
// off — must deliver outputs byte-identical to the direct
// ProcessSegment replay above.
Result<std::vector<Segment>> RunPulseServing(const GeneratedCase& kase,
                                             const SegmentFeed& feed) {
  serve::ServerOptions options;
  options.spec = kase.spec;
  options.runtime.collect_outputs = true;
  options.session.policy = serve::BackpressurePolicy::kBlock;
  options.session.queue_capacity = 64;
  options.session.admission.enabled = false;
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<serve::StreamServer> server,
                         serve::StreamServer::Make(std::move(options)));
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<serve::Transport> conn,
                         server->ConnectInProcess());
  serve::ServeClient client(std::move(conn));
  PULSE_RETURN_IF_ERROR(client.Hello());
  for (size_t i = 0; i < kase.workloads.size(); ++i) {
    PULSE_RETURN_IF_ERROR(client.OpenStream(static_cast<uint32_t>(i),
                                            kase.workloads[i].name));
  }
  for (const auto& [stream_idx, segment] : feed.items) {
    PULSE_RETURN_IF_ERROR(
        client.SendSegment(static_cast<uint32_t>(stream_idx), segment));
  }
  PULSE_ASSIGN_OR_RETURN(serve::ServeClient::DrainResult drained,
                         client.Drain());
  if (drained.shed != 0 || drained.dropped != 0) {
    return Status::Internal(
        "lossless serving configuration shed/dropped input");
  }
  (void)client.Bye();
  server->Drain();
  return std::move(drained.output_segments);
}

// Kill-and-restore: feed the first k items through a durable runtime,
// checkpoint, destroy all process state, recover from disk, feed the
// rest, and stitch the three output stretches together. `verified` is
// recovery's own claim that the replayed prefix hash matched the
// checkpoint watermark; the caller additionally compares the stitched
// outputs against the uninterrupted base run.
struct KillRestoreRun {
  std::vector<Segment> segments;
  bool verified = false;
  std::string detail;
};

Result<KillRestoreRun> RunPulseKillRestore(const GeneratedCase& kase,
                                           const SegmentFeed& feed) {
  // A private temp directory per run: differential seeds execute
  // concurrently in the suite, so the store must not be shared.
  std::string dir_template =
      (std::filesystem::temp_directory_path() / "pulse_diff_store_XXXXXX")
          .string();
  if (mkdtemp(dir_template.data()) == nullptr) {
    return Status::IoError("mkdtemp failed for kill-restore variant");
  }
  struct DirCleanup {
    std::string dir;
    ~DirCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{dir_template};

  // Seed-derived midpoint: every seed kills at a different offset, so
  // the suite collectively covers early, middle, and late crashes.
  const size_t n = feed.items.size();
  const size_t k = n < 2 ? n : 1 + kase.seed % (n - 1);

  store::StoreOptions store_options;
  store_options.dir = dir_template;
  KillRestoreRun run;

  // Phase 1 — the doomed process: durable appends, partial delivery,
  // one mid-run checkpoint, then oblivion (scope exit drops the
  // runtime, the store, and the log writer without any orderly Finish).
  {
    PULSE_ASSIGN_OR_RETURN(store::SegmentStore store,
                           store::SegmentStore::Open(store_options));
    HistoricalRuntime::Options options;
    options.collect_outputs = true;
    PULSE_ASSIGN_OR_RETURN(HistoricalRuntime rt,
                           HistoricalRuntime::Make(kase.spec, options));
    for (size_t i = 0; i < k; ++i) {
      const auto& [stream_idx, segment] = feed.items[i];
      const std::string& stream = kase.workloads[stream_idx].name;
      PULSE_RETURN_IF_ERROR(store.AppendSegment(stream, segment));
      PULSE_RETURN_IF_ERROR(rt.ProcessSegment(stream, segment));
    }
    std::vector<Segment> delivered = rt.TakeOutputSegments();
    for (const Segment& segment : delivered) store.NoteDelivered(segment);
    PULSE_RETURN_IF_ERROR(store.WriteCheckpoint(/*finished=*/false));
    run.segments = std::move(delivered);
  }

  // Phase 2 — the restarted process: recover from disk alone and
  // finish the feed.
  PULSE_ASSIGN_OR_RETURN(
      store::RecoveredHistorical recovered,
      store::RecoverHistorical(kase.spec, {}, store_options));
  run.verified = recovered.state_verified;
  run.detail = recovered.verify_detail;
  if (!run.verified) return run;
  for (Segment& segment : recovered.pending_outputs) {
    run.segments.push_back(std::move(segment));
  }
  for (size_t i = k; i < n; ++i) {
    const auto& [stream_idx, segment] = feed.items[i];
    const std::string& stream = kase.workloads[stream_idx].name;
    PULSE_RETURN_IF_ERROR(recovered.store.AppendSegment(stream, segment));
    PULSE_RETURN_IF_ERROR(recovered.runtime.ProcessSegment(stream, segment));
  }
  PULSE_RETURN_IF_ERROR(recovered.runtime.Finish());
  for (Segment& segment : recovered.runtime.TakeOutputSegments()) {
    run.segments.push_back(std::move(segment));
  }
  return run;
}

// Adaptive-precision variant (docs/PRECISION.md): the same feed pushed
// through an AdaptiveRuntime under a seed-derived tier schedule. The
// middle third of the feed runs widened, with the tier rotating through
// the ladder every few items — so every seed exercises widening from
// exact, tier-to-tier episode switches, and the reconcile back to tier
// 0 — while the first and last thirds pin the schedule's endpoints so
// reconciliation and Finish-time settlement always both run.
struct PrecisionRun {
  std::vector<Segment> settled;
  std::vector<ProvisionalRecord> provisionals;
  std::vector<VerdictRecord> verdicts;
  PrecisionStats stats;
};

Result<PrecisionRun> RunPulsePrecision(const GeneratedCase& kase,
                                       const SegmentFeed& feed) {
  HistoricalRuntime::Options exact;
  exact.collect_outputs = true;
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<AdaptiveRuntime> rt,
                         AdaptiveRuntime::Make(kase.spec, exact));
  const size_t ladder = rt->precision_options().ladder.size();
  const size_t n = feed.items.size();
  const size_t third = n / 3;
  PrecisionRun run;
  for (size_t i = 0; i < n; ++i) {
    size_t tier = 0;
    if (third > 0 && i >= third && i < 2 * third) {
      tier = 1 + (kase.seed + i / 4) % ladder;
    }
    PULSE_RETURN_IF_ERROR(rt->SetTier(tier));
    const auto& [stream_idx, segment] = feed.items[i];
    PULSE_RETURN_IF_ERROR(
        rt->ProcessSegment(kase.workloads[stream_idx].name, segment));
    // Interleaved harvests mirror the serving worker's per-item flush
    // and pin the emission order (provisionals strictly before their
    // verdicts).
    for (Segment& s : rt->TakeSettledOutputs()) {
      run.settled.push_back(std::move(s));
    }
    for (ProvisionalRecord& p : rt->TakeProvisionals()) {
      run.provisionals.push_back(std::move(p));
    }
    for (VerdictRecord& v : rt->TakeVerdicts()) {
      run.verdicts.push_back(v);
    }
  }
  PULSE_RETURN_IF_ERROR(rt->Finish());
  for (Segment& s : rt->TakeSettledOutputs()) {
    run.settled.push_back(std::move(s));
  }
  for (ProvisionalRecord& p : rt->TakeProvisionals()) {
    run.provisionals.push_back(std::move(p));
  }
  for (VerdictRecord& v : rt->TakeVerdicts()) {
    run.verdicts.push_back(v);
  }
  run.stats = rt->stats();
  return run;
}

// The precision variant's bookkeeping checks: emission-order lineage
// discipline and the conservation identity. Returns an empty string
// when everything holds.
std::string CheckPrecisionAccounting(const PrecisionRun& run) {
  if (run.provisionals.size() != run.stats.provisional) {
    return "provisional records (" + std::to_string(run.provisionals.size()) +
           ") != stats.provisional (" +
           std::to_string(run.stats.provisional) + ")";
  }
  if (run.stats.provisional !=
      run.stats.confirmed + run.stats.retracted) {
    return "conservation: provisional " +
           std::to_string(run.stats.provisional) + " != confirmed " +
           std::to_string(run.stats.confirmed) + " + retracted " +
           std::to_string(run.stats.retracted);
  }
  if (run.stats.open() != 0) {
    return "open provisionals after Finish: " +
           std::to_string(run.stats.open());
  }
  if (run.verdicts.size() != run.stats.confirmed + run.stats.retracted) {
    return "verdict records (" + std::to_string(run.verdicts.size()) +
           ") != confirmed + retracted";
  }
  std::set<uint64_t> emitted;
  for (const ProvisionalRecord& p : run.provisionals) {
    if (p.lineage == 0) return "provisional with lineage 0";
    if (!emitted.insert(p.lineage).second) {
      return "duplicate provisional lineage " + std::to_string(p.lineage);
    }
  }
  std::set<uint64_t> settled;
  for (const VerdictRecord& v : run.verdicts) {
    if (emitted.count(v.lineage) == 0) {
      return "verdict for unknown lineage " + std::to_string(v.lineage);
    }
    if (!settled.insert(v.lineage).second) {
      return "lineage " + std::to_string(v.lineage) + " settled twice";
    }
  }
  if (settled.size() != emitted.size()) {
    return "lineages left unsettled: " +
           std::to_string(emitted.size() - settled.size());
  }
  return "";
}

// ---------------------------------------------------------------------
// Metamorphic comparison: byte-identical modulo segment ids (the global
// id counter advances across runs).

bool SameInterval(const Interval& a, const Interval& b) {
  return a.lo == b.lo && a.hi == b.hi && a.lo_open == b.lo_open &&
         a.hi_open == b.hi_open;
}

bool SamePolynomial(const Polynomial& a, const Polynomial& b) {
  if (a.degree() != b.degree() || a.IsZero() != b.IsZero()) return false;
  for (size_t i = 0; i <= a.degree(); ++i) {
    if (a.coeff(i) != b.coeff(i)) return false;
  }
  return true;
}

std::string CompareVariant(const std::vector<Segment>& base,
                           const std::vector<Segment>& other) {
  if (base.size() != other.size()) {
    return "segment count " + std::to_string(other.size()) + " vs " +
           std::to_string(base.size());
  }
  for (size_t i = 0; i < base.size(); ++i) {
    const Segment& a = base[i];
    const Segment& b = other[i];
    if (a.key != b.key) {
      return "segment " + std::to_string(i) + ": key " +
             std::to_string(b.key) + " vs " + std::to_string(a.key);
    }
    if (!SameInterval(a.range, b.range)) {
      return "segment " + std::to_string(i) + ": range " +
             b.range.ToString() + " vs " + a.range.ToString();
    }
    if (a.attributes.size() != b.attributes.size()) {
      return "segment " + std::to_string(i) + ": attribute count differs";
    }
    for (const auto& [name, poly] : a.attributes) {
      auto it = b.attributes.find(name);
      if (it == b.attributes.end()) {
        return "segment " + std::to_string(i) + ": attribute '" + name +
               "' missing";
      }
      if (!SamePolynomial(poly, it->second)) {
        return "segment " + std::to_string(i) + ": attribute '" + name +
               "' polynomial differs";
      }
    }
    if (a.unmodeled != b.unmodeled) {
      return "segment " + std::to_string(i) + ": unmodeled differs";
    }
  }
  return "";
}

// ---------------------------------------------------------------------
// Metrics invariants: both realizations report through the same
// MetricsRegistry namespace (docs/OBSERVABILITY.md), so behavioral
// properties of the counters themselves are checkable per seed.

uint64_t CounterOr0(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

// Operator names that registered the common per-operator counter subset
// (op/<name>/in — the prefix every realization emits).
std::set<std::string> OpNames(const obs::MetricsSnapshot& s) {
  std::set<std::string> names;
  for (const auto& [name, value] : s.counters) {
    if (name.rfind("op/", 0) != 0) continue;
    const size_t slash = name.rfind('/');
    if (name.compare(slash, std::string::npos, "/in") == 0) {
      names.insert(name.substr(3, slash - 3));
    }
  }
  return names;
}

void CheckMetricsInvariants(const DiscreteRun& discrete,
                            const PulseRun& base, const PulseRun& parallel,
                            DiffReport* report, Reporter* reporter) {
  if (!obs::kMetricsEnabled) return;  // registry compiled out

  // Name parity: every Pulse plan operator must be visible in the
  // discrete engine's registry under the same op/<name>/{in,out,
  // processing_ns} names (the discrete plan may add helper operators,
  // e.g. the ".key" grouping map, so inclusion is one-directional).
  const std::set<std::string> pulse_ops = OpNames(base.metrics);
  const std::set<std::string> discrete_ops = OpNames(discrete.metrics);
  ++report->metrics_checks;
  if (pulse_ops.empty()) {
    reporter->Add(Divergence{"metrics.op_names", 0.0, 0, "", 0.0, 0.0,
                             "pulse registry exposes no op/<name>/in "
                             "counters"});
  }
  for (const std::string& op : pulse_ops) {
    ++report->metrics_checks;
    if (discrete_ops.count(op) == 0) {
      reporter->Add(Divergence{"metrics.op_names", 0.0, 0, op, 0.0, 0.0,
                               "operator reported by the Pulse registry "
                               "but absent from the discrete registry"});
      continue;
    }
    for (const obs::MetricsSnapshot* snap :
         {&discrete.metrics, &base.metrics}) {
      for (const char* suffix : {"/out", "/processing_ns"}) {
        const std::string name = "op/" + op + suffix;
        if (snap->counters.count(name) == 0) {
          reporter->Add(Divergence{"metrics.op_names", 0.0, 0, name, 0.0,
                                   0.0, "common-subset counter missing"});
        }
      }
    }
  }

  // Solve-cache accounting identity, both serial and parallel runs:
  // every Lookup is a hit, a miss, or uncacheable.
  for (const auto& [label, run] :
       {std::pair<const char*, const PulseRun*>{"serial", &base},
        {"parallel", &parallel}}) {
    const uint64_t hits = CounterOr0(run->metrics, "solve_cache/hits");
    const uint64_t misses = CounterOr0(run->metrics, "solve_cache/misses");
    const uint64_t uncacheable =
        CounterOr0(run->metrics, "solve_cache/uncacheable");
    const uint64_t lookups = CounterOr0(run->metrics, "solve_cache/lookups");
    ++report->metrics_checks;
    if (hits + misses + uncacheable != lookups) {
      reporter->Add(Divergence{
          "metrics.cache_identity", 0.0, 0, label,
          static_cast<double>(lookups),
          static_cast<double>(hits + misses + uncacheable),
          "hits + misses + uncacheable != lookups"});
    }
  }

  // A single-threaded runtime must never hand work to the pool.
  ++report->metrics_checks;
  if (base.stats.tasks_spawned != 0 ||
      CounterOr0(base.metrics, "runtime/tasks_spawned") != 0) {
    reporter->Add(Divergence{
        "metrics.serial_tasks", 0.0, 0, "runtime/tasks_spawned", 0.0,
        static_cast<double>(base.stats.tasks_spawned),
        "num_threads == 1 but pool tasks were spawned"});
  }

  // Busy-interval union can never exceed the per-fan-out sum.
  ++report->metrics_checks;
  if (parallel.stats.parallel_solve_wall_ns >
      parallel.stats.parallel_solve_cpu_ns) {
    reporter->Add(Divergence{
        "metrics.wall_le_cpu", 0.0, 0, "runtime/parallel_solve_wall_ns",
        static_cast<double>(parallel.stats.parallel_solve_cpu_ns),
        static_cast<double>(parallel.stats.parallel_solve_wall_ns),
        "parallel wall time exceeds accumulated cpu time"});
  }
}

// ---------------------------------------------------------------------
// Pointwise matcher (filter / join / map sinks)

Status MatchPointwise(const GeneratedCase& kase, const DiscreteRun& discrete,
                      const std::vector<Segment>& pulse,
                      Reporter* reporter) {
  const std::map<Key, PulseTrack> by_key = IndexByKey(pulse);
  PULSE_ASSIGN_OR_RETURN(size_t key_idx,
                         discrete.schema->IndexOf(kase.sink.key_field));
  double vb = 0.0;
  for (const StreamWorkload& ws : kase.workloads) {
    vb = std::max(vb, ws.value_bound);
  }
  // Derived attributes (diff, dist^2-free here) stay O(2 vb).
  const double value_tol = Tol(2.0 * vb);

  // Attribute name -> discrete field index, resolved once.
  std::map<std::string, size_t> field_of;
  for (size_t i = 0; i < discrete.schema->num_fields(); ++i) {
    field_of[discrete.schema->field(i).name] = i;
  }

  // Direction A: every discrete sink tuple must lie in the Pulse
  // coverage of its key, with matching attribute values.
  const StreamWorkload& grid_ws = kase.workloads[0];
  std::map<std::pair<Key, int64_t>, size_t> discrete_present;
  for (const Tuple& tuple : discrete.output) {
    if (reporter->full()) return Status::OK();
    const Key key = tuple.at(key_idx).as_int64();
    const int64_t j = static_cast<int64_t>(
        std::llround((tuple.timestamp - grid_ws.t_begin) / kase.sample_dt));
    ++discrete_present[{key, j}];

    auto it = by_key.find(key);
    const Segment* covering =
        it == by_key.end()
            ? nullptr
            : FindCovering(it->second, tuple.timestamp, kTimeGuard);
    if (covering == nullptr) {
      reporter->Add(Divergence{
          "pointwise.uncovered", tuple.timestamp, key, "", 0.0, 0.0,
          "discrete sink tuple has no Pulse validity range (coverage "
          "distance " +
              std::to_string(it == by_key.end()
                                 ? std::numeric_limits<double>::infinity()
                                 : DistanceToCoverage(it->second.coverage,
                                                      tuple.timestamp)) +
              ")"});
      continue;
    }
    for (const auto& [name, poly] : covering->attributes) {
      auto fit = field_of.find(name);
      if (fit == field_of.end()) continue;  // not observable discretely
      const double expected = poly.Evaluate(tuple.timestamp);
      const double actual = tuple.at(fit->second).as_double();
      if (!Near(expected, actual, value_tol)) {
        reporter->Add(Divergence{"pointwise.value", tuple.timestamp, key,
                                 name, expected, actual,
                                 "model value vs discrete tuple value"});
      }
    }
  }
  for (const auto& [loc, count] : discrete_present) {
    if (count > 1) {
      reporter->Add(Divergence{
          "pointwise.duplicate",
          grid_ws.t_begin + static_cast<double>(loc.second) * kase.sample_dt,
          loc.first, "", 1.0, static_cast<double>(count),
          "duplicate discrete sink tuples for one (key, instant)"});
    }
  }

  // Direction B: every grid instant strictly inside a key's Pulse
  // coverage must have produced a discrete sink tuple.
  const std::vector<double> grid = SampleGrid(grid_ws, kase.sample_dt);
  for (const auto& [key, track] : by_key) {
    for (size_t j = 0; j < grid.size(); ++j) {
      if (reporter->full()) return Status::OK();
      if (!StrictlyInside(track.coverage, grid[j], kTimeGuard)) continue;
      auto it = discrete_present.find({key, static_cast<int64_t>(j)});
      if (it == discrete_present.end()) {
        reporter->Add(Divergence{
            "pointwise.missing", grid[j], key, "", 0.0, 0.0,
            "instant inside Pulse validity has no discrete sink tuple"});
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Aggregate-series matcher (windowed aggregate sinks, optional HAVING)

Status MatchAggregate(const GeneratedCase& kase, const DiscreteRun& discrete,
                      const std::vector<Segment>& pulse,
                      Reporter* reporter) {
  const SinkInfo& sink = kase.sink;
  const StreamWorkload& ws = kase.workloads[0];
  const std::string& attr = "x";
  const double w = sink.window_seconds;
  const double slide = sink.slide_seconds;
  const bool is_minmax =
      sink.fn == AggFn::kMin || sink.fn == AggFn::kMax;
  const std::vector<double> grid = SampleGrid(ws, kase.sample_dt);
  const double t_last = grid.back();
  const std::map<Key, PulseTrack> by_key = IndexByKey(pulse);
  const double vb = ws.value_bound;
  // Continuous sum values scale with the window length.
  const double scale = sink.fn == AggFn::kSum ? vb * w : vb;
  const double value_tol = Tol(scale);
  // HAVING comparability guard: each engine's filter input is checked
  // against that engine's own oracle, so the guard only absorbs the
  // oracle-vs-engine fp gap, not the discretization gap.
  const double having_guard = Tol(scale);

  PULSE_ASSIGN_OR_RETURN(size_t value_idx,
                         discrete.schema->IndexOf(sink.value_attribute));
  size_t group_idx = 0;
  if (sink.per_key) {
    PULSE_ASSIGN_OR_RETURN(group_idx, discrete.schema->IndexOf("group"));
  }

  std::vector<Key> groups;
  if (sink.per_key) {
    for (const KeyTrack& track : ws.tracks) groups.push_back(track.key);
  } else {
    groups.push_back(0);  // pseudo-group spanning all keys
  }

  // Index discrete output by (close index, group). Tuples past the last
  // grid time are Flush()-emitted partial windows — explained, ignored.
  std::map<std::pair<int64_t, Key>, double> discrete_at;
  for (const Tuple& tuple : discrete.output) {
    if (tuple.timestamp > t_last + kGridEps) continue;
    const int64_t k =
        static_cast<int64_t>(std::llround((tuple.timestamp - w) / slide));
    if (k < 0 || !Near(tuple.timestamp, w + static_cast<double>(k) * slide,
                       kGridEps)) {
      reporter->Add(Divergence{"aggregate.close_time", tuple.timestamp, 0,
                               sink.value_attribute, 0.0, 0.0,
                               "discrete output at a non-close timestamp"});
      continue;
    }
    const Key g =
        sink.per_key ? tuple.at(group_idx).as_int64() : Key{0};
    auto [it, inserted] =
        discrete_at.insert({{k, g}, tuple.at(value_idx).as_double()});
    if (!inserted) {
      reporter->Add(Divergence{"aggregate.duplicate", tuple.timestamp, g,
                               sink.value_attribute, 0.0, 0.0,
                               "duplicate discrete close for one group"});
    }
  }

  // Per close and group: the discrete grid oracle replays the windowed
  // accumulator bit-exactly (same samples, same update order), so the
  // discrete engine is held to exact agreement; the continuous oracle
  // integrates the ground-truth polynomials for the Pulse side.
  size_t matched_closes = 0;
  for (int64_t k = 0;; ++k) {
    const double close = w + static_cast<double>(k) * slide;
    if (close > t_last + kGridEps) break;
    for (const Key g : groups) {
      if (reporter->full()) return Status::OK();
      // Discrete oracle: replicate membership fp (c > t && c <= t + w)
      // and the (time-major, key-minor) update order of the engine.
      AggState state;
      for (const double t : grid) {
        if (!(close > t && close <= t + w)) continue;
        for (const KeyTrack& track : ws.tracks) {
          if (sink.per_key && track.key != g) continue;
          const TrackPiece* piece = track.PieceAt(t);
          if (piece == nullptr) continue;
          state.Update(piece->attrs.at(attr).Evaluate(t));
        }
      }
      auto it = discrete_at.find({k, g});
      if (state.count == 0) {
        if (it != discrete_at.end()) {
          reporter->Add(Divergence{"aggregate.unexpected", close, g,
                                   sink.value_attribute, 0.0, it->second,
                                   "discrete close for an empty window"});
        }
        continue;
      }
      const double v_d = state.Finalize(sink.fn);
      bool skip_presence = false;
      bool expected_d = true;
      if (sink.having) {
        skip_presence =
            Near(v_d, sink.having_threshold, 1e-9 * std::max(1.0, scale));
        expected_d = CmpHolds(v_d, sink.having_op, sink.having_threshold);
      }
      if (!skip_presence) {
        if (expected_d && it == discrete_at.end()) {
          reporter->Add(Divergence{"aggregate.missing", close, g,
                                   sink.value_attribute, v_d, 0.0,
                                   "discrete close missing"});
        } else if (!expected_d && it != discrete_at.end()) {
          reporter->Add(Divergence{
              "aggregate.having", close, g, sink.value_attribute, v_d,
              it->second, "discrete close present despite HAVING"});
        }
      }
      if (it != discrete_at.end() && expected_d &&
          !Near(it->second, v_d, Tol(scale))) {
        reporter->Add(Divergence{"aggregate.value", close, g,
                                 sink.value_attribute, v_d, it->second,
                                 "discrete aggregate vs grid oracle"});
      }
      ++matched_closes;

      if (is_minmax) continue;  // Pulse min/max checked in instant space

      // Pulse sum/avg: the window function at this close must equal the
      // exact integral of the ground-truth model.
      const Key track_key = sink.per_key ? g : ws.tracks[0].key;
      const Key pulse_key = sink.per_key ? g : Key{0};
      std::optional<double> integral =
          ws.Integral(track_key, attr, close - w, close);
      if (!integral.has_value()) continue;
      double v_c = *integral;
      if (sink.fn == AggFn::kAvg) v_c /= w;
      bool expected_c = true;
      bool skip_c = false;
      if (sink.having) {
        skip_c = Near(v_c, sink.having_threshold, having_guard);
        expected_c = CmpHolds(v_c, sink.having_op, sink.having_threshold);
      }
      auto pit = by_key.find(pulse_key);
      const Segment* covering =
          pit == by_key.end()
              ? nullptr
              : FindCovering(pit->second, close, kGridEps);
      if (skip_c) continue;
      if (expected_c) {
        if (covering == nullptr) {
          reporter->Add(Divergence{"aggregate.pulse_missing", close, g,
                                   sink.value_attribute, v_c, 0.0,
                                   "close not covered by Pulse window "
                                   "function output"});
          continue;
        }
        const auto poly = covering->attribute(sink.value_attribute);
        if (!poly.ok()) {
          reporter->Add(Divergence{"aggregate.pulse_attr", close, g,
                                   sink.value_attribute, v_c, 0.0,
                                   poly.status().message()});
          continue;
        }
        const double actual = poly->Evaluate(close);
        if (!Near(actual, v_c, value_tol)) {
          reporter->Add(Divergence{"aggregate.pulse_value", close, g,
                                   sink.value_attribute, v_c, actual,
                                   "window function vs exact integral"});
        }
      } else if (covering != nullptr &&
                 covering->range.Contains(close)) {
        reporter->Add(Divergence{"aggregate.pulse_having", close, g,
                                 sink.value_attribute, v_c, 0.0,
                                 "Pulse coverage despite HAVING"});
      }
    }
  }
  if (matched_closes == 0) {
    reporter->Add(Divergence{"aggregate.no_closes", 0.0, 0, "", 0.0, 0.0,
                             "no comparable window closes (workload too "
                             "short for the window?)"});
  }

  // Pulse min/max: the envelope output is instantaneous (the continuous
  // aggregate of paper Fig. 2) — validate the reconstructed envelope
  // against the ground-truth extremum at every grid instant.
  if (is_minmax) {
    const bool is_min = sink.fn == AggFn::kMin;
    for (const Key g : groups) {
      const Key pulse_key = sink.per_key ? g : Key{0};
      auto pit = by_key.find(pulse_key);
      for (const double t : grid) {
        if (reporter->full()) return Status::OK();
        std::optional<double> env =
            sink.per_key ? ws.Value(g, attr, t)
                         : ws.Envelope(attr, t, is_min);
        if (!env.has_value()) continue;
        bool expected = true;
        if (sink.having) {
          if (Near(*env, sink.having_threshold, having_guard)) continue;
          expected =
              CmpHolds(*env, sink.having_op, sink.having_threshold);
        }
        const Segment* covering =
            pit == by_key.end()
                ? nullptr
                : FindCovering(pit->second, t, kGridEps);
        if (expected) {
          if (covering == nullptr) {
            reporter->Add(Divergence{"aggregate.envelope_missing", t, g,
                                     sink.value_attribute, *env, 0.0,
                                     "instant not covered by envelope "
                                     "output"});
            continue;
          }
          const auto poly = covering->attribute(sink.value_attribute);
          if (!poly.ok()) {
            reporter->Add(Divergence{"aggregate.envelope_attr", t, g,
                                     sink.value_attribute, *env, 0.0,
                                     poly.status().message()});
            continue;
          }
          const double actual = poly->Evaluate(t);
          if (!Near(actual, *env, value_tol)) {
            reporter->Add(Divergence{"aggregate.envelope_value", t, g,
                                     sink.value_attribute, *env, actual,
                                     "envelope vs ground-truth extremum"});
          }
        } else if (covering != nullptr && covering->range.Contains(t)) {
          reporter->Add(Divergence{"aggregate.envelope_having", t, g,
                                   sink.value_attribute, *env, 0.0,
                                   "envelope coverage despite HAVING"});
        }
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Distinct-series matcher (epoch -> filter -> distinct sinks)
//
// Semantics under test: at most one event per (epoch, key), timestamped
// at the key's first qualifying instant in the epoch. The discrete side
// is held to exact agreement with a grid oracle — the engine evaluates
// the same polynomials at the same grid instants, so its first passing
// tuple per (epoch, key) is bit-predictable. The Pulse side emits the
// first validity run of the epoch; its range.lo must not trail the
// first *robustly* passing grid instant (crossings between grid points
// legitimately precede it), and must never sit where the ground-truth
// model robustly fails the predicate.

Status MatchDistinct(const GeneratedCase& kase, const DiscreteRun& discrete,
                     const std::vector<Segment>& pulse,
                     Reporter* reporter) {
  const SinkInfo& sink = kase.sink;
  const StreamWorkload& ws = kase.workloads[0];
  const double epoch_len = sink.epoch_seconds;
  const std::string& attr = sink.distinct_attribute;
  const double thr = sink.distinct_threshold;
  const CmpOp op = sink.distinct_op;
  // A grid pass is "robust" when the value clears the threshold by more
  // than the solver's value tolerance — only those force a Pulse run to
  // have opened by that instant (a marginal pass may round either way
  // in root refinement).
  const double entry_tol = Tol(ws.value_bound);
  // Value slack for probing a Pulse run boundary: solver tolerance plus
  // how far the bounded-slope signal can move across the probe offset.
  const double probe_tol =
      entry_tol + ws.derivative_bound * 2.0 * kTimeGuard;

  PULSE_ASSIGN_OR_RETURN(size_t key_idx,
                         discrete.schema->IndexOf(sink.key_field));
  PULSE_ASSIGN_OR_RETURN(size_t epoch_idx, discrete.schema->IndexOf("epoch"));

  // Ground truth per (epoch, key): the first passing grid instant (the
  // discrete witness, exact) and the first robust one (the Pulse
  // deadline).
  struct Truth {
    double first_pass = std::numeric_limits<double>::infinity();
    double first_robust = std::numeric_limits<double>::infinity();
  };
  std::map<std::pair<int64_t, Key>, Truth> truth;
  for (const double t : SampleGrid(ws, kase.sample_dt)) {
    const int64_t e = EpochIndexOf(t, epoch_len);
    for (const KeyTrack& track : ws.tracks) {
      const TrackPiece* piece = track.PieceAt(t);
      if (piece == nullptr) continue;
      const double v = piece->attrs.at(attr).Evaluate(t);
      if (!CmpHolds(v, op, thr)) continue;
      Truth& tr = truth[{e, track.key}];
      if (t < tr.first_pass) tr.first_pass = t;
      if (std::fabs(v - thr) > entry_tol && t < tr.first_robust) {
        tr.first_robust = t;
      }
    }
  }

  // Discrete events, keyed by the engine's own epoch column (which must
  // agree with the shared EpochIndexOf on the tuple's timestamp).
  std::map<std::pair<int64_t, Key>, double> discrete_events;
  for (const Tuple& tuple : discrete.output) {
    if (reporter->full()) return Status::OK();
    const Key key = tuple.at(key_idx).as_int64();
    const int64_t e = tuple.at(epoch_idx).as_int64();
    if (e != EpochIndexOf(tuple.timestamp, epoch_len)) {
      reporter->Add(Divergence{
          "distinct.epoch_column", tuple.timestamp, key, "epoch",
          static_cast<double>(EpochIndexOf(tuple.timestamp, epoch_len)),
          static_cast<double>(e),
          "epoch column disagrees with EpochIndexOf(timestamp)"});
    }
    auto [it, inserted] = discrete_events.insert({{e, key}, tuple.timestamp});
    if (!inserted) {
      reporter->Add(Divergence{
          "distinct.duplicate", tuple.timestamp, key, "", it->second,
          tuple.timestamp, "second discrete event for one (epoch, key)"});
    }
  }

  // Discrete vs oracle: exact two-way set match, first-pass timestamps.
  for (const auto& [ek, tr] : truth) {
    if (reporter->full()) return Status::OK();
    auto it = discrete_events.find(ek);
    if (it == discrete_events.end()) {
      reporter->Add(Divergence{"distinct.missing", tr.first_pass, ek.second,
                               attr, tr.first_pass, 0.0,
                               "grid oracle passes in epoch " +
                                   std::to_string(ek.first) +
                                   " but no discrete event"});
      continue;
    }
    if (!Near(it->second, tr.first_pass, kGridEps)) {
      reporter->Add(Divergence{"distinct.first_time", it->second, ek.second,
                               attr, tr.first_pass, it->second,
                               "discrete event is not the first passing "
                               "grid instant of the epoch"});
    }
  }
  for (const auto& [ek, t] : discrete_events) {
    if (reporter->full()) return Status::OK();
    if (truth.count(ek) == 0) {
      reporter->Add(Divergence{"distinct.unexpected", t, ek.second, attr,
                               0.0, t,
                               "discrete event in epoch " +
                                   std::to_string(ek.first) +
                                   " where the grid oracle never passes"});
    }
  }

  // Pulse events: one segment per (epoch, key), attributed by range
  // midpoint (strictly inside the run, hence inside its epoch).
  std::map<std::pair<int64_t, Key>, const Segment*> pulse_events;
  for (const Segment& s : pulse) {
    if (reporter->full()) return Status::OK();
    if (s.range.IsEmpty()) continue;
    const double mid = s.range.lo + 0.5 * s.range.Length();
    const int64_t e = EpochIndexOf(mid, epoch_len);
    const double e_lo = static_cast<double>(e) * epoch_len;
    const double e_hi = static_cast<double>(e + 1) * epoch_len;
    if (s.range.lo < e_lo - kTimeGuard || s.range.hi > e_hi + kTimeGuard) {
      reporter->Add(Divergence{"distinct.pulse_epoch_range", s.range.lo,
                               s.key, attr, 0.0, 0.0,
                               "output run " + s.range.ToString() +
                                   " straddles an epoch boundary"});
    }
    auto [it, inserted] = pulse_events.insert({{e, s.key}, &s});
    if (!inserted) {
      reporter->Add(Divergence{
          "distinct.pulse_duplicate", s.range.lo, s.key, "",
          it->second->range.lo, s.range.lo,
          "second Pulse event for one (epoch, key)"});
    }
    // The model must actually qualify just inside the run: probe at
    // lo + guard (capped at the midpoint) and reject robust failures.
    const double t_probe = std::min(s.range.lo + kTimeGuard, mid);
    const std::optional<double> v = ws.Value(s.key, attr, t_probe);
    if (v.has_value() && !CmpHolds(*v, op, thr) &&
        std::fabs(*v - thr) > probe_tol) {
      reporter->Add(Divergence{"distinct.pulse_spurious", s.range.lo, s.key,
                               attr, thr, *v,
                               "ground-truth model robustly fails the "
                               "predicate just inside the emitted run"});
    }
  }

  // Pulse presence/deadline: a robust grid pass forces an event whose
  // run opened by that instant.
  for (const auto& [ek, tr] : truth) {
    if (reporter->full()) return Status::OK();
    if (!std::isfinite(tr.first_robust)) continue;
    auto it = pulse_events.find(ek);
    if (it == pulse_events.end()) {
      reporter->Add(Divergence{"distinct.pulse_missing", tr.first_robust,
                               ek.second, attr, tr.first_robust, 0.0,
                               "robust grid pass in epoch " +
                                   std::to_string(ek.first) +
                                   " but no Pulse event"});
      continue;
    }
    if (it->second->range.lo > tr.first_robust + kTimeGuard) {
      reporter->Add(Divergence{
          "distinct.pulse_late", it->second->range.lo, ek.second, attr,
          tr.first_robust, it->second->range.lo,
          "Pulse first-entry instant trails the first robust grid pass"});
    }
  }
  return Status::OK();
}

}  // namespace

std::string Divergence::ToString() const {
  std::ostringstream os;
  os << check << " @t=" << time << " key=" << key;
  if (!attribute.empty()) os << " attr=" << attribute;
  os << " expected=" << expected << " actual=" << actual;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

std::string DiffReport::ToString() const {
  std::ostringstream os;
  os << "case " << description << ": " << divergence_count
     << " divergence(s), " << discrete_output_tuples
     << " discrete tuples, " << pulse_output_segments
     << " pulse segments";
  for (const Divergence& d : divergences) {
    os << "\n  " << d.ToString();
  }
  if (divergence_count > divergences.size()) {
    os << "\n  ... " << (divergence_count - divergences.size())
       << " more suppressed";
  }
  if (divergence_count > 0) {
    os << "\n  replay: RunDifferentialSeed(" << seed << ")";
  }
  return os.str();
}

Result<DiffReport> RunDifferential(const GeneratedCase& kase,
                                   const DiffOptions& options) {
  DiffReport report;
  report.seed = kase.seed;
  report.description = kase.description;
  Reporter reporter(&report, options.max_divergences);

  PULSE_ASSIGN_OR_RETURN(DiscreteRun discrete, RunDiscrete(kase));
  report.discrete_output_tuples = discrete.output.size();

  const SegmentFeed feed = MakeSegmentFeed(kase);
  PULSE_ASSIGN_OR_RETURN(PulseRun base, RunPulse(kase, feed, 1, true));
  report.pulse_output_segments = base.segments.size();

  // Metamorphic variants: solve cache off, parallel solver, both — each
  // must reproduce the base run byte-identically (modulo segment ids).
  const struct {
    const char* name;
    size_t threads;
    bool cache;
  } variants[] = {
      {"cache_off", 1, false},
      {"parallel", options.parallel_threads, true},
      {"parallel_cache_off", options.parallel_threads, false},
  };
  PulseRun parallel;  // kept for the metrics invariants below
  for (const auto& v : variants) {
    PULSE_ASSIGN_OR_RETURN(PulseRun got,
                           RunPulse(kase, feed, v.threads, v.cache));
    const std::string mismatch = CompareVariant(base.segments, got.segments);
    if (!mismatch.empty()) {
      reporter.Add(Divergence{std::string("metamorphic.") + v.name, 0.0, 0,
                              "", 0.0, 0.0, mismatch});
    }
    if (v.threads > 1 && v.cache) parallel = std::move(got);
  }

  // Sharded variants: threads x cache x shards grid. Byte-identity
  // against the serial unsharded base is the determinism guarantee the
  // whole scale-out design rests on (docs/SHARDING.md).
  for (const size_t shards : options.shard_counts) {
    const struct {
      const char* suffix;
      size_t threads;
      bool cache;
    } shard_variants[] = {
        {"", 1, true},
        {"_parallel_cache_off", options.parallel_threads, false},
    };
    for (const auto& sv : shard_variants) {
      PULSE_ASSIGN_OR_RETURN(
          std::vector<Segment> sharded,
          RunPulseSharded(kase, feed, shards, sv.threads, sv.cache));
      const std::string mismatch = CompareVariant(base.segments, sharded);
      if (!mismatch.empty()) {
        reporter.Add(Divergence{"metamorphic.shards" +
                                    std::to_string(shards) + sv.suffix,
                                0.0, 0, "", 0.0, 0.0, mismatch});
      }
    }
  }

  // Forced-scalar variants (ISSUE 7): replaying with solver dispatch
  // pinned to the scalar kernels — serial, parallel + cache-off, and
  // sharded — must reproduce the SIMD-batched base run byte-identically.
  // This is the bit-for-bit determinism contract of the batched kernels.
  if (options.forced_scalar_variant) {
    struct ScopedScalarDispatch {
      ScopedScalarDispatch() {
        SetSimdOverrideForTesting(SimdLevel::kScalar);
      }
      ~ScopedScalarDispatch() { SetSimdOverrideForTesting(std::nullopt); }
    } scoped;
    const struct {
      const char* name;
      size_t threads;
      bool cache;
    } scalar_variants[] = {
        {"forced_scalar", 1, true},
        {"forced_scalar_parallel_cache_off", options.parallel_threads,
         false},
    };
    for (const auto& v : scalar_variants) {
      PULSE_ASSIGN_OR_RETURN(PulseRun got,
                             RunPulse(kase, feed, v.threads, v.cache));
      const std::string mismatch =
          CompareVariant(base.segments, got.segments);
      if (!mismatch.empty()) {
        reporter.Add(Divergence{std::string("metamorphic.") + v.name, 0.0,
                                0, "", 0.0, 0.0, mismatch});
      }
    }
    if (!options.shard_counts.empty()) {
      PULSE_ASSIGN_OR_RETURN(
          std::vector<Segment> sharded,
          RunPulseSharded(kase, feed, options.shard_counts.front(), 1,
                          true));
      const std::string mismatch = CompareVariant(base.segments, sharded);
      if (!mismatch.empty()) {
        reporter.Add(Divergence{
            "metamorphic.forced_scalar_shards" +
                std::to_string(options.shard_counts.front()),
            0.0, 0, "", 0.0, 0.0, mismatch});
      }
    }
  }

  // Serving-transport variant: same feed, pushed through the frame
  // codec and a real session (queues, micro-batches, drain). The
  // session multiplexes onto the server's shard pool, so this also
  // covers the tuple/segment routing path end to end.
  if (options.serving_variant) {
    PULSE_ASSIGN_OR_RETURN(std::vector<Segment> served,
                           RunPulseServing(kase, feed));
    const std::string mismatch = CompareVariant(base.segments, served);
    if (!mismatch.empty()) {
      reporter.Add(Divergence{"metamorphic.serving", 0.0, 0, "", 0.0, 0.0,
                              mismatch});
    }
  }

  // Adaptive-precision variant: a seed-derived tier schedule must leave
  // the settled output stream byte-identical to the static run, with
  // every provisional settled exactly once (docs/PRECISION.md).
  if (options.precision_variant) {
    PULSE_ASSIGN_OR_RETURN(PrecisionRun precise,
                           RunPulsePrecision(kase, feed));
    const std::string mismatch =
        CompareVariant(base.segments, precise.settled);
    if (!mismatch.empty()) {
      reporter.Add(Divergence{"metamorphic.precision_settled", 0.0, 0, "",
                              0.0, 0.0, mismatch});
    }
    const std::string accounting = CheckPrecisionAccounting(precise);
    if (!accounting.empty()) {
      reporter.Add(Divergence{"metamorphic.precision_accounting", 0.0, 0,
                              "", 0.0, 0.0, accounting});
    }
  }

  // Kill-and-restore variant: a crash at a seed-derived midpoint,
  // recovered purely from the durable log + checkpoint, must be
  // invisible in the output stream.
  if (options.kill_restore_variant) {
    PULSE_ASSIGN_OR_RETURN(KillRestoreRun restored,
                           RunPulseKillRestore(kase, feed));
    if (!restored.verified) {
      reporter.Add(Divergence{"metamorphic.kill_restore", 0.0, 0, "", 0.0,
                              0.0,
                              "recovery could not verify the delivered "
                              "prefix: " +
                                  restored.detail});
    } else {
      const std::string mismatch =
          CompareVariant(base.segments, restored.segments);
      if (!mismatch.empty()) {
        reporter.Add(Divergence{"metamorphic.kill_restore", 0.0, 0, "",
                                0.0, 0.0, mismatch});
      }
    }
  }

  CheckMetricsInvariants(discrete, base, parallel, &report, &reporter);

  switch (kase.sink.kind) {
    case SinkInfo::Kind::kPointwise:
      PULSE_RETURN_IF_ERROR(
          MatchPointwise(kase, discrete, base.segments, &reporter));
      break;
    case SinkInfo::Kind::kAggregateSeries:
      PULSE_RETURN_IF_ERROR(
          MatchAggregate(kase, discrete, base.segments, &reporter));
      break;
    case SinkInfo::Kind::kDistinctSeries:
      PULSE_RETURN_IF_ERROR(
          MatchDistinct(kase, discrete, base.segments, &reporter));
      break;
  }
  return report;
}

Result<DiffReport> RunDifferentialSeed(uint64_t seed,
                                       const PlanGenOptions& gen,
                                       const DiffOptions& options) {
  PULSE_ASSIGN_OR_RETURN(GeneratedCase kase, GenerateCase(seed, gen));
  return RunDifferential(kase, options);
}

}  // namespace testing
}  // namespace pulse
