#include "core/sampler.h"

#include <gtest/gtest.h>

namespace pulse {
namespace {

Segment Seg(Key key, Interval range, Polynomial x) {
  Segment s(key, range);
  s.set_attribute("x", std::move(x));
  return s;
}

TEST(Sampler, RangeSegmentOnRateGrid) {
  Sampler sampler(SamplerOptions{10.0, 0.0});
  Segment s = Seg(7, Interval::ClosedOpen(0.0, 1.0), Polynomial({0.0, 2.0}));
  std::vector<Tuple> out = sampler.Sample(s, {"x"});
  ASSERT_EQ(out.size(), 10u);  // t = 0.0, 0.1, ..., 0.9
  EXPECT_DOUBLE_EQ(out[0].timestamp, 0.0);
  EXPECT_DOUBLE_EQ(out[9].timestamp, 0.9);
  // Layout: [key, x].
  EXPECT_EQ(out[0].at(0).as_int64(), 7);
  EXPECT_NEAR(out[3].at(1).as_double(), 0.6, 1e-12);
}

TEST(Sampler, GridIsAbsoluteAcrossSegments) {
  // Samples land on k*step regardless of segment start, so consecutive
  // segments produce one uniformly spaced output stream.
  Sampler sampler(SamplerOptions{4.0, 0.0});
  Segment a = Seg(1, Interval::ClosedOpen(0.1, 0.6), Polynomial({1.0}));
  Segment b = Seg(1, Interval::ClosedOpen(0.6, 1.1), Polynomial({2.0}));
  std::vector<Tuple> out = sampler.SampleAll({a, b}, {"x"});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 0.25);
  EXPECT_DOUBLE_EQ(out[1].timestamp, 0.5);
  EXPECT_DOUBLE_EQ(out[2].timestamp, 0.75);
  EXPECT_DOUBLE_EQ(out[3].timestamp, 1.0);
}

TEST(Sampler, PointSegmentYieldsOneTuple) {
  // Equality-produced point results (paper Section III-C) sample exactly
  // once, at the instant.
  Sampler sampler(SamplerOptions{10.0, 0.0});
  Segment s = Seg(2, Interval::Point(0.123), Polynomial({5.0}));
  std::vector<Tuple> out = sampler.Sample(s, {"x"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 0.123);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 5.0);
}

TEST(Sampler, EmptySegmentYieldsNothing) {
  Sampler sampler(SamplerOptions{10.0, 0.0});
  Segment s = Seg(1, Interval::ClosedOpen(1.0, 1.0), Polynomial({1.0}));
  EXPECT_TRUE(sampler.Sample(s, {"x"}).empty());
}

TEST(Sampler, SlideGridForAggregates) {
  // Aggregates infer their output rate from the window slide (paper
  // Section III-C): samples at k * slide.
  Sampler sampler(SamplerOptions{0.0, 2.0});
  Segment s = Seg(1, Interval::ClosedOpen(3.0, 11.0), Polynomial({0.0, 1.0}));
  std::vector<Tuple> out = sampler.Sample(s, {"x"});
  ASSERT_EQ(out.size(), 4u);  // t = 4, 6, 8, 10
  EXPECT_DOUBLE_EQ(out[0].timestamp, 4.0);
  EXPECT_DOUBLE_EQ(out[3].timestamp, 10.0);
}

TEST(Sampler, OpenLowerBoundSkipsBoundaryPoint) {
  Sampler sampler(SamplerOptions{1.0, 0.0});
  Segment s = Seg(1, Interval::OpenClosed(2.0, 4.0), Polynomial({1.0}));
  std::vector<Tuple> out = sampler.Sample(s, {"x"});
  // t = 3, 4 (2 excluded by the open bound; 4 included by the closed one).
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].timestamp, 3.0);
  EXPECT_DOUBLE_EQ(out[1].timestamp, 4.0);
}

TEST(Sampler, MissingAttributeSamplesZero) {
  Sampler sampler(SamplerOptions{1.0, 0.0});
  Segment s = Seg(1, Interval::ClosedOpen(0.0, 2.0), Polynomial({1.0}));
  std::vector<Tuple> out = sampler.Sample(s, {"zzz"});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].at(1).as_double(), 0.0);
}

TEST(Sampler, NoFloatDriftOverLongRanges) {
  // Integer grid stepping: the sample count over [0, 1000) at 10 Hz is
  // exactly 10000 (accumulated += drift would add or drop samples).
  Sampler sampler(SamplerOptions{10.0, 0.0});
  Segment s = Seg(1, Interval::ClosedOpen(0.0, 1000.0), Polynomial({1.0}));
  EXPECT_EQ(sampler.Sample(s, {"x"}).size(), 10000u);
}

class SamplerRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplerRateSweep, CountMatchesRateTimesLength) {
  const double rate = GetParam();
  Sampler sampler(SamplerOptions{rate, 0.0});
  Segment s = Seg(1, Interval::ClosedOpen(0.0, 10.0), Polynomial({1.0}));
  const size_t n = sampler.Sample(s, {"x"}).size();
  EXPECT_NEAR(static_cast<double>(n), rate * 10.0, 1.0) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerRateSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 10.0, 100.0));

}  // namespace
}  // namespace pulse
