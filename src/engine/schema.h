#ifndef PULSE_ENGINE_SCHEMA_H_
#define PULSE_ENGINE_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/value.h"
#include "util/result.h"

namespace pulse {

/// One column of a stream schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// An immutable stream schema shared by all tuples of a stream. Schemas
/// are resolved once at plan-build time; operators then address fields by
/// index, keeping the per-tuple hot path name-free.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  /// Shared immutable schema.
  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column called `name`; NotFound when absent.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Concatenation for join outputs. Column names are prefixed
  /// ("left.x", "right.x") to avoid collisions.
  static std::shared_ptr<const Schema> Concat(
      const Schema& left, const Schema& right,
      const std::string& left_prefix = "left.",
      const std::string& right_prefix = "right.");

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::map<std::string, size_t> index_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_SCHEMA_H_
