
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/equation_system.cc" "src/CMakeFiles/pulse_core.dir/core/equation_system.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/equation_system.cc.o.d"
  "/root/repo/src/core/operators/aggregate.cc" "src/CMakeFiles/pulse_core.dir/core/operators/aggregate.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/aggregate.cc.o.d"
  "/root/repo/src/core/operators/filter.cc" "src/CMakeFiles/pulse_core.dir/core/operators/filter.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/filter.cc.o.d"
  "/root/repo/src/core/operators/group_by.cc" "src/CMakeFiles/pulse_core.dir/core/operators/group_by.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/group_by.cc.o.d"
  "/root/repo/src/core/operators/join.cc" "src/CMakeFiles/pulse_core.dir/core/operators/join.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/join.cc.o.d"
  "/root/repo/src/core/operators/map.cc" "src/CMakeFiles/pulse_core.dir/core/operators/map.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/map.cc.o.d"
  "/root/repo/src/core/operators/pulse_operator.cc" "src/CMakeFiles/pulse_core.dir/core/operators/pulse_operator.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/operators/pulse_operator.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/CMakeFiles/pulse_core.dir/core/parser.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/parser.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/CMakeFiles/pulse_core.dir/core/predicate.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/predicate.cc.o.d"
  "/root/repo/src/core/pulse_plan.cc" "src/CMakeFiles/pulse_core.dir/core/pulse_plan.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/pulse_plan.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/pulse_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/pulse_core.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/runtime.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/CMakeFiles/pulse_core.dir/core/sampler.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/sampler.cc.o.d"
  "/root/repo/src/core/transform.cc" "src/CMakeFiles/pulse_core.dir/core/transform.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/transform.cc.o.d"
  "/root/repo/src/core/validation/bounds.cc" "src/CMakeFiles/pulse_core.dir/core/validation/bounds.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/validation/bounds.cc.o.d"
  "/root/repo/src/core/validation/inversion.cc" "src/CMakeFiles/pulse_core.dir/core/validation/inversion.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/validation/inversion.cc.o.d"
  "/root/repo/src/core/validation/lineage.cc" "src/CMakeFiles/pulse_core.dir/core/validation/lineage.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/validation/lineage.cc.o.d"
  "/root/repo/src/core/validation/slack.cc" "src/CMakeFiles/pulse_core.dir/core/validation/slack.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/validation/slack.cc.o.d"
  "/root/repo/src/core/validation/splits.cc" "src/CMakeFiles/pulse_core.dir/core/validation/splits.cc.o" "gcc" "src/CMakeFiles/pulse_core.dir/core/validation/splits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pulse_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pulse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pulse_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
