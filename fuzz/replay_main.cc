// Fallback driver for toolchains without libFuzzer (-fsanitize=fuzzer is
// clang-only; this repo's container ships g++). Linked instead of the
// fuzzer runtime, it supports two modes:
//
//   replay:  fuzz_target CORPUS_FILE...      run each file once
//   smoke:   fuzz_target --rand N SEED       run N seeded random inputs
//
// Both modes call the exact same LLVMFuzzerTestOneInput entry point the
// real fuzzer drives, so corpus files and crashers transfer between
// environments unchanged. Exit code 0 = no invariant violated.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const char* path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open corpus file %s\n", path);
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

int RunRandom(uint64_t iterations, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint8_t> buf;
  for (uint64_t i = 0; i < iterations; ++i) {
    const size_t len = static_cast<size_t>(rng() % 256);
    buf.resize(len);
    for (uint8_t& b : buf) b = static_cast<uint8_t>(rng());
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
  std::printf("ran %llu random inputs (seed %llu), no invariant "
              "violations\n",
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--rand") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s --rand ITERATIONS SEED\n", argv[0]);
      return 2;
    }
    return RunRandom(std::strtoull(argv[2], nullptr, 10),
                     std::strtoull(argv[3], nullptr, 10));
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s CORPUS_FILE...\n"
                 "       %s --rand ITERATIONS SEED\n",
                 argv[0], argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (RunFile(argv[i]) != 0) return 1;
    ++replayed;
  }
  std::printf("replayed %d corpus file(s), no invariant violations\n",
              replayed);
  return 0;
}
