#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pulse {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  PULSE_CHECK(n >= 1);
  PULSE_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.Uniform(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace pulse
