#ifndef PULSE_SERVE_WIRE_H_
#define PULSE_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "engine/tuple.h"
#include "model/segment.h"
#include "util/result.h"

namespace pulse {
namespace serve {
namespace wire {

/// Shared wire codec primitives: the serving frame protocol and the
/// durable segment store (src/store/) encode with the same conventions
/// so a segment persisted to disk is byte-identical to one sent over a
/// socket. All integers little-endian; doubles travel as their IEEE-754
/// bit pattern so values round-trip bit-exactly (the serving
/// differential and the store's recovery hash both rely on
/// byte-for-byte equality).

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, const std::string& s);

/// Bounded read cursor. Every read checks the bound; a truncated
/// payload surfaces as an IoError, never as an out-of-range memory
/// access (the fuzz-friendly contract).
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
};

/// The canonical truncation error (`what` names the field).
Status Truncated(const char* what);

Result<uint8_t> GetU8(Cursor* c, const char* what);
Result<uint16_t> GetU16(Cursor* c, const char* what);
Result<uint32_t> GetU32(Cursor* c, const char* what);
Result<uint64_t> GetU64(Cursor* c, const char* what);
Result<int64_t> GetI64(Cursor* c, const char* what);
Result<double> GetF64(Cursor* c, const char* what);
Result<std::string> GetString(Cursor* c, const char* what);

/// Tuple body: f64 timestamp, u16 field count, then tagged values
/// (u8 tag: 0 = int64, 1 = double, 2 = string).
void PutTuple(std::string* out, const Tuple& tuple);
Result<Tuple> GetTuple(Cursor* c);

/// Segment body: i64 key, u64 id, range (f64 lo, f64 hi, u8 openness
/// flags), modeled attributes (name + low-order-first coefficients),
/// and unmodeled constants. The zero polynomial is encoded with
/// coefficient count 0 so IsZero() survives the round trip.
void PutSegment(std::string* out, const Segment& s);
Result<Segment> GetSegment(Cursor* c);

}  // namespace wire
}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_WIRE_H_
