#include "core/validation/inversion.h"

#include <gtest/gtest.h>

#include "core/operators/aggregate.h"
#include "core/operators/filter.h"
#include "core/operators/join.h"
#include "core/operators/map.h"
#include "core/pulse_plan.h"

namespace pulse {
namespace {

Segment Seg(Key key, double lo, double hi, double c0, double c1,
            const std::string& attr = "x") {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute(attr, Polynomial({c0, c1}));
  return s;
}

Predicate LessThan(const std::string& attr, double c) {
  return Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left(attr), CmpOp::kLt, Operand::Constant(c)));
}

TEST(PulsePlan, UpstreamLookup) {
  PulsePlan plan;
  auto a = plan.AddOperator(
      std::make_shared<PulseFilter>("a", LessThan("x", 5.0)));
  auto b = plan.AddOperator(
      std::make_shared<PulseFilter>("b", LessThan("x", 3.0)));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  ASSERT_TRUE(plan.Connect(a, b, 0).ok());
  EXPECT_FALSE(plan.UpstreamOf(a, 0).has_value());  // fed by stream
  ASSERT_TRUE(plan.UpstreamOf(b, 0).has_value());
  EXPECT_EQ(*plan.UpstreamOf(b, 0), a);
  EXPECT_EQ(plan.SinkNodes(), std::vector<PulsePlan::NodeId>{b});
}

TEST(PulseExecutor, SegmentsFlowThroughChain) {
  PulsePlan plan;
  auto a = plan.AddOperator(
      std::make_shared<PulseFilter>("a", LessThan("x", 8.0)));
  auto b = plan.AddOperator(
      std::make_shared<PulseFilter>("b", LessThan("x", 5.0)));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  ASSERT_TRUE(plan.Connect(a, b, 0).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushSegment("in", Seg(1, 0.0, 10.0, 0.0, 1.0)).ok());
  ASSERT_EQ(exec->output().size(), 1u);
  EXPECT_NEAR(exec->output()[0].range.hi, 5.0, 1e-9);
  EXPECT_EQ(exec->total_output(), 1u);
  EXPECT_FALSE(exec->PushSegment("zzz", Seg(1, 0, 1, 0, 0)).ok());
}

TEST(QueryInverter, SingleFilterChain) {
  PulsePlan plan;
  auto f = plan.AddOperator(
      std::make_shared<PulseFilter>("f", LessThan("x", 5.0)));
  ASSERT_TRUE(plan.BindSource("in", f, 0).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushSegment("in", Seg(3, 0.0, 10.0, 0.0, 1.0)).ok());
  ASSERT_EQ(exec->output().size(), 1u);

  QueryInverter inverter(&exec->plan());
  BoundRegistry registry;
  ASSERT_TRUE(inverter
                  .InvertForOutput(f, exec->output()[0],
                                   BoundSpec::Absolute("x", 0.5), &registry)
                  .ok());
  EXPECT_DOUBLE_EQ(registry.Margin(3, "x"), 0.5);
  EXPECT_EQ(inverter.inversions(), 1u);
}

TEST(QueryInverter, TwoFilterChainPropagatesUpstream) {
  PulsePlan plan;
  auto a = plan.AddOperator(
      std::make_shared<PulseFilter>("a", LessThan("x", 8.0)));
  auto b = plan.AddOperator(
      std::make_shared<PulseFilter>("b", LessThan("x", 5.0)));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  ASSERT_TRUE(plan.Connect(a, b, 0).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushSegment("in", Seg(7, 0.0, 10.0, 0.0, 1.0)).ok());
  ASSERT_EQ(exec->output().size(), 1u);

  QueryInverter inverter(&exec->plan());
  BoundRegistry registry;
  ASSERT_TRUE(inverter
                  .InvertForOutput(b, exec->output()[0],
                                   BoundSpec::Absolute("x", 0.4), &registry)
                  .ok());
  // Walked through both filters to the source.
  EXPECT_EQ(inverter.inversions(), 2u);
  const double margin = registry.Margin(7, "x");
  EXPECT_GT(margin, 0.0);
  EXPECT_LE(margin, 0.4);
}

TEST(QueryInverter, RelativeBoundUsesOutputMagnitude) {
  PulsePlan plan;
  auto f = plan.AddOperator(
      std::make_shared<PulseFilter>("f", LessThan("x", 1000.0)));
  ASSERT_TRUE(plan.BindSource("in", f, 0).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  // Constant model of value 50: 1% relative bound -> margin 0.5.
  ASSERT_TRUE(exec->PushSegment("in", Seg(1, 0.0, 10.0, 50.0, 0.0)).ok());
  ASSERT_EQ(exec->output().size(), 1u);
  QueryInverter inverter(&exec->plan());
  BoundRegistry registry;
  ASSERT_TRUE(inverter
                  .InvertForOutput(f, exec->output()[0],
                                   BoundSpec::Relative("x", 0.01),
                                   &registry)
                  .ok());
  EXPECT_NEAR(registry.Margin(1, "x"), 0.5, 1e-9);
}

TEST(QueryInverter, JoinApportionsToBothSources) {
  Predicate cross = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt,
      Operand::Attribute(AttrRef::Right("x"))));
  PulseJoinOptions o;
  o.window_seconds = 100.0;
  PulsePlan plan;
  auto j = plan.AddOperator(std::make_shared<PulseJoin>("j", cross, o));
  ASSERT_TRUE(plan.BindSource("l", j, 0).ok());
  ASSERT_TRUE(plan.BindSource("r", j, 1).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushSegment("l", Seg(1, 0.0, 10.0, 0.0, 1.0)).ok());
  ASSERT_TRUE(exec->PushSegment("r", Seg(2, 0.0, 10.0, 20.0, -1.0)).ok());
  ASSERT_EQ(exec->output().size(), 1u);
  QueryInverter inverter(&exec->plan(),
                         std::make_shared<GradientSplit>());
  BoundRegistry registry;
  ASSERT_TRUE(inverter
                  .InvertForOutput(j, exec->output()[0],
                                   BoundSpec::Absolute("left.x", 1.0),
                                   &registry)
                  .ok());
  // Both sources received (finite) margins on x.
  EXPECT_LT(registry.Margin(1, "x"), 1.0);
  EXPECT_LT(registry.Margin(2, "x"), 1.0);
}

TEST(QueryInverter, AggregateThenFilterChain) {
  PulseAggregateOptions ao;
  ao.fn = AggFn::kAvg;
  ao.input_attribute = "x";
  ao.output_attribute = "agg";
  ao.window_seconds = 2.0;
  PulsePlan plan;
  Result<std::unique_ptr<PulseOperator>> agg =
      MakePulseAggregate("avg", ao);
  ASSERT_TRUE(agg.ok());
  auto a = plan.AddOperator(std::move(*agg));
  auto f = plan.AddOperator(
      std::make_shared<PulseFilter>("f", LessThan("agg", 1e9)));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  ASSERT_TRUE(plan.Connect(a, f, 0).ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushSegment("in", Seg(4, 0.0, 10.0, 1.0, 0.5)).ok());
  ASSERT_FALSE(exec->output().empty());
  QueryInverter inverter(&exec->plan());
  BoundRegistry registry;
  ASSERT_TRUE(inverter
                  .InvertForOutput(f, exec->output()[0],
                                   BoundSpec::Absolute("agg", 0.8),
                                   &registry)
                  .ok());
  // The avg inversion is 1-Lipschitz; the filter divides across its
  // dependency set. Margin must be positive and conservative.
  const double margin = registry.Margin(4, "x");
  EXPECT_GT(margin, 0.0);
  EXPECT_LE(margin, 0.8 + 1e-12);
}

TEST(QueryInverter, MissingLineageFails) {
  PulsePlan plan;
  auto f = plan.AddOperator(
      std::make_shared<PulseFilter>("f", LessThan("x", 5.0)));
  ASSERT_TRUE(plan.BindSource("in", f, 0).ok());
  QueryInverter inverter(&plan);
  BoundRegistry registry;
  Segment fake(1, Interval::ClosedOpen(0.0, 1.0));
  fake.id = 987654;
  EXPECT_FALSE(inverter
                   .InvertForOutput(f, fake,
                                    BoundSpec::Absolute("x", 0.1),
                                    &registry)
                   .ok());
}

}  // namespace
}  // namespace pulse
