#ifndef PULSE_FUZZ_FUZZ_UTIL_H_
#define PULSE_FUZZ_FUZZ_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

namespace pulse {
namespace fuzz {

/// Deterministic byte-stream reader for fuzz inputs. Reads past the end
/// return zeros, so every input prefix decodes to a well-defined value
/// sequence (libFuzzer mutates lengths freely).
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  uint8_t TakeByte() {
    if (pos_ >= size_) return 0;
    return data_[pos_++];
  }

  uint32_t TakeU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | TakeByte();
    return v;
  }

  /// Uniform-ish integer in [0, n) driven by input bytes (n > 0).
  uint32_t TakeBelow(uint32_t n) { return TakeU32() % n; }

  /// A finite double in [-scale, scale]; raw IEEE bit patterns from the
  /// input are sanitized (NaN/inf/huge collapse to a bounded value) so
  /// invariant checks stay meaningful.
  double TakeDouble(double scale) {
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits = (bits << 8) | TakeByte();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v)) {
      v = static_cast<double>(bits >> 40);  // fall back to integer bits
    }
    // Fold into [-scale, scale] without losing low-order entropy.
    v = std::fmod(v, scale);
    if (!std::isfinite(v)) v = 0.0;
    return v;
  }

  /// The rest of the input as text (for grammar-shaped targets).
  std::string TakeRemainingString() {
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  size_ - pos_);
    pos_ = size_;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fuzz
}  // namespace pulse

#endif  // PULSE_FUZZ_FUZZ_UTIL_H_
