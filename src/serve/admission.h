#ifndef PULSE_SERVE_ADMISSION_H_
#define PULSE_SERVE_ADMISSION_H_

#include <array>
#include <cstdint>

#include "obs/metrics.h"

namespace pulse {
namespace serve {

/// Load-shedding thresholds. Both signals use watermark hysteresis so
/// the controller does not flap at the boundary: shedding starts above
/// the high mark and stops only below the low mark.
struct AdmissionOptions {
  /// Master switch; disabled means every well-formed item is admitted
  /// subject only to the queue policy (the lossless configuration the
  /// serving differential runs under).
  bool enabled = true;
  /// Queue-depth signal: fraction of the session's total queue capacity.
  double queue_high_watermark = 0.90;
  double queue_low_watermark = 0.50;
  /// Solver-latency signal: interval p99 of the session runtime's
  /// span/runtime/push_segment histogram, in nanoseconds.
  uint64_t latency_high_ns = 50'000'000;  // 50 ms
  uint64_t latency_low_ns = 10'000'000;   // 10 ms
  /// Admissions between latency re-samples (sampling reads 2 KiB of
  /// bucket counters; once per admission would dominate the hot path).
  uint64_t sample_every = 64;
};

enum class AdmitDecision : uint8_t {
  kAdmit = 0,
  /// Shed because queue depth is above the high watermark.
  kShedQueue = 1,
  /// Shed because solver latency p99 is above the high threshold.
  kShedLatency = 2,
};

/// Admission controller for one session. Keyed on the two overload
/// signals the ISSUE names: aggregate ingest-queue depth (memory /
/// queueing-delay pressure) and solver latency (the downstream stage's
/// actual service time, read from the obs histogram the runtime already
/// maintains). Single-threaded: called only from the session reader.
///
/// Latency is measured as an *interval* p99 — the delta of the
/// histogram's bucket counts since the last sample — so recovery is
/// visible immediately instead of being averaged away by the cumulative
/// distribution.
class AdmissionController {
 public:
  /// `latency` may be null (no latency signal, queue depth only); it
  /// must outlive the controller.
  AdmissionController(AdmissionOptions options,
                      const obs::Histogram* latency);

  /// Decision for one arriving frame given current aggregate depth.
  AdmitDecision Admit(size_t total_depth, size_t total_capacity);

  bool overloaded() const { return queue_overloaded_ || latency_overloaded_; }
  /// Last sampled interval p99 (ns); 0 before the first sample.
  double interval_p99_ns() const { return interval_p99_ns_; }

 private:
  void ResampleLatency();

  AdmissionOptions options_;
  const obs::Histogram* latency_;
  std::array<uint64_t, obs::Histogram::kNumBuckets> last_buckets_{};
  uint64_t last_count_ = 0;
  uint64_t admits_since_sample_ = 0;
  double interval_p99_ns_ = 0.0;
  bool queue_overloaded_ = false;
  bool latency_overloaded_ = false;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_ADMISSION_H_
