#include "core/validation/bounds.h"

#include <cmath>
#include <limits>

namespace pulse {

double BoundSpec::MarginFor(double reference) const {
  if (!relative) return value;
  return value * std::abs(reference);
}

void BoundRegistry::Set(Key key, std::string_view attribute, double margin) {
  ++version_;
  AttrMargins& per_key = margins_[key];
  auto it = per_key.find(attribute);
  if (it == per_key.end()) {
    per_key.emplace(std::string(attribute), margin);
  } else if (margin < it->second) {
    it->second = margin;
  }
}

double BoundRegistry::Find(const AttrMargins& m,
                           std::string_view attribute) {
  auto it = m.find(attribute);
  if (it == m.end()) return std::numeric_limits<double>::infinity();
  return it->second;
}

double BoundRegistry::Margin(Key key, std::string_view attribute) const {
  auto it = margins_.find(key);
  if (it != margins_.end()) {
    const double m = Find(it->second, attribute);
    if (m != std::numeric_limits<double>::infinity()) return m;
  }
  it = margins_.find(kAnyKey);
  if (it != margins_.end()) return Find(it->second, attribute);
  return std::numeric_limits<double>::infinity();
}

bool BoundRegistry::Within(Key key, std::string_view attribute,
                           double predicted, double actual) const {
  return std::abs(actual - predicted) <= Margin(key, attribute);
}

size_t BoundRegistry::size() const {
  size_t total = 0;
  for (const auto& [key, attrs] : margins_) total += attrs.size();
  return total;
}

}  // namespace pulse
