#ifndef PULSE_OBS_SPAN_H_
#define PULSE_OBS_SPAN_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace pulse {
namespace obs {

/// The registry PULSE_SPAN records into on this thread. Defaults to
/// DefaultRegistry(); runtimes scope it to their own registry around
/// executor pushes (ScopedMetricsRegistry) so span latencies land next
/// to the run's counters.
MetricsRegistry* CurrentRegistry();

/// Monotone count of registry switches on this thread (bumped by every
/// ScopedMetricsRegistry install and restore). SpanSite keys its cache
/// on this, not on the registry pointer alone: successive runtimes can
/// allocate their registries at the same recycled address, and a
/// pointer-only comparison would keep serving histogram pointers into
/// the previous registry's freed map nodes (ABA).
uint64_t CurrentRegistryEpoch();

/// RAII switch of the calling thread's current registry. Nesting
/// restores the previous registry on destruction. Pass nullptr to fall
/// back to DefaultRegistry().
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Scoped latency measurement: records elapsed nanoseconds into a
/// histogram on destruction (and optionally mirrors the duration into a
/// RelaxedCounter owned by an operator's metrics struct). A null
/// histogram makes the span inert — callers can wire spans
/// unconditionally and let registry absence disable them.
class Span {
 public:
  explicit Span(Histogram* histogram, RelaxedCounter* also_accumulate = nullptr)
      : histogram_(histogram), accumulate_(also_accumulate) {
    if (histogram_ != nullptr || accumulate_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~Span() {
    if (histogram_ == nullptr && accumulate_ == nullptr) return;
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (histogram_ != nullptr) histogram_->Record(ns);
    if (accumulate_ != nullptr) *accumulate_ += ns;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Histogram* histogram_;
  RelaxedCounter* accumulate_;
  std::chrono::steady_clock::time_point start_;
};

/// Cached histogram lookup for a PULSE_SPAN site: one static
/// thread_local per macro expansion, revalidated when the thread's
/// registry epoch changes (two thread-local loads on the hot path, the
/// map lookup only on first use or after a ScopedMetricsRegistry
/// switch). The epoch — not the registry pointer — is the cache key:
/// registries of short-lived runtimes get allocated at recycled
/// addresses, so a pointer comparison alone would keep a histogram
/// pointer into the previous registry's freed storage alive (ABA).
struct SpanSite {
  uint64_t epoch = ~uint64_t{0};
  Histogram* histogram = nullptr;

  Histogram* Resolve(const char* name) {
    const uint64_t current_epoch = CurrentRegistryEpoch();
    if (current_epoch != epoch) {
      epoch = current_epoch;
      MetricsRegistry* current = CurrentRegistry();
      histogram = current == nullptr
                      ? nullptr
                      : current->GetHistogram(std::string("span/") + name);
    }
    return histogram;
  }
};

}  // namespace obs
}  // namespace pulse

// Scoped latency span named `name` (a string literal), recorded as
// histogram "span/<name>" in the thread's current registry. Compiled
// out entirely under -DPULSE_NO_METRICS.
#if defined(PULSE_NO_METRICS)
#define PULSE_SPAN(name)
#else
#define PULSE_SPAN_CONCAT_INNER(a, b) a##b
#define PULSE_SPAN_CONCAT(a, b) PULSE_SPAN_CONCAT_INNER(a, b)
#define PULSE_SPAN(name)                                                  \
  static thread_local ::pulse::obs::SpanSite PULSE_SPAN_CONCAT(           \
      pulse_span_site_, __LINE__);                                        \
  ::pulse::obs::Span PULSE_SPAN_CONCAT(pulse_span_, __LINE__)(            \
      PULSE_SPAN_CONCAT(pulse_span_site_, __LINE__).Resolve(name))
#endif

#endif  // PULSE_OBS_SPAN_H_
