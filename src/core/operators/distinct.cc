#include "core/operators/distinct.h"

#include <algorithm>

#include "engine/epoch.h"
#include "util/logging.h"

namespace pulse {

PulseDistinct::PulseDistinct(std::string name, double epoch_seconds)
    : PulseOperator(std::move(name)), epoch_seconds_(epoch_seconds) {
  PULSE_CHECK(epoch_seconds_ > 0.0);
}

Status PulseDistinct::Process(size_t port, const Segment& segment,
                              SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  const double lo = segment.range.lo;
  const double hi = segment.range.hi;
  for (int64_t k = EpochIndexOf(lo, epoch_seconds_);
       static_cast<double>(k) * epoch_seconds_ < hi; ++k) {
    const double e_lo = static_cast<double>(k) * epoch_seconds_;
    const double e_hi = static_cast<double>(k + 1) * epoch_seconds_;
    Segment piece = segment.ClipTo(
        Interval::ClosedOpen(std::max(lo, e_lo), e_hi));
    if (piece.range.IsEmpty()) continue;
    auto [it, inserted] = last_emitted_.emplace(segment.key, k);
    if (!inserted) {
      if (it->second >= k) continue;  // epoch already represented
      it->second = k;
    }
    piece.id = NextSegmentId();
    lineage_.Record(piece.id, piece.range, {LineageEntry{0, segment}});
    out->push_back(std::move(piece));
    ++metrics_.segments_out;
  }
  return Status::OK();
}

}  // namespace pulse
