#ifndef PULSE_UTIL_CPU_FEATURES_H_
#define PULSE_UTIL_CPU_FEATURES_H_

#include <optional>

namespace pulse {

/// Instruction-set tier the batched solver kernels can dispatch to
/// (math/batch_kernels.h). Ordered weakest to strongest; on any given
/// host exactly one tier is active.
enum class SimdLevel {
  kScalar,
  kSse2,  // x86-64 baseline (always available there)
  kNeon,  // aarch64 baseline
  kAvx2,
};

/// "scalar" | "sse2" | "neon" | "avx2" — the value surfaced in
/// pulse_cli startup output and BenchReport's `solver_kernel` param.
const char* SimdLevelName(SimdLevel level);

/// The strongest tier this hardware supports, detected once (cached
/// after the first call; thread-safe). Ignores every override below.
SimdLevel DetectedSimdLevel();

/// The tier the dispatcher should use right now:
///   1. a SetSimdOverrideForTesting override, when set;
///   2. kScalar when PULSE_FORCE_SCALAR=1 was in the environment at
///      first call (read once, cached);
///   3. DetectedSimdLevel() otherwise.
/// Cost is one relaxed atomic load on the no-override path, so callers
/// may consult it per batch flush.
SimdLevel ActiveSimdLevel();

/// Test hook: forces ActiveSimdLevel() to `level` until cleared with
/// std::nullopt. Used by the differential oracle's forced_scalar
/// metamorphic variant to pin scalar-vs-SIMD byte-identity without
/// re-execing under PULSE_FORCE_SCALAR. Levels above
/// DetectedSimdLevel() are clamped to it (requesting avx2 on a
/// non-avx2 host must not dispatch illegal instructions).
void SetSimdOverrideForTesting(std::optional<SimdLevel> level);

}  // namespace pulse

#endif  // PULSE_UTIL_CPU_FEATURES_H_
