// Telemetry detection-latency benchmark: the four Sonata-style
// epoch/distinct detection queries (SYN flood, port scan, DDoS victim,
// super-spreader) run end to end over seeded TelemetryGenerator traces,
// on both realizations:
//
//   discrete  BuildDiscretePlan -> Executor over the sampled tuples
//             (the ground-truth path: every tuple evaluated)
//   pulse     PredictiveRuntime (models fitted online from the
//             value/derivative fields, epoch/distinct over segments)
//
// Detection latency for one attack is the first alert for the attacked
// host minus the attack's ground-truth onset — the time the pipeline
// needed to notice the ramp. Each query row aggregates the latencies of
// every attack of its kind across kTrials independently seeded traces
// and reports p50/p95/p99 plus throughput (trace tuples / wall seconds
// of the full run, setup + feed + finish).
//
// Everything here is single-threaded by design (one runtime per query
// per trial, fed in arrival order), so tuples_per_sec compares the
// per-core cost of the two realizations; core_bound marks rows where
// the host had fewer cores than the run wanted (always 1 wanted here,
// so the flag only trips on hosts that cannot even give us that).
// Results go to BENCH_telemetry.json (schema v2;
// tests/bench_schema_test.cc pins the row fields and scripts/check.sh
// gates regressions on it).
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "core/transform.h"
#include "engine/executor.h"
#include "engine/tuple.h"
#include "workload/telemetry.h"

namespace pulse {
namespace {

constexpr size_t kTrials = 5;
constexpr uint64_t kBaseSeed = 7100;

TelemetryOptions TraceOptions(uint64_t seed) {
  TelemetryOptions o;
  o.num_hosts = 32;
  o.tuple_rate = 500.0;
  o.duration = 16.0;
  o.syn_floods = 3;
  o.port_scans = 3;
  o.ddos_victims = 3;
  o.super_spreaders = 3;
  o.attack_duration = 3.0;
  o.seed = seed;
  return o;
}

using QueryBuilder = Result<QuerySpec::NodeId> (*)(
    QuerySpec*, const TelemetryQueryParams&);

struct QueryCase {
  const char* name;
  QueryBuilder add;
  AttackEvent::Kind kind;
};

const QueryCase kQueries[] = {
    {"syn_flood", AddSynFloodQuery, AttackEvent::Kind::kSynFlood},
    {"port_scan", AddPortScanQuery, AttackEvent::Kind::kPortScan},
    {"ddos_victim", AddDdosVictimQuery, AttackEvent::Kind::kDdosVictim},
    {"super_spreader", AddSuperSpreaderQuery,
     AttackEvent::Kind::kSuperSpreader},
};

// host -> earliest alert time, from whichever realization ran.
using AlertMap = std::map<int64_t, double>;

bool RunDiscrete(QueryBuilder add, const TelemetryQueryParams& params,
                 const std::vector<Tuple>& trace, AlertMap* alerts) {
  QuerySpec spec;
  if (!spec.AddStream(TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
           .ok()) {
    return false;
  }
  if (!add(&spec, params).ok()) return false;
  Result<DiscretePlan> plan = BuildDiscretePlan(spec);
  if (!plan.ok()) return false;
  Result<Executor> exec = Executor::Make(std::move(plan->plan));
  if (!exec.ok()) return false;
  for (const Tuple& t : trace) {
    if (!exec->PushTuple("telemetry", t).ok()) return false;
  }
  if (!exec->Finish().ok()) return false;
  for (const Tuple& t : exec->output()) {
    const int64_t host = t.at(0).as_int64();
    auto [it, inserted] = alerts->emplace(host, t.timestamp);
    if (!inserted && t.timestamp < it->second) it->second = t.timestamp;
  }
  return true;
}

bool RunPulse(QueryBuilder add, const TelemetryQueryParams& params,
              const std::vector<Tuple>& trace, AlertMap* alerts) {
  QuerySpec spec;
  if (!spec.AddStream(TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
           .ok()) {
    return false;
  }
  if (!add(&spec, params).ok()) return false;
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(spec, PredictiveRuntime::Options{});
  if (!rt.ok()) return false;
  for (const Tuple& t : trace) {
    if (!rt->ProcessTuple("telemetry", t).ok()) return false;
  }
  if (!rt->Finish().ok()) return false;
  for (const Segment& s : rt->TakeOutputSegments()) {
    auto [it, inserted] = alerts->emplace(s.key, s.range.lo);
    if (!inserted && s.range.lo < it->second) it->second = s.range.lo;
  }
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct QueryResult {
  std::string query;
  std::string realization;
  size_t tuples = 0;
  double seconds = 0.0;
  size_t attacks = 0;
  size_t detected = 0;
  std::vector<double> latencies_ms;
  bool ok = true;
};

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  std::printf(
      "Telemetry detection latency: %zu trials x %zu hosts, "
      "4 epoch/distinct queries, discrete vs pulse\n",
      kTrials, TraceOptions(0).num_hosts);

  // (query, realization) -> accumulated result across trials.
  std::vector<QueryResult> results;
  for (const QueryCase& qc : kQueries) {
    for (const char* realization : {"discrete", "pulse"}) {
      QueryResult r;
      r.query = qc.name;
      r.realization = realization;
      results.push_back(std::move(r));
    }
  }

  for (size_t trial = 0; trial < kTrials; ++trial) {
    TelemetryGenerator gen(TraceOptions(kBaseSeed + trial));
    const std::vector<Tuple> trace = gen.GenerateAll();
    for (size_t qi = 0; qi < 4; ++qi) {
      const QueryCase& qc = kQueries[qi];
      std::map<int64_t, double> onsets;
      for (const AttackEvent& a : gen.attacks()) {
        if (a.kind == qc.kind) onsets[a.host] = a.onset;
      }
      for (size_t side = 0; side < 2; ++side) {
        QueryResult& r = results[qi * 2 + side];
        AlertMap alerts;
        bool ok = false;
        const double secs = bench::MeasureSeconds([&] {
          ok = side == 0
                   ? RunDiscrete(qc.add, TelemetryQueryParams{}, trace,
                                 &alerts)
                   : RunPulse(qc.add, TelemetryQueryParams{}, trace,
                              &alerts);
        });
        if (!ok) {
          std::fprintf(stderr, "%s/%s trial %zu failed\n", r.query.c_str(),
                       r.realization.c_str(), trial);
          r.ok = false;
          continue;
        }
        r.tuples += trace.size();
        r.seconds += secs;
        r.attacks += onsets.size();
        for (const auto& [host, onset] : onsets) {
          auto it = alerts.find(host);
          if (it == alerts.end()) {
            std::fprintf(stderr,
                         "MISS %s/%s trial %zu host %lld onset %.2f\n",
                         r.query.c_str(), r.realization.c_str(), trial,
                         static_cast<long long>(host), onset);
            continue;
          }
          ++r.detected;
          // The Pulse side can model ahead of the crossing, so clamp:
          // an alert at (or predicted slightly before) onset is zero
          // latency, not negative.
          r.latencies_ms.push_back(
              std::max(0.0, (it->second - onset) * 1000.0));
        }
      }
    }
  }

  const TelemetryOptions opts = TraceOptions(0);
  bench::BenchReport report("telemetry");
  report.ParamUint("trials", kTrials);
  report.ParamUint("hosts", opts.num_hosts);
  report.ParamDouble("tuple_rate", opts.tuple_rate);
  report.ParamDouble("duration", opts.duration);
  report.ParamDouble("epoch_seconds", TelemetryQueryParams{}.epoch_seconds);
  report.ParamUint("attacks_per_kind", opts.syn_floods);
  report.ParamUint("seed", kBaseSeed);
  report.ParamUint("hardware_concurrency", bench::HardwareConcurrency());

  bool all_ok = true;
  for (QueryResult& r : results) {
    all_ok = all_ok && r.ok;
    std::sort(r.latencies_ms.begin(), r.latencies_ms.end());
    const double p50 = Percentile(r.latencies_ms, 0.50);
    const double p95 = Percentile(r.latencies_ms, 0.95);
    const double p99 = Percentile(r.latencies_ms, 0.99);
    const double tps =
        r.seconds > 0.0 ? static_cast<double>(r.tuples) / r.seconds : 0.0;
    std::printf(
        "  %-14s %-8s %8.0f tuples/s  detected %zu/%zu  "
        "latency p50 %.0f ms  p95 %.0f ms  p99 %.0f ms\n",
        r.query.c_str(), r.realization.c_str(), tps, r.detected, r.attacks,
        p50, p95, p99);
    report.AddRow()
        .String("query", r.query)
        .String("realization", r.realization)
        .Uint("tuples", r.tuples)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", tps)
        .Uint("attacks", r.attacks)
        .Uint("detected", r.detected)
        .Double("p50_ms", p50)
        .Double("p95_ms", p95)
        .Double("p99_ms", p99)
        .Bool("core_bound", bench::CoreBound(1));
  }
  if (!all_ok) return 1;
  if (!report.WriteFile("BENCH_telemetry.json")) return 1;
  std::printf(
      "\nWrote BENCH_telemetry.json. Expected shape: every attack "
      "detected\n(detected == attacks); latency well under the attack "
      "ramp+epoch budget\n(crossing happens during the 0.5 s ramp, one "
      "alert per epoch); the pulse\nrealization's percentiles track the "
      "discrete ones at epoch granularity.\n");
  return 0;
}
