#include "model/segmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace pulse {

namespace {

// Fits and measures one candidate piece; returns max abs residual and the
// fitted polynomial. Falls back to a constant/low-degree fit while the
// buffer is shorter than degree+1.
struct CandidateFit {
  Polynomial poly;
  double max_error = 0.0;
};

CandidateFit FitCandidate(const std::vector<Sample>& pts, size_t degree) {
  CandidateFit out;
  const size_t usable_degree =
      std::min(degree, pts.empty() ? size_t{0} : pts.size() - 1);
  Result<Polynomial> fit = FitPolynomial(pts, usable_degree);
  if (!fit.ok()) {
    // Degenerate geometry (e.g. duplicate timestamps): fall back to the
    // mean so segmentation always makes progress.
    double mean = 0.0;
    for (const Sample& s : pts) mean += s.value;
    if (!pts.empty()) mean /= static_cast<double>(pts.size());
    out.poly = Polynomial::Constant(mean);
  } else {
    out.poly = std::move(fit).value();
  }
  out.max_error = MaxAbsResidual(out.poly, pts);
  return out;
}

FittedSegment MakeFromPoints(const std::vector<Sample>& pts,
                             const CandidateFit& fit, double extend_gap) {
  FittedSegment seg;
  seg.poly = fit.poly;
  seg.num_points = pts.size();
  seg.max_error = fit.max_error;
  const double lo = pts.front().t;
  double hi = pts.back().t + extend_gap;
  if (hi <= lo) hi = lo + 1e-9;  // keep the range non-degenerate
  seg.range = Interval::ClosedOpen(lo, hi);
  return seg;
}

}  // namespace

SlidingWindowSegmenter::SlidingWindowSegmenter(SegmentationOptions options)
    : options_(options) {
  PULSE_CHECK(options_.max_error > 0.0);
}

std::optional<FittedSegment> SlidingWindowSegmenter::Add(
    const Sample& sample) {
  if (!buffer_.empty()) {
    last_gap_ = std::max(0.0, sample.t - buffer_.back().t);
  }
  // Tentatively extend the current piece.
  buffer_.push_back(sample);
  const bool over_cap = options_.max_points_per_segment > 0 &&
                        buffer_.size() > options_.max_points_per_segment;
  if (buffer_.size() <= options_.degree + 1 && !over_cap) {
    return std::nullopt;  // cannot violate the bound yet
  }
  const CandidateFit fit = FitCandidate(buffer_, options_.degree);
  if (fit.max_error <= options_.max_error && !over_cap) {
    return std::nullopt;
  }
  // The new sample broke the piece: emit everything before it.
  buffer_.pop_back();
  const CandidateFit closed = FitCandidate(buffer_, options_.degree);
  const double gap = options_.extend_to_next ? last_gap_ : 0.0;
  FittedSegment seg = MakeFromPoints(buffer_, closed, gap);
  buffer_.clear();
  buffer_.push_back(sample);
  return seg;
}

std::optional<FittedSegment> SlidingWindowSegmenter::Flush() {
  if (buffer_.empty()) return std::nullopt;
  const CandidateFit fit = FitCandidate(buffer_, options_.degree);
  const double gap = options_.extend_to_next ? last_gap_ : 0.0;
  FittedSegment seg = MakeFromPoints(buffer_, fit, gap);
  buffer_.clear();
  return seg;
}

FittedSegment SlidingWindowSegmenter::MakeSegment(
    const std::vector<Sample>& pts) const {
  const CandidateFit fit = FitCandidate(pts, options_.degree);
  return MakeFromPoints(pts, fit, options_.extend_to_next ? last_gap_ : 0.0);
}

std::vector<FittedSegment> SlidingWindowSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options) {
  SlidingWindowSegmenter segmenter(options);
  std::vector<FittedSegment> out;
  for (const Sample& s : samples) {
    if (auto seg = segmenter.Add(s)) out.push_back(std::move(*seg));
  }
  if (auto seg = segmenter.Flush()) out.push_back(std::move(*seg));
  return out;
}

std::vector<FittedSegment> BottomUpSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options) {
  std::vector<FittedSegment> out;
  if (samples.empty()) return out;

  // Start from the finest pieces that admit a degree-d fit.
  const size_t unit = options.degree + 1;
  std::vector<std::vector<Sample>> groups;
  for (size_t i = 0; i < samples.size(); i += unit) {
    const size_t end = std::min(samples.size(), i + unit);
    groups.emplace_back(samples.begin() + i, samples.begin() + end);
  }

  // Greedy merging: repeatedly merge the adjacent pair whose combined fit
  // has the smallest max-residual, while it stays within the bound.
  auto merged_cost = [&](size_t i) {
    std::vector<Sample> joined = groups[i];
    joined.insert(joined.end(), groups[i + 1].begin(), groups[i + 1].end());
    return FitCandidate(joined, options.degree).max_error;
  };
  while (groups.size() > 1) {
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i + 1 < groups.size(); ++i) {
      const bool over_cap =
          options.max_points_per_segment > 0 &&
          groups[i].size() + groups[i + 1].size() >
              options.max_points_per_segment;
      if (over_cap) continue;
      const double cost = merged_cost(i);
      if (cost < best_cost) {
        best_cost = cost;
        best_i = i;
      }
    }
    if (best_cost > options.max_error) break;
    groups[best_i].insert(groups[best_i].end(), groups[best_i + 1].begin(),
                          groups[best_i + 1].end());
    groups.erase(groups.begin() + best_i + 1);
  }

  for (size_t g = 0; g < groups.size(); ++g) {
    const CandidateFit fit = FitCandidate(groups[g], options.degree);
    // Extend each piece up to the successor's first sample so pieces tile.
    double gap = 0.0;
    if (options.extend_to_next) {
      if (g + 1 < groups.size()) {
        gap = groups[g + 1].front().t - groups[g].back().t;
      } else if (groups[g].size() > 1) {
        gap = groups[g].back().t - groups[g][groups[g].size() - 2].t;
      }
    }
    out.push_back(MakeFromPoints(groups[g], fit, std::max(gap, 0.0)));
  }
  return out;
}

std::vector<FittedSegment> SwabSegmentation(
    const std::vector<Sample>& samples, const SegmentationOptions& options,
    size_t buffer_size) {
  std::vector<FittedSegment> out;
  if (samples.empty()) return out;
  PULSE_CHECK(buffer_size >= 2 * (options.degree + 1));

  size_t next = 0;
  std::vector<Sample> buffer;
  while (next < samples.size() || !buffer.empty()) {
    // Refill the working buffer.
    while (buffer.size() < buffer_size && next < samples.size()) {
      buffer.push_back(samples[next++]);
    }
    std::vector<FittedSegment> local = BottomUpSegmentation(buffer, options);
    if (local.size() <= 1 && next >= samples.size()) {
      // Terminal buffer: everything that remains is final.
      out.insert(out.end(), local.begin(), local.end());
      break;
    }
    if (local.size() <= 1) {
      // Buffer too coherent to split: grow it and retry.
      buffer_size *= 2;
      continue;
    }
    // Emit only the leftmost piece; return the rest to the buffer.
    out.push_back(local.front());
    const size_t consumed = local.front().num_points;
    buffer.erase(buffer.begin(), buffer.begin() + consumed);
  }
  return out;
}

}  // namespace pulse
