# Empty dependencies file for segment_index_test.
# This may be replaced when dependencies are built.
