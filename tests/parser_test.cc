#include "core/parser.h"

#include <gtest/gtest.h>

#include "core/pulse_plan.h"
#include "core/transform.h"
#include "engine/executor.h"
#include "workload/ais.h"
#include "workload/moving_object.h"
#include "workload/nyse.h"

namespace pulse {
namespace {

using parser_internal::Token;
using parser_internal::TokenKind;
using parser_internal::Tokenize;

TEST(Tokenizer, IdentifiersLowercasedAndNumbers) {
  Result<std::vector<Token>> tokens = Tokenize("SELECT Price 3.5 [size 10]");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 8u);  // select price 3.5 [ size 10 ] END
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[1].text, "price");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 3.5);
  EXPECT_EQ((*tokens)[3].text, "[");
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kEnd);
}

TEST(Tokenizer, MultiCharOperators) {
  Result<std::vector<Token>> tokens = Tokenize("a <= b <> c >= d < e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[3].text, "<>");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "<");
}

TEST(Tokenizer, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("a ; b").ok());
}

TEST(ParseModel, PaperFigureOneForms) {
  // Paper Fig. 1: "A.x = A.x + A.v t" and "B.y = B.v t + B.a t2".
  Result<ModelClause> a = QueryParser::ParseModel("A.x = A.x + A.v t", "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->modeled_attribute, "x");
  EXPECT_EQ(a->coefficient_fields, (std::vector<std::string>{"x", "v"}));

  Result<ModelClause> b =
      QueryParser::ParseModel("B.y = B.c + B.v t + B.a t2", "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->modeled_attribute, "y");
  EXPECT_EQ(b->coefficient_fields,
            (std::vector<std::string>{"c", "v", "a"}));
}

TEST(ParseModel, CaretExponentAndStarForms) {
  Result<ModelClause> m =
      QueryParser::ParseModel("x = p0 + p1*t + p2*t^2", "");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->coefficient_fields,
            (std::vector<std::string>{"p0", "p1", "p2"}));
}

TEST(ParseModel, RejectsGaps) {
  // t^2 term without a t^1 coefficient.
  EXPECT_FALSE(QueryParser::ParseModel("x = a + b t2", "").ok());
  EXPECT_FALSE(QueryParser::ParseModel("x = a + b t + c t", "").ok());
}

TEST(ParsePredicate, ComparisonForms) {
  Result<Predicate> p = QueryParser::ParsePredicate("r.x < 5", "r", "");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "L.x < 5");

  p = QueryParser::ParsePredicate("r.x >= s.y", "r", "s");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "L.x >= R.y");

  p = QueryParser::ParsePredicate("r.x < -2.5", "r", "");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "L.x < -2.5");
}

TEST(ParsePredicate, BooleanStructure) {
  Result<Predicate> p = QueryParser::ParsePredicate(
      "r.x < 5 and (r.y > 2 or not r.z = 0)", "r", "");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "(L.x < 5 AND (L.y > 2 OR NOT L.z = 0))");
}

TEST(ParsePredicate, DistanceForm) {
  Result<Predicate> p = QueryParser::ParsePredicate(
      "dist(r.x, r.y, s.x, s.y) < 1000", "r", "s");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsConjunctive());
  EXPECT_NE(p->ToString().find("dist"), std::string::npos);
}

TEST(ParsePredicate, NormalizesRightLeftComparison) {
  // "s.y > r.x" flips to keep the left side on the left input.
  Result<Predicate> p = QueryParser::ParsePredicate("s.y > r.x", "r", "s");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "L.x < R.y");
}

TEST(ParsePredicate, Errors) {
  EXPECT_FALSE(QueryParser::ParsePredicate("r.x <", "r", "").ok());
  EXPECT_FALSE(QueryParser::ParsePredicate("q.x < 5", "r", "s").ok());
  EXPECT_FALSE(QueryParser::ParsePredicate("r.x < 5 extra", "r", "").ok());
}

QuerySpec ObjectSpec() {
  QuerySpec spec;
  EXPECT_TRUE(
      spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0))
          .ok());
  return spec;
}

TEST(ParseQuery, SimpleFilter) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec, "select * from objects where x < 500");
  ASSERT_TRUE(sink.ok());
  ASSERT_EQ(spec.num_nodes(), 1u);
  EXPECT_EQ(spec.node(*sink).kind, QuerySpec::OpKind::kFilter);
  // Both plans build from the parsed spec.
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, PassthroughSelectStar) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink =
      QueryParser::Parse(&spec, "select * from objects");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(spec.node(*sink).kind, QuerySpec::OpKind::kFilter);
}

TEST(ParseQuery, ModelClauseValidatedAgainstDeclaration) {
  QuerySpec spec = ObjectSpec();
  // Matches the declared MODEL x = x + vx t.
  EXPECT_TRUE(QueryParser::Parse(&spec,
                                 "select * from objects model "
                                 "objects.x = objects.x + objects.vx t "
                                 "where x < 100")
                  .ok());
  // Disagrees with the declaration.
  QuerySpec spec2 = ObjectSpec();
  EXPECT_FALSE(QueryParser::Parse(&spec2,
                                  "select * from objects model "
                                  "objects.x = objects.y + objects.vy t "
                                  "where x < 100")
                   .ok());
}

TEST(ParseQuery, WindowedAggregateWithGroupBy) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0)).ok());
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec,
      "select symbol, avg(price) as ap from nyse [size 10 advance 2]");
  ASSERT_TRUE(sink.ok());
  const QuerySpec::Node& node = spec.node(*sink);
  ASSERT_EQ(node.kind, QuerySpec::OpKind::kAggregate);
  EXPECT_EQ(node.aggregate->fn, AggFn::kAvg);
  EXPECT_EQ(node.aggregate->attribute, "price");
  EXPECT_EQ(node.aggregate->output_attribute, "ap");
  EXPECT_DOUBLE_EQ(node.aggregate->window_seconds, 10.0);
  EXPECT_DOUBLE_EQ(node.aggregate->slide_seconds, 2.0);
  // "symbol" in the select list implies per-key grouping (the paper's
  // MACD sub-select form).
  EXPECT_TRUE(node.aggregate->per_key);
}

TEST(ParseQuery, AggregateRequiresWindow) {
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0)).ok());
  EXPECT_FALSE(
      QueryParser::Parse(&spec, "select avg(price) from nyse").ok());
}

TEST(ParseQuery, PaperMacdQueryVerbatim) {
  // The paper's MACD query (Section V-B), modulo StreamSQL spelling.
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0)).ok());
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(&spec, R"(
      select symbol, s.ap - l.ap as diff from
        (select symbol, avg(price) as ap from nyse [size 10 advance 2])
          as s
        join
        (select symbol, avg(price) as ap from nyse [size 60 advance 2])
          as l
        on (s.symbol = l.symbol) where s.ap > l.ap)");
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  // Nodes: short agg, long agg, join, diff map.
  ASSERT_EQ(spec.num_nodes(), 4u);
  const QuerySpec::Node& join = spec.node(2);
  ASSERT_EQ(join.kind, QuerySpec::OpKind::kJoin);
  EXPECT_TRUE(join.join->match_keys);  // S.Symbol = L.Symbol absorbed
  EXPECT_EQ(join.join->left_prefix, "s.");
  const QuerySpec::Node& map = spec.node(*sink);
  ASSERT_EQ(map.kind, QuerySpec::OpKind::kMap);
  EXPECT_EQ(map.map->outputs[0].name, "diff");
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, PaperFollowingQueryVerbatim) {
  // The paper's AIS following query, with dist() for
  // sqrt(pow(..)+pow(..)) (documented substitution).
  QuerySpec spec;
  ASSERT_TRUE(
      spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0)).ok());
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(&spec, R"(
      select avg(dist2) as avg_dist2 from
        (select dist(s1.x, s1.y, s2.x, s2.y) as dist2
         from ais [size 10 advance 1] as s1
         join ais [size 10 advance 1] as s2
         on (s1.id <> s2.id and dist(s1.x, s1.y, s2.x, s2.y) < 4000))
        [size 600 advance 10] as candidates
      group by id1, id2 having avg_dist2 < 1000000)");
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  // join, dist map, aggregate, having filter.
  ASSERT_EQ(spec.num_nodes(), 4u);
  const QuerySpec::Node& join = spec.node(0);
  ASSERT_EQ(join.kind, QuerySpec::OpKind::kJoin);
  EXPECT_TRUE(join.join->require_distinct_keys);  // S1.id <> S2.id
  const QuerySpec::Node& agg = spec.node(2);
  ASSERT_EQ(agg.kind, QuerySpec::OpKind::kAggregate);
  EXPECT_DOUBLE_EQ(agg.aggregate->window_seconds, 600.0);
  EXPECT_TRUE(agg.aggregate->per_key);
  EXPECT_EQ(spec.node(*sink).kind, QuerySpec::OpKind::kFilter);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, ParsedFilterExecutesLikeHandBuilt) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec, "select * from objects where x < 5 and y > 1");
  ASSERT_TRUE(sink.ok());
  Result<TransformedPlan> plan = BuildPulsePlan(spec);
  ASSERT_TRUE(plan.ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan->plan));
  ASSERT_TRUE(exec.ok());
  Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
  seg.set_attribute("x", Polynomial({0.0, 1.0}));   // x = t
  seg.set_attribute("y", Polynomial({0.0, 0.5}));   // y = t/2
  ASSERT_TRUE(exec->PushSegment("objects", seg).ok());
  // x < 5 on [0,5); y > 1 on (2,10): intersection (2, 5).
  ASSERT_EQ(exec->output().size(), 1u);
  EXPECT_NEAR(exec->output()[0].range.lo, 2.0, 1e-9);
  EXPECT_NEAR(exec->output()[0].range.hi, 5.0, 1e-9);
}

TEST(ParseQuery, Errors) {
  QuerySpec spec = ObjectSpec();
  EXPECT_FALSE(QueryParser::Parse(&spec, "selekt * from objects").ok());
  EXPECT_FALSE(QueryParser::Parse(&spec, "select * from missing").ok());
  EXPECT_FALSE(
      QueryParser::Parse(&spec, "select * from objects trailing").ok());
  EXPECT_FALSE(QueryParser::Parse(
                   &spec, "select * from objects where zzz < 1")
                   .ok());
}

TEST(ParseQuery, EpochClauseWrapsSource) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec, "select * from objects epoch 2 where x < 500");
  ASSERT_TRUE(sink.ok());
  // epoch node, then the filter.
  ASSERT_EQ(spec.num_nodes(), 2u);
  const QuerySpec::Node& filter = spec.node(*sink);
  EXPECT_EQ(filter.kind, QuerySpec::OpKind::kFilter);
  const QuerySpec::Node& epoch = spec.node(filter.inputs[0].node);
  ASSERT_EQ(epoch.kind, QuerySpec::OpKind::kEpoch);
  EXPECT_DOUBLE_EQ(epoch.epoch->epoch_seconds, 2.0);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, SelectDistinctBuildsDedupTail) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec, "select distinct * from objects epoch 1.5 where x > 100");
  ASSERT_TRUE(sink.ok());
  // epoch -> filter -> distinct.
  ASSERT_EQ(spec.num_nodes(), 3u);
  const QuerySpec::Node& distinct = spec.node(*sink);
  ASSERT_EQ(distinct.kind, QuerySpec::OpKind::kDistinct);
  EXPECT_DOUBLE_EQ(distinct.distinct->epoch_seconds, 1.5);
  const QuerySpec::Node& filter = spec.node(distinct.inputs[0].node);
  EXPECT_EQ(filter.kind, QuerySpec::OpKind::kFilter);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, SelectDistinctWithoutWhere) {
  // A bare dedup: every key alive in an epoch reports once.
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink =
      QueryParser::Parse(&spec, "select distinct * from objects epoch 1");
  ASSERT_TRUE(sink.ok());
  EXPECT_EQ(spec.node(*sink).kind, QuerySpec::OpKind::kDistinct);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, EpochAndDistinctErrors) {
  // DISTINCT needs an epoch to scope the dedup.
  QuerySpec spec = ObjectSpec();
  EXPECT_FALSE(
      QueryParser::Parse(&spec, "select distinct * from objects").ok());
  // Epoch length must be a positive number.
  QuerySpec spec2 = ObjectSpec();
  EXPECT_FALSE(
      QueryParser::Parse(&spec2, "select * from objects epoch 0").ok());
  QuerySpec spec3 = ObjectSpec();
  EXPECT_FALSE(
      QueryParser::Parse(&spec3, "select * from objects epoch").ok());
}

TEST(ParseQuery, DistinctOverAggregateSubselect) {
  // The SYN-flood shape when the predicate needs a derived attribute:
  // compute it in a sub-select, epoch the sub-select's output, then
  // dedup. EPOCH sits between the sub-select and its alias.
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec,
      "select distinct * from (select id, avg(x) as ax from objects "
      "[size 1 advance 1] group by id) epoch 1 as d where d.ax > 100");
  ASSERT_TRUE(sink.ok()) << sink.status().message();
  EXPECT_EQ(spec.node(*sink).kind, QuerySpec::OpKind::kDistinct);
  EXPECT_TRUE(BuildPulsePlan(spec).ok());
  EXPECT_TRUE(BuildDiscretePlan(spec).ok());
}

TEST(ParseQuery, ParsedDistinctExecutesPerEpoch) {
  QuerySpec spec = ObjectSpec();
  Result<QuerySpec::NodeId> sink = QueryParser::Parse(
      &spec, "select distinct * from objects epoch 1 where x > 4");
  ASSERT_TRUE(sink.ok());
  Result<TransformedPlan> plan = BuildPulsePlan(spec);
  ASSERT_TRUE(plan.ok());
  Result<PulseExecutor> exec = PulseExecutor::Make(std::move(plan->plan));
  ASSERT_TRUE(exec.ok());
  Segment seg(1, Interval::ClosedOpen(0.0, 3.0));
  seg.set_attribute("x", Polynomial({0.0, 2.0}));  // x = 2t, crosses 4 at 2
  seg.set_attribute("y", Polynomial({0.0}));
  ASSERT_TRUE(exec->PushSegment("objects", seg).ok());
  // x > 4 holds on (2, 3): one first-entry event in epoch 2 only.
  ASSERT_EQ(exec->output().size(), 1u);
  EXPECT_NEAR(exec->output()[0].range.lo, 2.0, 1e-9);
  EXPECT_EQ(exec->output()[0].key, 1);
}

}  // namespace
}  // namespace pulse
