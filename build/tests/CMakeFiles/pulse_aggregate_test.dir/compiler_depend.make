# Empty compiler generated dependencies file for pulse_aggregate_test.
# This may be replaced when dependencies are built.
