#include "core/operators/filter.h"

#include <set>

#include "util/logging.h"

namespace pulse {

AttrResolver MakeUnaryResolver(const Segment& segment) {
  return [&segment](const AttrRef& ref) -> Result<Polynomial> {
    if (ref.side != Side::kLeft) {
      return Status::InvalidArgument(
          "unary operator predicate references right side");
    }
    return segment.attribute(ref.name);
  };
}

PulseFilter::PulseFilter(std::string name, Predicate predicate,
                         RootMethod method)
    : PulseOperator(std::move(name)),
      predicate_(std::move(predicate)),
      method_(method) {}

Status PulseFilter::Process(size_t port, const Segment& segment,
                            SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  ++metrics_.solves;
  const AttrResolver resolver = MakeUnaryResolver(segment);
  IntervalSet tree_solution;
  const IntervalSet* solution = &tree_solution;
  if (predicate_.IsConjunctive()) {
    // Conjunctions map onto one equation system and route through the
    // batched solver (ISSUE 7): rows of equal degree share SIMD lanes,
    // and the solution is identical to the recursive per-term solve —
    // each row's time ranges are already clipped to the segment range,
    // so intersecting them in row order matches intersecting them under
    // the domain accumulator.
    PULSE_RETURN_IF_ERROR(
        predicate_.BuildSystemInto(resolver, &task_scratch_.system));
    task_scratch_.domain = segment.range;
    PULSE_RETURN_IF_ERROR(SolveSystemsInto(&task_scratch_, 1, method_,
                                           /*pool=*/nullptr, solve_cache_,
                                           &solution_scratch_));
    solution = &solution_scratch_[0];
  } else {
    // Boolean trees solve recursively on the pushing thread; one warm
    // scratch serves every Process call.
    static thread_local SolveScratch scratch;
    PULSE_RETURN_IF_ERROR(predicate_.SolveInto(resolver, segment.range,
                                               method_, &scratch,
                                               solve_cache_,
                                               &tree_solution));
  }
  for (const Interval& iv : solution->intervals()) {
    Segment result = segment;
    result.id = NextSegmentId();
    result.range = iv;
    lineage_.Record(result.id, iv, {LineageEntry{0, segment}});
    out->push_back(std::move(result));
    ++metrics_.segments_out;
  }
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseFilter::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  // Dependencies D(o) = translations ∪ inferences: the requested attribute
  // itself (filters pass attributes through unchanged) plus every
  // predicate attribute the result is constrained by (Section IV-B).
  std::set<std::string> deps = {attribute};
  std::vector<AttrRef> refs;
  predicate_.CollectAttributes(&refs);
  for (const AttrRef& ref : refs) deps.insert(ref.name);

  std::vector<const Segment*> inputs;
  inputs.reserve(causes->size());
  for (const LineageEntry& e : *causes) inputs.push_back(&e.input);

  std::vector<AllocatedBound> out;
  for (const std::string& dep : deps) {
    SplitContext ctx;
    ctx.output = &output;
    ctx.attribute = attribute;
    ctx.margin = margin;
    ctx.inputs = inputs;
    ctx.input_attribute = dep;
    ctx.num_dependencies = deps.size();
    PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                           split.Apportion(ctx));
    for (size_t i = 0; i < allocs.size(); ++i) {
      allocs[i].port = (*causes)[i].port;
      allocs[i].segment_id = (*causes)[i].input.id;
      out.push_back(std::move(allocs[i]));
    }
  }
  return out;
}

Result<double> PulseFilter::ComputeSlack(const Segment& segment) const {
  if (!predicate_.IsConjunctive()) {
    // No single equation system exists; force revalidation.
    return 0.0;
  }
  const AttrResolver resolver = MakeUnaryResolver(segment);
  PULSE_ASSIGN_OR_RETURN(EquationSystem system,
                         predicate_.BuildSystem(resolver));
  return system.Slack(segment.range);
}

}  // namespace pulse
