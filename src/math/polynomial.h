#ifndef PULSE_MATH_POLYNOMIAL_H_
#define PULSE_MATH_POLYNOMIAL_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace pulse {

/// Dense univariate polynomial with real coefficients:
///   p(t) = c[0] + c[1]*t + c[2]*t^2 + ... + c[d]*t^d.
///
/// This is the continuous-time model class of the paper (Section II-B):
/// a modeled stream attribute is a(t) = sum_i c_{a,i} t^i with non-negative
/// exponents. Polynomials are value types. Coefficients with
/// |c| <= kCoefficientEpsilon are trimmed from the high end so degree()
/// reflects the numerically meaningful degree.
///
/// Storage is small-buffer optimized: up to kInlineCoefficients
/// coefficients (degree <= 7 — every difference polynomial of the paper's
/// low-degree motion/price models, including the squared distance
/// predicate over cubic models) live inline with no heap allocation.
/// Higher degrees spill to the heap; spills are counted so benchmarks can
/// report an allocations proxy (docs/PERFORMANCE.md).
class Polynomial {
 public:
  /// Coefficients below this magnitude are treated as zero when trimming
  /// and when classifying the polynomial's degree for root finding.
  static constexpr double kCoefficientEpsilon = 1e-12;

  /// Inline coefficient capacity (degree <= kInlineCoefficients - 1 needs
  /// no heap allocation).
  static constexpr size_t kInlineCoefficients = 8;

  /// The zero polynomial.
  Polynomial() = default;

  /// From low-order-first coefficients: Polynomial({1, 2}) is 1 + 2t.
  Polynomial(std::initializer_list<double> coeffs);
  explicit Polynomial(std::vector<double> coeffs);

  /// From a raw low-order-first coefficient buffer (no vector detour).
  Polynomial(const double* coeffs, size_t n);

  ~Polynomial();
  Polynomial(const Polynomial& other);
  Polynomial(Polynomial&& other) noexcept;
  Polynomial& operator=(const Polynomial& other);
  Polynomial& operator=(Polynomial&& other) noexcept;

  /// The constant polynomial c.
  static Polynomial Constant(double c);

  /// The monomial c * t^power.
  static Polynomial Monomial(double c, size_t power);

  /// Degree after trimming; the zero polynomial has degree 0.
  size_t degree() const { return size_ == 0 ? 0 : size_ - 1; }

  /// True if all coefficients are (numerically) zero.
  bool IsZero() const { return size_ == 0; }

  /// Coefficient of t^i; zero when i exceeds the stored degree.
  double coeff(size_t i) const { return i < size_ ? data_[i] : 0.0; }

  /// Low-order-first coefficients (trimmed; empty for the zero
  /// polynomial).
  std::span<const double> coeffs() const { return {data_, size_}; }

  /// True when the coefficients live in the inline buffer (no heap).
  bool is_inline() const { return data_ == inline_; }

  /// Replaces the coefficients (trimming), reusing existing storage.
  void Assign(const double* coeffs, size_t n);

  /// Mutable coefficient access for scratch-based math kernels
  /// (polynomial division, Sturm chains). `i` must be < size.
  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  /// Resizes to exactly n coefficients; new slots are zero-filled, no
  /// trimming happens. Kernel support — callers must TrimInPlace() before
  /// handing the polynomial back to degree-sensitive code.
  void Resize(size_t n);

  /// Drops numerically-zero leading coefficients (public form of the
  /// invariant maintenance for kernels that edit coefficients in place).
  void TrimInPlace() { Trim(); }

  /// Horner evaluation of p(t).
  double Evaluate(double t) const;

  /// First derivative dp/dt.
  Polynomial Derivative() const;

  /// Writes dp/dt into *out, reusing its storage. `out` must not alias
  /// this.
  void DerivativeInto(Polynomial* out) const;

  /// Antiderivative with zero constant term: P(t) with P'(t) = p(t),
  /// P(0)=0.
  Polynomial Antiderivative() const;

  /// Definite integral over [lo, hi].
  double Integrate(double lo, double hi) const;

  /// p(t + shift), expanded via the binomial theorem. Used by the sum/avg
  /// aggregate's tail integral where terms of the form (t - w)^i appear
  /// (paper Section III-B): Shift(-w) rewrites p(t - w) as a polynomial
  /// in t.
  Polynomial Shift(double shift) const;

  /// p(s * t): rescales the time axis.
  Polynomial ScaleArgument(double s) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;
  Polynomial operator-() const;

  Polynomial& operator+=(const Polynomial& other) {
    AddInPlace(other);
    return *this;
  }
  Polynomial& operator-=(const Polynomial& other) {
    SubInPlace(other);
    return *this;
  }

  /// this += other, without allocating while both fit inline.
  void AddInPlace(const Polynomial& other);

  /// this -= other, without allocating while both fit inline.
  void SubInPlace(const Polynomial& other);

  /// this *= s, in place.
  void ScaleInPlace(double s);

  /// *out = a - b, reusing out's storage. Aliasing with a or b is
  /// allowed.
  static void Sub(const Polynomial& a, const Polynomial& b, Polynomial* out);

  /// *out = a * b, reusing out's storage. `out` must not alias a or b.
  static void Mul(const Polynomial& a, const Polynomial& b, Polynomial* out);

  /// Exact coefficient-wise equality (post-trim).
  bool operator==(const Polynomial& other) const;

  /// True if every |coeff difference| <= tol.
  bool AlmostEquals(const Polynomial& other, double tol = 1e-9) const;

  /// Maximum absolute deviation |p(t) - q(t)| sampled on [lo, hi].
  /// Exact for this class (difference is a polynomial whose extrema are
  /// interrogated via its derivative's roots).
  double MaxAbsDifference(const Polynomial& other, double lo, double hi) const;

  /// Human-readable form, e.g. "1 + 2*t - 0.5*t^2".
  std::string ToString() const;

  /// Process-wide count of coefficient buffers that spilled to the heap
  /// (degree > 7). The solver hot path should keep this flat; the bench
  /// harness reports the delta as an allocations proxy.
  static uint64_t heap_allocations();

 private:
  void Trim();
  // Grows capacity to at least n, preserving contents when `preserve`.
  void Reserve(size_t n, bool preserve);
  void MoveFrom(Polynomial&& other) noexcept;

  size_t size_ = 0;
  size_t capacity_ = kInlineCoefficients;
  double* data_ = inline_;                 // inline_ or heap allocation
  double inline_[kInlineCoefficients];
};

inline Polynomial operator*(double scalar, const Polynomial& p) {
  return p * scalar;
}

}  // namespace pulse

#endif  // PULSE_MATH_POLYNOMIAL_H_
