#ifndef PULSE_STORE_STORE_H_
#define PULSE_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "math/interval_set.h"
#include "model/segment.h"
#include "obs/metrics.h"
#include "store/checkpoint.h"
#include "store/log.h"
#include "store/segment_tree.h"
#include "util/result.h"

namespace pulse {
namespace store {

struct StoreOptions {
  /// Directory holding `segments.log` and `checkpoint.bin`; created if
  /// missing.
  std::string dir;
  /// fsync after every append (safest; default trusts the OS page
  /// cache between explicit Sync()/WriteCheckpoint calls).
  bool sync_each_append = false;
  /// Epoch granularity for backfill republication: a patch to closed
  /// time recomputes and returns the aggregates of every epoch-aligned
  /// window it overlaps.
  double epoch_length = 10.0;
  /// Registry for store/* counters and span/store/* histograms;
  /// nullptr: privately owned, reachable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  LogLimits limits;
};

/// Structured outcome of a recovery scan (the "never a silent
/// divergence" contract of docs/STORAGE.md): what the tail looked
/// like, what was truncated, and how the checkpoint reconciled with
/// the log. Returned alongside the recovered store; ToString() is the
/// one-line report operators see.
struct RecoveryReport {
  /// Why the log scan stopped (kClean when it reached the end).
  LogTailState tail = LogTailState::kClean;
  std::string tail_detail;
  /// True when no log file existed (fresh directory).
  bool log_missing = false;
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  /// Torn-tail bytes removed to restore the consistent prefix.
  uint64_t truncated_bytes = 0;
  bool checkpoint_found = false;
  /// Checkpoint present but unreadable (corrupt/truncated); its error.
  std::string checkpoint_error;
  /// Checkpoint claims more records than the consistent log prefix
  /// holds (checkpoint newer than log). The delivered watermark is
  /// ignored: recovery redelivers from the consistent prefix.
  bool checkpoint_ahead = false;
  /// The decoded checkpoint (zero-valued unless checkpoint_found and
  /// readable).
  Checkpoint checkpoint;
  /// Delivered-output watermark recovery honors (0 when the checkpoint
  /// is missing, unreadable, or ahead of the log).
  uint64_t effective_delivered = 0;

  bool clean() const {
    return tail == LogTailState::kClean && !checkpoint_ahead &&
           checkpoint_error.empty();
  }
  std::string ToString() const;
};

struct RecoveredStore;

/// One epoch's recomputed aggregate after a backfill patch.
struct EpochAggregate {
  int64_t epoch = 0;
  double lo = 0.0;
  double hi = 0.0;
  std::string attribute;
  RangeAggregate aggregate;
};

struct BackfillResult {
  /// Time the patch rewrote.
  Interval affected;
  /// Recomputed aggregates for every epoch window the patch touched,
  /// per modeled attribute — the republication set.
  std::vector<EpochAggregate> republished;
};

/// The tiered segment store (docs/STORAGE.md): tier 1 is the durable
/// append-only log (system of record), tier 2 the in-memory per-key
/// timelines with pre-aggregated segment trees serving historical
/// range aggregates in O(log n). Checkpoints record the
/// delivered-output watermark so recovery can suppress replayed
/// outputs a client already saw. Appends and queries are
/// mutex-serialized: multiple serving sessions share one store.
class SegmentStore {
 public:
  static Result<SegmentStore> Open(StoreOptions options);

  SegmentStore(SegmentStore&&) = default;
  SegmentStore& operator=(SegmentStore&&) = default;

  /// Durably appends an admitted input segment and indexes it into the
  /// key timeline (paper update semantics: overlap truncates
  /// predecessors).
  Status AppendSegment(const std::string& stream, const Segment& segment);

  /// Durably appends a raw input tuple (replayed through segmentation
  /// on recovery; tuples do not enter the segment trees).
  Status AppendTuple(const std::string& stream, const Tuple& tuple);

  /// Late-arriving correction: durably logs the patch, applies it to
  /// the closed timeline, and returns the recomputed aggregates of
  /// every affected epoch window for republication.
  Result<BackfillResult> Backfill(const std::string& stream,
                                  const Segment& patch);

  /// Flushes and fsyncs the log.
  Status Sync();

  /// Notes one output segment delivered downstream (advances the
  /// checkpoint watermark: count + canonical hash, ids excluded).
  void NoteDelivered(const Segment& segment);

  /// Syncs the log, then atomically replaces the checkpoint with the
  /// current log/delivery watermark. `finished` marks a drain point
  /// (all inputs flushed through Finish(), outputs final).
  Status WriteCheckpoint(bool finished);

  /// Historical range aggregate over [lo, hi] for one series, served
  /// from the pre-aggregated tree (O(log n) node payloads plus at most
  /// two exact edge-leaf recomputations).
  RangeAggregate QueryRange(const std::string& stream, Key key,
                            const std::string& attribute, double lo,
                            double hi, TreeQueryStats* stats = nullptr);

  /// Keys with modeled history on `stream`, ascending.
  std::vector<Key> KeysOf(const std::string& stream) const;
  /// The ordered per-key timeline (nullptr when the series is empty).
  const std::vector<Segment>* Timeline(const std::string& stream,
                                       Key key) const;

  uint64_t log_records() const { return log_records_; }
  uint64_t log_bytes() const { return writer_.size_bytes(); }
  uint64_t delivered_outputs() const { return delivered_count_; }
  uint64_t delivered_hash() const { return delivered_hash_; }
  const std::string& dir() const { return options_.dir; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Reopens a store directory: scans the log, truncates any torn
  /// tail, reconciles the checkpoint, rebuilds timelines and trees,
  /// and reopens the log for append at the consistent prefix. Always
  /// structured: corruption surfaces in the report, never as a crash.
  static Result<RecoveredStore> Recover(StoreOptions options);

 private:
  friend struct RecoveredStore;

  SegmentStore() = default;

  Status AppendRecord(const LogRecord& record);
  /// Indexes a segment/backfill record into timeline + dirty trees.
  void Index(const std::string& stream, const Segment& segment);
  std::vector<EpochAggregate> RepublishEpochs(const std::string& stream,
                                              const Segment& patch);

  struct Series {
    std::vector<Segment> timeline;
    /// Trees per attribute, rebuilt lazily from the timeline after
    /// mutations (dirty flag): appends stay O(1), queries O(log n)
    /// once the tree is warm.
    std::map<std::string, SegmentTree> trees;
    bool dirty = true;
  };

  Series* FindSeries(const std::string& stream, Key key);
  const Series* FindSeries(const std::string& stream, Key key) const;
  void RebuildTrees(Series* series);

  StoreOptions options_;
  SegmentLogWriter writer_;
  uint64_t log_records_ = 0;
  uint64_t delivered_count_ = 0;
  uint64_t delivered_hash_ = 0;  // kCanonicalHashSeed at rest
  std::map<std::string, std::map<Key, Series>> series_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<std::mutex> mu_{std::make_unique<std::mutex>()};

  obs::Counter* c_appends_ = nullptr;
  obs::Counter* c_append_bytes_ = nullptr;
  obs::Counter* c_backfills_ = nullptr;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_tree_rebuilds_ = nullptr;
  obs::Counter* c_tree_queries_ = nullptr;

  void BindCounters();
};

struct RecoveredStore {
  SegmentStore store;
  /// The consistent log prefix, in append order — the replay feed for
  /// rebuilding runtime state (store/recovery.h).
  std::vector<LogRecord> records;
  RecoveryReport report;
};

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_STORE_H_
