#ifndef PULSE_SERVE_TCP_TRANSPORT_H_
#define PULSE_SERVE_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/transport.h"
#include "util/result.h"

namespace pulse {
namespace serve {

/// Listening TCP socket (loopback-friendly; POSIX sockets, no external
/// dependencies). Accept() blocks until a connection arrives or Close()
/// is called from another thread.
class TcpListener {
 public:
  /// Binds and listens on `port` (0 picks an ephemeral port — the bench
  /// and tests use this so nothing collides).
  static Result<std::unique_ptr<TcpListener>> Listen(uint16_t port);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolved when Listen() was given 0).
  uint16_t port() const { return port_; }

  /// Blocking accept; fails with IoError after Close().
  Result<std::unique_ptr<Transport>> Accept();

  /// Unblocks a pending Accept(). The descriptor itself is released in
  /// the destructor, which the owner must run only after the accepting
  /// thread is joined — closing it here would race an in-flight
  /// accept() on the same descriptor.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  const int fd_;
  uint16_t port_;
  std::atomic<bool> closed_{false};
};

/// Connects to `host`:`port` (numeric IPv4 or a resolvable name).
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port);

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_TCP_TRANSPORT_H_
