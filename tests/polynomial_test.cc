#include "math/polynomial.h"

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pulse {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_TRUE(p.IsZero());
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate(12.3), 0.0);
}

TEST(Polynomial, TrimsTrailingZeros) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1u);
  EXPECT_EQ(p.coeffs().size(), 2u);
}

TEST(Polynomial, TrimsToZeroPolynomial) {
  Polynomial p({0.0, 0.0});
  EXPECT_TRUE(p.IsZero());
}

TEST(Polynomial, EvaluateHorner) {
  // 2 - 3t + t^2 at t = 5: 2 - 15 + 25 = 12.
  Polynomial p({2.0, -3.0, 1.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(5.0), 12.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(0.0), 2.0);
}

TEST(Polynomial, ConstantAndMonomial) {
  EXPECT_DOUBLE_EQ(Polynomial::Constant(7.0).Evaluate(100.0), 7.0);
  Polynomial m = Polynomial::Monomial(3.0, 2);
  EXPECT_EQ(m.degree(), 2u);
  EXPECT_DOUBLE_EQ(m.Evaluate(4.0), 48.0);
}

TEST(Polynomial, Arithmetic) {
  Polynomial a({1.0, 2.0});        // 1 + 2t
  Polynomial b({3.0, 0.0, 1.0});   // 3 + t^2
  Polynomial sum = a + b;          // 4 + 2t + t^2
  EXPECT_DOUBLE_EQ(sum.Evaluate(2.0), 12.0);
  Polynomial diff = b - a;         // 2 - 2t + t^2
  EXPECT_DOUBLE_EQ(diff.Evaluate(3.0), 5.0);
  Polynomial prod = a * b;         // (1+2t)(3+t^2)
  EXPECT_DOUBLE_EQ(prod.Evaluate(2.0), (1 + 4) * (3 + 4));
  EXPECT_EQ(prod.degree(), 3u);
  Polynomial neg = -a;
  EXPECT_DOUBLE_EQ(neg.Evaluate(1.0), -3.0);
  Polynomial scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.Evaluate(1.0), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).Evaluate(1.0), 6.0);
}

TEST(Polynomial, SubtractionCancelsToZero) {
  Polynomial a({1.0, 2.0, 3.0});
  EXPECT_TRUE((a - a).IsZero());
}

TEST(Polynomial, CompoundAssignment) {
  Polynomial a({1.0});
  a += Polynomial({0.0, 1.0});
  EXPECT_DOUBLE_EQ(a.Evaluate(2.0), 3.0);
  a -= Polynomial({1.0});
  EXPECT_DOUBLE_EQ(a.Evaluate(2.0), 2.0);
}

TEST(Polynomial, Derivative) {
  // d/dt (1 + 2t + 3t^2) = 2 + 6t.
  Polynomial p({1.0, 2.0, 3.0});
  Polynomial d = p.Derivative();
  EXPECT_EQ(d.degree(), 1u);
  EXPECT_DOUBLE_EQ(d.Evaluate(2.0), 14.0);
  EXPECT_TRUE(Polynomial::Constant(5.0).Derivative().IsZero());
  EXPECT_TRUE(Polynomial().Derivative().IsZero());
}

TEST(Polynomial, AntiderivativeInvertsDerivative) {
  Polynomial p({4.0, -2.0, 9.0});
  Polynomial anti = p.Antiderivative();
  EXPECT_TRUE(anti.Derivative().AlmostEquals(p));
  EXPECT_DOUBLE_EQ(anti.Evaluate(0.0), 0.0);
}

TEST(Polynomial, DefiniteIntegral) {
  // Integral of 2t over [0, 3] is 9.
  Polynomial p({0.0, 2.0});
  EXPECT_NEAR(p.Integrate(0.0, 3.0), 9.0, 1e-12);
  // Reversed limits negate.
  EXPECT_NEAR(p.Integrate(3.0, 0.0), -9.0, 1e-12);
}

TEST(Polynomial, ShiftMatchesDirectEvaluation) {
  Polynomial p({1.0, -2.0, 0.5, 0.25});
  const double s = 1.75;
  Polynomial shifted = p.Shift(s);
  for (double t = -3.0; t <= 3.0; t += 0.5) {
    EXPECT_NEAR(shifted.Evaluate(t), p.Evaluate(t + s), 1e-9) << "t=" << t;
  }
}

TEST(Polynomial, ShiftByWindowExpandsBinomially) {
  // The sum-aggregate tail integral uses p(t - w); verify Shift(-w).
  Polynomial p({0.0, 0.0, 1.0});  // t^2
  Polynomial q = p.Shift(-2.0);   // (t-2)^2 = 4 - 4t + t^2
  EXPECT_NEAR(q.coeff(0), 4.0, 1e-12);
  EXPECT_NEAR(q.coeff(1), -4.0, 1e-12);
  EXPECT_NEAR(q.coeff(2), 1.0, 1e-12);
}

TEST(Polynomial, ScaleArgument) {
  Polynomial p({1.0, 1.0, 1.0});
  Polynomial q = p.ScaleArgument(2.0);
  for (double t = -2.0; t <= 2.0; t += 0.25) {
    EXPECT_NEAR(q.Evaluate(t), p.Evaluate(2.0 * t), 1e-12);
  }
}

TEST(Polynomial, MaxAbsDifferenceFindsInteriorExtremum) {
  // p - q = t^2 - 1 on [-2, 2]: max |.| is 3 at the endpoints; on [-1, 1]
  // the interior extremum at t=0 gives 1.
  Polynomial p({0.0, 0.0, 1.0});
  Polynomial q({1.0});
  EXPECT_NEAR(p.MaxAbsDifference(q, -2.0, 2.0), 3.0, 1e-9);
  EXPECT_NEAR(p.MaxAbsDifference(q, -1.0, 1.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.MaxAbsDifference(p, -5.0, 5.0), 0.0);
}

TEST(Polynomial, ToString) {
  EXPECT_EQ(Polynomial().ToString(), "0");
  EXPECT_EQ(Polynomial::Constant(3.0).ToString(), "3");
  Polynomial p({1.0, 2.0});
  EXPECT_EQ(p.ToString(), "1 + 2*t");
}

// Property-style sweep: (p*q)' == p'q + pq' for assorted polynomials.
class PolynomialProductRule
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PolynomialProductRule, DerivativeOfProduct) {
  auto [da, db] = GetParam();
  std::vector<double> ca, cb;
  for (int i = 0; i <= da; ++i) ca.push_back(0.5 * i + 1.0);
  for (int i = 0; i <= db; ++i) cb.push_back(1.5 * i - 2.0);
  Polynomial a{std::vector<double>(ca)};
  Polynomial b{std::vector<double>(cb)};
  Polynomial lhs = (a * b).Derivative();
  Polynomial rhs = a.Derivative() * b + a * b.Derivative();
  EXPECT_TRUE(lhs.AlmostEquals(rhs, 1e-9))
      << lhs.ToString() << " vs " << rhs.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, PolynomialProductRule,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 1),
                      std::make_pair(2, 1), std::make_pair(3, 2),
                      std::make_pair(4, 4), std::make_pair(5, 3)));

// --- Small-buffer optimization ---------------------------------------

std::vector<double> Ramp(size_t n) {
  std::vector<double> c(n);
  for (size_t i = 0; i < n; ++i) c[i] = static_cast<double>(i + 1);
  return c;
}

TEST(PolynomialSbo, InlineUpToDegreeSeven) {
  for (size_t n = 0; n <= Polynomial::kInlineCoefficients; ++n) {
    Polynomial p{Ramp(n)};
    EXPECT_TRUE(p.is_inline()) << "n=" << n;
  }
}

TEST(PolynomialSbo, SpillsToHeapAtDegreeEight) {
  const uint64_t before = Polynomial::heap_allocations();
  Polynomial p{Ramp(Polynomial::kInlineCoefficients + 1)};  // degree 8
  EXPECT_FALSE(p.is_inline());
  EXPECT_EQ(p.degree(), Polynomial::kInlineCoefficients);
  EXPECT_GT(Polynomial::heap_allocations(), before);
  for (size_t i = 0; i <= Polynomial::kInlineCoefficients; ++i) {
    EXPECT_DOUBLE_EQ(p.coeff(i), static_cast<double>(i + 1));
  }
}

TEST(PolynomialSbo, InlineConstructionDoesNotCountHeapAllocations) {
  const uint64_t before = Polynomial::heap_allocations();
  Polynomial p({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});  // degree 7
  Polynomial q = p;
  Polynomial r = std::move(q);
  r.AddInPlace(p);
  r.SubInPlace(p);
  r.ScaleInPlace(2.0);
  EXPECT_EQ(Polynomial::heap_allocations(), before);
}

TEST(PolynomialSbo, TrimAcrossSpillBoundary) {
  // Degree 9 buffer whose high coefficients are zero: after trimming the
  // value is degree 2 and must compare equal to an inline-built twin.
  std::vector<double> c(10, 0.0);
  c[0] = 1.0;
  c[1] = -2.0;
  c[2] = 3.0;
  Polynomial p{std::move(c)};
  EXPECT_EQ(p.degree(), 2u);
  EXPECT_EQ(p, Polynomial({1.0, -2.0, 3.0}));
}

TEST(PolynomialSbo, CopyOfHeapPolynomialIsIndependent) {
  Polynomial p{Ramp(12)};
  Polynomial q = p;
  EXPECT_EQ(p, q);
  q.ScaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(p.coeff(11), 12.0);
  EXPECT_DOUBLE_EQ(q.coeff(11), 24.0);
}

TEST(PolynomialSbo, MoveFromHeapStealsBuffer) {
  Polynomial p{Ramp(12)};
  const uint64_t before = Polynomial::heap_allocations();
  Polynomial q = std::move(p);
  EXPECT_FALSE(q.is_inline());
  EXPECT_EQ(q.degree(), 11u);
  // Stealing the heap buffer must not allocate again.
  EXPECT_EQ(Polynomial::heap_allocations(), before);
}

TEST(PolynomialSbo, MoveFromInlineCopiesAndStaysValid) {
  Polynomial p({1.0, 2.0, 3.0});
  Polynomial q = std::move(p);
  EXPECT_TRUE(q.is_inline());
  EXPECT_EQ(q, Polynomial({1.0, 2.0, 3.0}));
}

TEST(PolynomialSbo, AssignReusesStorageAcrossSizes) {
  Polynomial p{Ramp(12)};  // heap
  const double small[] = {5.0, 6.0};
  p.Assign(small, 2);
  EXPECT_EQ(p, Polynomial({5.0, 6.0}));
  std::vector<double> big = Ramp(10);
  p.Assign(big.data(), big.size());
  EXPECT_EQ(p.degree(), 9u);
  EXPECT_DOUBLE_EQ(p.coeff(9), 10.0);
}

TEST(PolynomialSbo, ResizeZeroFillsNewSlotsOnly) {
  Polynomial p({1.0, 2.0});
  p.Resize(5);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[4], 0.0);
  p[4] = 3.0;
  p.TrimInPlace();
  EXPECT_EQ(p.degree(), 4u);
  // Shrinking keeps the low coefficients.
  p.Resize(2);
  p.TrimInPlace();
  EXPECT_EQ(p, Polynomial({1.0, 2.0}));
}

TEST(PolynomialSbo, InPlaceOpsMatchOperatorForms) {
  Polynomial a({1.0, 2.0, 3.0});
  Polynomial b({-4.0, 5.0});
  Polynomial sum = a + b;
  Polynomial diff = a - b;
  Polynomial x = a;
  x.AddInPlace(b);
  EXPECT_EQ(x, sum);
  x = a;
  x.SubInPlace(b);
  EXPECT_EQ(x, diff);
  Polynomial out;
  Polynomial::Sub(a, b, &out);
  EXPECT_EQ(out, diff);
  // Aliased Sub: out == a.
  out = a;
  Polynomial::Sub(out, b, &out);
  EXPECT_EQ(out, diff);
  Polynomial prod;
  Polynomial::Mul(a, b, &prod);
  EXPECT_EQ(prod, a * b);
}

TEST(PolynomialSbo, SubCancellationTrims) {
  Polynomial a({1.0, 2.0, 3.0});
  Polynomial b({0.0, 2.0, 3.0});
  Polynomial out;
  Polynomial::Sub(a, b, &out);
  EXPECT_EQ(out.degree(), 0u);
  EXPECT_EQ(out, Polynomial::Constant(1.0));
  a.SubInPlace(a);
  EXPECT_TRUE(a.IsZero());
}

TEST(PolynomialSbo, DerivativeIntoReusesStorage) {
  Polynomial p({1.0, 2.0, 3.0, 4.0});
  Polynomial out{Ramp(12)};  // out arrives with unrelated heap state
  p.DerivativeInto(&out);
  EXPECT_EQ(out, p.Derivative());
}

}  // namespace
}  // namespace pulse
