#include "core/pulse_plan.h"

#include <deque>

namespace pulse {

PulsePlan::NodeId PulsePlan::AddOperator(std::shared_ptr<PulseOperator> op) {
  nodes_.push_back(std::move(op));
  edges_.emplace_back();
  return nodes_.size() - 1;
}

Status PulsePlan::Connect(NodeId from, NodeId to, size_t port) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("Connect: node id out of range");
  }
  if (port >= nodes_[to]->num_inputs()) {
    return Status::InvalidArgument("Connect: port out of range for '" +
                                   nodes_[to]->name() + "'");
  }
  edges_[from].push_back(Edge{to, port});
  return Status::OK();
}

Status PulsePlan::BindSource(const std::string& stream, NodeId to,
                             size_t port) {
  if (to >= nodes_.size()) {
    return Status::InvalidArgument("BindSource: node id out of range");
  }
  if (port >= nodes_[to]->num_inputs()) {
    return Status::InvalidArgument("BindSource: port out of range");
  }
  sources_[stream].push_back(Edge{to, port});
  return Status::OK();
}

const std::vector<PulsePlan::Edge>& PulsePlan::source_bindings(
    const std::string& stream) const {
  static const std::vector<Edge>* empty = new std::vector<Edge>();
  auto it = sources_.find(stream);
  return it == sources_.end() ? *empty : it->second;
}

std::vector<std::string> PulsePlan::source_names() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, _] : sources_) names.push_back(name);
  return names;
}

std::vector<PulsePlan::NodeId> PulsePlan::SinkNodes() const {
  std::vector<NodeId> sinks;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (edges_[id].empty()) sinks.push_back(id);
  }
  return sinks;
}

Result<std::vector<PulsePlan::NodeId>> PulsePlan::TopologicalOrder() const {
  std::vector<size_t> indegree(nodes_.size(), 0);
  for (const auto& out : edges_) {
    for (const Edge& e : out) ++indegree[e.to];
  }
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const Edge& e : edges_[id]) {
      if (--indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("pulse plan contains a cycle");
  }
  return order;
}

std::optional<PulsePlan::NodeId> PulsePlan::UpstreamOf(NodeId node,
                                                       size_t port) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (const Edge& e : edges_[id]) {
      if (e.to == node && e.port == port) return id;
    }
  }
  return std::nullopt;
}

Result<PulseExecutor> PulseExecutor::Make(PulsePlan plan) {
  PulseExecutor exec(std::move(plan));
  PULSE_ASSIGN_OR_RETURN(exec.topo_order_, exec.plan_.TopologicalOrder());
  return exec;
}

void PulseExecutor::set_thread_pool(ThreadPool* pool) {
  for (PulsePlan::NodeId id = 0; id < plan_.num_nodes(); ++id) {
    plan_.node(id)->set_thread_pool(pool);
  }
}

void PulseExecutor::set_solve_cache(SolveCache* cache) {
  for (PulsePlan::NodeId id = 0; id < plan_.num_nodes(); ++id) {
    plan_.node(id)->set_solve_cache(cache);
  }
}

void PulseExecutor::set_metrics_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  views_ = obs::ViewGroup();  // drop any previous binding
  node_hists_.assign(plan_.num_nodes(), nullptr);
  if (registry == nullptr) return;
  registry->BindViews(&views_);
  for (PulsePlan::NodeId id = 0; id < plan_.num_nodes(); ++id) {
    PulseOperator* op = plan_.node(id);
    RegisterOperatorViews(views_, op->name(), op->metrics());
    node_hists_[id] =
        registry->GetHistogram("op/" + op->name() + "/process_ns");
  }
}

Status PulseExecutor::RunNode(PulsePlan::NodeId id, size_t port,
                              const Segment& segment, SegmentBatch* out) {
  PulseOperator* op = plan_.node(id);
  if constexpr (obs::kMetricsEnabled) {
    if (registry_ != nullptr) {
      obs::Span span(node_hists_[id], &op->metrics().processing_ns);
      return op->Process(port, segment, out);
    }
  }
  return op->Process(port, segment, out);
}

void PulseExecutor::DeliverToSink(const Segment& segment) {
  ++total_output_;
  if (callback_) callback_(segment);
  if (!discard_output_) output_.push_back(segment);
}

Status PulseExecutor::Drain(PulsePlan::NodeId from, SegmentBatch segments) {
  struct Work {
    PulsePlan::NodeId node;
    size_t port;
    Segment segment;
  };
  std::deque<Work> pending;
  auto route = [&](PulsePlan::NodeId producer, SegmentBatch& outs) {
    const auto& edges = plan_.downstream(producer);
    if (edges.empty()) {
      for (const Segment& s : outs) DeliverToSink(s);
      return;
    }
    for (const Segment& s : outs) {
      for (const auto& e : edges) pending.push_back(Work{e.to, e.port, s});
    }
  };
  route(from, segments);
  SegmentBatch outs;
  while (!pending.empty()) {
    Work w = std::move(pending.front());
    pending.pop_front();
    outs.clear();
    PULSE_RETURN_IF_ERROR(RunNode(w.node, w.port, w.segment, &outs));
    route(w.node, outs);
  }
  return Status::OK();
}

Status PulseExecutor::PushSegment(const std::string& stream,
                                  Segment segment) {
  const auto& bindings = plan_.source_bindings(stream);
  if (bindings.empty()) {
    return Status::NotFound("no operator bound to stream '" + stream + "'");
  }
  if (segment.id == 0) segment.id = NextSegmentId();
  PULSE_SPAN("executor/push_segment");
  for (const auto& e : bindings) {
    SegmentBatch outs;
    PULSE_RETURN_IF_ERROR(RunNode(e.to, e.port, segment, &outs));
    PULSE_RETURN_IF_ERROR(Drain(e.to, std::move(outs)));
  }
  return Status::OK();
}

Status PulseExecutor::Finish() {
  for (PulsePlan::NodeId id : topo_order_) {
    SegmentBatch outs;
    PULSE_RETURN_IF_ERROR(plan_.node(id)->Flush(&outs));
    PULSE_RETURN_IF_ERROR(Drain(id, std::move(outs)));
  }
  return Status::OK();
}

std::vector<Segment> PulseExecutor::TakeOutput() {
  std::vector<Segment> out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace pulse
