// Randomized continuous-vs-discrete equivalence: for randomly generated
// piecewise models, the time ranges the Pulse operators report must agree
// with pointwise evaluation of the same predicates on densely sampled
// values — the semantic contract of the paper's transformation (modulo
// the discretization differences of Section IV-A, which dense sampling
// away from roots avoids).
#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "core/operators/aggregate.h"
#include "core/operators/filter.h"
#include "core/operators/group_by.h"
#include "core/operators/join.h"
#include "testing/workload_gen.h"
#include "util/rng.h"

namespace pulse {
namespace {

// Test-name suffix for seed-parameterized suites: failures show the seed
// itself ("/seed101"), not an opaque value index, so any report replays.
std::string SeedName(const ::testing::TestParamInfo<int>& info) {
  return "seed" + std::to_string(info.param);
}

Polynomial RandomPolynomial(Rng& rng, size_t degree) {
  std::vector<double> coeffs;
  coeffs.push_back(rng.Uniform(-20.0, 20.0));
  for (size_t i = 1; i <= degree; ++i) {
    coeffs.push_back(rng.Uniform(-4.0, 4.0) / static_cast<double>(i * i));
  }
  return Polynomial(std::move(coeffs));
}

class RandomFilterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomFilterEquivalence, SolutionMatchesPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t degree = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const double threshold = rng.Uniform(-15.0, 15.0);
    const CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
    Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
    seg.id = NextSegmentId();
    seg.set_attribute("x", RandomPolynomial(rng, degree));

    PulseFilter filter("f", Predicate::Comparison(ComparisonTerm::Simple(
                                AttrRef::Left("x"), op,
                                Operand::Constant(threshold))));
    SegmentBatch out;
    ASSERT_TRUE(filter.Process(0, seg, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial x = *seg.attribute("x");
    for (double t = 0.0137; t < 10.0; t += 0.0713) {
      const double v = x.Evaluate(t) - threshold;
      if (std::abs(v) < 1e-6) continue;  // too close to a root to judge
      bool expected = false;
      switch (op) {
        case CmpOp::kLt:
          expected = v < 0;
          break;
        case CmpOp::kLe:
          expected = v <= 0;
          break;
        case CmpOp::kEq:
          expected = v == 0;
          break;
        case CmpOp::kNe:
          expected = v != 0;
          break;
        case CmpOp::kGe:
          expected = v >= 0;
          break;
        case CmpOp::kGt:
          expected = v > 0;
          break;
      }
      EXPECT_EQ(solution.Contains(t), expected)
          << "trial " << trial << " op " << CmpOpToString(op) << " t=" << t
          << " x(t)-c=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFilterEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505),
                         SeedName);

class RandomJoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomJoinEquivalence, JoinRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Segment l(1, Interval::ClosedOpen(0.0, 8.0));
    l.id = NextSegmentId();
    l.set_attribute("x", RandomPolynomial(rng, 2));
    Segment r(2, Interval::ClosedOpen(rng.Uniform(0.0, 2.0),
                                      rng.Uniform(5.0, 8.0)));
    r.id = NextSegmentId();
    r.set_attribute("x", RandomPolynomial(rng, 2));

    Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
        AttrRef::Left("x"), CmpOp::kLt,
        Operand::Attribute(AttrRef::Right("x"))));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial lx = *l.attribute("x");
    const Polynomial rx = *r.attribute("x");
    for (double t = 0.0191; t < 8.0; t += 0.0531) {
      const bool both_valid =
          l.range.Contains(t) && r.range.Contains(t);
      const double diff = lx.Evaluate(t) - rx.Evaluate(t);
      if (std::abs(diff) < 1e-6) continue;
      EXPECT_EQ(solution.Contains(t), both_valid && diff < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomJoinEquivalence,
                         ::testing::Values(11, 22, 33), SeedName);

class RandomDistanceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistanceEquivalence, ProximityRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    auto make = [&](Key key) {
      Segment s(key, Interval::ClosedOpen(0.0, 10.0));
      s.id = NextSegmentId();
      s.set_attribute("x", RandomPolynomial(rng, 1));
      s.set_attribute("y", RandomPolynomial(rng, 1));
      return s;
    };
    Segment l = make(1);
    Segment r = make(2);
    const double c = rng.Uniform(1.0, 25.0);
    Predicate pred = Predicate::Comparison(ComparisonTerm::Distance2(
        AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
        AttrRef::Right("y"), CmpOp::kLt, c));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    opts.require_distinct_keys = true;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    for (double t = 0.0171; t < 10.0; t += 0.0611) {
      const double dx = l.attribute("x")->Evaluate(t) -
                        r.attribute("x")->Evaluate(t);
      const double dy = l.attribute("y")->Evaluate(t) -
                        r.attribute("y")->Evaluate(t);
      const double margin = dx * dx + dy * dy - c * c;
      if (std::abs(margin) < 1e-5) continue;
      EXPECT_EQ(solution.Contains(t), margin < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistanceEquivalence,
                         ::testing::Values(7, 17, 27), SeedName);

// Reconstructs the aggregate's value at time t from emitted segments:
// segments arrive in emission order and later emissions override earlier
// coverage, so the last covering segment wins.
std::optional<double> EmittedValue(const SegmentBatch& out,
                                   const std::string& attr, double t) {
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    if (!it->range.Contains(t)) continue;
    Result<Polynomial> poly = it->attribute(attr);
    if (!poly.ok()) return std::nullopt;
    return poly->Evaluate(t);
  }
  return std::nullopt;
}

class RandomMinMaxEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinMaxEquivalence, EnvelopeMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(1, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    PulseMinMaxAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }

    for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
      const std::optional<double> expected = ws.Envelope("x", t, is_min);
      const std::optional<double> actual = EmittedValue(out, "agg", t);
      if (!expected.has_value()) continue;  // gap in every track
      ASSERT_TRUE(actual.has_value())
          << "seed " << GetParam() << " trial " << trial << " t=" << t
          << ": envelope has no emitted coverage";
      EXPECT_NEAR(*actual, *expected, 1e-6)
          << "seed " << GetParam() << " trial " << trial << " t=" << t
          << " fn=" << (is_min ? "min" : "max");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinMaxEquivalence,
                         ::testing::Values(41, 42, 43, 44), SeedName);

// Finalize mode must describe the same envelope as the eager protocol,
// with a stronger output contract: append-only, non-overlapping ranges
// (regression for the HAVING-after-min/max staleness bug; see
// docs/TESTING.md).
class RandomMinMaxFinalizeEquivalence
    : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinMaxFinalizeEquivalence, SettledEmissionMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(1, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    opts.finalize = true;
    PulseMinMaxAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }
    ASSERT_TRUE(agg.Flush(&out).ok());

    // Append-only contract: ranges non-overlapping and time-ordered.
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].range.hi, out[i].range.lo + 1e-12)
          << "seed " << GetParam() << " trial " << trial
          << ": finalized output overlaps or runs backwards at " << i;
    }

    for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
      const std::optional<double> expected = ws.Envelope("x", t, is_min);
      const std::optional<double> actual = EmittedValue(out, "agg", t);
      if (!expected.has_value()) continue;
      ASSERT_TRUE(actual.has_value())
          << "seed " << GetParam() << " trial " << trial << " t=" << t;
      EXPECT_NEAR(*actual, *expected, 1e-6)
          << "seed " << GetParam() << " trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinMaxFinalizeEquivalence,
                         ::testing::Values(51, 52, 53, 54), SeedName);

class RandomSumAvgEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomSumAvgEquivalence, WindowFunctionMatchesIntegral) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_sum = rng.Bernoulli(0.5);
    const double w = 1.0 + rng.UniformInt(0, 1);  // 1 or 2 seconds
    // Window functions assume one contiguous coverage track: single key.
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, 1);

    PulseAggregateOptions opts;
    opts.fn = is_sum ? AggFn::kSum : AggFn::kAvg;
    opts.input_attribute = "x";
    opts.window_seconds = w;
    opts.slide_seconds = 0.5;
    PulseSumAvgAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }

    for (const Segment& s : out) {
      for (double t = s.range.lo + 1e-6; t < s.range.hi; t += 0.1) {
        if (t - w < ws.t_begin - 1e-9) continue;  // partial window
        const std::optional<double> integral =
            ws.Integral(1, "x", t - w, t);
        ASSERT_TRUE(integral.has_value());
        const double expected = is_sum ? *integral : *integral / w;
        Result<Polynomial> poly = s.attribute("agg");
        ASSERT_TRUE(poly.ok());
        EXPECT_NEAR(poly->Evaluate(t), expected,
                    1e-6 * std::max(1.0, std::fabs(expected)))
            << "seed " << GetParam() << " trial " << trial << " t=" << t
            << " fn=" << (is_sum ? "sum" : "avg") << " w=" << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSumAvgEquivalence,
                         ::testing::Values(61, 62, 63, 64), SeedName);

class RandomGroupByEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomGroupByEquivalence, PerGroupAggregateMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(2, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    opts.finalize = true;
    PulseGroupBy group_by(
        "g", [opts](Key) -> Result<std::unique_ptr<PulseOperator>> {
          return MakePulseAggregate("inner", opts);
        });
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(group_by.Process(0, seg, &out).ok());
    }
    ASSERT_TRUE(group_by.Flush(&out).ok());

    // Per group, the "envelope" over one key is just that key's value.
    for (const testing::KeyTrack& track : ws.tracks) {
      SegmentBatch group_out;
      for (const Segment& s : out) {
        if (s.key == track.key) group_out.push_back(s);
      }
      for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
        const std::optional<double> expected = track.Value("x", t);
        const std::optional<double> actual =
            EmittedValue(group_out, "agg", t);
        if (!expected.has_value()) continue;
        ASSERT_TRUE(actual.has_value())
            << "seed " << GetParam() << " trial " << trial << " group "
            << track.key << " t=" << t;
        EXPECT_NEAR(*actual, *expected, 1e-6)
            << "seed " << GetParam() << " trial " << trial << " group "
            << track.key << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGroupByEquivalence,
                         ::testing::Values(71, 72, 73), SeedName);

}  // namespace
}  // namespace pulse
