#include "serve/admission.h"

namespace pulse {
namespace serve {

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const obs::Histogram* latency)
    : options_(options), latency_(latency) {
  if (options_.queue_low_watermark > options_.queue_high_watermark) {
    options_.queue_low_watermark = options_.queue_high_watermark;
  }
  if (options_.latency_low_ns > options_.latency_high_ns) {
    options_.latency_low_ns = options_.latency_high_ns;
  }
  if (options_.sample_every == 0) options_.sample_every = 1;
}

void AdmissionController::ResampleLatency() {
  if (latency_ == nullptr) return;
  const auto buckets = latency_->BucketCounts();
  const uint64_t count = latency_->count();
  if (count <= last_count_) {
    // No new observations since the last sample: the latency signal is
    // stale, not elevated. Clear it so an idle solver cannot pin the
    // controller in shedding.
    interval_p99_ns_ = 0.0;
    latency_overloaded_ = false;
    last_buckets_ = buckets;
    last_count_ = count;
    return;
  }
  std::array<uint64_t, obs::Histogram::kNumBuckets> delta{};
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = buckets[i] - last_buckets_[i];
  }
  interval_p99_ns_ =
      obs::PercentileFromBuckets(delta, count - last_count_, 99.0);
  last_buckets_ = buckets;
  last_count_ = count;
  if (latency_overloaded_) {
    if (interval_p99_ns_ < static_cast<double>(options_.latency_low_ns)) {
      latency_overloaded_ = false;
    }
  } else if (interval_p99_ns_ >
             static_cast<double>(options_.latency_high_ns)) {
    latency_overloaded_ = true;
  }
}

AdmitDecision AdmissionController::Admit(size_t total_depth,
                                         size_t total_capacity) {
  if (!options_.enabled) return AdmitDecision::kAdmit;

  const double fraction =
      total_capacity == 0
          ? 0.0
          : static_cast<double>(total_depth) /
                static_cast<double>(total_capacity);
  if (queue_overloaded_) {
    if (fraction < options_.queue_low_watermark) queue_overloaded_ = false;
  } else if (fraction > options_.queue_high_watermark) {
    queue_overloaded_ = true;
  }

  if (++admits_since_sample_ >= options_.sample_every) {
    admits_since_sample_ = 0;
    ResampleLatency();
  }

  if (queue_overloaded_) return AdmitDecision::kShedQueue;
  if (latency_overloaded_) return AdmitDecision::kShedLatency;
  return AdmitDecision::kAdmit;
}

}  // namespace serve
}  // namespace pulse
