// Randomized continuous-vs-discrete equivalence: for randomly generated
// piecewise models, the time ranges the Pulse operators report must agree
// with pointwise evaluation of the same predicates on densely sampled
// values — the semantic contract of the paper's transformation (modulo
// the discretization differences of Section IV-A, which dense sampling
// away from roots avoids).
#include <cmath>

#include <gtest/gtest.h>

#include "core/operators/filter.h"
#include "core/operators/join.h"
#include "util/rng.h"

namespace pulse {
namespace {

Polynomial RandomPolynomial(Rng& rng, size_t degree) {
  std::vector<double> coeffs;
  coeffs.push_back(rng.Uniform(-20.0, 20.0));
  for (size_t i = 1; i <= degree; ++i) {
    coeffs.push_back(rng.Uniform(-4.0, 4.0) / static_cast<double>(i * i));
  }
  return Polynomial(std::move(coeffs));
}

class RandomFilterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomFilterEquivalence, SolutionMatchesPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t degree = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const double threshold = rng.Uniform(-15.0, 15.0);
    const CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
    Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
    seg.id = NextSegmentId();
    seg.set_attribute("x", RandomPolynomial(rng, degree));

    PulseFilter filter("f", Predicate::Comparison(ComparisonTerm::Simple(
                                AttrRef::Left("x"), op,
                                Operand::Constant(threshold))));
    SegmentBatch out;
    ASSERT_TRUE(filter.Process(0, seg, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial x = *seg.attribute("x");
    for (double t = 0.0137; t < 10.0; t += 0.0713) {
      const double v = x.Evaluate(t) - threshold;
      if (std::abs(v) < 1e-6) continue;  // too close to a root to judge
      bool expected = false;
      switch (op) {
        case CmpOp::kLt:
          expected = v < 0;
          break;
        case CmpOp::kLe:
          expected = v <= 0;
          break;
        case CmpOp::kEq:
          expected = v == 0;
          break;
        case CmpOp::kNe:
          expected = v != 0;
          break;
        case CmpOp::kGe:
          expected = v >= 0;
          break;
        case CmpOp::kGt:
          expected = v > 0;
          break;
      }
      EXPECT_EQ(solution.Contains(t), expected)
          << "trial " << trial << " op " << CmpOpToString(op) << " t=" << t
          << " x(t)-c=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFilterEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

class RandomJoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomJoinEquivalence, JoinRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Segment l(1, Interval::ClosedOpen(0.0, 8.0));
    l.id = NextSegmentId();
    l.set_attribute("x", RandomPolynomial(rng, 2));
    Segment r(2, Interval::ClosedOpen(rng.Uniform(0.0, 2.0),
                                      rng.Uniform(5.0, 8.0)));
    r.id = NextSegmentId();
    r.set_attribute("x", RandomPolynomial(rng, 2));

    Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
        AttrRef::Left("x"), CmpOp::kLt,
        Operand::Attribute(AttrRef::Right("x"))));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial lx = *l.attribute("x");
    const Polynomial rx = *r.attribute("x");
    for (double t = 0.0191; t < 8.0; t += 0.0531) {
      const bool both_valid =
          l.range.Contains(t) && r.range.Contains(t);
      const double diff = lx.Evaluate(t) - rx.Evaluate(t);
      if (std::abs(diff) < 1e-6) continue;
      EXPECT_EQ(solution.Contains(t), both_valid && diff < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomJoinEquivalence,
                         ::testing::Values(11, 22, 33));

class RandomDistanceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistanceEquivalence, ProximityRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    auto make = [&](Key key) {
      Segment s(key, Interval::ClosedOpen(0.0, 10.0));
      s.id = NextSegmentId();
      s.set_attribute("x", RandomPolynomial(rng, 1));
      s.set_attribute("y", RandomPolynomial(rng, 1));
      return s;
    };
    Segment l = make(1);
    Segment r = make(2);
    const double c = rng.Uniform(1.0, 25.0);
    Predicate pred = Predicate::Comparison(ComparisonTerm::Distance2(
        AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
        AttrRef::Right("y"), CmpOp::kLt, c));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    opts.require_distinct_keys = true;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    for (double t = 0.0171; t < 10.0; t += 0.0611) {
      const double dx = l.attribute("x")->Evaluate(t) -
                        r.attribute("x")->Evaluate(t);
      const double dy = l.attribute("y")->Evaluate(t) -
                        r.attribute("y")->Evaluate(t);
      const double margin = dx * dx + dy * dy - c * c;
      if (std::abs(margin) < 1e-5) continue;
      EXPECT_EQ(solution.Contains(t), margin < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistanceEquivalence,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace pulse
