// pulse_cli — run an ad-hoc StreamSQL query over a built-in workload.
//
//   pulse_cli --workload objects|nyse|ais|telemetry --tuples N
//             --query "select * from objects where x < 500"
//             [--mode predictive|historical] [--bound attr=0.01]
//             [--sample-rate HZ] [--show K]
//
// Examples:
//   pulse_cli --workload nyse --tuples 50000 --bound s.ap=0.01 --query \
//     "select symbol, s.ap - l.ap as diff from (select symbol, avg(price) \
//      as ap from nyse [size 10 advance 2]) as s join (select symbol, \
//      avg(price) as ap from nyse [size 60 advance 2]) as l on \
//      (s.symbol = l.symbol) where s.ap > l.ap"
//
//   pulse_cli --workload objects --mode historical --tuples 100000 \
//     --query "select * from objects where x < 2000"
//
//   # Full serving stack: StreamServer session over the in-process
//   # transport (or loopback TCP with --port), paced replay, drain.
//   pulse_cli --workload objects --mode serve --tuples 20000 \
//     --policy drop_oldest --rate 50000 \
//     --query "select * from objects where x < 2000"
//
//   # Adaptive precision (docs/PRECISION.md): the session widens the
//   # error budget under load, emits provisional answers, and settles
//   # them as confirm/retract at drain. --tier 1 pins the widened tier
//   # so the side-band is exercised deterministically.
//   pulse_cli --workload objects --mode serve --tuples 20000 \
//     --precision adaptive --tier 1 \
//     --query "select * from objects where x < 2000"
//
//   # Durable serving: admitted inputs land in DIR/segments.log before
//   # dispatch, the drain seals a checkpoint, and a later --recover
//   # replays the log into a fresh runtime and prints the recovery
//   # report (docs/STORAGE.md).
//   pulse_cli --workload objects --mode serve --tuples 20000 \
//     --store-dir /tmp/pulse_store \
//     --query "select * from objects where x < 2000"
//   pulse_cli --workload objects --recover --store-dir /tmp/pulse_store \
//     --query "select * from objects where x < 2000"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "core/parser.h"
#include "core/runtime.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/tcp_transport.h"
#include "store/recovery.h"
#include "store/store.h"
#include "util/cpu_features.h"
#include "util/stopwatch.h"
#include "workload/ais.h"
#include "workload/moving_object.h"
#include "workload/nyse.h"
#include "workload/replay.h"
#include "workload/telemetry.h"

using namespace pulse;

namespace {

struct CliOptions {
  std::string workload = "objects";
  std::string query;
  std::string mode = "predictive";
  size_t tuples = 10000;
  double sample_rate = 0.0;
  size_t show = 5;
  std::vector<BoundSpec> bounds;
  // serve mode only:
  std::string policy = "block";
  double rate = 0.0;  // paced replay tuples/second; 0 = unpaced
  int port = -1;      // >= 0: loopback TCP instead of in-process
  // adaptive precision (serve mode only; docs/PRECISION.md):
  std::string precision = "static";
  int tier = -1;  // >= 0 pins the precision tier (deterministic runs)
  // durable store (serve mode and --recover):
  std::string store_dir;
  bool recover = false;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --query SQL [--workload objects|nyse|ais|telemetry] "
      "[--tuples N]\n"
      "          [--mode predictive|historical|serve] [--bound attr=frac]...\n"
      "          [--sample-rate HZ] [--show K]\n"
      "          [--policy block|drop_oldest|shed] [--rate TPS] [--port P]\n"
      "          [--precision static|adaptive] [--tier N]\n"
      "          [--store-dir DIR] [--recover]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      const char* v = next("--workload");
      if (v == nullptr) return false;
      out->workload = v;
    } else if (arg == "--query") {
      const char* v = next("--query");
      if (v == nullptr) return false;
      out->query = v;
    } else if (arg == "--mode") {
      const char* v = next("--mode");
      if (v == nullptr) return false;
      out->mode = v;
    } else if (arg == "--tuples") {
      const char* v = next("--tuples");
      if (v == nullptr) return false;
      out->tuples = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--sample-rate") {
      const char* v = next("--sample-rate");
      if (v == nullptr) return false;
      out->sample_rate = std::strtod(v, nullptr);
    } else if (arg == "--show") {
      const char* v = next("--show");
      if (v == nullptr) return false;
      out->show = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--policy") {
      const char* v = next("--policy");
      if (v == nullptr) return false;
      out->policy = v;
    } else if (arg == "--rate") {
      const char* v = next("--rate");
      if (v == nullptr) return false;
      out->rate = std::strtod(v, nullptr);
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      out->port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--precision") {
      const char* v = next("--precision");
      if (v == nullptr) return false;
      out->precision = v;
    } else if (arg.rfind("--precision=", 0) == 0) {
      out->precision = arg.substr(std::strlen("--precision="));
    } else if (arg == "--tier") {
      const char* v = next("--tier");
      if (v == nullptr) return false;
      out->tier = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--store-dir") {
      const char* v = next("--store-dir");
      if (v == nullptr) return false;
      out->store_dir = v;
    } else if (arg == "--recover") {
      out->recover = true;
    } else if (arg == "--bound") {
      const char* v = next("--bound");
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "--bound expects attr=fraction\n");
        return false;
      }
      out->bounds.push_back(BoundSpec::Relative(
          std::string(v, eq - v), std::strtod(eq + 1, nullptr)));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return !out->query.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  // Declare the chosen workload's stream and build a tuple source.
  QuerySpec spec;
  std::function<Tuple()> source;
  std::string stream_name = options.workload;
  if (options.workload == "objects") {
    (void)spec.AddStream(
        MovingObjectGenerator::MakeStreamSpec("objects", 5.0));
    auto gen = std::make_shared<MovingObjectGenerator>(MovingObjectOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else if (options.workload == "nyse") {
    (void)spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
    auto gen = std::make_shared<NyseGenerator>(NyseOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else if (options.workload == "ais") {
    (void)spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0));
    auto gen = std::make_shared<AisGenerator>(AisOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else if (options.workload == "telemetry") {
    (void)spec.AddStream(
        TelemetryGenerator::MakeStreamSpec("telemetry", 5.0));
    auto gen = std::make_shared<TelemetryGenerator>(TelemetryOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return Usage(argv[0]);
  }

  Result<QuerySpec::NodeId> sink = QueryParser::Parse(&spec, options.query);
  if (!sink.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 sink.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed query -> %zu operator(s)\n", spec.num_nodes());
  std::printf("solver kernel: %s (detected %s)\n",
              SimdLevelName(ActiveSimdLevel()),
              SimdLevelName(DetectedSimdLevel()));

  Stopwatch watch;
  if (options.recover) {
    if (options.store_dir.empty()) {
      std::fprintf(stderr, "--recover requires --store-dir DIR\n");
      return Usage(argv[0]);
    }
    HistoricalRuntime::Options hopts;
    hopts.segmentation.degree = 1;
    hopts.segmentation.max_error = 0.1;
    hopts.segmentation.max_points_per_segment = 1000;
    Result<store::RecoveredHistorical> rec = store::RecoverHistorical(
        spec, hopts, store::StoreOptions{.dir = options.store_dir});
    if (!rec.ok()) {
      std::fprintf(stderr, "recover failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    std::printf("recovery: %s\n", rec->report.ToString().c_str());
    std::printf(
        "state %s; %llu records replayed, %llu outputs already "
        "delivered, %zu pending in %.3f s\n",
        rec->state_verified ? "verified"
                            : ("NOT verified: " + rec->verify_detail).c_str(),
        (unsigned long long)rec->store.log_records(),
        (unsigned long long)rec->report.effective_delivered,
        rec->pending_outputs.size(), watch.ElapsedSeconds());
    for (size_t i = 0;
         i < rec->pending_outputs.size() && i < options.show; ++i) {
      std::printf("  %s\n", rec->pending_outputs[i].ToString().c_str());
    }
    return rec->state_verified ? 0 : 1;
  }
  if (options.mode == "serve") {
    serve::BackpressurePolicy policy;
    if (options.policy == "block") {
      policy = serve::BackpressurePolicy::kBlock;
    } else if (options.policy == "drop_oldest") {
      policy = serve::BackpressurePolicy::kDropOldest;
    } else if (options.policy == "shed") {
      policy = serve::BackpressurePolicy::kShed;
    } else {
      std::fprintf(stderr, "unknown policy '%s'\n", options.policy.c_str());
      return Usage(argv[0]);
    }

    // Durable mode: every admitted input is appended to the store's log
    // before dispatch, and the drain below seals a `finished`
    // checkpoint. The store must outlive the server.
    std::optional<store::SegmentStore> durable;
    if (!options.store_dir.empty()) {
      Result<store::SegmentStore> opened = store::SegmentStore::Open(
          store::StoreOptions{.dir = options.store_dir});
      if (opened.ok()) {
        durable.emplace(std::move(*opened));
      } else {
        // Existing log: reopen through recovery (torn-tail repair +
        // checkpoint reconcile) and keep appending.
        Result<store::RecoveredStore> rec = store::SegmentStore::Recover(
            store::StoreOptions{.dir = options.store_dir});
        if (!rec.ok()) {
          std::fprintf(stderr, "store open failed: %s\n",
                       rec.status().ToString().c_str());
          return 1;
        }
        std::printf("reopened store: %s\n", rec->report.ToString().c_str());
        durable.emplace(std::move(rec->store));
      }
      std::printf("durable store: %s\n", durable->dir().c_str());
    }

    serve::ServerOptions sopts;
    sopts.spec = spec;
    sopts.runtime.segmentation.degree = 1;
    sopts.runtime.segmentation.max_error = 0.1;
    sopts.runtime.segmentation.max_points_per_segment = 1000;
    sopts.session.policy = policy;
    if (options.precision == "adaptive") {
      // Adaptive precision (docs/PRECISION.md): under pressure the
      // session widens the error budget and emits provisional answers,
      // settling them as confirm/retract after the exact replay.
      // --tier pins the controller for deterministic demonstrations.
      sopts.session.precision.enabled = true;
      sopts.session.precision.forced_tier = options.tier;
    } else if (options.precision != "static") {
      std::fprintf(stderr, "unknown precision mode '%s'\n",
                   options.precision.c_str());
      return Usage(argv[0]);
    }
    if (durable.has_value()) sopts.store = &*durable;
    Result<std::unique_ptr<serve::StreamServer>> server =
        serve::StreamServer::Make(std::move(sopts));
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      return 1;
    }

    Result<std::unique_ptr<serve::Transport>> conn = Status::Internal("");
    if (options.port >= 0) {
      Status listen =
          (*server)->ListenTcp(static_cast<uint16_t>(options.port));
      if (!listen.ok()) {
        std::fprintf(stderr, "%s\n", listen.ToString().c_str());
        return 1;
      }
      const uint16_t port = (*server)->tcp_port();
      std::printf("serving on 127.0.0.1:%u (tcp)\n", port);
      conn = serve::TcpConnect("127.0.0.1", port);
    } else {
      std::printf("serving over the in-process transport\n");
      conn = (*server)->ConnectInProcess();
    }
    if (!conn.ok()) {
      std::fprintf(stderr, "%s\n", conn.status().ToString().c_str());
      return 1;
    }

    // Pre-generate the trace so PacedReplay can pace it.
    std::vector<Tuple> trace;
    trace.reserve(options.tuples);
    for (size_t i = 0; i < options.tuples; ++i) trace.push_back(source());
    PacedReplay replay(std::move(trace), options.rate);

    serve::ServeClient client(std::move(*conn));
    Status st = client.Hello();
    if (st.ok()) st = client.OpenStream(1, stream_name);
    const auto start = std::chrono::steady_clock::now();
    Tuple t;
    uint64_t offset_ns = 0;
    while (st.ok() && replay.Next(&t, &offset_ns)) {
      if (options.rate > 0.0) {
        std::this_thread::sleep_until(
            start + std::chrono::nanoseconds(offset_ns));
      }
      st = client.SendTuple(1, t);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    Result<serve::ServeClient::DrainResult> drained = client.Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "drain failed: %s\n",
                   drained.status().ToString().c_str());
      return 1;
    }
    (void)client.Bye();
    (*server)->Drain();

    obs::MetricsSnapshot snapshot = (*server)->metrics()->Snapshot();
    std::printf(
        "serve(%s): %llu sent, %llu accepted, %llu dropped, %llu shed, "
        "%zu result segments in %.3f s (%.0f tup/s offered)\n",
        options.policy.c_str(), (unsigned long long)options.tuples,
        (unsigned long long)snapshot.counters["serve/queue/accepted"],
        (unsigned long long)drained->dropped,
        (unsigned long long)drained->shed,
        drained->output_segments.size(), watch.ElapsedSeconds(),
        options.tuples / watch.ElapsedSeconds());
    auto admit = snapshot.histograms.find("span/serve/admit");
    if (admit != snapshot.histograms.end()) {
      std::printf("admission p99: %.0f ns over %llu frames\n",
                  admit->second.p99,
                  (unsigned long long)admit->second.count);
    }
    if (options.precision == "adaptive") {
      // Conservation identity (docs/PRECISION.md): every provisional
      // lineage settles as exactly one confirm or retract by drain.
      const size_t open = drained->provisionals.size() -
                          drained->confirmed.size() -
                          drained->retracted.size();
      std::printf(
          "precision(adaptive): %zu provisional, %zu confirmed, "
          "%zu retracted, %zu open\n",
          drained->provisionals.size(), drained->confirmed.size(),
          drained->retracted.size(), open);
    }
    for (size_t i = 0;
         i < drained->output_segments.size() && i < options.show; ++i) {
      std::printf("  %s\n", drained->output_segments[i].ToString().c_str());
    }
    return 0;
  }
  if (options.mode == "historical") {
    HistoricalRuntime::Options hopts;
    hopts.segmentation.degree = 1;
    hopts.segmentation.max_error = 0.1;
    hopts.segmentation.max_points_per_segment = 1000;
    Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, hopts);
    if (!rt.ok()) {
      std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < options.tuples; ++i) {
      Status st = rt->ProcessTuple(stream_name, source());
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    (void)rt->Finish();
    const RuntimeStats& stats = rt->stats();
    std::printf(
        "historical: %llu tuples -> %llu segments -> %llu result "
        "segments in %.3f s (%.0f tup/s)\n",
        (unsigned long long)stats.tuples_in,
        (unsigned long long)stats.segments_pushed,
        (unsigned long long)stats.output_segments, watch.ElapsedSeconds(),
        stats.tuples_in / watch.ElapsedSeconds());
    std::vector<Segment> outputs = rt->TakeOutputSegments();
    for (size_t i = 0; i < outputs.size() && i < options.show; ++i) {
      std::printf("  %s\n", outputs[i].ToString().c_str());
    }
    return 0;
  }

  PredictiveRuntime::Options popts;
  popts.bounds = options.bounds;
  popts.sample_rate = options.sample_rate;
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, popts);
  if (!rt.ok()) {
    std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < options.tuples; ++i) {
    Status st = rt->ProcessTuple(stream_name, source());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)rt->Finish();
  const RuntimeStats& stats = rt->stats();
  std::printf(
      "predictive: %llu tuples, %llu validated (%.1f%%), %llu solver "
      "runs, %llu violations, %llu result segments in %.3f s "
      "(%.0f tup/s)\n",
      (unsigned long long)stats.tuples_in,
      (unsigned long long)stats.tuples_validated,
      100.0 * stats.tuples_validated / std::max<uint64_t>(1, stats.tuples_in),
      (unsigned long long)stats.segments_pushed,
      (unsigned long long)stats.violations,
      (unsigned long long)stats.output_segments, watch.ElapsedSeconds(),
      stats.tuples_in / watch.ElapsedSeconds());
  std::vector<Segment> outputs = rt->TakeOutputSegments();
  for (size_t i = 0; i < outputs.size() && i < options.show; ++i) {
    std::printf("  %s\n", outputs[i].ToString().c_str());
  }
  if (options.sample_rate > 0.0) {
    std::vector<Tuple> tuples = rt->TakeOutputTuples();
    std::printf("sampled %zu result tuples\n", tuples.size());
    for (size_t i = 0; i < tuples.size() && i < options.show; ++i) {
      std::printf("  %s\n", tuples[i].ToString().c_str());
    }
  }
  return 0;
}
