#include "engine/operator.h"

namespace pulse {

Status Operator::AdvanceTime(double /*t*/, std::vector<Tuple>* /*out*/) {
  return Status::OK();
}

Status Operator::Flush(std::vector<Tuple>* /*out*/) { return Status::OK(); }

}  // namespace pulse
