// Reproduces paper Fig. 5ii: min-aggregate microbenchmark. Continuous
// aggregate throughput vs tuples/segment, with the tuple-based aggregate's
// cost at three window sizes for comparison (1% error threshold; stream
// rates 20000-40000 tup/s in Fig. 6).
//
// Paper shape: the discrete aggregate pays size/slide state increments
// per tuple, so its throughput drops with window size; the continuous
// aggregate validates most tuples and becomes viable at a model fit ~5x
// weaker than the filter's (120-180 tuples/segment in the paper).
#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "engine/executor.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kTraceTuples = 200000;

std::vector<Tuple> MakeTrace(size_t tuples_per_segment) {
  MovingObjectOptions opts;
  opts.num_objects = 10;
  opts.tuple_rate = 20000.0;
  opts.tuples_per_segment = tuples_per_segment;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(kTraceTuples);
}

QuerySpec MinQuery(size_t tuples_per_segment, double window) {
  QuerySpec spec;
  const double horizon =
      static_cast<double>(tuples_per_segment) * 10.0 / 20000.0;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", horizon));
  AggregateSpec agg;
  agg.fn = AggFn::kMin;
  agg.attribute = "x";
  agg.window_seconds = window;
  agg.slide_seconds = 0.1;  // fixed slide: open windows scale with size
  spec.AddAggregate("min", QuerySpec::Input::Stream("objects"), agg);
  return spec;
}

// Discrete series: one per window size (three lines in the paper's plot).
void BM_TupleMinAggregate(benchmark::State& state) {
  const double window = static_cast<double>(state.range(0));
  const std::vector<Tuple> trace = MakeTrace(100);
  const QuerySpec spec = MinQuery(100, window);
  for (auto _ : state) {
    state.PauseTiming();
    Result<DiscretePlan> plan = BuildDiscretePlan(spec);
    Result<Executor> exec = Executor::Make(std::move(plan->plan));
    exec->set_discard_output(true);
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(exec->PushTuple("objects", t));
    }
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}

void BM_PulseMinAggregate(benchmark::State& state) {
  const size_t tps = static_cast<size_t>(state.range(0));
  const std::vector<Tuple> trace = MakeTrace(tps);
  const QuerySpec spec = MinQuery(tps, /*window=*/2.0);
  for (auto _ : state) {
    state.PauseTiming();
    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("agg", 0.01)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt =
        PredictiveRuntime::Make(spec, std::move(opts));
    state.ResumeTiming();
    for (const Tuple& t : trace) {
      benchmark::DoNotOptimize(rt->ProcessTuple("objects", t));
    }
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}

// Window sizes (seconds) for the discrete baseline: the paper plots three.
BENCHMARK(BM_TupleMinAggregate)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
// Model fit sweep for the continuous aggregate.
BENCHMARK(BM_PulseMinAggregate)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(120)
    ->Arg(180)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pulse

BENCHMARK_MAIN();
