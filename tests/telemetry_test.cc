// Network-telemetry workload family: generator ground truth, the
// Sonata-style detection query builders, and end-to-end detection
// agreement between the discrete plan and the Pulse predictive runtime.
// (Byte-level answer equivalence of the epoch/distinct operators is
// proved separately by differential_test over exact segment replays;
// here the Pulse side runs the full online modeling path, so agreement
// is asserted on the detection *sets* and epoch-level timing.)

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "core/transform.h"
#include "engine/epoch.h"
#include "engine/executor.h"
#include "workload/telemetry.h"

namespace pulse {
namespace {

// Tuple field index of the metric an attack kind drives (schema: id,
// then value/derivative pairs in syn, ack, in, port_spread, fanout
// order).
size_t MetricFieldOf(AttackEvent::Kind kind) {
  switch (kind) {
    case AttackEvent::Kind::kSynFlood:
      return 1;  // syn_rate
    case AttackEvent::Kind::kPortScan:
      return 7;  // port_spread
    case AttackEvent::Kind::kDdosVictim:
      return 5;  // in_rate
    case AttackEvent::Kind::kSuperSpreader:
      return 9;  // fanout
  }
  return 0;
}

// Small trace that still contains every attack kind once: 8 hosts,
// 200 tuples/sec for 10 seconds.
TelemetryOptions SmallTrace(uint64_t seed = 7) {
  TelemetryOptions o;
  o.num_hosts = 8;
  o.tuple_rate = 200.0;
  o.duration = 10.0;
  o.syn_floods = 1;
  o.port_scans = 1;
  o.ddos_victims = 1;
  o.super_spreaders = 1;
  o.attack_duration = 2.0;
  o.seed = seed;
  return o;
}

TEST(TelemetryGenerator, SchemaAndDeterminism) {
  EXPECT_EQ(TelemetryGenerator::TupleSchema()->num_fields(), 11u);
  StreamSpec spec = TelemetryGenerator::MakeStreamSpec("telemetry", 5.0);
  EXPECT_EQ(spec.key_field, "id");
  EXPECT_EQ(spec.models.size(), 5u);
  EXPECT_TRUE(spec.schema->HasField("syn_rate_d"));

  TelemetryGenerator a(SmallTrace()), b(SmallTrace());
  ASSERT_EQ(a.attacks().size(), 4u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextTuple().ToString(), b.NextTuple().ToString());
  }
}

TEST(TelemetryGenerator, AttacksHitDistinctHostsInsideTrace) {
  TelemetryGenerator gen(SmallTrace(11));
  std::set<int64_t> hosts;
  for (const AttackEvent& a : gen.attacks()) {
    hosts.insert(a.host);
    EXPECT_GE(a.onset, 0.0);
    EXPECT_LE(a.end, gen.options().duration);
    EXPECT_NEAR(a.end - a.onset, gen.options().attack_duration, 1e-9);
  }
  EXPECT_EQ(hosts.size(), gen.attacks().size()) << "victims must differ";
}

TEST(TelemetryGenerator, TrafficShapesMatchGroundTruth) {
  const TelemetryOptions opts = SmallTrace(13);
  TelemetryGenerator gen(opts);
  std::vector<Tuple> trace = gen.GenerateAll();
  ASSERT_EQ(trace.size(),
            static_cast<size_t>(opts.duration * opts.tuple_rate));

  const double quiet_ceiling = opts.baseline + opts.baseline_jitter + 1.0;
  for (const AttackEvent& attack : gen.attacks()) {
    const size_t field = MetricFieldOf(attack.kind);
    double hold_max = 0.0;
    double quiet_max = 0.0;
    for (const Tuple& t : trace) {
      if (t.at(0).as_int64() != attack.host) continue;
      const double v = t.at(field).as_double();
      const bool in_hold =
          t.timestamp > attack.onset + opts.ramp_seconds &&
          t.timestamp < attack.end - opts.ramp_seconds;
      const bool outside = t.timestamp < attack.onset - 1e-9 ||
                           t.timestamp > attack.end + 1e-9;
      if (in_hold) hold_max = std::max(hold_max, v);
      if (outside) quiet_max = std::max(quiet_max, v);
    }
    // Peak rides on top of the baseline; quiet time stays in the band.
    EXPECT_GT(hold_max, opts.peak * 0.9)
        << "attack on host " << attack.host << " never reached peak";
    EXPECT_LT(quiet_max, quiet_ceiling)
        << "host " << attack.host << " was loud outside its attack";
  }
  // The reported derivative is the true slope: consecutive samples of
  // one host obey v' = v + v_d * dt exactly within a linear phase.
  const Tuple* prev = nullptr;
  int checked = 0;
  for (const Tuple& t : trace) {
    if (t.at(0).as_int64() != 0) continue;
    if (prev != nullptr) {
      const double dt = t.timestamp - prev->timestamp;
      const double predicted =
          prev->at(5).as_double() + prev->at(6).as_double() * dt;
      // Skip samples straddling a trapezoid breakpoint.
      if (std::fabs(predicted - t.at(5).as_double()) < 1e-6) ++checked;
    }
    prev = &t;
  }
  EXPECT_GT(checked, 100);
}

TEST(TelemetryQueries, AllFiveBuildBothPlans) {
  using Builder = Result<QuerySpec::NodeId> (*)(
      QuerySpec*, const TelemetryQueryParams&);
  const Builder builders[] = {AddSynFloodQuery, AddPortScanQuery,
                              AddDdosVictimQuery, AddSuperSpreaderQuery,
                              AddHeavyHitterQuery};
  for (Builder b : builders) {
    QuerySpec spec;
    ASSERT_TRUE(spec.AddStream(
                        TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
                    .ok());
    ASSERT_TRUE(b(&spec, TelemetryQueryParams{}).ok());
    EXPECT_TRUE(BuildPulsePlan(spec).ok());
    EXPECT_TRUE(BuildDiscretePlan(spec).ok());
  }
  // Builders fail cleanly without the stream.
  QuerySpec empty;
  EXPECT_FALSE(AddSynFloodQuery(&empty, TelemetryQueryParams{}).ok());
}

struct Detection {
  std::set<int64_t> hosts;
  std::map<int64_t, double> first_alert;  // host -> earliest alert time
};

// Runs one detection query over the discrete plan fed with the sampled
// trace; alerts are the output tuples (one per host per epoch).
Detection RunDiscreteDetection(
    Result<QuerySpec::NodeId> (*add_query)(QuerySpec*,
                                           const TelemetryQueryParams&),
    const TelemetryQueryParams& params, const std::vector<Tuple>& trace) {
  Detection det;
  QuerySpec spec;
  EXPECT_TRUE(spec.AddStream(
                      TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
                  .ok());
  EXPECT_TRUE(add_query(&spec, params).ok());
  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  EXPECT_TRUE(dplan.ok());
  Result<Executor> exec = Executor::Make(std::move(dplan->plan));
  EXPECT_TRUE(exec.ok());
  for (const Tuple& t : trace) {
    EXPECT_TRUE(exec->PushTuple("telemetry", t).ok());
  }
  EXPECT_TRUE(exec->Finish().ok());
  for (const Tuple& t : exec->output()) {
    const int64_t host = t.at(0).as_int64();
    det.hosts.insert(host);
    auto [it, inserted] = det.first_alert.emplace(host, t.timestamp);
    if (!inserted && t.timestamp < it->second) it->second = t.timestamp;
  }
  return det;
}

// Runs the same query through the Pulse predictive runtime (models built
// online from the value/derivative fields, re-solved on violations);
// alerts are the output segments' first instants.
Detection RunPulseDetection(
    Result<QuerySpec::NodeId> (*add_query)(QuerySpec*,
                                           const TelemetryQueryParams&),
    const TelemetryQueryParams& params, const std::vector<Tuple>& trace) {
  Detection det;
  QuerySpec spec;
  EXPECT_TRUE(spec.AddStream(
                      TelemetryGenerator::MakeStreamSpec("telemetry", 5.0))
                  .ok());
  EXPECT_TRUE(add_query(&spec, params).ok());
  Result<PredictiveRuntime> rt =
      PredictiveRuntime::Make(spec, PredictiveRuntime::Options{});
  EXPECT_TRUE(rt.ok());
  for (const Tuple& t : trace) {
    EXPECT_TRUE(rt->ProcessTuple("telemetry", t).ok());
  }
  EXPECT_TRUE(rt->Finish().ok());
  for (const Segment& s : rt->TakeOutputSegments()) {
    det.hosts.insert(s.key);
    auto [it, inserted] = det.first_alert.emplace(s.key, s.range.lo);
    if (!inserted && s.range.lo < it->second) it->second = s.range.lo;
  }
  return det;
}

TEST(TelemetryDetection, DiscreteAndPulseAgreeOnDetections) {
  const TelemetryOptions opts = SmallTrace(21);
  TelemetryGenerator gen(opts);
  const std::vector<Tuple> trace = gen.GenerateAll();
  TelemetryQueryParams params;

  struct QueryCase {
    const char* name;
    Result<QuerySpec::NodeId> (*add)(QuerySpec*,
                                     const TelemetryQueryParams&);
    AttackEvent::Kind kind;
  };
  const QueryCase cases[] = {
      {"syn_flood", AddSynFloodQuery, AttackEvent::Kind::kSynFlood},
      {"port_scan", AddPortScanQuery, AttackEvent::Kind::kPortScan},
      {"ddos_victim", AddDdosVictimQuery, AttackEvent::Kind::kDdosVictim},
      {"super_spreader", AddSuperSpreaderQuery,
       AttackEvent::Kind::kSuperSpreader},
  };

  for (const QueryCase& qc : cases) {
    SCOPED_TRACE(qc.name);
    // Ground truth: exactly the hosts attacked with this kind.
    std::map<int64_t, double> expected_onset;
    for (const AttackEvent& a : gen.attacks()) {
      if (a.kind == qc.kind) expected_onset[a.host] = a.onset;
    }
    ASSERT_FALSE(expected_onset.empty());
    std::set<int64_t> expected_hosts;
    for (const auto& [h, _] : expected_onset) expected_hosts.insert(h);

    const Detection discrete =
        RunDiscreteDetection(qc.add, params, trace);
    const Detection pulse = RunPulseDetection(qc.add, params, trace);

    // Both realizations flag exactly the attacked hosts — no false
    // positives (thresholds sit far above the baseline band), no
    // misses (peak is far above the thresholds).
    EXPECT_EQ(discrete.hosts, expected_hosts);
    EXPECT_EQ(pulse.hosts, expected_hosts);

    for (const auto& [host, onset] : expected_onset) {
      // The threshold crossing happens inside the ramp; the discrete
      // witness lags it by at most one grid step.
      if (discrete.first_alert.count(host)) {
        const double t_d = discrete.first_alert.at(host);
        EXPECT_GE(t_d, onset - 1e-9);
        EXPECT_LE(t_d, onset + opts.ramp_seconds + 1.0 / opts.tuple_rate);
      }
      // The Pulse side models the ramp online; its first-entry instant
      // must land in the same epoch neighbourhood (model rebuild points
      // quantize to tuple arrivals, so allow one epoch of slack).
      if (pulse.first_alert.count(host) &&
          discrete.first_alert.count(host)) {
        const double t_p = pulse.first_alert.at(host);
        const int64_t e_d = EpochIndexOf(
            discrete.first_alert.at(host), params.epoch_seconds);
        const int64_t e_p = EpochIndexOf(t_p, params.epoch_seconds);
        EXPECT_LE(std::llabs(e_d - e_p), 1)
            << "pulse first alert at " << t_p << ", discrete at "
            << discrete.first_alert.at(host);
      }
    }
  }
}

TEST(TelemetryDetection, HeavyHitterFlagsSustainedLoad) {
  const TelemetryOptions opts = SmallTrace(33);
  TelemetryGenerator gen(opts);
  const std::vector<Tuple> trace = gen.GenerateAll();
  TelemetryQueryParams params;
  // Window shorter than the attack so the windowed average clears the
  // threshold during the hold phase.
  params.heavy_window = 1.0;
  params.heavy_slide = 0.5;

  const Detection det =
      RunDiscreteDetection(AddHeavyHitterQuery, params, trace);
  int64_t ddos_host = -1;
  for (const AttackEvent& a : gen.attacks()) {
    if (a.kind == AttackEvent::Kind::kDdosVictim) ddos_host = a.host;
  }
  ASSERT_GE(ddos_host, 0);
  EXPECT_TRUE(det.hosts.count(ddos_host))
      << "sustained inbound load on host " << ddos_host << " missed";
}

}  // namespace
}  // namespace pulse
