file(REMOVE_RECURSE
  "CMakeFiles/pulse_map_group_test.dir/pulse_map_group_test.cc.o"
  "CMakeFiles/pulse_map_group_test.dir/pulse_map_group_test.cc.o.d"
  "pulse_map_group_test"
  "pulse_map_group_test.pdb"
  "pulse_map_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_map_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
