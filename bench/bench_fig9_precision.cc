// Reproduces paper Fig. 9iii: MACD end-to-end latency vs precision bound
// (0.1%-20% relative error at a fixed offered rate), with the inset
// violation counts.
//
// Paper shape: latency stays low and flat down to ~0.3% relative error;
// tighter bounds cause exponentially more precision violations (each one
// re-runs the solver), processing cost exceeds the arrival budget, and
// queueing makes latency explode.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "workload/nyse.h"
#include "workload/queries.h"

namespace pulse {
namespace {

QuerySpec MacdSpec() {
  QuerySpec spec;
  (void)spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
  MacdParams params;
  (void)AddMacdQuery(&spec, params);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  NyseOptions gen_opts;
  gen_opts.num_symbols = 50;
  gen_opts.tuple_rate = 3000.0;  // Fig. 6: 3000 tup/s
  gen_opts.trades_per_trend = 300;
  gen_opts.noise = 0.05;  // bid/ask bounce the models cannot predict
  const std::vector<Tuple> trace =
      NyseGenerator(gen_opts).Generate(240000);
  const QuerySpec spec = MacdSpec();
  std::printf(
      "Fig 9iii reproduction: MACD latency vs precision, %zu trades at "
      "3000 tup/s\n",
      trace.size());

  const double precisions[] = {0.20, 0.10,  0.05,  0.02, 0.01,
                               0.005, 0.003, 0.002, 0.001};

  // Calibrate the offered rate to a mid-range precision's capacity so
  // loose bounds keep up and tight bounds overload — the regime of the
  // paper's fixed 3000 tup/s against its hardware.
  double calibration_s = 0.0;
  {
    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("s.ap", 0.01)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, opts);
    calibration_s = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) (void)rt->ProcessTuple("nyse", t);
    });
  }
  const double offered =
      0.9 * static_cast<double>(trace.size()) / calibration_s;
  std::printf("Offered rate (0.9x capacity at 1%%): %.0f tup/s\n", offered);

  bench::SeriesTable table(
      "Fig 9iii: end-to-end latency vs relative precision bound",
      "precision_%",
      {"mean_latency_ms", "violations", "segments_pushed"});
  for (double precision : precisions) {
    PredictiveRuntime::Options opts;
    opts.bounds = {BoundSpec::Relative("s.ap", precision)};
    opts.collect_outputs = false;
    Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, opts);
    const double service_s = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) (void)rt->ProcessTuple("nyse", t);
      (void)rt->Finish();
    });
    const bench::QueueSummary q =
        bench::SimulateQueue(trace.size(), service_s, offered);
    table.AddRow(precision * 100.0,
                 {q.mean_latency_s * 1e3,
                  static_cast<double>(rt->stats().violations),
                  static_cast<double>(rt->stats().segments_pushed)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): latency low/flat for loose bounds; "
      "violations grow exponentially as the\nbound tightens (inset, log "
      "scale); beyond the knee the processing capacity drops below the "
      "offered\nrate and queueing latency explodes.\n");
  return 0;
}
