// Solver hot-path microbenchmark: measures the allocation-free solve
// pipeline (small-buffer polynomials + scratch-based root finding +
// difference-polynomial solve cache) on the paper's two solver-bound
// workloads and a segment-replay scenario, and writes the results to
// BENCH_solver_hotpath.json.
//
// Scenarios:
//   fig7_join_1t   — Fig. 7ii moving-object proximity self-join, single
//                    thread, predictive segment fitting. The solver
//                    dominates (one degree-2 difference system per
//                    overlapping segment pair). Reported against the
//                    pre-change reference throughput (~576k tuples/s on
//                    the development host) to track the hot-path win.
//   fig9_ais       — Fig. 9ii AIS "following" query in historical mode;
//                    joint multi-attribute segmentation + join + windowed
//                    aggregate, exercising deeper plans.
//   replay_cached  — the same fitted Fig. 7 segment list pushed twice
//                    through one HistoricalRuntime. The second pass
//                    re-solves identical difference polynomials, so the
//                    solve cache answers nearly every row — this is the
//                    what-if replay scenario the cache is designed for.
//
// Each scenario repetition is bracketed by a fixed floating-point
// calibration kernel whose throughput ("calibration_ops_per_sec" per
// scenario in the JSON) measures how fast the machine was running in
// that window; the median rep by tuples-per-calibration-op is kept, and
// the check.sh regression gate compares calibration-normalized
// throughput so baselines survive host load swings.
//
// Per scenario the JSON records tuples/sec (median rep), solver row count,
// heap allocations attributed to Polynomial coefficient spill (delta of
// Polynomial::heap_allocations() across the run — the allocations proxy;
// near-zero means the SBO + scratch path held), and the solve-cache hit
// rate from RuntimeStats.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "math/polynomial.h"
#include "obs/metrics.h"
#include "util/cpu_features.h"
#include "workload/ais.h"
#include "workload/moving_object.h"
#include "workload/queries.h"

namespace pulse {
namespace {

// Pre-change single-thread Fig. 7 throughput on the development host
// (median of 3, commit before the SBO/scratch/cache rework). Used only
// for the printed comparison; the JSON regression gate in
// scripts/check.sh compares against the checked-in baseline JSON.
constexpr double kFig7PreChangeTuplesPerSec = 576000.0;

constexpr double kArea = 1000.0;
constexpr size_t kNumObjects = 32;
constexpr double kRate = 800.0;
constexpr double kDuration = 60.0;
constexpr size_t kTuplesPerModel = 40;
constexpr double kWindowSeconds = 4.0;
constexpr int kRepeats = 5;

std::vector<Tuple> MakeFig7Trace() {
  MovingObjectOptions opts;
  opts.num_objects = kNumObjects;
  opts.tuple_rate = kRate;
  opts.tuples_per_segment = kTuplesPerModel;
  opts.area = kArea;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(
      static_cast<size_t>(kRate * kDuration));
}

QuerySpec ProximityJoin() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec(
      "objects", 100.0 * kNumObjects / kRate));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kArea / 10.0));
  join.window_seconds = kWindowSeconds;
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

HistoricalRuntime::Options Fig7Options() {
  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 0.5;
  opts.segmentation.max_points_per_segment = kTuplesPerModel;
  opts.collect_outputs = false;
  return opts;
}

struct ScenarioResult {
  const char* name = nullptr;
  size_t tuples = 0;
  double seconds = 0.0;  // from the median (calibration-normalized) rep
  double tuples_per_sec = 0.0;
  // Calibration kernel throughput bracketing the kept rep; the gate in
  // scripts/check.sh compares tuples_per_sec / calibration_ops_per_sec.
  double calibration_ops_per_sec = 0.0;
  uint64_t solves = 0;
  uint64_t heap_allocations = 0;  // Polynomial spill during the kept rep
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  // Full registry snapshot of the kept rep's runtime (op counters, span
  // histograms) — embedded as the BENCH JSON `metrics` block.
  obs::MetricsSnapshot metrics;
};

// One repetition's raw measurements.
struct RepData {
  double seconds = 0.0;
  double calib = 0.0;  // calibration ops/s bracketing this rep
  uint64_t solves = 0;
  uint64_t heap_allocations = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  obs::MetricsSnapshot metrics;
};

double NormalizedScore(double seconds, size_t tuples, double calib) {
  return (static_cast<double>(tuples) / seconds) / calib;
}

// The kept rep is the *median* by tuples-per-calibration-op. A median
// is a mid-distribution statistic on both the recorded baseline and
// the fresh gate run, so the check.sh comparison is not skewed by one
// window where scenario and calibration saw different host load (a
// max-selection baseline is an extreme that fresh runs then miss).
RepData MedianRep(std::vector<RepData> reps, size_t tuples) {
  std::sort(reps.begin(), reps.end(),
            [&](const RepData& a, const RepData& b) {
              return NormalizedScore(a.seconds, tuples, a.calib) <
                     NormalizedScore(b.seconds, tuples, b.calib);
            });
  return reps[reps.size() / 2];
}

void AdoptRep(RepData rep, ScenarioResult* r) {
  r->seconds = rep.seconds;
  r->calibration_ops_per_sec = rep.calib;
  r->solves = rep.solves;
  r->heap_allocations = rep.heap_allocations;
  r->cache_hits = rep.cache_hits;
  r->cache_misses = rep.cache_misses;
  r->metrics = std::move(rep.metrics);
}

// Sink keeping the calibration loop observable.
volatile double g_calibration_sink = 0.0;

// One timing of a fixed floating-point reference kernel, independent of
// the solver code under test. Its throughput tracks how fast this
// machine happens to be running *right now* (CPU contention, frequency
// scaling). Each scenario repetition is bracketed by two of these, and
// the scripts/check.sh gate compares tuples-per-calibration-op, so
// baseline comparisons recorded on a differently-loaded host still
// hold.
double MeasureCalibrationOpsPerSec() {
  constexpr size_t kIters = 10000000;
  double x = 1.0;
  const double s = bench::MeasureSeconds([&] {
    for (size_t i = 0; i < kIters; ++i) {
      x = x * 1.000000119 + 1e-9;
      if (x > 2.0) x -= 1.0;
    }
  });
  g_calibration_sink = g_calibration_sink + x;
  return static_cast<double>(kIters) / s;
}

uint64_t PlanSolves(const PulsePlan& plan) {
  uint64_t solves = 0;
  for (size_t n = 0; n < plan.num_nodes(); ++n) {
    solves += plan.node(n)->metrics().solves;
  }
  return solves;
}

void FinishScenario(ScenarioResult* r) {
  r->tuples_per_sec = static_cast<double>(r->tuples) / r->seconds;
  const uint64_t total = r->cache_hits + r->cache_misses;
  r->cache_hit_rate =
      total == 0 ? 0.0
                 : static_cast<double>(r->cache_hits) /
                       static_cast<double>(total);
}

// Fig. 7 proximity join, single thread, tuples through the online
// segmenter. Run kRepeats times; keep the median-scored rep's counters.
ScenarioResult RunFig7(const std::vector<Tuple>& trace) {
  ScenarioResult best;
  best.name = "fig7_join_1t";
  best.tuples = trace.size();
  std::vector<RepData> reps;
  reps.reserve(kRepeats);
  for (int rep = 0; rep < kRepeats; ++rep) {
    Result<HistoricalRuntime> rt =
        HistoricalRuntime::Make(ProximityJoin(), Fig7Options());
    if (!rt.ok()) {
      std::fprintf(stderr, "fig7 runtime setup failed: %s\n",
                   rt.status().ToString().c_str());
      return best;
    }
    const uint64_t allocs_before = Polynomial::heap_allocations();
    const double calib_before = MeasureCalibrationOpsPerSec();
    const double s = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) (void)rt->ProcessTuple("objects", t);
      (void)rt->Finish();
    });
    RepData r;
    r.seconds = s;
    r.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    r.solves = PlanSolves(rt->plan());
    r.heap_allocations = Polynomial::heap_allocations() - allocs_before;
    r.cache_hits = rt->stats().solve_cache_hits;
    r.cache_misses = rt->stats().solve_cache_misses;
    r.metrics = rt->metrics()->Snapshot();
    reps.push_back(r);
  }
  AdoptRep(MedianRep(std::move(reps), trace.size()), &best);
  FinishScenario(&best);
  return best;
}

// Fig. 9 AIS following query in historical mode (join + windowed avg).
ScenarioResult RunAis() {
  AisOptions gen_opts;
  gen_opts.num_vessels = 40;
  gen_opts.tuple_rate = 500.0;
  gen_opts.leg_duration = 120.0;
  gen_opts.following_fraction = 0.2;
  gen_opts.noise = 0.5;
  // Long enough (~35 ms/rep) that the bracketing calibration kernel
  // sees the same host load as the scenario itself.
  const std::vector<Tuple> trace = AisGenerator(gen_opts).Generate(180000);

  QuerySpec spec;
  (void)spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0));
  FollowingParams params;
  params.avg_window = 120.0;
  params.avg_slide = 10.0;
  (void)AddFollowingQuery(&spec, params);

  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 2.0;
  opts.segmentation.max_points_per_segment = 500;
  opts.collect_outputs = false;

  ScenarioResult best;
  best.name = "fig9_ais";
  best.tuples = trace.size();
  std::vector<RepData> reps;
  reps.reserve(kRepeats);
  for (int rep = 0; rep < kRepeats; ++rep) {
    Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, opts);
    if (!rt.ok()) {
      std::fprintf(stderr, "ais runtime setup failed: %s\n",
                   rt.status().ToString().c_str());
      return best;
    }
    const uint64_t allocs_before = Polynomial::heap_allocations();
    const double calib_before = MeasureCalibrationOpsPerSec();
    const double s = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) (void)rt->ProcessTuple("ais", t);
      (void)rt->Finish();
    });
    RepData r;
    r.seconds = s;
    r.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    r.solves = PlanSolves(rt->plan());
    r.heap_allocations = Polynomial::heap_allocations() - allocs_before;
    r.cache_hits = rt->stats().solve_cache_hits;
    r.cache_misses = rt->stats().solve_cache_misses;
    r.metrics = rt->metrics()->Snapshot();
    reps.push_back(r);
  }
  AdoptRep(MedianRep(std::move(reps), trace.size()), &best);
  FinishScenario(&best);
  return best;
}

// Segment replay: fit the Fig. 7 trace once, then push the identical
// segment list through one runtime twice. Pass 2 re-solves the exact
// difference polynomials of pass 1, so the cache should answer nearly
// every row; the scenario measures the *second* pass alone.
ScenarioResult RunReplay(const std::vector<Tuple>& trace) {
  const QuerySpec spec = ProximityJoin();
  HistoricalRuntime::Options opts = Fig7Options();

  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec(
      "objects", 100.0 * kNumObjects / kRate);
  MultiAttributeSegmenter modeler(stream, opts.segmentation);
  std::vector<Segment> segments;
  for (const Tuple& t : trace) {
    Result<std::optional<Segment>> r = modeler.Add(t);
    if (r.ok() && r->has_value()) segments.push_back(std::move(**r));
  }

  ScenarioResult best;
  best.name = "replay_cached";
  best.tuples = trace.size();
  std::vector<RepData> reps;
  reps.reserve(kRepeats);
  for (int rep = 0; rep < kRepeats; ++rep) {
    Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, opts);
    if (!rt.ok()) {
      std::fprintf(stderr, "replay runtime setup failed: %s\n",
                   rt.status().ToString().c_str());
      return best;
    }
    // Warm pass: populates join state and the solve cache.
    for (const Segment& s : segments) {
      (void)rt->ProcessSegment("objects", s);
    }
    const uint64_t hits_before = rt->stats().solve_cache_hits;
    const uint64_t misses_before = rt->stats().solve_cache_misses;
    const uint64_t solves_before = PlanSolves(rt->plan());
    const uint64_t allocs_before = Polynomial::heap_allocations();
    const double calib_before = MeasureCalibrationOpsPerSec();
    const double s = bench::MeasureSeconds([&] {
      for (const Segment& seg : segments) {
        (void)rt->ProcessSegment("objects", seg);
      }
      (void)rt->Finish();
    });
    RepData r;
    r.seconds = s;
    r.calib = 0.5 * (calib_before + MeasureCalibrationOpsPerSec());
    r.solves = PlanSolves(rt->plan()) - solves_before;
    r.heap_allocations = Polynomial::heap_allocations() - allocs_before;
    r.cache_hits = rt->stats().solve_cache_hits - hits_before;
    r.cache_misses = rt->stats().solve_cache_misses - misses_before;
    r.metrics = rt->metrics()->Snapshot();
    reps.push_back(r);
  }
  AdoptRep(MedianRep(std::move(reps), trace.size()), &best);
  FinishScenario(&best);
  return best;
}

void PrintScenario(const ScenarioResult& r) {
  std::printf(
      "  %-14s %10.0f tuples/s  (%zu tuples, %llu solves, "
      "%llu poly heap allocs, cache %llu/%llu = %.1f%% hits)\n",
      r.name, r.tuples_per_sec, r.tuples,
      static_cast<unsigned long long>(r.solves),
      static_cast<unsigned long long>(r.heap_allocations),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.cache_hits + r.cache_misses),
      100.0 * r.cache_hit_rate);
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  std::printf(
      "Solver hot path: SBO polynomials + scratch root finding + solve "
      "cache\n(median of %d runs per scenario, calibration-normalized)\n\n",
      kRepeats);

  const std::vector<Tuple> fig7_trace = MakeFig7Trace();
  const ScenarioResult fig7 = RunFig7(fig7_trace);
  const ScenarioResult ais = RunAis();
  const ScenarioResult replay = RunReplay(fig7_trace);

  PrintScenario(fig7);
  PrintScenario(ais);
  PrintScenario(replay);

  std::printf(
      "\n  fig7_join_1t vs pre-change reference (%.0f tuples/s): %.2fx\n",
      kFig7PreChangeTuplesPerSec,
      fig7.tuples_per_sec / kFig7PreChangeTuplesPerSec);

  bench::BenchReport report("solver_hotpath");
  report.ParamUint("repeats", static_cast<uint64_t>(kRepeats));
  report.ParamString("solver_kernel",
                     SimdLevelName(ActiveSimdLevel()));
  report.ParamDouble("fig7_prechange_tuples_per_sec",
                     kFig7PreChangeTuplesPerSec);
  for (const ScenarioResult* r : {&fig7, &ais, &replay}) {
    report.AddRow()
        .String("scenario", r->name)
        .Uint("tuples", r->tuples)
        .Double("seconds", r->seconds)
        .Double("tuples_per_sec", r->tuples_per_sec)
        .Double("calibration_ops_per_sec", r->calibration_ops_per_sec)
        .Uint("solves", r->solves)
        .Uint("poly_heap_allocations", r->heap_allocations)
        .Uint("cache_hits", r->cache_hits)
        .Uint("cache_misses", r->cache_misses)
        .Double("cache_hit_rate", r->cache_hit_rate);
  }
  // The metrics block carries the kept fig7 rep's registry snapshot —
  // the scenario the metrics-overhead gate normalizes on.
  report.AttachMetrics(fig7.metrics);
  if (!report.WriteFile("BENCH_solver_hotpath.json")) return 1;
  std::printf("\nWrote BENCH_solver_hotpath.json.\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, fig7.metrics)) return 1;
  return 0;
}
