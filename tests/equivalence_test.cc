// Randomized continuous-vs-discrete equivalence: for randomly generated
// piecewise models, the time ranges the Pulse operators report must agree
// with pointwise evaluation of the same predicates on densely sampled
// values — the semantic contract of the paper's transformation (modulo
// the discretization differences of Section IV-A, which dense sampling
// away from roots avoids).
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include <gtest/gtest.h>

#include "core/operators/aggregate.h"
#include "core/operators/distinct.h"
#include "core/operators/filter.h"
#include "core/operators/group_by.h"
#include "core/operators/join.h"
#include "engine/epoch.h"
#include "testing/workload_gen.h"
#include "util/rng.h"

namespace pulse {
namespace {

// Test-name suffix for seed-parameterized suites: failures show the seed
// itself ("/seed101"), not an opaque value index, so any report replays.
std::string SeedName(const ::testing::TestParamInfo<int>& info) {
  return "seed" + std::to_string(info.param);
}

Polynomial RandomPolynomial(Rng& rng, size_t degree) {
  std::vector<double> coeffs;
  coeffs.push_back(rng.Uniform(-20.0, 20.0));
  for (size_t i = 1; i <= degree; ++i) {
    coeffs.push_back(rng.Uniform(-4.0, 4.0) / static_cast<double>(i * i));
  }
  return Polynomial(std::move(coeffs));
}

class RandomFilterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomFilterEquivalence, SolutionMatchesPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t degree = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const double threshold = rng.Uniform(-15.0, 15.0);
    const CmpOp op = static_cast<CmpOp>(rng.UniformInt(0, 5));
    Segment seg(1, Interval::ClosedOpen(0.0, 10.0));
    seg.id = NextSegmentId();
    seg.set_attribute("x", RandomPolynomial(rng, degree));

    PulseFilter filter("f", Predicate::Comparison(ComparisonTerm::Simple(
                                AttrRef::Left("x"), op,
                                Operand::Constant(threshold))));
    SegmentBatch out;
    ASSERT_TRUE(filter.Process(0, seg, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial x = *seg.attribute("x");
    for (double t = 0.0137; t < 10.0; t += 0.0713) {
      const double v = x.Evaluate(t) - threshold;
      if (std::abs(v) < 1e-6) continue;  // too close to a root to judge
      bool expected = false;
      switch (op) {
        case CmpOp::kLt:
          expected = v < 0;
          break;
        case CmpOp::kLe:
          expected = v <= 0;
          break;
        case CmpOp::kEq:
          expected = v == 0;
          break;
        case CmpOp::kNe:
          expected = v != 0;
          break;
        case CmpOp::kGe:
          expected = v >= 0;
          break;
        case CmpOp::kGt:
          expected = v > 0;
          break;
      }
      EXPECT_EQ(solution.Contains(t), expected)
          << "trial " << trial << " op " << CmpOpToString(op) << " t=" << t
          << " x(t)-c=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFilterEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505),
                         SeedName);

class RandomJoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomJoinEquivalence, JoinRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Segment l(1, Interval::ClosedOpen(0.0, 8.0));
    l.id = NextSegmentId();
    l.set_attribute("x", RandomPolynomial(rng, 2));
    Segment r(2, Interval::ClosedOpen(rng.Uniform(0.0, 2.0),
                                      rng.Uniform(5.0, 8.0)));
    r.id = NextSegmentId();
    r.set_attribute("x", RandomPolynomial(rng, 2));

    Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
        AttrRef::Left("x"), CmpOp::kLt,
        Operand::Attribute(AttrRef::Right("x"))));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    const Polynomial lx = *l.attribute("x");
    const Polynomial rx = *r.attribute("x");
    for (double t = 0.0191; t < 8.0; t += 0.0531) {
      const bool both_valid =
          l.range.Contains(t) && r.range.Contains(t);
      const double diff = lx.Evaluate(t) - rx.Evaluate(t);
      if (std::abs(diff) < 1e-6) continue;
      EXPECT_EQ(solution.Contains(t), both_valid && diff < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomJoinEquivalence,
                         ::testing::Values(11, 22, 33), SeedName);

class RandomDistanceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistanceEquivalence, ProximityRangesMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    auto make = [&](Key key) {
      Segment s(key, Interval::ClosedOpen(0.0, 10.0));
      s.id = NextSegmentId();
      s.set_attribute("x", RandomPolynomial(rng, 1));
      s.set_attribute("y", RandomPolynomial(rng, 1));
      return s;
    };
    Segment l = make(1);
    Segment r = make(2);
    const double c = rng.Uniform(1.0, 25.0);
    Predicate pred = Predicate::Comparison(ComparisonTerm::Distance2(
        AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
        AttrRef::Right("y"), CmpOp::kLt, c));
    PulseJoinOptions opts;
    opts.window_seconds = 100.0;
    opts.require_distinct_keys = true;
    PulseJoin join("j", pred, opts);
    SegmentBatch out;
    ASSERT_TRUE(join.Process(0, l, &out).ok());
    ASSERT_TRUE(join.Process(1, r, &out).ok());
    IntervalSet solution;
    for (const Segment& s : out) solution.Add(s.range);

    for (double t = 0.0171; t < 10.0; t += 0.0611) {
      const double dx = l.attribute("x")->Evaluate(t) -
                        r.attribute("x")->Evaluate(t);
      const double dy = l.attribute("y")->Evaluate(t) -
                        r.attribute("y")->Evaluate(t);
      const double margin = dx * dx + dy * dy - c * c;
      if (std::abs(margin) < 1e-5) continue;
      EXPECT_EQ(solution.Contains(t), margin < 0.0)
          << "trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistanceEquivalence,
                         ::testing::Values(7, 17, 27), SeedName);

// Reconstructs the aggregate's value at time t from emitted segments:
// segments arrive in emission order and later emissions override earlier
// coverage, so the last covering segment wins.
std::optional<double> EmittedValue(const SegmentBatch& out,
                                   const std::string& attr, double t) {
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    if (!it->range.Contains(t)) continue;
    Result<Polynomial> poly = it->attribute(attr);
    if (!poly.ok()) return std::nullopt;
    return poly->Evaluate(t);
  }
  return std::nullopt;
}

class RandomMinMaxEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinMaxEquivalence, EnvelopeMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(1, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    PulseMinMaxAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }

    for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
      const std::optional<double> expected = ws.Envelope("x", t, is_min);
      const std::optional<double> actual = EmittedValue(out, "agg", t);
      if (!expected.has_value()) continue;  // gap in every track
      ASSERT_TRUE(actual.has_value())
          << "seed " << GetParam() << " trial " << trial << " t=" << t
          << ": envelope has no emitted coverage";
      EXPECT_NEAR(*actual, *expected, 1e-6)
          << "seed " << GetParam() << " trial " << trial << " t=" << t
          << " fn=" << (is_min ? "min" : "max");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinMaxEquivalence,
                         ::testing::Values(41, 42, 43, 44), SeedName);

// Finalize mode must describe the same envelope as the eager protocol,
// with a stronger output contract: append-only, non-overlapping ranges
// (regression for the HAVING-after-min/max staleness bug; see
// docs/TESTING.md).
class RandomMinMaxFinalizeEquivalence
    : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinMaxFinalizeEquivalence, SettledEmissionMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(1, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    opts.finalize = true;
    PulseMinMaxAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }
    ASSERT_TRUE(agg.Flush(&out).ok());

    // Append-only contract: ranges non-overlapping and time-ordered.
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].range.hi, out[i].range.lo + 1e-12)
          << "seed " << GetParam() << " trial " << trial
          << ": finalized output overlaps or runs backwards at " << i;
    }

    for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
      const std::optional<double> expected = ws.Envelope("x", t, is_min);
      const std::optional<double> actual = EmittedValue(out, "agg", t);
      if (!expected.has_value()) continue;
      ASSERT_TRUE(actual.has_value())
          << "seed " << GetParam() << " trial " << trial << " t=" << t;
      EXPECT_NEAR(*actual, *expected, 1e-6)
          << "seed " << GetParam() << " trial " << trial << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinMaxFinalizeEquivalence,
                         ::testing::Values(51, 52, 53, 54), SeedName);

class RandomSumAvgEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomSumAvgEquivalence, WindowFunctionMatchesIntegral) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const bool is_sum = rng.Bernoulli(0.5);
    const double w = 1.0 + rng.UniformInt(0, 1);  // 1 or 2 seconds
    // Window functions assume one contiguous coverage track: single key.
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, 1);

    PulseAggregateOptions opts;
    opts.fn = is_sum ? AggFn::kSum : AggFn::kAvg;
    opts.input_attribute = "x";
    opts.window_seconds = w;
    opts.slide_seconds = 0.5;
    PulseSumAvgAggregate agg("a", opts);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(agg.Process(0, seg, &out).ok());
    }

    for (const Segment& s : out) {
      for (double t = s.range.lo + 1e-6; t < s.range.hi; t += 0.1) {
        if (t - w < ws.t_begin - 1e-9) continue;  // partial window
        const std::optional<double> integral =
            ws.Integral(1, "x", t - w, t);
        ASSERT_TRUE(integral.has_value());
        const double expected = is_sum ? *integral : *integral / w;
        Result<Polynomial> poly = s.attribute("agg");
        ASSERT_TRUE(poly.ok());
        EXPECT_NEAR(poly->Evaluate(t), expected,
                    1e-6 * std::max(1.0, std::fabs(expected)))
            << "seed " << GetParam() << " trial " << trial << " t=" << t
            << " fn=" << (is_sum ? "sum" : "avg") << " w=" << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSumAvgEquivalence,
                         ::testing::Values(61, 62, 63, 64), SeedName);

class RandomGroupByEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomGroupByEquivalence, PerGroupAggregateMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const bool is_min = rng.Bernoulli(0.5);
    const size_t keys = static_cast<size_t>(rng.UniformInt(2, 4));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);

    PulseAggregateOptions opts;
    opts.fn = is_min ? AggFn::kMin : AggFn::kMax;
    opts.input_attribute = "x";
    opts.window_seconds = 2.0;
    opts.finalize = true;
    PulseGroupBy group_by(
        "g", [opts](Key) -> Result<std::unique_ptr<PulseOperator>> {
          return MakePulseAggregate("inner", opts);
        });
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      ASSERT_TRUE(group_by.Process(0, seg, &out).ok());
    }
    ASSERT_TRUE(group_by.Flush(&out).ok());

    // Per group, the "envelope" over one key is just that key's value.
    for (const testing::KeyTrack& track : ws.tracks) {
      SegmentBatch group_out;
      for (const Segment& s : out) {
        if (s.key == track.key) group_out.push_back(s);
      }
      for (double t = 0.0173; t < ws.t_end; t += 0.0719) {
        const std::optional<double> expected = track.Value("x", t);
        const std::optional<double> actual =
            EmittedValue(group_out, "agg", t);
        if (!expected.has_value()) continue;
        ASSERT_TRUE(actual.has_value())
            << "seed " << GetParam() << " trial " << trial << " group "
            << track.key << " t=" << t;
        EXPECT_NEAR(*actual, *expected, 1e-6)
            << "seed " << GetParam() << " trial " << trial << " group "
            << track.key << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGroupByEquivalence,
                         ::testing::Values(71, 72, 73), SeedName);

// --- Distinct-over-models boundary semantics ---------------------------
// distinct over epoched models is a new equation form: the output is the
// first instant each key's model enters the predicate region within an
// epoch. These tests pin the knife-edge cases — the model entering or
// exiting the region exactly at a segment or epoch boundary — where the
// half-open [kE, (k+1)E) convention decides which epoch (if any) alerts.

Segment BoundarySeg(Key key, double lo, double hi, Polynomial x) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute("x", std::move(x));
  return s;
}

// Filter -> distinct over one key; returns the distinct events.
SegmentBatch RunDistinctChain(const SegmentBatch& input, CmpOp op,
                              double threshold, double epoch_seconds) {
  PulseFilter filter("f", Predicate::Comparison(ComparisonTerm::Simple(
                              AttrRef::Left("x"), op,
                              Operand::Constant(threshold))));
  PulseDistinct distinct("d", epoch_seconds);
  SegmentBatch out;
  for (const Segment& seg : input) {
    SegmentBatch passed;
    EXPECT_TRUE(filter.Process(0, seg, &passed).ok());
    for (const Segment& p : passed) {
      EXPECT_TRUE(distinct.Process(0, p, &out).ok());
    }
  }
  return out;
}

TEST(DistinctBoundary, EntryExactlyAtEpochBoundary) {
  // x(t) = t - 1 enters x >= 0 at exactly t = 1, the epoch boundary.
  // Half-open epochs put the entry instant in epoch 1; epoch 0 stays
  // silent (the region's first instant is not part of it).
  SegmentBatch in;
  in.push_back(BoundarySeg(1, 0.0, 2.0, Polynomial({-1.0, 1.0})));
  const SegmentBatch out = RunDistinctChain(in, CmpOp::kGe, 0.0, 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 1.0);
  EXPECT_EQ(EpochIndexOf(out[0].range.lo, 1.0), 1);
}

TEST(DistinctBoundary, ExitExactlyAtEpochBoundary) {
  // x(t) = 1 - t leaves x > 0 at exactly t = 1: the run is [0, 1), which
  // touches but does not enter epoch 1. One alert, epoch 0, at t = 0.
  SegmentBatch in;
  in.push_back(BoundarySeg(1, 0.0, 2.0, Polynomial({1.0, -1.0})));
  const SegmentBatch out = RunDistinctChain(in, CmpOp::kGt, 0.0, 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.0);
  EXPECT_LE(out[0].range.hi, 1.0 + 1e-12);
}

TEST(DistinctBoundary, EntryExactlyAtSegmentBoundary) {
  // The model enters the region at the instant one segment hands off to
  // the next (both inside one epoch): the entry instant is the second
  // segment's range.lo, bitwise.
  SegmentBatch in;
  in.push_back(BoundarySeg(1, 0.0, 1.0, Polynomial({-1.0})));
  in.push_back(BoundarySeg(1, 1.0, 2.0, Polynomial({1.0})));
  const SegmentBatch out = RunDistinctChain(in, CmpOp::kGt, 0.0, 2.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 1.0);
  EXPECT_EQ(EpochIndexOf(out[0].range.lo, 2.0), 0);
}

TEST(DistinctBoundary, ContinuousRunAcrossSegmentBoundaryAlertsOnce) {
  // The model stays inside the region across a segment boundary: a new
  // segment is not a new entry, so the epoch alerts exactly once, at the
  // run's true start.
  SegmentBatch in;
  in.push_back(BoundarySeg(1, 0.0, 1.0, Polynomial({1.0})));
  in.push_back(BoundarySeg(1, 1.0, 2.0, Polynomial({1.0})));
  const SegmentBatch out = RunDistinctChain(in, CmpOp::kGt, 0.0, 2.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.0);
}

TEST(DistinctBoundary, RunCrossingEpochBoundaryReentersAtBoundary) {
  // A run straddling an epoch boundary alerts in both epochs; the second
  // alert's instant is exactly the boundary (the first instant of the
  // new epoch the model is in the region).
  SegmentBatch in;
  in.push_back(BoundarySeg(1, 0.5, 1.5, Polynomial({1.0})));
  const SegmentBatch out = RunDistinctChain(in, CmpOp::kGt, 0.0, 1.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.5);
  EXPECT_DOUBLE_EQ(out[1].range.lo, 1.0);
  EXPECT_EQ(EpochIndexOf(out[1].range.lo, 1.0), 1);
}

class RandomDistinctEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistinctEquivalence, FirstEntryInstantsMatchPointwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const size_t keys = static_cast<size_t>(rng.UniformInt(1, 3));
    testing::StreamWorkload ws =
        testing::GenerateStreamWorkload(rng, "s", {"x"}, keys);
    const double epoch = 0.5 + 0.25 * rng.UniformInt(0, 3);
    const double thr = rng.Uniform(-0.4, 0.4) * ws.value_bound;
    const double tol = 1e-6 * std::max(1.0, ws.value_bound);

    PulseFilter filter("f", Predicate::Comparison(ComparisonTerm::Simple(
                                AttrRef::Left("x"), CmpOp::kGt,
                                Operand::Constant(thr))));
    PulseDistinct distinct("d", epoch);
    SegmentBatch out;
    for (const Segment& seg : ws.ToSegments()) {
      SegmentBatch passed;
      ASSERT_TRUE(filter.Process(0, seg, &passed).ok());
      for (const Segment& p : passed) {
        ASSERT_TRUE(distinct.Process(0, p, &out).ok());
      }
    }

    // At most one event per (epoch, key), attributed by range midpoint
    // (strictly interior, so boundary rounding cannot misfile it).
    std::map<std::pair<int64_t, Key>, double> events;
    for (const Segment& s : out) {
      const int64_t e =
          EpochIndexOf(s.range.lo + 0.5 * s.range.Length(), epoch);
      auto [it, inserted] =
          events.emplace(std::make_pair(e, s.key), s.range.lo);
      EXPECT_TRUE(inserted)
          << "seed " << GetParam() << " trial " << trial
          << ": duplicate distinct event for epoch " << e << " key "
          << s.key;
    }

    // Pointwise ground truth: wherever the model is robustly inside the
    // region, that (epoch, key) must have an event, and the event starts
    // no later than the first observed inside instant.
    for (const testing::KeyTrack& track : ws.tracks) {
      std::map<int64_t, double> first_pass;
      for (double t = ws.t_begin + 1e-4; t < ws.t_end; t += 0.0137) {
        const std::optional<double> v = track.Value("x", t);
        if (!v.has_value() || *v - thr <= tol) continue;
        first_pass.emplace(EpochIndexOf(t, epoch), t);
      }
      for (const auto& [e, t] : first_pass) {
        auto it = events.find({e, track.key});
        ASSERT_NE(it, events.end())
            << "seed " << GetParam() << " trial " << trial << " epoch "
            << e << " key " << track.key
            << ": model robustly in region at t=" << t
            << " but no distinct event";
        EXPECT_LE(it->second, t + 1e-9)
            << "seed " << GetParam() << " trial " << trial
            << ": event after the first observed entry instant";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistinctEquivalence,
                         ::testing::Values(81, 82, 83, 84), SeedName);

}  // namespace
}  // namespace pulse
