#ifndef PULSE_CORE_VALIDATION_LINEAGE_H_
#define PULSE_CORE_VALIDATION_LINEAGE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "model/segment.h"

namespace pulse {

/// One input segment that contributed to an output segment. The full
/// segment is snapshotted: the paper maintains "these inputs as query
/// lineage, compactly as model segments" (Section IV), and the gradient
/// split heuristic needs the input coefficients.
struct LineageEntry {
  size_t port = 0;  // which operator input it arrived on
  Segment input;    // snapshot of the causing segment
};

/// Per-operator lineage: output segment id -> the input segments that
/// caused it. Query inversion relies on exactly this mapping
/// (Section IV-B): continuous-time operators produce temporal sub-ranges
/// (Property 1) and modeled attributes are functional dependents of keys
/// (Property 2), so the causing set is unique.
class LineageStore {
 public:
  /// Records the causes of output `out_id`, whose validity is `out_range`.
  void Record(uint64_t out_id, const Interval& out_range,
              std::vector<LineageEntry> causes);

  /// Causes of `out_id`, or nullptr when unknown (e.g. already expired).
  const std::vector<LineageEntry>* Lookup(uint64_t out_id) const;

  /// Drops records for outputs that ended before `t` (state bounded by
  /// reference-timestamp monotonicity).
  void ExpireBefore(double t);

  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

 private:
  struct OutputRecord {
    Interval out_range;
    std::vector<LineageEntry> causes;
  };
  std::map<uint64_t, OutputRecord> records_;
};

/// Allocates process-wide unique segment ids.
uint64_t NextSegmentId();

}  // namespace pulse

#endif  // PULSE_CORE_VALIDATION_LINEAGE_H_
