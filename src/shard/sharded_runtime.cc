#include "shard/sharded_runtime.h"

#include <utility>

namespace pulse {
namespace shard {

Result<ShardedRuntime> ShardedRuntime::Make(const QuerySpec& spec,
                                            ShardedRuntimeOptions options) {
  ShardPoolOptions pool_options;
  pool_options.num_shards = options.num_shards;
  pool_options.exchange_capacity = options.exchange_capacity;
  pool_options.runtime = std::move(options.runtime);
  pool_options.metrics = options.metrics;
  ShardedRuntime rt;
  PULSE_ASSIGN_OR_RETURN(rt.pool_,
                         ShardPool::Make(spec, std::move(pool_options)));
  PULSE_ASSIGN_OR_RETURN(rt.client_, rt.pool_->AddClient());
  return rt;
}

}  // namespace shard
}  // namespace pulse
