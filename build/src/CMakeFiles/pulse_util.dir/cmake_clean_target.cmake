file(REMOVE_RECURSE
  "libpulse_util.a"
)
