#include "engine/tuple.h"

#include <algorithm>
#include <sstream>

namespace pulse {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.timestamp = std::max(left.timestamp, right.timestamp);
  out.values.reserve(left.values.size() + right.values.size());
  out.values.insert(out.values.end(), left.values.begin(), left.values.end());
  out.values.insert(out.values.end(), right.values.begin(),
                    right.values.end());
  return out;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "@" << timestamp << " (";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace pulse
