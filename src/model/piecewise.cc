#include "model/piecewise.h"

#include <algorithm>
#include <sstream>

#include "math/roots.h"
#include "util/logging.h"

namespace pulse {

IntervalSet PiecewiseModel::Domain() const {
  std::vector<Interval> ranges;
  ranges.reserve(pieces_.size());
  for (const Piece& p : pieces_) ranges.push_back(p.range);
  return IntervalSet::FromIntervals(std::move(ranges));
}

std::optional<double> PiecewiseModel::Evaluate(double t) const {
  auto it = std::lower_bound(
      pieces_.begin(), pieces_.end(), t,
      [](const Piece& p, double value) { return p.range.hi < value; });
  for (; it != pieces_.end() && it->range.lo <= t; ++it) {
    if (it->range.Contains(t)) return it->poly.Evaluate(t);
  }
  return std::nullopt;
}

void PiecewiseModel::Overwrite(const Piece& piece) {
  if (piece.range.IsEmpty()) return;
  // Locate the contiguous span of pieces the newcomer touches (pieces_
  // stays sorted and disjoint, so a binary search bounds the edit to the
  // affected span — the aggregate state can hold thousands of pieces).
  auto first = std::lower_bound(
      pieces_.begin(), pieces_.end(), piece.range.lo,
      [](const Piece& p, double lo) { return p.range.hi < lo; });
  std::vector<Piece> replacement;
  auto last = first;
  for (; last != pieces_.end() && last->range.lo <= piece.range.hi;
       ++last) {
    if (!last->range.Intersects(piece.range)) {
      replacement.push_back(*last);
      continue;
    }
    Piece head = *last;
    head.range.hi = piece.range.lo;
    head.range.hi_open = !piece.range.lo_open;
    if (!head.range.IsEmpty()) replacement.push_back(std::move(head));
    Piece tail = *last;
    tail.range.lo = piece.range.hi;
    tail.range.lo_open = !piece.range.hi_open;
    if (!tail.range.IsEmpty()) replacement.push_back(std::move(tail));
  }
  replacement.push_back(piece);
  std::sort(replacement.begin(), replacement.end(),
            [](const Piece& a, const Piece& b) {
              if (a.range.lo != b.range.lo) return a.range.lo < b.range.lo;
              return !a.range.lo_open && b.range.lo_open;
            });
  auto it = pieces_.erase(first, last);
  pieces_.insert(it, std::make_move_iterator(replacement.begin()),
                 std::make_move_iterator(replacement.end()));
  CoalesceAround(piece.range);
}

IntervalSet PiecewiseModel::MergeEnvelope(const Piece& candidate,
                                          bool is_min) {
  if (candidate.range.IsEmpty()) return IntervalSet();
  // Binary-search the span of stored pieces the candidate can touch; the
  // state may hold thousands of pieces and only a handful overlap.
  auto first = std::lower_bound(
      pieces_.begin(), pieces_.end(), candidate.range.lo,
      [](const Piece& p, double lo) { return p.range.hi < lo; });
  auto last = first;
  std::vector<Interval> covered;
  while (last != pieces_.end() && last->range.lo <= candidate.range.hi) {
    covered.push_back(last->range);
    ++last;
  }

  // 1. Ranges where no envelope exists yet: the candidate fills them.
  const IntervalSet cand_range(candidate.range);
  IntervalSet won =
      cand_range.Difference(IntervalSet::FromIntervals(std::move(covered)));

  // 2. Ranges where the candidate beats the stored envelope. One
  // difference equation per overlapped piece: (cand - s)(t) R 0 with
  // R = '<' for min, '>' for max (paper Section III-B).
  const CmpOp op = is_min ? CmpOp::kLt : CmpOp::kGt;
  for (auto it = first; it != last; ++it) {
    const Interval overlap = it->range.Intersect(candidate.range);
    if (overlap.IsEmpty()) continue;
    const Polynomial diff = candidate.poly - it->poly;
    won = won.Union(SolveComparison(diff, op, overlap));
  }

  // 3. Install the candidate over every range it won. Point wins carry no
  // measure and do not change the stored function.
  for (const Interval& iv : won.intervals()) {
    if (iv.IsPoint()) continue;
    Overwrite(Piece{iv, candidate.poly});
  }
  return won;
}

void PiecewiseModel::ExpireBefore(double t) {
  std::vector<Piece> kept;
  for (Piece& p : pieces_) {
    if (p.range.hi <= t) continue;  // entirely before the horizon
    if (p.range.lo < t) {
      p.range.lo = t;
      p.range.lo_open = false;
    }
    if (!p.range.IsEmpty()) kept.push_back(std::move(p));
  }
  pieces_ = std::move(kept);
}

std::string PiecewiseModel::ToString() const {
  std::ostringstream os;
  os << "Piecewise{";
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (i > 0) os << ", ";
    os << pieces_[i].range.ToString() << ": " << pieces_[i].poly.ToString();
  }
  os << "}";
  return os.str();
}

void PiecewiseModel::CoalesceAround(const Interval& touched) {
  // Merge adjacent pieces that share the same polynomial (keeps the state
  // compact when the same candidate wins neighbouring cells). Only the
  // neighbourhood of `touched` can have new merge opportunities.
  if (pieces_.size() < 2) return;
  auto begin = std::lower_bound(
      pieces_.begin(), pieces_.end(), touched.lo,
      [](const Piece& p, double lo) { return p.range.hi < lo; });
  if (begin != pieces_.begin()) --begin;
  size_t i = static_cast<size_t>(begin - pieces_.begin());
  while (i + 1 < pieces_.size() && pieces_[i].range.lo <= touched.hi) {
    Piece& cur = pieces_[i];
    Piece& next = pieces_[i + 1];
    const bool touches = cur.range.hi == next.range.lo &&
                         !(cur.range.hi_open && next.range.lo_open);
    if (touches && cur.poly == next.poly) {
      cur.range.hi = next.range.hi;
      cur.range.hi_open = next.range.hi_open;
      pieces_.erase(pieces_.begin() + i + 1);
    } else {
      ++i;
    }
  }
}

}  // namespace pulse
