// Ablation A3: segmentation-algorithm comparison for historical modeling
// (paper Section V-A uses the online sliding-window algorithm of Keogh et
// al.; bottom-up and SWAB are the standard offline/hybrid alternatives).
// Reports fitting cost, compression (tuples per segment), and fit
// quality for the NYSE-like price series.
#include <cstdio>

#include "bench_util.h"
#include "model/segmentation.h"
#include "workload/nyse.h"

namespace pulse {
namespace {

std::vector<Sample> PriceSeries(size_t n) {
  NyseOptions opts;
  opts.num_symbols = 1;  // single series for apples-to-apples fitting
  opts.tuple_rate = 3000.0;
  opts.trades_per_trend = 400;
  opts.noise = 0.02;
  NyseGenerator gen(opts);
  std::vector<Sample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t = gen.NextTuple();
    out.push_back(Sample{t.timestamp, t.at(1).as_double()});
  }
  return out;
}

struct FitStats {
  double seconds = 0.0;
  size_t segments = 0;
  double worst_error = 0.0;
};

FitStats Report(const std::vector<FittedSegment>& segs, double seconds) {
  FitStats out;
  out.seconds = seconds;
  out.segments = segs.size();
  for (const FittedSegment& s : segs) {
    out.worst_error = std::max(out.worst_error, s.max_error);
  }
  return out;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  const std::vector<Sample> series = PriceSeries(60000);
  std::printf("Ablation A3: segmentation algorithms over %zu price "
              "samples\n",
              series.size());

  bench::SeriesTable table(
      "A3: sliding-window vs bottom-up vs SWAB (piecewise linear)",
      "max_error",
      {"sw_segments", "bu_segments", "swab_segments", "sw_seconds",
       "bu_seconds", "swab_seconds"});

  for (double max_error : {0.5, 0.2, 0.1, 0.05}) {
    SegmentationOptions opts;
    opts.degree = 1;
    opts.max_error = max_error;
    opts.max_points_per_segment = 2000;

    std::vector<FittedSegment> sw, bu, swab;
    const double sw_s = bench::MeasureSeconds(
        [&] { sw = SlidingWindowSegmentation(series, opts); });
    // Bottom-up is O(n^2)-ish on long inputs: fit a prefix and scale.
    const size_t bu_n = 8000;
    const std::vector<Sample> prefix(series.begin(),
                                     series.begin() + bu_n);
    double bu_s = bench::MeasureSeconds(
        [&] { bu = BottomUpSegmentation(prefix, opts); });
    bu_s *= static_cast<double>(series.size()) / bu_n;  // extrapolated
    const double swab_s = bench::MeasureSeconds(
        [&] { swab = SwabSegmentation(series, opts, 256); });

    const FitStats a = Report(sw, sw_s);
    const FitStats b = Report(bu, bu_s);
    const FitStats c = Report(swab, swab_s);
    table.AddRow(max_error,
                 {static_cast<double>(a.segments),
                  static_cast<double>(b.segments) * series.size() / bu_n,
                  static_cast<double>(c.segments), a.seconds, b.seconds,
                  c.seconds});
  }
  table.Print();
  std::printf(
      "\nReading: fewer segments = better compression (higher model "
      "expressiveness for Fig. 5-style\nbenefits); sliding-window is the "
      "cheapest online choice, SWAB trades cost for quality, bottom-up\n"
      "(extrapolated cost) is the offline reference.\n");
  return 0;
}
