#include "engine/join.h"

#include "engine/filter.h"
#include "util/logging.h"

namespace pulse {

SlidingWindowJoin::SlidingWindowJoin(
    std::string name, std::shared_ptr<const Schema> left_schema,
    std::shared_ptr<const Schema> right_schema, double window_seconds,
    std::vector<JoinComparison> predicate,
    std::function<bool(const Tuple&, const Tuple&)> extra_predicate,
    const std::string& left_prefix, const std::string& right_prefix)
    : Operator(std::move(name)),
      left_schema_(std::move(left_schema)),
      right_schema_(std::move(right_schema)),
      window_seconds_(window_seconds),
      predicate_(std::move(predicate)),
      extra_predicate_(std::move(extra_predicate)) {
  PULSE_CHECK(left_schema_ != nullptr && right_schema_ != nullptr);
  PULSE_CHECK(window_seconds_ > 0.0);
  output_schema_ =
      Schema::Concat(*left_schema_, *right_schema_, left_prefix,
                     right_prefix);
}

bool SlidingWindowJoin::Matches(const Tuple& left, const Tuple& right) {
  for (const JoinComparison& cmp : predicate_) {
    ++metrics_.comparisons;
    FieldComparison fc;
    fc.lhs_field = cmp.lhs_field;
    fc.op = cmp.op;
    // Compare across tuples without materializing a concat: resolve the
    // right side as a constant.
    fc.rhs = Comparand::Const(right.at(cmp.rhs_field));
    if (!EvaluateComparison(left, fc)) return false;
  }
  if (extra_predicate_) {
    ++metrics_.comparisons;
    if (!extra_predicate_(left, right)) return false;
  }
  return true;
}

void SlidingWindowJoin::Expire(double now) {
  const double horizon = now - window_seconds_;
  while (!left_.empty() && left_.front().timestamp < horizon) {
    left_.pop_front();
  }
  while (!right_.empty() && right_.front().timestamp < horizon) {
    right_.pop_front();
  }
}

Status SlidingWindowJoin::Process(size_t port, const Tuple& input,
                                  std::vector<Tuple>* out) {
  PULSE_CHECK(port < 2);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  Expire(input.timestamp);
  if (port == 0) {
    for (const Tuple& r : right_) {
      if (Matches(input, r)) {
        out->push_back(Tuple::Concat(input, r));
        ++metrics_.tuples_out;
      }
    }
    left_.push_back(input);
  } else {
    for (const Tuple& l : left_) {
      if (Matches(l, input)) {
        out->push_back(Tuple::Concat(l, input));
        ++metrics_.tuples_out;
      }
    }
    right_.push_back(input);
  }
  return Status::OK();
}

Status SlidingWindowJoin::AdvanceTime(double t, std::vector<Tuple>* /*out*/) {
  Expire(t);
  return Status::OK();
}

}  // namespace pulse
