#ifndef PULSE_WORKLOAD_TELEMETRY_H_
#define PULSE_WORKLOAD_TELEMETRY_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "engine/tuple.h"
#include "util/result.h"
#include "util/rng.h"

namespace pulse {

/// Synthetic network-telemetry feed: per-host traffic counters reported
/// as rates plus rate derivatives, so linear models fit each report
/// exactly (the network analogue of the paper's AIS position/velocity
/// feed). Each host carries five modeled metrics:
///
///   syn_rate     TCP SYNs/sec arriving at the host
///   ack_rate     TCP ACKs/sec completing handshakes
///   in_rate      total inbound packets/sec
///   port_spread  distinct destination ports probed/sec
///   fanout       distinct destination hosts contacted/sec
///
/// Metrics idle at a small per-host baseline; a configurable set of
/// attacks ramps one metric to a peak far above the detection
/// thresholds, holds, and ramps back down. Tracks are piecewise linear
/// and the reported derivative is the true slope, so both realizations
/// see the same underlying function. Ground truth (which host, which
/// kind, when) is exposed for detection-latency measurement.
struct TelemetryOptions {
  size_t num_hosts = 64;
  /// Aggregate report rate across all hosts (tuples/second).
  double tuple_rate = 1000.0;
  /// Trace length; attacks are scheduled to finish inside it.
  double duration = 30.0;
  double start_time = 0.0;
  /// Number of attacks of each kind (distinct victim hosts).
  size_t syn_floods = 2;
  size_t port_scans = 2;
  size_t ddos_victims = 2;
  size_t super_spreaders = 2;
  /// Seconds an attack lasts, onset to quiet.
  double attack_duration = 4.0;
  /// Seconds to ramp from baseline to peak (and back down).
  double ramp_seconds = 0.5;
  /// Mean idle level of every metric, per host.
  double baseline = 20.0;
  /// Per-host baseline spread: levels are uniform in baseline +/- jitter.
  double baseline_jitter = 10.0;
  /// Attack amplitude added on top of the baseline at full ramp.
  double peak = 400.0;
  uint64_t seed = 42;
};

/// One scheduled attack, the generator's ground truth.
struct AttackEvent {
  enum class Kind { kSynFlood, kPortScan, kDdosVictim, kSuperSpreader };
  Kind kind = Kind::kSynFlood;
  int64_t host = 0;
  /// Time the metric starts ramping off baseline.
  double onset = 0.0;
  /// Time the metric is back to baseline.
  double end = 0.0;
};

class TelemetryGenerator {
 public:
  explicit TelemetryGenerator(TelemetryOptions options);

  /// Schema (id:int64, then value/derivative pairs for the five
  /// metrics: syn_rate, syn_rate_d, ack_rate, ack_rate_d, in_rate,
  /// in_rate_d, port_spread, port_spread_d, fanout, fanout_d).
  static std::shared_ptr<const Schema> TupleSchema();

  /// Stream spec with MODELs m = m + m_d * t for each metric.
  static StreamSpec MakeStreamSpec(std::string name,
                                   double segment_horizon);

  Tuple NextTuple();
  std::vector<Tuple> Generate(size_t n);
  /// The full trace: duration * tuple_rate tuples from start_time.
  std::vector<Tuple> GenerateAll();

  double now() const { return now_; }
  const TelemetryOptions& options() const { return options_; }
  const std::vector<AttackEvent>& attacks() const { return attacks_; }

 private:
  static constexpr size_t kNumMetrics = 5;

  struct MetricSample {
    double value = 0.0;
    double slope = 0.0;
  };
  MetricSample Eval(size_t host, size_t metric, double t) const;

  TelemetryOptions options_;
  Rng rng_;
  // Per-host idle level of each metric.
  std::vector<std::array<double, kNumMetrics>> baseline_;
  std::vector<AttackEvent> attacks_;
  size_t next_host_ = 0;
  double now_ = 0.0;
};

/// Thresholds and epoching shared by the Sonata-style detection queries.
/// Defaults sit well above the baseline band (baseline + jitter) and
/// well below the attack peak, so detection hinges on catching the ramp,
/// not on tuning.
struct TelemetryQueryParams {
  std::string stream = "telemetry";
  double epoch_seconds = 1.0;
  double syn_excess_threshold = 100.0;
  double port_spread_threshold = 100.0;
  double in_rate_threshold = 100.0;
  double fanout_threshold = 100.0;
  /// Heavy-hitter windowed average (the one non-epoch detection).
  double heavy_window = 4.0;
  double heavy_slide = 1.0;
  double heavy_threshold = 100.0;
};

/// SYN flood: hosts whose SYN rate runs far ahead of their ACK rate
/// (half-open connections piling up). Plan: map syn_excess =
/// syn_rate - ack_rate, epoch, filter syn_excess > T, distinct — one
/// alert per host per epoch, timestamped at first crossing.
Result<QuerySpec::NodeId> AddSynFloodQuery(
    QuerySpec* spec, const TelemetryQueryParams& params);

/// Port scan: hosts probing too many distinct ports per second.
/// Plan: epoch, filter port_spread > T, distinct.
Result<QuerySpec::NodeId> AddPortScanQuery(
    QuerySpec* spec, const TelemetryQueryParams& params);

/// DDoS victim: hosts whose inbound packet rate spikes.
/// Plan: epoch, filter in_rate > T, distinct.
Result<QuerySpec::NodeId> AddDdosVictimQuery(
    QuerySpec* spec, const TelemetryQueryParams& params);

/// Super-spreader: hosts contacting too many distinct destinations.
/// Plan: epoch, filter fanout > T, distinct.
Result<QuerySpec::NodeId> AddSuperSpreaderQuery(
    QuerySpec* spec, const TelemetryQueryParams& params);

/// Heavy hitter: hosts with a sustained high inbound average (windowed
/// avg + HAVING, the pre-existing aggregate machinery; flags the DDoS
/// victims' sustained load rather than the instantaneous spike).
Result<QuerySpec::NodeId> AddHeavyHitterQuery(
    QuerySpec* spec, const TelemetryQueryParams& params);

}  // namespace pulse

#endif  // PULSE_WORKLOAD_TELEMETRY_H_
