// Serving-layer throughput: concurrent sessions under each
// backpressure policy.
//
// A StreamServer runs the Fig. 5-style moving-object filter query while
// 16 concurrent in-process sessions each replay a piecewise-linear
// trace through the full serving stack: frame codec -> admission
// control -> per-stream bounded queues -> micro-batched dispatch into
// the server's shared shard pool (per-client runtimes sliced across
// shards) -> output segments framed back to the client. The same offered load is repeated once per backpressure
// policy (block / drop_oldest / shed, admission off so the queue policy
// alone decides what happens at capacity) plus one run with the
// admission controller shedding ahead of the queues. The rows show what
// each policy trades away: block keeps every tuple and pays latency,
// drop_oldest and shed keep latency and pay tuples.
//
// Per policy the JSON row records end-to-end throughput (sent tuples /
// wall seconds), the accepted/dropped/shed accounting from the serve/*
// counters, and the p99 of the per-frame admission path
// (span/serve/admit) — the serving-latency number docs/SERVING.md's
// shedding thresholds are calibrated against. Results go to
// BENCH_serving_throughput.json (schema v2; tests/bench_schema_test.cc
// pins the row fields).
//
// Two extra scenarios exercise the shard-per-core pool under the
// sessions (docs/SHARDING.md): the same block-policy load on a
// multi-key trace at 1 shard and at 4 shards. Keys spread over the
// shards by the routing hash, so on a multi-core host the 4-shard row
// should beat the 1-shard row; on fewer cores the shards time-slice and
// the row's core_bound flag marks the comparison as meaningless.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/query.h"
#include "engine/tuple.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kSessions = 16;
constexpr size_t kTuplesPerSession = 4000;
constexpr size_t kSendChunk = 64;  // tuples per kTupleBatch frame

// `num_keys` > 1 gives the sharded scenarios something to partition:
// entity ids cycle 1..num_keys, so the routing hash spreads the
// per-key model state across the pool's shards.
std::vector<Tuple> MakeTrace(size_t num_keys) {
  std::vector<Tuple> trace;
  trace.reserve(kTuplesPerSession);
  for (size_t i = 0; i < kTuplesPerSession; ++i) {
    const double t = i * 0.05;
    // Triangle wave: the segmenter closes a piece at every knee.
    const double phase = std::fmod(t, 15.0);
    const double x = phase < 7.5 ? 2.0 * phase : 30.0 - 2.0 * phase;
    const auto key = static_cast<int64_t>(1 + i % num_keys);
    trace.push_back(Tuple(
        t, {Value(key), Value(x), Value(0.0), Value(0.0), Value(0.0)}));
  }
  return trace;
}

QuerySpec MakeFilterSpec() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0));
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(10.0)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

struct PolicyResult {
  std::string policy;
  size_t num_shards = 1;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  uint64_t sent = 0;
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t shed = 0;
  uint64_t output_segments = 0;
  double admit_p99_ns = 0.0;
  obs::MetricsSnapshot metrics;
  bool ok = false;
};

PolicyResult RunPolicy(serve::BackpressurePolicy policy,
                       bool admission_enabled, size_t num_shards,
                       const std::string& label,
                       const std::vector<Tuple>& trace) {
  PolicyResult result;
  result.policy = serve::BackpressurePolicyToString(policy);
  if (admission_enabled) result.policy += "+admission";
  result.policy += label;
  result.num_shards = num_shards;
  result.sent = kSessions * trace.size();

  serve::ServerOptions options;
  options.spec = MakeFilterSpec();
  options.runtime.segmentation.degree = 1;
  options.runtime.segmentation.max_error = 0.05;
  options.session.policy = policy;
  options.session.queue_capacity = 128;
  options.session.admission.enabled = admission_enabled;
  options.num_shards = num_shards;
  Result<std::unique_ptr<serve::StreamServer>> server =
      serve::StreamServer::Make(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "server setup failed: %s\n",
                 server.status().ToString().c_str());
    return result;
  }

  std::vector<std::unique_ptr<serve::Transport>> transports;
  for (size_t i = 0; i < kSessions; ++i) {
    Result<std::unique_ptr<serve::Transport>> conn =
        (*server)->ConnectInProcess();
    if (!conn.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   conn.status().ToString().c_str());
      return result;
    }
    transports.push_back(std::move(*conn));
  }

  std::vector<uint64_t> outputs(kSessions, 0);
  std::vector<bool> session_ok(kSessions, false);
  result.seconds = bench::MeasureSeconds([&] {
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (size_t i = 0; i < kSessions; ++i) {
      clients.emplace_back([&, i] {
        serve::ServeClient client(std::move(transports[i]));
        if (!client.Hello().ok()) return;
        if (!client.OpenStream(1, "objects").ok()) return;
        for (size_t off = 0; off < trace.size(); off += kSendChunk) {
          const size_t n = std::min(kSendChunk, trace.size() - off);
          std::vector<Tuple> chunk(trace.begin() + off,
                                   trace.begin() + off + n);
          if (!client.SendBatch(1, chunk).ok()) return;
        }
        Result<serve::ServeClient::DrainResult> drained = client.Drain();
        if (!drained.ok()) return;
        outputs[i] = drained->output_segments.size();
        (void)client.Bye();
        session_ok[i] = true;
      });
    }
    for (std::thread& t : clients) t.join();
    (*server)->Drain();
  });

  result.metrics = (*server)->metrics()->Snapshot();
  result.accepted = result.metrics.counters["serve/queue/accepted"];
  result.dropped = result.metrics.counters["serve/queue/dropped"];
  result.shed = result.metrics.counters["serve/queue/shed"];
  auto it = result.metrics.histograms.find("span/serve/admit");
  if (it != result.metrics.histograms.end()) {
    result.admit_p99_ns = it->second.p99;
  }
  for (uint64_t n : outputs) result.output_segments += n;
  result.tuples_per_sec =
      static_cast<double>(result.sent) / result.seconds;
  result.ok = true;
  for (size_t i = 0; i < kSessions; ++i) {
    if (!session_ok[i]) {
      std::fprintf(stderr, "session %zu did not complete cleanly\n", i);
      result.ok = false;
    }
  }
  return result;
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  std::printf(
      "Serving throughput: %zu concurrent sessions x %zu tuples, "
      "moving-object filter\n",
      kSessions, kTuplesPerSession);

  const std::vector<Tuple> trace = MakeTrace(1);
  const std::vector<Tuple> multikey_trace = MakeTrace(8);
  bench::SeriesTable table(
      "Serving throughput by backpressure policy", "policy_index",
      {"tuples_per_sec", "accepted", "dropped", "shed", "admit_p99_ns"});

  std::vector<PolicyResult> results;
  // Three pure-policy runs (admission off: the queue policy alone
  // decides what happens at capacity — block stays lossless), then one
  // run with the admission controller shedding ahead of the queues,
  // then the sharded pair: the same block-policy load on an 8-key trace
  // at 1 shard and at 4 shards (only the shard count varies).
  const struct {
    serve::BackpressurePolicy policy;
    bool admission;
    size_t num_shards;
    const char* label;
    const std::vector<Tuple>* trace;
  } scenarios[] = {
      {serve::BackpressurePolicy::kBlock, false, 1, "", &trace},
      {serve::BackpressurePolicy::kDropOldest, false, 1, "", &trace},
      {serve::BackpressurePolicy::kShed, false, 1, "", &trace},
      {serve::BackpressurePolicy::kBlock, true, 1, "", &trace},
      {serve::BackpressurePolicy::kBlock, false, 1, "+multikey",
       &multikey_trace},
      {serve::BackpressurePolicy::kBlock, false, 4, "+multikey+shards4",
       &multikey_trace},
  };
  constexpr size_t kNumScenarios = sizeof(scenarios) / sizeof(scenarios[0]);
  for (size_t i = 0; i < kNumScenarios; ++i) {
    PolicyResult r =
        RunPolicy(scenarios[i].policy, scenarios[i].admission,
                  scenarios[i].num_shards, scenarios[i].label,
                  *scenarios[i].trace);
    if (!r.ok) return 1;
    std::printf("  %-12s %.0f tuples/s, accepted=%llu dropped=%llu "
                "shed=%llu, admit p99 %.0f ns\n",
                r.policy.c_str(), r.tuples_per_sec,
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.dropped),
                static_cast<unsigned long long>(r.shed), r.admit_p99_ns);
    table.AddRow(static_cast<double>(i),
                 {r.tuples_per_sec, static_cast<double>(r.accepted),
                  static_cast<double>(r.dropped),
                  static_cast<double>(r.shed), r.admit_p99_ns});
    results.push_back(std::move(r));
  }
  table.Print();

  bench::BenchReport report("serving_throughput");
  report.ParamString("workload", "moving_object_filter");
  report.ParamUint("sessions", kSessions);
  report.ParamUint("tuples_per_session", kTuplesPerSession);
  report.ParamUint("send_chunk", kSendChunk);
  report.ParamUint("queue_capacity", 128);
  report.ParamUint("multikey_keys", 8);
  report.ParamUint("hardware_concurrency", bench::HardwareConcurrency());
  for (const PolicyResult& r : results) {
    report.AddRow()
        .String("policy", r.policy)
        .Uint("num_shards", r.num_shards)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", r.tuples_per_sec)
        .Uint("sent", r.sent)
        .Uint("accepted", r.accepted)
        .Uint("dropped", r.dropped)
        .Uint("shed", r.shed)
        .Uint("output_segments", r.output_segments)
        .Double("admit_p99_ns", r.admit_p99_ns)
        .Bool("core_bound", bench::CoreBound(r.num_shards));
  }
  // The block-policy run's registry: the lossless configuration whose
  // serve/queue/blocked_ns counter shows the price of keeping every
  // tuple.
  report.AttachMetrics(results.front().metrics);
  if (!report.WriteFile("BENCH_serving_throughput.json")) return 1;
  std::printf(
      "\nWrote BENCH_serving_throughput.json. Expected shape: block "
      "accepts everything\n(accepted == sent) at the lowest throughput; "
      "drop_oldest and shed trade tuples\nfor latency when the offered "
      "rate beats the per-session solver; block+admission\nsheds ahead "
      "of the queues when the host is overloaded.\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, results.front().metrics)) {
    return 1;
  }
  return 0;
}
