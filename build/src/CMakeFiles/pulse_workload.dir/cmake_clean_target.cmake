file(REMOVE_RECURSE
  "libpulse_workload.a"
)
