#include "store/segment_tree.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "math/roots.h"

namespace pulse {
namespace store {

void RangeAggregate::Combine(const RangeAggregate& other) {
  if (other.count == 0) return;
  count += other.count;
  coverage += other.coverage;
  integral += other.integral;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  t_lo = std::min(t_lo, other.t_lo);
  t_hi = std::max(t_hi, other.t_hi);
}

std::string RangeAggregate::ToString() const {
  std::ostringstream os;
  os << "RangeAggregate{count=" << count << ", coverage=" << coverage
     << ", integral=" << integral << ", sum=" << sum << ", min=" << min
     << ", max=" << max << ", span=[" << t_lo << ", " << t_hi << "]}";
  return os.str();
}

RangeAggregate AggregatePolynomial(const Polynomial& p, double lo,
                                   double hi) {
  RangeAggregate agg;
  if (hi < lo) return agg;
  agg.count = 1;
  agg.t_lo = lo;
  agg.t_hi = hi;
  const double at_lo = p.Evaluate(lo);
  if (hi == lo) {
    agg.min = agg.max = agg.sum = at_lo;
    return agg;
  }
  agg.coverage = hi - lo;
  agg.integral = p.Integrate(lo, hi);
  agg.sum = agg.integral / (hi - lo);
  const double at_hi = p.Evaluate(hi);
  agg.min = std::min(at_lo, at_hi);
  agg.max = std::max(at_lo, at_hi);
  const Polynomial deriv = p.Derivative();
  if (!deriv.IsZero() && deriv.degree() >= 0) {
    for (double r : FindRealRoots(deriv, lo, hi)) {
      const double v = p.Evaluate(r);
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
  }
  return agg;
}

void SegmentTree::Build(std::vector<Leaf> leaves) {
  leaves_ = std::move(leaves);
  cap_ = 1;
  while (cap_ < std::max<size_t>(leaves_.size(), 1)) cap_ *= 2;
  Rebuild();
}

void SegmentTree::Rebuild() {
  nodes_.assign(2 * cap_, RangeAggregate{});
  for (size_t i = 0; i < leaves_.size(); ++i) {
    nodes_[cap_ + i] =
        AggregatePolynomial(leaves_[i].poly, leaves_[i].lo, leaves_[i].hi);
  }
  for (size_t i = cap_ - 1; i >= 1; --i) {
    nodes_[i] = nodes_[2 * i];
    nodes_[i].Combine(nodes_[2 * i + 1]);
  }
}

void SegmentTree::UpdatePath(size_t slot) {
  size_t node = cap_ + slot;
  nodes_[node] =
      AggregatePolynomial(leaves_[slot].poly, leaves_[slot].lo,
                          leaves_[slot].hi);
  for (node /= 2; node >= 1; node /= 2) {
    nodes_[node] = nodes_[2 * node];
    nodes_[node].Combine(nodes_[2 * node + 1]);
  }
}

void SegmentTree::Append(Leaf leaf) {
  if (cap_ == 0) cap_ = 1;
  leaves_.push_back(std::move(leaf));
  if (leaves_.size() > cap_) {
    while (cap_ < leaves_.size()) cap_ *= 2;
    Rebuild();
    return;
  }
  if (nodes_.size() != 2 * cap_) {
    Rebuild();
    return;
  }
  UpdatePath(leaves_.size() - 1);
}

RangeAggregate SegmentTree::Query(double lo, double hi,
                                  TreeQueryStats* stats) const {
  RangeAggregate out;
  if (leaves_.empty() || hi < lo) return out;
  // First leaf whose span reaches past `lo` (leaves sorted by lo and
  // non-overlapping, so hi is sorted too).
  const auto first_it = std::lower_bound(
      leaves_.begin(), leaves_.end(), lo,
      [](const Leaf& leaf, double t) { return leaf.hi <= t; });
  if (first_it == leaves_.end()) return out;
  // Last leaf starting before `hi`.
  const auto last_it = std::upper_bound(
      leaves_.begin(), leaves_.end(), hi,
      [](double t, const Leaf& leaf) { return t < leaf.lo; });
  if (last_it == leaves_.begin()) return out;
  size_t first = static_cast<size_t>(first_it - leaves_.begin());
  size_t last = static_cast<size_t>(last_it - leaves_.begin()) - 1;
  if (first > last) return out;

  // Edge leaves the range may cut through are recomputed exactly from
  // their models over the clipped span; everything strictly between is
  // answered from pre-aggregated nodes.
  const auto edge = [&](size_t i) {
    const Leaf& leaf = leaves_[i];
    const double a = std::max(leaf.lo, lo);
    const double b = std::min(leaf.hi, hi);
    if (b < a) return;
    out.Combine(AggregatePolynomial(leaf.poly, a, b));
    if (stats != nullptr) ++stats->edge_leaves;
  };
  edge(first);
  if (last != first) {
    if (last > first + 1) {
      QueryRange(1, 0, cap_ - 1, first + 1, last - 1, &out, stats);
    }
    edge(last);
  }
  return out;
}

void SegmentTree::QueryRange(size_t node, size_t node_lo, size_t node_hi,
                             size_t l, size_t r, RangeAggregate* out,
                             TreeQueryStats* stats) const {
  if (r < node_lo || node_hi < l) return;
  if (l <= node_lo && node_hi <= r) {
    out->Combine(nodes_[node]);
    if (stats != nullptr) ++stats->nodes_combined;
    return;
  }
  const size_t mid = node_lo + (node_hi - node_lo) / 2;
  QueryRange(2 * node, node_lo, mid, l, r, out, stats);
  QueryRange(2 * node + 1, mid + 1, node_hi, l, r, out, stats);
}

}  // namespace store
}  // namespace pulse
