#include "model/fitting.h"

#include <cmath>

#include "math/linear_system.h"
#include "math/matrix.h"

namespace pulse {

Result<Polynomial> FitPolynomial(const std::vector<Sample>& samples,
                                 size_t degree) {
  const size_t n = samples.size();
  const size_t cols = degree + 1;
  if (n < cols) {
    return Status::InvalidArgument(
        "FitPolynomial: need at least degree+1 samples");
  }
  // Vandermonde design matrix: row i is [1, t_i, t_i^2, ...].
  Matrix a(n, cols);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    double p = 1.0;
    for (size_t j = 0; j < cols; ++j) {
      a.At(i, j) = p;
      p *= samples[i].t;
    }
    b[i] = samples[i].value;
  }
  PULSE_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                         SolveLeastSquares(a, b));
  return Polynomial(std::move(coeffs));
}

double MaxAbsResidual(const Polynomial& p,
                      const std::vector<Sample>& samples) {
  double max_abs = 0.0;
  for (const Sample& s : samples) {
    max_abs = std::max(max_abs, std::abs(p.Evaluate(s.t) - s.value));
  }
  return max_abs;
}

double RmsResidual(const Polynomial& p, const std::vector<Sample>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const Sample& s : samples) {
    const double r = p.Evaluate(s.t) - s.value;
    acc += r * r;
  }
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

Result<Polynomial> FitConstant(const std::vector<Sample>& samples) {
  return FitPolynomial(samples, 0);
}

Result<Polynomial> FitLine(const std::vector<Sample>& samples) {
  return FitPolynomial(samples, 1);
}

}  // namespace pulse
