# Empty compiler generated dependencies file for pulse_bench_util.
# This may be replaced when dependencies are built.
