#include "store/log.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/wire.h"
#include "store/checksum.h"

namespace pulse {
namespace store {

namespace {

namespace wire = serve::wire;

constexpr char kLogMagic[8] = {'P', 'U', 'L', 'S', 'E', 'L', 'O', 'G'};
constexpr uint32_t kLogVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kLogMagic) + 4;
constexpr size_t kRecordFrameBytes = 8;  // u32 length + u32 crc

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

const char* LogTailStateToString(LogTailState state) {
  switch (state) {
    case LogTailState::kClean:
      return "clean";
    case LogTailState::kBadHeader:
      return "bad-header";
    case LogTailState::kTornRecord:
      return "torn-record";
    case LogTailState::kBadChecksum:
      return "bad-checksum";
    case LogTailState::kBadPayload:
      return "bad-payload";
  }
  return "unknown";
}

std::string EncodeLogHeader() {
  std::string out(kLogMagic, sizeof(kLogMagic));
  wire::PutU32(&out, kLogVersion);
  return out;
}

void EncodeLogRecord(const LogRecord& record, std::string* out) {
  std::string payload;
  wire::PutU8(&payload, static_cast<uint8_t>(record.type));
  wire::PutString(&payload, record.stream);
  if (record.type == LogRecordType::kTuple) {
    wire::PutTuple(&payload, record.tuple);
  } else {
    wire::PutSegment(&payload, record.segment);
  }
  wire::PutU32(out, static_cast<uint32_t>(payload.size()));
  wire::PutU32(out, Crc32c(payload));
  out->append(payload);
}

Result<LogRecord> DecodeLogPayload(const char* data, size_t n) {
  wire::Cursor c{data, n};
  PULSE_ASSIGN_OR_RETURN(uint8_t type, wire::GetU8(&c, "record type"));
  LogRecord record;
  switch (static_cast<LogRecordType>(type)) {
    case LogRecordType::kSegment:
    case LogRecordType::kTuple:
    case LogRecordType::kBackfill:
      record.type = static_cast<LogRecordType>(type);
      break;
    default:
      return Status::IoError("unknown log record type " +
                             std::to_string(type));
  }
  PULSE_ASSIGN_OR_RETURN(record.stream, wire::GetString(&c, "stream name"));
  if (record.type == LogRecordType::kTuple) {
    PULSE_ASSIGN_OR_RETURN(record.tuple, wire::GetTuple(&c));
  } else {
    PULSE_ASSIGN_OR_RETURN(record.segment, wire::GetSegment(&c));
  }
  if (c.pos != c.size) {
    return Status::IoError("log record payload has " +
                           std::to_string(c.size - c.pos) +
                           " trailing byte(s)");
  }
  return record;
}

LogScan ScanLog(const char* data, size_t n, const LogLimits& limits) {
  LogScan scan;
  scan.scanned_bytes = n;
  if (n < kHeaderBytes ||
      std::memcmp(data, kLogMagic, sizeof(kLogMagic)) != 0) {
    scan.tail = LogTailState::kBadHeader;
    scan.detail = n < kHeaderBytes ? "log shorter than file header"
                                   : "log magic mismatch";
    return scan;
  }
  {
    wire::Cursor c{data + sizeof(kLogMagic), 4};
    uint32_t version = *wire::GetU32(&c, "log version");
    if (version != kLogVersion) {
      scan.tail = LogTailState::kBadHeader;
      scan.detail = "unsupported log version " + std::to_string(version);
      return scan;
    }
  }
  size_t pos = kHeaderBytes;
  scan.consistent_bytes = pos;
  while (pos < n) {
    if (n - pos < kRecordFrameBytes) {
      scan.tail = LogTailState::kTornRecord;
      scan.detail = "trailing " + std::to_string(n - pos) +
                    " byte(s) shorter than a record frame";
      return scan;
    }
    wire::Cursor c{data + pos, kRecordFrameBytes};
    const uint32_t len = *wire::GetU32(&c, "record length");
    const uint32_t stored_crc = *wire::GetU32(&c, "record crc");
    if (len > limits.max_record_bytes) {
      // Indistinguishable from a garbage length prefix: treat as torn.
      scan.tail = LogTailState::kTornRecord;
      scan.detail = "record length " + std::to_string(len) +
                    " exceeds limit " +
                    std::to_string(limits.max_record_bytes);
      return scan;
    }
    if (n - pos - kRecordFrameBytes < len) {
      scan.tail = LogTailState::kTornRecord;
      scan.detail = "record needs " + std::to_string(len) +
                    " payload byte(s), only " +
                    std::to_string(n - pos - kRecordFrameBytes) + " present";
      return scan;
    }
    const char* payload = data + pos + kRecordFrameBytes;
    const uint32_t actual_crc = Crc32c(payload, len);
    if (actual_crc != stored_crc) {
      scan.tail = LogTailState::kBadChecksum;
      scan.detail = "record " + std::to_string(scan.records.size()) +
                    " checksum mismatch";
      return scan;
    }
    Result<LogRecord> record = DecodeLogPayload(payload, len);
    if (!record.ok()) {
      scan.tail = LogTailState::kBadPayload;
      scan.detail = "record " + std::to_string(scan.records.size()) + ": " +
                    record.status().message();
      return scan;
    }
    scan.records.push_back(std::move(*record));
    pos += kRecordFrameBytes + len;
    scan.consistent_bytes = pos;
  }
  return scan;
}

Result<LogScan> ScanLogFile(const std::string& path,
                            const LogLimits& limits) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("log file '" + path + "' does not exist");
    }
    return Errno("open log file", path);
  }
  std::string contents;
  char buf[64 * 1024];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Errno("read log file", path);
  return ScanLog(contents.data(), contents.size(), limits);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Result<SegmentLogWriter> SegmentLogWriter::Open(const std::string& path) {
  SegmentLogWriter writer;
  writer.path_ = path;
  struct ::stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
  std::FILE* f = std::fopen(path.c_str(), exists ? "ab" : "wb");
  if (f == nullptr) return Errno("open log for append", path);
  writer.file_.reset(f);
  if (exists) {
    writer.size_ = static_cast<uint64_t>(st.st_size);
  } else {
    const std::string header = EncodeLogHeader();
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
      return Errno("write log header", path);
    }
    writer.size_ = header.size();
  }
  return writer;
}

Result<uint64_t> SegmentLogWriter::Append(const LogRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("log writer is closed");
  }
  scratch_.clear();
  EncodeLogRecord(record, &scratch_);
  if (std::fwrite(scratch_.data(), 1, scratch_.size(), file_.get()) !=
      scratch_.size()) {
    return Errno("append log record", path_);
  }
  size_ += scratch_.size();
  return size_;
}

Status SegmentLogWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("log writer is closed");
  }
  if (std::fflush(file_.get()) != 0) return Errno("flush log", path_);
  if (::fsync(::fileno(file_.get())) != 0) return Errno("fsync log", path_);
  return Status::OK();
}

}  // namespace store
}  // namespace pulse
