#include "core/parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace pulse {

namespace parser_internal {

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto symbol = [&](std::string text, size_t pos) {
    Token t;
    t.kind = TokenKind::kSymbol;
    t.text = std::move(text);
    t.position = pos;
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(input.substr(start, i - start));
      for (char& ch : t.text) {
        ch = static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch)));
      }
      t.position = start;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      const size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' ||
                       input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      PULSE_ASSIGN_OR_RETURN(t.number,
                             ParseDouble(input.substr(start, i - start)));
      t.text = std::string(input.substr(start, i - start));
      t.position = start;
      out.push_back(std::move(t));
      continue;
    }
    // Multi-character operators first.
    if (c == '<' && i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
      symbol(std::string(input.substr(i, 2)), i);
      i += 2;
      continue;
    }
    if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      symbol(">=", i);
      i += 2;
      continue;
    }
    if (std::string_view("()[],.*-+=<>^").find(c) != std::string_view::npos) {
      symbol(std::string(1, c), i);
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace parser_internal

namespace {

using parser_internal::Token;
using parser_internal::TokenKind;
using parser_internal::Tokenize;

// A dotted attribute reference as written in the text.
struct Qualified {
  std::string alias;  // empty when unqualified
  std::string name;

  std::string ToString() const {
    return alias.empty() ? name : alias + "." + name;
  }
};

// One SELECT-list entry.
struct SelectItem {
  enum class Kind { kStar, kPlain, kAggregate, kDifference, kDistance };
  Kind kind = Kind::kStar;
  std::string output;  // AS alias (may be synthesized)
  AggFn fn = AggFn::kAvg;
  Qualified a, b;             // plain: a; agg: a; difference: a - b
  Qualified x1, y1, x2, y2;   // distance
};

// A resolved FROM item.
struct Source {
  QuerySpec::Input input;
  std::string alias;
  // Attribute namespace exposed by this source.
  std::set<std::string> attributes;
  // Name of the key attribute flowing through (empty when unknown).
  std::string key_attribute;
  // Window attached in the text ([size W advance S]); 0 when absent.
  double window_size = 0.0;
  double window_slide = 0.0;
  // Tumbling epoch length (EPOCH E after the window); 0 when absent.
  double epoch_seconds = 0.0;
};

class Parser {
 public:
  Parser(QuerySpec* spec, std::vector<Token> tokens)
      : spec_(spec), tokens_(std::move(tokens)) {}

  Result<QuerySpec::NodeId> ParseStatement();
  Result<Predicate> ParsePredicateOnly(std::string_view left_alias,
                                       std::string_view right_alias);

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool MatchKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected '") + std::string(kw) + "'");
  }
  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + std::string(sym) + "'");
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at offset " + std::to_string(Peek().position) +
        (Peek().kind == TokenKind::kEnd ? " (end of input)"
                                        : " near '" + Peek().text + "'"));
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected identifier");
    }
    return Advance().text;
  }
  Result<double> ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) return Error("expected number");
    return Advance().number;
  }
  Result<Qualified> ExpectQualified() {
    PULSE_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    Qualified q;
    if (MatchSymbol(".")) {
      PULSE_ASSIGN_OR_RETURN(q.name, ExpectIdent());
      q.alias = std::move(first);
    } else {
      q.name = std::move(first);
    }
    return q;
  }

  // --- grammar -----------------------------------------------------------
  Result<std::vector<SelectItem>> ParseSelectList();
  Result<Source> ParseSource();
  Result<Predicate> ParsePredicate(const Source* left, const Source* right,
                                   JoinSpec* join_hints);
  Result<Predicate> ParseOr(const Source* l, const Source* r, JoinSpec* jh);
  Result<Predicate> ParseAnd(const Source* l, const Source* r, JoinSpec* jh);
  Result<Predicate> ParseUnary(const Source* l, const Source* r,
                               JoinSpec* jh);
  Result<Predicate> ParseComparison(const Source* l, const Source* r,
                                    JoinSpec* jh);

  // Resolves a textual reference to a side + bare attribute name.
  Result<AttrRef> Resolve(const Qualified& q, const Source* left,
                          const Source* right) const;

  QuerySpec* spec_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // Output namespace / key attribute of statements parsed so far, keyed
  // by their sink node (consulted when a sub-select is used as a source).
  std::map<QuerySpec::NodeId, Source> node_info_;
};

Result<CmpOp> SymbolToCmpOp(const std::string& sym) {
  if (sym == "<") return CmpOp::kLt;
  if (sym == "<=") return CmpOp::kLe;
  if (sym == "=") return CmpOp::kEq;
  if (sym == "<>") return CmpOp::kNe;
  if (sym == ">=") return CmpOp::kGe;
  if (sym == ">") return CmpOp::kGt;
  return Status::InvalidArgument("unknown comparison '" + sym + "'");
}

Result<AggFn> NameToAggFn(const std::string& name) {
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  if (name == "sum") return AggFn::kSum;
  if (name == "avg") return AggFn::kAvg;
  if (name == "count") return AggFn::kCount;
  return Status::NotFound("not an aggregate: " + name);
}

Result<AttrRef> Parser::Resolve(const Qualified& q, const Source* left,
                                const Source* right) const {
  auto in_namespace = [&](const Source* s) {
    return s != nullptr &&
           (s->attributes.empty() || s->attributes.count(q.name) > 0);
  };
  if (!q.alias.empty()) {
    if (left != nullptr && q.alias == left->alias) {
      if (!in_namespace(left)) {
        return Status::InvalidArgument("'" + q.ToString() +
                                       "': no such attribute on '" +
                                       left->alias + "'");
      }
      return AttrRef::Left(q.name);
    }
    if (right != nullptr && q.alias == right->alias) {
      if (!in_namespace(right)) {
        return Status::InvalidArgument("'" + q.ToString() +
                                       "': no such attribute on '" +
                                       right->alias + "'");
      }
      return AttrRef::Right(q.name);
    }
    return Status::InvalidArgument("unknown source alias '" + q.alias +
                                   "'");
  }
  // Unqualified: prefer the left side, fall back to the right.
  if (in_namespace(left)) return AttrRef::Left(q.name);
  if (in_namespace(right)) return AttrRef::Right(q.name);
  return Status::InvalidArgument("cannot resolve attribute '" + q.name +
                                 "'");
}

Result<std::vector<SelectItem>> Parser::ParseSelectList() {
  std::vector<SelectItem> items;
  if (MatchSymbol("*")) {
    items.push_back(SelectItem{});
    return items;
  }
  while (true) {
    SelectItem item;
    if (Peek().kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kSymbol &&
        Peek(1).text == "(") {
      const std::string fn_name = Peek().text;
      if (fn_name == "dist") {
        Advance();
        (void)Advance();  // '('
        item.kind = SelectItem::Kind::kDistance;
        PULSE_ASSIGN_OR_RETURN(item.x1, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol(","));
        PULSE_ASSIGN_OR_RETURN(item.y1, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol(","));
        PULSE_ASSIGN_OR_RETURN(item.x2, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol(","));
        PULSE_ASSIGN_OR_RETURN(item.y2, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.output = "dist2";
      } else {
        Result<AggFn> fn = NameToAggFn(fn_name);
        if (!fn.ok()) return Error("unknown function '" + fn_name + "'");
        Advance();
        (void)Advance();  // '('
        item.kind = SelectItem::Kind::kAggregate;
        item.fn = *fn;
        PULSE_ASSIGN_OR_RETURN(item.a, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.output = fn_name + "_" + item.a.name;
      }
    } else {
      PULSE_ASSIGN_OR_RETURN(item.a, ExpectQualified());
      if (MatchSymbol("-")) {
        item.kind = SelectItem::Kind::kDifference;
        PULSE_ASSIGN_OR_RETURN(item.b, ExpectQualified());
        item.output = item.a.name + "_minus_" + item.b.name;
      } else {
        item.kind = SelectItem::Kind::kPlain;
        item.output = item.a.name;
      }
    }
    if (MatchKeyword("as")) {
      PULSE_ASSIGN_OR_RETURN(item.output, ExpectIdent());
    }
    items.push_back(std::move(item));
    if (!MatchSymbol(",")) break;
  }
  return items;
}

Result<Source> Parser::ParseSource() {
  Source src;
  if (MatchSymbol("(")) {
    // Sub-select.
    PULSE_ASSIGN_OR_RETURN(QuerySpec::NodeId node, ParseStatement());
    PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
    src.input = QuerySpec::Input::Node(node);
    // Namespace and key attribute recorded when the sub-statement parsed.
    auto it = node_info_.find(node);
    if (it != node_info_.end()) {
      src.attributes = it->second.attributes;
      src.key_attribute = it->second.key_attribute;
    }
  } else {
    PULSE_ASSIGN_OR_RETURN(std::string stream, ExpectIdent());
    PULSE_ASSIGN_OR_RETURN(StreamSpec decl, spec_->stream(stream));
    src.input = QuerySpec::Input::Stream(stream);
    src.alias = stream;
    for (const Field& f : decl.schema->fields()) {
      src.attributes.insert(f.name);
    }
    src.key_attribute = decl.key_field;
    // Optional MODEL clause(s): validated against the declaration
    // (Fig. 1's declarative model specification).
    if (MatchKeyword("model")) {
      std::vector<ModelClause> parsed;
      do {
        // Re-parse one model definition from the token stream.
        PULSE_ASSIGN_OR_RETURN(Qualified lhs, ExpectQualified());
        PULSE_RETURN_IF_ERROR(ExpectSymbol("="));
        ModelClause clause;
        clause.modeled_attribute = lhs.name;
        std::map<size_t, std::string> by_power;
        while (true) {
          PULSE_ASSIGN_OR_RETURN(Qualified coeff, ExpectQualified());
          size_t power = 0;
          // Optional time factor: '*'? t | t2 | t ^ k.
          (void)MatchSymbol("*");
          if (Peek().kind == TokenKind::kIdent && Peek().text == "t") {
            Advance();
            power = 1;
            if (MatchSymbol("^")) {
              PULSE_ASSIGN_OR_RETURN(double p, ExpectNumber());
              power = static_cast<size_t>(p);
            }
          } else if (Peek().kind == TokenKind::kIdent &&
                     Peek().text.size() > 1 && Peek().text[0] == 't' &&
                     std::isdigit(static_cast<unsigned char>(
                         Peek().text[1]))) {
            // Paper Fig. 1 writes t^2 as "t2".
            power = static_cast<size_t>(
                std::stoul(Advance().text.substr(1)));
          }
          if (by_power.count(power) > 0) {
            return Error("duplicate coefficient for t^" +
                         std::to_string(power));
          }
          by_power[power] = coeff.name;
          if (!MatchSymbol("+")) break;
        }
        for (size_t p = 0; p < by_power.size(); ++p) {
          auto it = by_power.find(p);
          if (it == by_power.end()) {
            return Error("missing coefficient for t^" + std::to_string(p));
          }
          clause.coefficient_fields.push_back(it->second);
        }
        parsed.push_back(std::move(clause));
      } while (MatchSymbol(","));
      // Consistency check against the declared stream models.
      for (const ModelClause& clause : parsed) {
        bool found = false;
        for (const ModelClause& declared : decl.models) {
          if (declared.modeled_attribute == clause.modeled_attribute) {
            found = true;
            if (declared.coefficient_fields !=
                clause.coefficient_fields) {
              return Status::InvalidArgument(
                  "MODEL clause for '" + clause.modeled_attribute +
                  "' disagrees with the declaration of stream '" + stream +
                  "'");
            }
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "MODEL clause names undeclared modeled attribute '" +
              clause.modeled_attribute + "' on stream '" + stream + "'");
        }
      }
    }
  }
  // Optional window.
  if (MatchSymbol("[")) {
    PULSE_RETURN_IF_ERROR(ExpectKeyword("size"));
    PULSE_ASSIGN_OR_RETURN(src.window_size, ExpectNumber());
    if (!MatchKeyword("advance") && !MatchKeyword("slide")) {
      return Error("expected 'advance' or 'slide'");
    }
    PULSE_ASSIGN_OR_RETURN(src.window_slide, ExpectNumber());
    PULSE_RETURN_IF_ERROR(ExpectSymbol("]"));
  }
  // Optional tumbling epoch: "EPOCH E" (the Sonata operator; resets
  // per-epoch state downstream, e.g. SELECT DISTINCT dedup).
  if (MatchKeyword("epoch")) {
    PULSE_ASSIGN_OR_RETURN(src.epoch_seconds, ExpectNumber());
    if (src.epoch_seconds <= 0.0) {
      return Error("EPOCH length must be positive");
    }
  }
  if (MatchKeyword("as")) {
    PULSE_ASSIGN_OR_RETURN(src.alias, ExpectIdent());
  }
  return src;
}

Result<Predicate> Parser::ParseComparison(const Source* l, const Source* r,
                                          JoinSpec* jh) {
  // DIST(...) cmp number.
  if (Peek().kind == TokenKind::kIdent && Peek().text == "dist" &&
      Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
    Advance();
    (void)Advance();
    Qualified qs[4];
    for (int i = 0; i < 4; ++i) {
      PULSE_ASSIGN_OR_RETURN(qs[i], ExpectQualified());
      if (i < 3) PULSE_RETURN_IF_ERROR(ExpectSymbol(","));
    }
    PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (Peek().kind != TokenKind::kSymbol) {
      return Error("expected comparison after dist()");
    }
    PULSE_ASSIGN_OR_RETURN(CmpOp op, SymbolToCmpOp(Advance().text));
    PULSE_ASSIGN_OR_RETURN(double threshold, ExpectNumber());
    AttrRef refs[4];
    for (int i = 0; i < 4; ++i) {
      PULSE_ASSIGN_OR_RETURN(refs[i], Resolve(qs[i], l, r));
    }
    return Predicate::Comparison(ComparisonTerm::Distance2(
        refs[0], refs[1], refs[2], refs[3], op, threshold));
  }

  PULSE_ASSIGN_OR_RETURN(Qualified lhs, ExpectQualified());
  if (Peek().kind != TokenKind::kSymbol) {
    return Error("expected comparison operator");
  }
  PULSE_ASSIGN_OR_RETURN(CmpOp op, SymbolToCmpOp(Advance().text));
  PULSE_ASSIGN_OR_RETURN(AttrRef lref, Resolve(lhs, l, r));

  if (Peek().kind == TokenKind::kNumber) {
    const double value = Advance().number;
    return Predicate::Comparison(
        ComparisonTerm::Simple(lref, op, Operand::Constant(value)));
  }
  if (MatchSymbol("-")) {
    PULSE_ASSIGN_OR_RETURN(double value, ExpectNumber());
    return Predicate::Comparison(
        ComparisonTerm::Simple(lref, op, Operand::Constant(-value)));
  }
  PULSE_ASSIGN_OR_RETURN(Qualified rhs, ExpectQualified());
  PULSE_ASSIGN_OR_RETURN(AttrRef rref, Resolve(rhs, l, r));

  // Key-attribute handling (paper Section II-B): equality on the two
  // sides' key attributes becomes a hash-partition equi-join; inequality
  // becomes a self-join guard. Neither enters the equation system.
  if (jh != nullptr && l != nullptr && r != nullptr &&
      lref.side != rref.side && !l->key_attribute.empty() &&
      !r->key_attribute.empty()) {
    const std::string& lkey =
        lref.side == Side::kLeft ? l->key_attribute : r->key_attribute;
    const std::string& rkey =
        rref.side == Side::kLeft ? l->key_attribute : r->key_attribute;
    if (lref.name == lkey && rref.name == rkey) {
      if (op == CmpOp::kEq) {
        jh->match_keys = true;
        return Predicate::And({});
      }
      if (op == CmpOp::kNe) {
        jh->require_distinct_keys = true;
        return Predicate::And({});
      }
    }
  }
  // Normalize so the left side of the term is kLeft where possible.
  if (lref.side == Side::kRight && rref.side == Side::kLeft) {
    return Predicate::Comparison(ComparisonTerm::Simple(
        rref, FlipCmpOp(op), Operand::Attribute(lref)));
  }
  return Predicate::Comparison(
      ComparisonTerm::Simple(lref, op, Operand::Attribute(rref)));
}

Result<Predicate> Parser::ParseUnary(const Source* l, const Source* r,
                                     JoinSpec* jh) {
  if (MatchKeyword("not")) {
    PULSE_ASSIGN_OR_RETURN(Predicate inner, ParseUnary(l, r, jh));
    return Predicate::Not(std::move(inner));
  }
  if (MatchSymbol("(")) {
    PULSE_ASSIGN_OR_RETURN(Predicate inner, ParseOr(l, r, jh));
    PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  return ParseComparison(l, r, jh);
}

Result<Predicate> Parser::ParseAnd(const Source* l, const Source* r,
                                   JoinSpec* jh) {
  std::vector<Predicate> terms;
  PULSE_ASSIGN_OR_RETURN(Predicate first, ParseUnary(l, r, jh));
  terms.push_back(std::move(first));
  while (MatchKeyword("and")) {
    PULSE_ASSIGN_OR_RETURN(Predicate next, ParseUnary(l, r, jh));
    terms.push_back(std::move(next));
  }
  // Drop empty conjunctions produced by absorbed key terms.
  std::vector<Predicate> kept;
  for (Predicate& p : terms) {
    if (p.kind() == Predicate::Kind::kAnd && p.children().empty()) continue;
    kept.push_back(std::move(p));
  }
  if (kept.empty()) return Predicate::And({});
  if (kept.size() == 1) return std::move(kept[0]);
  return Predicate::And(std::move(kept));
}

Result<Predicate> Parser::ParseOr(const Source* l, const Source* r,
                                  JoinSpec* jh) {
  std::vector<Predicate> terms;
  PULSE_ASSIGN_OR_RETURN(Predicate first, ParseAnd(l, r, jh));
  terms.push_back(std::move(first));
  while (MatchKeyword("or")) {
    PULSE_ASSIGN_OR_RETURN(Predicate next, ParseAnd(l, r, jh));
    terms.push_back(std::move(next));
  }
  if (terms.size() == 1) return std::move(terms[0]);
  return Predicate::Or(std::move(terms));
}

Result<Predicate> Parser::ParsePredicate(const Source* left,
                                         const Source* right,
                                         JoinSpec* join_hints) {
  return ParseOr(left, right, join_hints);
}

Result<Predicate> Parser::ParsePredicateOnly(std::string_view left_alias,
                                             std::string_view right_alias) {
  Source l, r;
  l.alias = std::string(left_alias);
  r.alias = std::string(right_alias);
  return ParsePredicate(&l, right_alias.empty() ? nullptr : &r, nullptr);
}

Result<QuerySpec::NodeId> Parser::ParseStatement() {
  PULSE_RETURN_IF_ERROR(ExpectKeyword("select"));
  const bool distinct = MatchKeyword("distinct");
  PULSE_ASSIGN_OR_RETURN(std::vector<SelectItem> items, ParseSelectList());
  PULSE_RETURN_IF_ERROR(ExpectKeyword("from"));
  PULSE_ASSIGN_OR_RETURN(Source left, ParseSource());

  std::optional<Source> right;
  JoinSpec join;
  bool have_join = false;
  if (MatchKeyword("join")) {
    have_join = true;
    PULSE_ASSIGN_OR_RETURN(right, ParseSource());
    PULSE_RETURN_IF_ERROR(ExpectKeyword("on"));
    PULSE_RETURN_IF_ERROR(ExpectSymbol("("));
    PULSE_ASSIGN_OR_RETURN(
        join.predicate,
        ParsePredicate(&left, &*right, &join));
    PULSE_RETURN_IF_ERROR(ExpectSymbol(")"));
  }

  std::optional<Predicate> where;
  if (MatchKeyword("where")) {
    PULSE_ASSIGN_OR_RETURN(
        Predicate w,
        ParsePredicate(&left, have_join ? &*right : nullptr,
                       have_join ? &join : nullptr));
    where = std::move(w);
  }

  std::vector<Qualified> group_by;
  if (MatchKeyword("group")) {
    PULSE_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      PULSE_ASSIGN_OR_RETURN(Qualified g, ExpectQualified());
      group_by.push_back(std::move(g));
    } while (MatchSymbol(","));
  }

  std::optional<Predicate> having;
  if (MatchKeyword("having")) {
    // HAVING references the aggregate outputs: resolve names loosely.
    Source agg_ns;
    for (const SelectItem& item : items) {
      if (item.kind == SelectItem::Kind::kAggregate) {
        agg_ns.attributes.insert(item.output);
      }
    }
    PULSE_ASSIGN_OR_RETURN(Predicate h,
                           ParsePredicate(&agg_ns, nullptr, nullptr));
    having = std::move(h);
  }

  // ---- assemble nodes ----------------------------------------------------
  // EPOCH on a source wraps it in an epoch node before anything consumes
  // it, so every downstream operator sees epoch-aligned input (the
  // discrete plan gains the epoch column; the Pulse plan splits segments
  // at epoch boundaries).
  auto wrap_epoch = [&](Source* s) {
    if (s->epoch_seconds <= 0.0) return;
    EpochSpec spec;
    spec.epoch_seconds = s->epoch_seconds;
    const QuerySpec::NodeId en =
        spec_->AddEpoch("epoch(" + s->alias + ")", s->input, spec);
    s->input = QuerySpec::Input::Node(en);
  };
  wrap_epoch(&left);
  if (have_join) wrap_epoch(&*right);

  QuerySpec::Input current = left.input;

  if (have_join) {
    // WHERE on a join statement folds into the join predicate (the MACD
    // pattern: ... on (S.Symbol = L.Symbol) where S.ap > L.ap).
    if (where.has_value()) {
      if (join.predicate.kind() == Predicate::Kind::kAnd &&
          join.predicate.children().empty()) {
        join.predicate = std::move(*where);
      } else {
        join.predicate =
            Predicate::And({std::move(join.predicate), std::move(*where)});
      }
      where.reset();
    }
    join.window_seconds = std::max(
        {left.window_size, right->window_size, 1e-3});
    join.left_prefix = left.alias + ".";
    join.right_prefix = right->alias + ".";
    const QuerySpec::NodeId jnode = spec_->AddJoin(
        "join(" + left.alias + "," + right->alias + ")", left.input,
        right->input, join);
    current = QuerySpec::Input::Node(jnode);
  } else if (where.has_value()) {
    FilterSpec filter;
    filter.predicate = std::move(*where);
    const QuerySpec::NodeId fnode =
        spec_->AddFilter("where(" + left.alias + ")", current, filter);
    current = QuerySpec::Input::Node(fnode);
  }

  // Computed select items -> map node (after the join so prefixed names
  // resolve; on single sources the bare names resolve directly).
  std::vector<ComputedAttr> computed;
  auto prefixed = [&](const Qualified& q) -> std::string {
    if (!have_join) return q.name;
    if (q.alias == right->alias) return right->alias + "." + q.name;
    return left.alias + "." + q.name;
  };
  for (const SelectItem& item : items) {
    if (item.kind == SelectItem::Kind::kDifference) {
      computed.push_back(ComputedAttr::Difference(
          item.output, AttrRef::Left(prefixed(item.a)),
          AttrRef::Left(prefixed(item.b))));
    } else if (item.kind == SelectItem::Kind::kDistance) {
      computed.push_back(ComputedAttr::Distance2(
          item.output, AttrRef::Left(prefixed(item.x1)),
          AttrRef::Left(prefixed(item.y1)),
          AttrRef::Left(prefixed(item.x2)),
          AttrRef::Left(prefixed(item.y2))));
    }
  }
  if (!computed.empty()) {
    MapSpec map;
    map.outputs = std::move(computed);
    map.keep_inputs = true;
    const QuerySpec::NodeId mnode =
        spec_->AddMap("select-exprs", current, map);
    current = QuerySpec::Input::Node(mnode);
  }

  // Aggregate select items -> aggregate node(s). Implicit grouping: a
  // plain item alongside an aggregate implies GROUP BY on it (the paper's
  // MACD sub-selects list "symbol, avg(price)" without GROUP BY).
  bool has_plain = false;
  for (const SelectItem& item : items) {
    if (item.kind == SelectItem::Kind::kPlain) has_plain = true;
  }
  for (const SelectItem& item : items) {
    if (item.kind != SelectItem::Kind::kAggregate) continue;
    if (left.window_size <= 0.0) {
      return Status::InvalidArgument(
          "aggregate '" + item.output +
          "' requires a window on its source ([size W advance S])");
    }
    AggregateSpec agg;
    agg.fn = item.fn;
    agg.attribute = prefixed(item.a);
    agg.output_attribute = item.output;
    agg.window_seconds = left.window_size;
    agg.slide_seconds = left.window_slide > 0.0 ? left.window_slide
                                                : left.window_size;
    agg.per_key = !group_by.empty() || has_plain;
    const QuerySpec::NodeId anode =
        spec_->AddAggregate(item.fn == AggFn::kAvg ? "avg" : "agg",
                            current, agg);
    current = QuerySpec::Input::Node(anode);
  }

  if (having.has_value()) {
    FilterSpec filter;
    filter.predicate = std::move(*having);
    const QuerySpec::NodeId hnode =
        spec_->AddFilter("having", current, filter);
    current = QuerySpec::Input::Node(hnode);
  }

  // SELECT DISTINCT: per-epoch key dedup at the statement tail — one
  // result per key per epoch, timestamped at the first qualifying
  // instant. The epoch length comes from the source's EPOCH clause.
  if (distinct) {
    if (left.epoch_seconds <= 0.0) {
      return Status::InvalidArgument(
          "SELECT DISTINCT requires EPOCH on its source (e.g. FROM s "
          "EPOCH 1)");
    }
    DistinctSpec dspec;
    dspec.epoch_seconds = left.epoch_seconds;
    current = QuerySpec::Input::Node(
        spec_->AddDistinct("distinct", current, dspec));
  }

  if (current.is_stream) {
    // A bare "SELECT * FROM s": materialize a pass-through filter so the
    // statement owns a node.
    FilterSpec filter;
    filter.predicate = Predicate::And({});
    current = QuerySpec::Input::Node(
        spec_->AddFilter("passthrough", current, filter));
  }

  // Record what this statement exposes for enclosing statements: plain
  // and computed select-item names, aggregate outputs, and the key
  // attribute flowing through (the left source's key survives filters,
  // maps and per-key aggregates; joins expose the composite pair key).
  Source info;
  for (const SelectItem& item : items) {
    if (item.kind == SelectItem::Kind::kStar) continue;
    info.attributes.insert(item.output);
  }
  info.key_attribute = left.key_attribute;
  node_info_[current.node] = std::move(info);
  return current.node;
}

}  // namespace

Result<QuerySpec::NodeId> QueryParser::Parse(QuerySpec* spec,
                                             std::string_view sql) {
  PULSE_CHECK(spec != nullptr);
  PULSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(spec, std::move(tokens));
  PULSE_ASSIGN_OR_RETURN(QuerySpec::NodeId node, parser.ParseStatement());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after statement");
  }
  return node;
}

Result<Predicate> QueryParser::ParsePredicate(std::string_view text,
                                              std::string_view left_alias,
                                              std::string_view right_alias) {
  PULSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(nullptr, std::move(tokens));
  PULSE_ASSIGN_OR_RETURN(Predicate p,
                         parser.ParsePredicateOnly(left_alias, right_alias));
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after predicate");
  }
  return p;
}

Result<ModelClause> QueryParser::ParseModel(std::string_view text,
                                            std::string_view alias) {
  PULSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  // Reuse the statement-level model grammar by parsing "attr = poly".
  // (Duplicated lightweight logic: lhs '=' coeff (time)? ('+' ...)*.)
  size_t pos = 0;
  auto next = [&]() -> const Token& { return tokens[pos]; };
  auto advance = [&]() -> const Token& { return tokens[pos++]; };
  auto expect_qualified = [&]() -> Result<std::string> {
    if (next().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected identifier in model");
    }
    std::string first = advance().text;
    if (next().kind == TokenKind::kSymbol && next().text == ".") {
      advance();
      if (next().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected attribute after '.'");
      }
      if (!alias.empty() && first != alias) {
        return Status::InvalidArgument("unknown alias '" + first +
                                       "' in model");
      }
      return advance().text;
    }
    return first;
  };
  PULSE_ASSIGN_OR_RETURN(std::string lhs, expect_qualified());
  if (next().kind != TokenKind::kSymbol || next().text != "=") {
    return Status::InvalidArgument("expected '=' in model clause");
  }
  advance();
  std::map<size_t, std::string> by_power;
  while (true) {
    PULSE_ASSIGN_OR_RETURN(std::string coeff, expect_qualified());
    size_t power = 0;
    if (next().kind == TokenKind::kSymbol && next().text == "*") advance();
    if (next().kind == TokenKind::kIdent && next().text == "t") {
      advance();
      power = 1;
      if (next().kind == TokenKind::kSymbol && next().text == "^") {
        advance();
        if (next().kind != TokenKind::kNumber) {
          return Status::InvalidArgument("expected exponent");
        }
        power = static_cast<size_t>(advance().number);
      }
    } else if (next().kind == TokenKind::kIdent &&
               next().text.size() > 1 && next().text[0] == 't' &&
               std::isdigit(static_cast<unsigned char>(next().text[1]))) {
      power = static_cast<size_t>(std::stoul(advance().text.substr(1)));
    }
    if (by_power.count(power) > 0) {
      return Status::InvalidArgument("duplicate coefficient for t^" +
                                     std::to_string(power));
    }
    by_power[power] = coeff;
    if (next().kind == TokenKind::kSymbol && next().text == "+") {
      advance();
      continue;
    }
    break;
  }
  if (next().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing input after model clause");
  }
  ModelClause clause;
  clause.modeled_attribute = lhs;
  for (size_t p = 0; p < by_power.size(); ++p) {
    auto it = by_power.find(p);
    if (it == by_power.end()) {
      return Status::InvalidArgument("missing coefficient for t^" +
                                     std::to_string(p));
    }
    clause.coefficient_fields.push_back(it->second);
  }
  return clause;
}

}  // namespace pulse
