#ifndef PULSE_SERVE_BATCHER_H_
#define PULSE_SERVE_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace pulse {
namespace serve {

/// Micro-batcher tuning. The batch target is the number of tuples the
/// estimated arrival rate delivers within `target_batch_ns`, clamped to
/// [min_batch, max_batch] — fast streams amortize segment construction
/// over large batches, slow streams keep per-tuple latency (a tuple
/// never waits for a batch to fill: the worker batches only what is
/// already queued).
struct BatcherOptions {
  size_t min_batch = 1;
  size_t max_batch = 256;
  /// Coalescing horizon: how much arrival time one batch may span.
  uint64_t target_batch_ns = 2'000'000;  // 2 ms
  /// EWMA smoothing for the inter-arrival estimate, in (0, 1]; higher
  /// adapts faster.
  double ewma_alpha = 0.125;
};

/// Adaptive per-stream micro-batcher: estimates the tuple arrival rate
/// with an EWMA over inter-arrival gaps and derives the batch-size
/// target above. Thread contract: RecordArrival is called by the
/// session reader (producer), TargetBatchSize by the worker (consumer);
/// the estimate crosses threads through one relaxed atomic — staleness
/// only makes a batch slightly smaller or larger, never incorrect
/// (batch boundaries cannot change query answers, see docs/SERVING.md).
class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherOptions options);

  /// Notes one arrival at `now_ns` (monotonic clock).
  void RecordArrival(uint64_t now_ns);

  /// Current batch-size target in [min_batch, max_batch].
  size_t TargetBatchSize() const;

  /// Estimated arrival rate (tuples/s); 0 until two arrivals were seen.
  double ArrivalRatePerSec() const;

 private:
  BatcherOptions options_;
  // Producer-local state (reader thread only).
  uint64_t last_arrival_ns_ = 0;
  bool have_last_ = false;
  double ewma_gap_ns_ = 0.0;
  // Estimate published to the consumer (bits of the EWMA gap).
  std::atomic<uint64_t> published_gap_bits_{0};
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_BATCHER_H_
