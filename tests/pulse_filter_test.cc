#include "core/operators/filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/validation/splits.h"

namespace pulse {
namespace {

Segment LinearSegment(Key key, double lo, double hi, double c0, double c1,
                      const std::string& attr = "x") {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute(attr, Polynomial({c0, c1}));
  return s;
}

Predicate LessThan(const std::string& attr, double c) {
  return Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left(attr), CmpOp::kLt, Operand::Constant(c)));
}

TEST(PulseFilter, PassesMatchingSubrange) {
  // x(t) = t on [0, 10); filter x < 5 -> output valid on [0, 5).
  PulseFilter f("f", LessThan("x", 5.0));
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.0);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 5.0);
  // Attributes pass through.
  EXPECT_TRUE(out[0].has_attribute("x"));
  EXPECT_EQ(out[0].key, 1);
  EXPECT_EQ(f.metrics().segments_in, 1u);
  EXPECT_EQ(f.metrics().segments_out, 1u);
  EXPECT_EQ(f.metrics().solves, 1u);
}

TEST(PulseFilter, NoOutputWhenPredicateNeverHolds) {
  PulseFilter f("f", LessThan("x", -100.0));
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(PulseFilter, WholeSegmentWhenAlwaysHolds) {
  PulseFilter f("f", LessThan("x", 100.0));
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, LinearSegment(1, 2.0, 8.0, 0.0, 1.0), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 2.0);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 8.0);
}

TEST(PulseFilter, EqualityYieldsPointSegment) {
  // Paper Section III-C: equality comparisons reduce temporal validity to
  // a single point.
  Predicate eq = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kEq, Operand::Constant(5.0)));
  PulseFilter f("f", eq);
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].range.IsPoint());
  EXPECT_NEAR(out[0].range.lo, 5.0, 1e-9);
}

TEST(PulseFilter, DisjunctionProducesMultipleRanges) {
  Predicate p = Predicate::Or({LessThan("x", 2.0),
                               Predicate::Not(LessThan("x", 8.0))});
  PulseFilter f("f", p);
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out)
                  .ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].range.hi, out[1].range.lo);
}

TEST(PulseFilter, QuadraticPredicate) {
  // x(t) = (t-5)^2: x < 4 on (3, 7).
  Segment s(1, Interval::ClosedOpen(0.0, 10.0));
  s.id = NextSegmentId();
  s.set_attribute("x", Polynomial({25.0, -10.0, 1.0}));
  PulseFilter f("f", LessThan("x", 4.0));
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, s, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].range.lo, 3.0, 1e-8);
  EXPECT_NEAR(out[0].range.hi, 7.0, 1e-8);
}

TEST(PulseFilter, MissingAttributeFails) {
  PulseFilter f("f", LessThan("zzz", 1.0));
  SegmentBatch out;
  EXPECT_FALSE(
      f.Process(0, LinearSegment(1, 0.0, 1.0, 0.0, 1.0), &out).ok());
}

TEST(PulseFilter, LineageRecordsCause) {
  PulseFilter f("f", LessThan("x", 5.0));
  Segment in = LinearSegment(9, 0.0, 10.0, 0.0, 1.0);
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, in, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  const std::vector<LineageEntry>* causes = f.lineage().Lookup(out[0].id);
  ASSERT_NE(causes, nullptr);
  ASSERT_EQ(causes->size(), 1u);
  EXPECT_EQ((*causes)[0].input.key, 9);
  EXPECT_EQ((*causes)[0].input.id, in.id);
}

TEST(PulseFilter, ComputeSlackDistanceToFiring) {
  // x(t) = t on [0, 4): predicate x < 5 never fires... it always fires.
  // Use x > 5: difference x - 5 has |min| = 1 at t = 4 (domain edge).
  Predicate gt = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kGt, Operand::Constant(5.0)));
  PulseFilter f("f", gt);
  Result<double> slack =
      f.ComputeSlack(LinearSegment(1, 0.0, 4.0, 0.0, 1.0));
  ASSERT_TRUE(slack.ok());
  EXPECT_NEAR(*slack, 1.0, 1e-9);
}

TEST(PulseFilter, SlackZeroForNonConjunctive) {
  Predicate p = Predicate::Or({LessThan("x", 1.0), LessThan("x", 2.0)});
  PulseFilter f("f", p);
  Result<double> slack =
      f.ComputeSlack(LinearSegment(1, 0.0, 1.0, 10.0, 0.0));
  ASSERT_TRUE(slack.ok());
  EXPECT_DOUBLE_EQ(*slack, 0.0);
}

TEST(PulseFilter, InvertBoundSplitsAcrossDependencies) {
  PulseFilter f("f", LessThan("x", 5.0));
  Segment in = LinearSegment(3, 0.0, 10.0, 0.0, 1.0);
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, in, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      f.InvertBound(out[0], "x", 0.1, split);
  ASSERT_TRUE(allocs.ok());
  // Single dependency set {x}: the full margin lands on input x of key 3.
  ASSERT_EQ(allocs->size(), 1u);
  EXPECT_EQ((*allocs)[0].key, 3);
  EXPECT_EQ((*allocs)[0].attribute, "x");
  EXPECT_NEAR((*allocs)[0].margin, 0.1, 1e-12);
}

TEST(PulseFilter, InvertBoundSeparateInferenceAttribute) {
  // Filter on y, bound requested on x: the margin splits across {x, y}.
  PulseFilter f("f", LessThan("y", 5.0));
  Segment in = LinearSegment(3, 0.0, 10.0, 0.0, 1.0);
  in.set_attribute("y", Polynomial({0.0, 0.5}));
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, in, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      f.InvertBound(out[0], "x", 0.2, split);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 2u);
  double total = 0.0;
  for (const AllocatedBound& ab : *allocs) {
    total += ab.margin;
    EXPECT_NEAR(ab.margin, 0.1, 1e-12);
  }
  EXPECT_NEAR(total, 0.2, 1e-12);
}

TEST(PulseFilter, InvertBoundUnknownOutputFails) {
  PulseFilter f("f", LessThan("x", 5.0));
  Segment fake(1, Interval::ClosedOpen(0.0, 1.0));
  fake.id = 999999;
  EquiSplit split;
  EXPECT_FALSE(f.InvertBound(fake, "x", 0.1, split).ok());
}

// Sweep: filter output exactly matches the predicate at sampled times for
// several slopes.
class FilterAgreementSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterAgreementSweep, OutputRangesMatchPointwiseTruth) {
  const double slope = GetParam();
  PulseFilter f("f", LessThan("x", 3.0));
  Segment in = LinearSegment(1, 0.0, 10.0, -2.0, slope);
  SegmentBatch out;
  ASSERT_TRUE(f.Process(0, in, &out).ok());
  IntervalSet covered;
  for (const Segment& s : out) covered.Add(s.range);
  const Polynomial x = *in.attribute("x");
  for (double t = 0.05; t < 10.0; t += 0.07) {
    EXPECT_EQ(covered.Contains(t), x.Evaluate(t) < 3.0)
        << "slope=" << slope << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Slopes, FilterAgreementSweep,
                         ::testing::Values(-2.0, -0.5, 0.0, 0.4, 1.0, 3.0));

}  // namespace
}  // namespace pulse
