#ifndef PULSE_UTIL_RNG_H_
#define PULSE_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pulse {

/// Deterministic random number source shared by the workload generators.
/// A thin wrapper over std::mt19937_64 so every generator takes an explicit
/// seed and experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed inter-arrival with the given rate (1/mean).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed integers over {0, ..., n-1} with skew parameter s.
/// Used to model skewed key popularity (e.g. trade volume per NYSE symbol).
/// Sampling is O(log n) by inverse-CDF binary search over precomputed
/// cumulative weights.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace pulse

#endif  // PULSE_UTIL_RNG_H_
