#include "model/segment.h"

#include <gtest/gtest.h>

namespace pulse {
namespace {

Segment MakeSeg(Key key, double lo, double hi, double c0, double c1) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.set_attribute("x", Polynomial({c0, c1}));
  return s;
}

TEST(Segment, AttributeAccess) {
  Segment s = MakeSeg(7, 0.0, 1.0, 1.0, 2.0);
  EXPECT_TRUE(s.has_attribute("x"));
  EXPECT_FALSE(s.has_attribute("y"));
  Result<Polynomial> p = s.attribute("x");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->Evaluate(0.5), 2.0);
  EXPECT_FALSE(s.attribute("missing").ok());
  EXPECT_EQ(s.attribute("missing").status().code(), StatusCode::kNotFound);
}

TEST(Segment, EvaluateAttributeExtrapolates) {
  // Predictive use: evaluation beyond the validity range is allowed.
  Segment s = MakeSeg(1, 0.0, 1.0, 0.0, 10.0);
  Result<double> v = s.EvaluateAttribute("x", 2.0);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 20.0);
}

TEST(Segment, ClipTo) {
  Segment s = MakeSeg(1, 0.0, 10.0, 0.0, 1.0);
  Segment c = s.ClipTo(Interval::ClosedOpen(5.0, 20.0));
  EXPECT_DOUBLE_EQ(c.range.lo, 5.0);
  EXPECT_DOUBLE_EQ(c.range.hi, 10.0);
  // Attributes survive clipping unchanged.
  EXPECT_DOUBLE_EQ(c.attribute("x")->Evaluate(7.0), 7.0);
  Segment empty = s.ClipTo(Interval::ClosedOpen(20.0, 30.0));
  EXPECT_TRUE(empty.range.IsEmpty());
}

TEST(Segment, OverlapsInTime) {
  Segment a = MakeSeg(1, 0.0, 5.0, 0, 0);
  Segment b = MakeSeg(2, 4.0, 8.0, 0, 0);
  Segment c = MakeSeg(3, 5.0, 8.0, 0, 0);
  EXPECT_TRUE(a.OverlapsInTime(b));
  EXPECT_FALSE(a.OverlapsInTime(c));  // [0,5) and [5,8) share no point
}

TEST(Segment, ToStringMentionsKeyAndModel) {
  Segment s = MakeSeg(42, 0.0, 1.0, 1.0, 2.0);
  s.unmodeled["flag"] = 3.0;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("key=42"), std::string::npos);
  EXPECT_NE(str.find("x(t)="), std::string::npos);
  EXPECT_NE(str.find("flag"), std::string::npos);
}

TEST(ApplySegmentUpdate, SuccessorOverridesOverlap) {
  // Paper Section II-B: for two temporally overlapping segments the
  // successor acts as an update for the overlap.
  std::vector<Segment> timeline;
  ApplySegmentUpdate(&timeline, MakeSeg(1, 0.0, 10.0, 0.0, 1.0));
  ApplySegmentUpdate(&timeline, MakeSeg(1, 5.0, 15.0, 100.0, 0.0));
  ASSERT_EQ(timeline.size(), 2u);
  // Predecessor truncated to [0, 5).
  EXPECT_DOUBLE_EQ(timeline[0].range.lo, 0.0);
  EXPECT_DOUBLE_EQ(timeline[0].range.hi, 5.0);
  EXPECT_DOUBLE_EQ(timeline[1].range.lo, 5.0);
  EXPECT_DOUBLE_EQ(timeline[1].range.hi, 15.0);
}

TEST(ApplySegmentUpdate, FullyCoveredSegmentDropped) {
  std::vector<Segment> timeline;
  ApplySegmentUpdate(&timeline, MakeSeg(1, 2.0, 4.0, 0.0, 0.0));
  ApplySegmentUpdate(&timeline, MakeSeg(1, 0.0, 10.0, 1.0, 0.0));
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_DOUBLE_EQ(timeline[0].range.lo, 0.0);
  EXPECT_DOUBLE_EQ(timeline[0].range.hi, 10.0);
}

TEST(ApplySegmentUpdate, InteriorUpdateSplitsPredecessor) {
  std::vector<Segment> timeline;
  ApplySegmentUpdate(&timeline, MakeSeg(1, 0.0, 10.0, 0.0, 1.0));
  ApplySegmentUpdate(&timeline, MakeSeg(1, 4.0, 6.0, 99.0, 0.0));
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_DOUBLE_EQ(timeline[0].range.hi, 4.0);
  EXPECT_DOUBLE_EQ(timeline[1].range.lo, 4.0);
  EXPECT_DOUBLE_EQ(timeline[1].range.hi, 6.0);
  EXPECT_DOUBLE_EQ(timeline[2].range.lo, 6.0);
  EXPECT_DOUBLE_EQ(timeline[2].range.hi, 10.0);
  // Timeline stays sorted and tiles without gaps.
  for (size_t i = 0; i + 1 < timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(timeline[i].range.hi, timeline[i + 1].range.lo);
  }
}

TEST(ApplySegmentUpdate, NonOverlappingAppends) {
  std::vector<Segment> timeline;
  ApplySegmentUpdate(&timeline, MakeSeg(1, 0.0, 1.0, 0.0, 0.0));
  ApplySegmentUpdate(&timeline, MakeSeg(1, 1.0, 2.0, 0.0, 0.0));
  EXPECT_EQ(timeline.size(), 2u);
}

TEST(ApplySegmentUpdate, EmptyIncomingIgnored) {
  std::vector<Segment> timeline;
  ApplySegmentUpdate(&timeline, MakeSeg(1, 5.0, 5.0, 0.0, 0.0));
  EXPECT_TRUE(timeline.empty());
}

}  // namespace
}  // namespace pulse
