#include "model/segmentation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

// A piecewise-linear signal with breakpoints every `period` samples.
std::vector<Sample> PiecewiseLinearSignal(size_t n, size_t period,
                                          double dt = 0.1) {
  std::vector<Sample> out;
  double value = 0.0;
  double slope = 1.0;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && i % period == 0) {
      slope = -slope * 1.5;  // sharp slope change
    }
    value += slope * dt;
    out.push_back(Sample{static_cast<double>(i) * dt, value});
  }
  return out;
}

TEST(SlidingWindowSegmenter, SingleLineNeverBreaks) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.01;
  SlidingWindowSegmenter seg(opts);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_FALSE(
        seg.Add(Sample{static_cast<double>(i), 2.0 * i + 1.0}).has_value());
  }
  auto last = seg.Flush();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->num_points, 500u);
  EXPECT_LE(last->max_error, opts.max_error);
}

TEST(SlidingWindowSegmenter, BreaksAtSlopeChanges) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.05;
  std::vector<FittedSegment> segs = SlidingWindowSegmentation(
      PiecewiseLinearSignal(1000, 100), opts);
  // ~10 true pieces; allow some slack either way.
  EXPECT_GE(segs.size(), 8u);
  EXPECT_LE(segs.size(), 20u);
  for (const FittedSegment& s : segs) {
    EXPECT_LE(s.max_error, opts.max_error * 1.0001) << "bound violated";
  }
}

TEST(SlidingWindowSegmenter, SegmentsTileTime) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.05;
  std::vector<FittedSegment> segs = SlidingWindowSegmentation(
      PiecewiseLinearSignal(600, 75), opts);
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_NEAR(segs[i].range.hi, segs[i + 1].range.lo, 1e-6)
        << "gap between pieces " << i << " and " << i + 1;
  }
}

TEST(SlidingWindowSegmenter, MaxPointsCapForcesBreaks) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 1e9;  // never break on error
  opts.max_points_per_segment = 50;
  std::vector<FittedSegment> segs = SlidingWindowSegmentation(
      PiecewiseLinearSignal(500, 1000000), opts);
  ASSERT_GE(segs.size(), 9u);
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_LE(segs[i].num_points, 50u);
  }
}

TEST(BottomUpSegmentation, RespectsErrorBound) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.05;
  std::vector<FittedSegment> segs =
      BottomUpSegmentation(PiecewiseLinearSignal(400, 50), opts);
  EXPECT_GE(segs.size(), 6u);
  for (const FittedSegment& s : segs) {
    EXPECT_LE(s.max_error, opts.max_error * 1.0001);
  }
  // Sum of represented points equals the input size.
  size_t total = 0;
  for (const FittedSegment& s : segs) total += s.num_points;
  EXPECT_EQ(total, 400u);
}

TEST(BottomUpSegmentation, MergesCoherentData) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.5;
  // A single line: everything merges into one segment.
  std::vector<Sample> line;
  for (size_t i = 0; i < 64; ++i) {
    line.push_back(Sample{static_cast<double>(i), 3.0 * i});
  }
  std::vector<FittedSegment> segs = BottomUpSegmentation(line, opts);
  EXPECT_EQ(segs.size(), 1u);
}

TEST(SwabSegmentation, ProducesBoundedErrorPieces) {
  SegmentationOptions opts;
  opts.degree = 1;
  opts.max_error = 0.05;
  std::vector<FittedSegment> segs =
      SwabSegmentation(PiecewiseLinearSignal(800, 100), opts, 64);
  EXPECT_GE(segs.size(), 6u);
  size_t total = 0;
  for (const FittedSegment& s : segs) total += s.num_points;
  EXPECT_EQ(total, 800u);
}

TEST(Segmentation, EmptyInput) {
  SegmentationOptions opts;
  EXPECT_TRUE(SlidingWindowSegmentation({}, opts).empty());
  EXPECT_TRUE(BottomUpSegmentation({}, opts).empty());
  EXPECT_TRUE(SwabSegmentation({}, opts).empty());
}

// Compression sweep: tighter bounds produce more segments.
class ErrorBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErrorBoundSweep, SegmentCountDecreasesWithLooserBound) {
  SegmentationOptions tight;
  tight.degree = 1;
  tight.max_error = GetParam();
  SegmentationOptions loose = tight;
  loose.max_error = GetParam() * 10.0;
  // Noisy sine wave: error bound controls compression.
  std::vector<Sample> wave;
  for (size_t i = 0; i < 500; ++i) {
    const double t = i * 0.05;
    wave.push_back(Sample{t, std::sin(t)});
  }
  const size_t tight_count = SlidingWindowSegmentation(wave, tight).size();
  const size_t loose_count = SlidingWindowSegmentation(wave, loose).size();
  EXPECT_GE(tight_count, loose_count);
  EXPECT_GE(tight_count, 1u);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ErrorBoundSweep,
                         ::testing::Values(0.001, 0.01, 0.05));

}  // namespace
}  // namespace pulse
