file(REMOVE_RECURSE
  "CMakeFiles/pulse_cli.dir/pulse_cli.cpp.o"
  "CMakeFiles/pulse_cli.dir/pulse_cli.cpp.o.d"
  "pulse_cli"
  "pulse_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
