#include "model/segment_index.h"

#include <gtest/gtest.h>

#include "core/operators/join.h"

namespace pulse {
namespace {

Segment Seg(Key key, double lo, double hi, double value = 0.0) {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute("x", Polynomial({value}));
  return s;
}

std::vector<const Segment*> Query(const SegmentIndex& index, double lo,
                                  double hi) {
  std::vector<const Segment*> out;
  index.QueryOverlaps(Interval::ClosedOpen(lo, hi), &out);
  return out;
}

TEST(SegmentIndex, EmptyIndex) {
  SegmentIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(Query(index, 0.0, 100.0).empty());
}

TEST(SegmentIndex, BasicOverlapQueries) {
  SegmentIndex index;
  index.Insert(Seg(1, 0.0, 2.0));
  index.Insert(Seg(2, 2.0, 4.0));
  index.Insert(Seg(3, 4.0, 6.0));
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(Query(index, 0.5, 1.5).size(), 1u);
  EXPECT_EQ(Query(index, 1.5, 4.5).size(), 3u);
  EXPECT_TRUE(Query(index, 6.0, 9.0).empty());
  // Half-open semantics: [2,4) does not overlap [0,2).
  std::vector<const Segment*> out;
  index.QueryOverlaps(Interval::ClosedOpen(2.0, 3.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->key, 2);
}

TEST(SegmentIndex, NearOrderedInsertions) {
  SegmentIndex index;
  index.Insert(Seg(1, 10.0, 12.0));
  index.Insert(Seg(2, 9.5, 11.0));  // slightly out of order
  index.Insert(Seg(3, 11.0, 13.0));
  EXPECT_EQ(Query(index, 9.6, 9.8).size(), 1u);
  EXPECT_EQ(Query(index, 10.5, 11.5).size(), 3u);
}

TEST(SegmentIndex, LongSegmentAmongShortOnes) {
  // The running-max augmentation must not let a long early segment be
  // skipped by the lower-bound search.
  SegmentIndex index;
  index.Insert(Seg(1, 0.0, 100.0));  // long
  for (int i = 1; i < 50; ++i) {
    index.Insert(Seg(i + 1, i * 1.0, i * 1.0 + 0.5));
  }
  std::vector<const Segment*> out = Query(index, 80.0, 81.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->key, 1);
}

TEST(SegmentIndex, KeyedQueries) {
  SegmentIndex index;
  index.Insert(Seg(1, 0.0, 10.0));
  index.Insert(Seg(2, 0.0, 10.0));
  index.Insert(Seg(1, 10.0, 20.0));
  std::vector<const Segment*> out;
  index.QueryOverlapsWithKey(Interval::ClosedOpen(5.0, 15.0), 1, &out);
  ASSERT_EQ(out.size(), 2u);
  for (const Segment* s : out) EXPECT_EQ(s->key, 1);
}

TEST(SegmentIndex, ExpireBefore) {
  SegmentIndex index;
  for (int i = 0; i < 20; ++i) {
    index.Insert(Seg(i, i * 1.0, i * 1.0 + 1.0));
  }
  index.ExpireBefore(10.0);
  EXPECT_LE(index.size(), 11u);
  EXPECT_TRUE(Query(index, 0.0, 8.0).empty());
  EXPECT_FALSE(Query(index, 15.0, 16.0).empty());
}

TEST(SegmentIndex, ProbeCountersTrackSelectivity) {
  SegmentIndex index;
  for (int i = 0; i < 100; ++i) {
    index.Insert(Seg(i, i * 1.0, i * 1.0 + 1.0));
  }
  (void)Query(index, 50.0, 51.0);
  // The index should examine only a neighbourhood, not all 100 entries.
  EXPECT_LT(index.probes_examined(), 10u);
  EXPECT_GE(index.probes_matched(), 1u);
}

// Property sweep: indexed queries return exactly the brute-force set.
class SegmentIndexSweep : public ::testing::TestWithParam<int> {};

TEST_P(SegmentIndexSweep, MatchesBruteForce) {
  const int seed = GetParam();
  SegmentIndex index;
  std::vector<Segment> all;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    // Deterministic pseudo-random lengths and small reorderings.
    const double len = 0.5 + ((i * seed) % 7) * 0.7;
    const double jitter = ((i * 31 + seed) % 3) * 0.2 - 0.2;
    Segment s = Seg(i % 5, t + jitter, t + jitter + len);
    all.push_back(s);
    index.Insert(s);
    t += 0.8;
  }
  for (double q = 0.0; q < 170.0; q += 7.3) {
    const Interval probe = Interval::ClosedOpen(q, q + 2.0);
    std::vector<const Segment*> got;
    index.QueryOverlaps(probe, &got);
    size_t expected = 0;
    for (const Segment& s : all) {
      if (s.range.Intersects(probe)) ++expected;
    }
    EXPECT_EQ(got.size(), expected) << "probe at " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentIndexSweep,
                         ::testing::Values(1, 2, 3, 5, 11));

TEST(PulseJoinWithIndex, SameResultsAsScanJoin) {
  Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt,
      Operand::Attribute(AttrRef::Right("x"))));
  PulseJoinOptions scan_opts;
  scan_opts.window_seconds = 50.0;
  PulseJoinOptions index_opts = scan_opts;
  index_opts.use_segment_index = true;
  PulseJoin scan("scan", pred, scan_opts);
  PulseJoin indexed("indexed", pred, index_opts);

  SegmentBatch scan_out, index_out;
  for (int i = 0; i < 40; ++i) {
    Segment l(1, Interval::ClosedOpen(i * 1.0, i * 1.0 + 2.0));
    l.id = NextSegmentId();
    l.set_attribute("x", Polynomial({static_cast<double>(i % 7)}));
    Segment r(2, Interval::ClosedOpen(i * 1.0 + 0.5, i * 1.0 + 2.5));
    r.id = NextSegmentId();
    r.set_attribute("x", Polynomial({static_cast<double>((i + 3) % 7)}));
    ASSERT_TRUE(scan.Process(0, l, &scan_out).ok());
    ASSERT_TRUE(scan.Process(1, r, &scan_out).ok());
    ASSERT_TRUE(indexed.Process(0, l, &index_out).ok());
    ASSERT_TRUE(indexed.Process(1, r, &index_out).ok());
  }
  ASSERT_EQ(scan_out.size(), index_out.size());
  for (size_t i = 0; i < scan_out.size(); ++i) {
    EXPECT_EQ(scan_out[i].range.ToString(),
              index_out[i].range.ToString());
    EXPECT_EQ(scan_out[i].key, index_out[i].key);
  }
}

TEST(PulseJoinWithIndex, MatchKeysUsesKeyedProbe) {
  Predicate pred = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLe,
      Operand::Attribute(AttrRef::Right("x"))));
  PulseJoinOptions opts;
  opts.window_seconds = 100.0;
  opts.match_keys = true;
  opts.use_segment_index = true;
  PulseJoin join("j", pred, opts);
  SegmentBatch out;
  ASSERT_TRUE(join.Process(1, Seg(1, 0.0, 10.0, 5.0), &out).ok());
  ASSERT_TRUE(join.Process(1, Seg(2, 0.0, 10.0, 5.0), &out).ok());
  ASSERT_TRUE(join.Process(0, Seg(1, 0.0, 10.0, 1.0), &out).ok());
  // Only the same-key partner matches.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, CombineKeys(1, 1));
}

}  // namespace
}  // namespace pulse
