#include "core/operators/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

Segment LinearSegment(Key key, double lo, double hi, double c0, double c1,
                      const std::string& attr = "v") {
  Segment s(key, Interval::ClosedOpen(lo, hi));
  s.id = NextSegmentId();
  s.set_attribute(attr, Polynomial({c0, c1}));
  return s;
}

PulseAggregateOptions MinOpts(double window = 100.0) {
  PulseAggregateOptions o;
  o.fn = AggFn::kMin;
  o.input_attribute = "v";
  o.output_attribute = "agg";
  o.window_seconds = window;
  o.slide_seconds = 1.0;
  return o;
}

PulseAggregateOptions AvgOpts(double window, double slide = 1.0) {
  PulseAggregateOptions o;
  o.fn = AggFn::kAvg;
  o.input_attribute = "v";
  o.output_attribute = "agg";
  o.window_seconds = window;
  o.slide_seconds = slide;
  return o;
}

TEST(PulseMinMaxAggregate, FirstSegmentDefinesEnvelope) {
  PulseMinMaxAggregate agg("a", MinOpts());
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 5.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 0.0);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 10.0);
  EXPECT_DOUBLE_EQ(out[0].attribute("agg")->Evaluate(3.0), 5.0);
  EXPECT_EQ(out[0].key, 0);
  EXPECT_DOUBLE_EQ(out[0].unmodeled.at("arg_key"), 1.0);
}

TEST(PulseMinMaxAggregate, HigherCandidateProducesNothing) {
  PulseMinMaxAggregate agg("a", MinOpts());
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 5.0, 0.0), &out).ok());
  out.clear();
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(2, 0.0, 10.0, 8.0, 0.0), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(PulseMinMaxAggregate, CrossingCandidateEmitsWinningRange) {
  // Envelope 10 - t; candidate t wins for t < 5.
  PulseMinMaxAggregate agg("a", MinOpts());
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 10.0, -1.0), &out).ok());
  out.clear();
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(2, 0.0, 10.0, 0.0, 1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].range.hi, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[0].unmodeled.at("arg_key"), 2.0);
  // Envelope state reflects the pointwise min.
  EXPECT_NEAR(*agg.state().Evaluate(2.0), 2.0, 1e-9);
  EXPECT_NEAR(*agg.state().Evaluate(8.0), 2.0, 1e-9);
}

TEST(PulseMinMaxAggregate, MaxAggregateKeepsUpperEnvelope) {
  PulseAggregateOptions o = MinOpts();
  o.fn = AggFn::kMax;
  PulseMinMaxAggregate agg("a", o);
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out).ok());
  out.clear();
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(2, 0.0, 10.0, 10.0, -1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // 10 - t beats t for t < 5.
  EXPECT_NEAR(out[0].range.hi, 5.0, 1e-9);
  EXPECT_NEAR(*agg.state().Evaluate(8.0), 8.0, 1e-9);
}

TEST(PulseMinMaxAggregate, WindowExpiresEnvelope) {
  PulseMinMaxAggregate agg("a", MinOpts(2.0));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 1.0, 5.0, 0.0), &out).ok());
  out.clear();
  // Arrives at t=10 with window 2: old envelope is expired; the higher
  // candidate now owns its full range.
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(2, 10.0, 11.0, 50.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 10.0);
}

TEST(PulseMinMaxAggregate, ComputeSlackAgainstEnvelope) {
  PulseMinMaxAggregate agg("a", MinOpts());
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 5.0, 0.0), &out).ok());
  // Candidate at constant 7: distance 2 from updating the min envelope.
  Result<double> slack =
      agg.ComputeSlack(LinearSegment(2, 0.0, 10.0, 7.0, 0.0));
  ASSERT_TRUE(slack.ok());
  EXPECT_NEAR(*slack, 2.0, 1e-9);
}

TEST(PulseMinMaxAggregate, InvertBoundPassesMarginThrough) {
  PulseMinMaxAggregate agg("a", MinOpts());
  SegmentBatch out;
  Segment in = LinearSegment(1, 0.0, 10.0, 5.0, 0.0);
  ASSERT_TRUE(agg.Process(0, in, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      agg.InvertBound(out[0], "agg", 0.25, split);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 1u);
  EXPECT_EQ((*allocs)[0].key, 1);
  EXPECT_EQ((*allocs)[0].attribute, "v");
  EXPECT_NEAR((*allocs)[0].margin, 0.25, 1e-12);
  EXPECT_FALSE(agg.InvertBound(out[0], "bogus", 0.1, split).ok());
}

TEST(PulseSumAvgAggregate, SingleSegmentWindowFunction) {
  // v(t) = t on [0, 10), window 2: for closes t in [2, 10),
  // avg = (1/2) * integral_{t-2}^{t} u du = t - 1.
  PulseSumAvgAggregate agg("a", AvgOpts(2.0));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 0.0, 1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].range.lo, 2.0);
  EXPECT_DOUBLE_EQ(out[0].range.hi, 10.0);
  const Polynomial wf = *out[0].attribute("agg");
  for (double t = 2.0; t < 10.0; t += 0.5) {
    EXPECT_NEAR(wf.Evaluate(t), t - 1.0, 1e-9) << t;
  }
}

TEST(PulseSumAvgAggregate, SumIsWindowIntegral) {
  PulseAggregateOptions o = AvgOpts(2.0);
  o.fn = AggFn::kSum;
  PulseSumAvgAggregate agg("a", o);
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 3.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  // Integral of the constant 3 over a length-2 window = 6.
  EXPECT_NEAR(out[0].attribute("agg")->Evaluate(5.0), 6.0, 1e-9);
}

TEST(PulseSumAvgAggregate, MultiSegmentWindowUsesTailAndHead) {
  // Two pieces: v = 0 on [0,5), v = 10 on [5,10). Window 4.
  // For a close at t in (5, 9): avg = 10 * (t - 5) / 4.
  PulseSumAvgAggregate agg("a", AvgOpts(4.0));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 5.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 5.0, 10.0, 10.0, 0.0), &out).ok());
  // Collect the piecewise window function and check values across pieces.
  auto eval = [&](double t) -> double {
    for (const Segment& s : out) {
      if (s.range.Contains(t)) return s.attribute("agg")->Evaluate(t);
    }
    ADD_FAILURE() << "no window function covers close " << t;
    return std::nan("");
  };
  EXPECT_NEAR(eval(6.0), 10.0 * 1.0 / 4.0, 1e-9);
  EXPECT_NEAR(eval(8.0), 10.0 * 3.0 / 4.0, 1e-9);
  EXPECT_NEAR(eval(9.5), 10.0, 1e-9);  // window fully inside the 10-piece
}

TEST(PulseSumAvgAggregate, WindowFunctionContinuousAcrossBreakpoints) {
  PulseSumAvgAggregate agg("a", AvgOpts(3.0));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 4.0, 0.0, 2.0), &out).ok());
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 4.0, 8.0, 8.0, -1.0), &out).ok());
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 8.0, 12.0, 4.0, 0.5), &out).ok());
  // Sort output pieces by range and verify value continuity at junctions.
  std::sort(out.begin(), out.end(), [](const Segment& a, const Segment& b) {
    return a.range.lo < b.range.lo;
  });
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    const double boundary = out[i].range.hi;
    ASSERT_DOUBLE_EQ(boundary, out[i + 1].range.lo);
    const double left = out[i].attribute("agg")->Evaluate(boundary);
    const double right = out[i + 1].attribute("agg")->Evaluate(boundary);
    EXPECT_NEAR(left, right, 1e-8) << "discontinuity at " << boundary;
  }
}

TEST(PulseSumAvgAggregate, WindowFunctionMatchesNumericIntegral) {
  // Random-ish piecewise input; compare wf against numeric integration.
  PulseSumAvgAggregate agg("a", AvgOpts(2.5));
  std::vector<Segment> inputs = {
      LinearSegment(1, 0.0, 3.0, 1.0, 0.5),
      LinearSegment(1, 3.0, 5.5, 2.5, -0.2),
      LinearSegment(1, 5.5, 9.0, 2.0, 0.1),
  };
  SegmentBatch out;
  for (const Segment& s : inputs) {
    ASSERT_TRUE(agg.Process(0, s, &out).ok());
  }
  auto truth = [&](double t) {
    // Numeric integral of the piecewise input over [t - 2.5, t].
    double acc = 0.0;
    const int steps = 4000;
    const double lo = t - 2.5;
    for (int i = 0; i < steps; ++i) {
      const double u = lo + (2.5 * (i + 0.5)) / steps;
      for (const Segment& s : inputs) {
        if (u >= s.range.lo && u < s.range.hi) {
          acc += s.attribute("v")->Evaluate(u) * (2.5 / steps);
          break;
        }
      }
    }
    return acc / 2.5;
  };
  for (double t = 2.6; t < 8.9; t += 0.7) {
    double wf_value = std::nan("");
    for (const Segment& s : out) {
      if (s.range.Contains(t)) {
        wf_value = s.attribute("agg")->Evaluate(t);
        break;
      }
    }
    ASSERT_FALSE(std::isnan(wf_value)) << "no coverage at " << t;
    EXPECT_NEAR(wf_value, truth(t), 1e-3) << "t=" << t;
  }
}

TEST(PulseSumAvgAggregate, GapResetsCoverage) {
  PulseSumAvgAggregate agg("a", AvgOpts(2.0));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 5.0, 1.0, 0.0), &out).ok());
  const size_t before = out.size();
  // A gap [5, 20): windows spanning it are undefined.
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 20.0, 22.0, 1.0, 0.0), &out).ok());
  for (size_t i = before; i < out.size(); ++i) {
    EXPECT_GE(out[i].range.lo, 22.0) << "window spanning the gap emitted";
  }
}

TEST(PulseSumAvgAggregate, InvertBoundScalesForSum) {
  PulseAggregateOptions o = AvgOpts(4.0);
  o.fn = AggFn::kSum;
  PulseSumAvgAggregate agg("a", o);
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 10.0, 1.0, 0.0), &out).ok());
  ASSERT_FALSE(out.empty());
  EquiSplit split;
  Result<std::vector<AllocatedBound>> allocs =
      agg.InvertBound(out[0], "agg", 1.0, split);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 1u);
  // Sum margin divides by the window length (4).
  EXPECT_NEAR((*allocs)[0].margin, 0.25, 1e-12);
}

TEST(MakePulseAggregate, DispatchesAndRejectsCount) {
  PulseAggregateOptions o = MinOpts();
  Result<std::unique_ptr<PulseOperator>> min =
      MakePulseAggregate("m", o);
  ASSERT_TRUE(min.ok());
  EXPECT_NE(dynamic_cast<PulseMinMaxAggregate*>(min->get()), nullptr);
  o.fn = AggFn::kAvg;
  Result<std::unique_ptr<PulseOperator>> avg =
      MakePulseAggregate("a", o);
  ASSERT_TRUE(avg.ok());
  EXPECT_NE(dynamic_cast<PulseSumAvgAggregate*>(avg->get()), nullptr);
  o.fn = AggFn::kCount;
  Result<std::unique_ptr<PulseOperator>> count =
      MakePulseAggregate("c", o);
  EXPECT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kUnimplemented);
}

// Sweep over window sizes: single-segment window function equals the
// analytic average of a linear model.
class AvgWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(AvgWindowSweep, LinearModelAnalyticAverage) {
  const double w = GetParam();
  PulseSumAvgAggregate agg("a", AvgOpts(w));
  SegmentBatch out;
  ASSERT_TRUE(
      agg.Process(0, LinearSegment(1, 0.0, 50.0, 2.0, 3.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  const Polynomial wf = *out[0].attribute("agg");
  // avg of 2 + 3u over [t-w, t] = 2 + 3(t - w/2).
  for (double t = w + 0.1; t < 50.0; t += 3.7) {
    EXPECT_NEAR(wf.Evaluate(t), 2.0 + 3.0 * (t - w / 2.0), 1e-7)
        << "w=" << w << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, AvgWindowSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 30.0));

}  // namespace
}  // namespace pulse
