// pulse_cli — run an ad-hoc StreamSQL query over a built-in workload.
//
//   pulse_cli --workload objects|nyse|ais --tuples N
//             --query "select * from objects where x < 500"
//             [--mode predictive|historical] [--bound attr=0.01]
//             [--sample-rate HZ] [--show K]
//
// Examples:
//   pulse_cli --workload nyse --tuples 50000 --bound s.ap=0.01 --query \
//     "select symbol, s.ap - l.ap as diff from (select symbol, avg(price) \
//      as ap from nyse [size 10 advance 2]) as s join (select symbol, \
//      avg(price) as ap from nyse [size 60 advance 2]) as l on \
//      (s.symbol = l.symbol) where s.ap > l.ap"
//
//   pulse_cli --workload objects --mode historical --tuples 100000 \
//     --query "select * from objects where x < 2000"
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/parser.h"
#include "core/runtime.h"
#include "util/stopwatch.h"
#include "workload/ais.h"
#include "workload/moving_object.h"
#include "workload/nyse.h"

using namespace pulse;

namespace {

struct CliOptions {
  std::string workload = "objects";
  std::string query;
  std::string mode = "predictive";
  size_t tuples = 10000;
  double sample_rate = 0.0;
  size_t show = 5;
  std::vector<BoundSpec> bounds;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --query SQL [--workload objects|nyse|ais] [--tuples N]\n"
      "          [--mode predictive|historical] [--bound attr=frac]...\n"
      "          [--sample-rate HZ] [--show K]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      const char* v = next("--workload");
      if (v == nullptr) return false;
      out->workload = v;
    } else if (arg == "--query") {
      const char* v = next("--query");
      if (v == nullptr) return false;
      out->query = v;
    } else if (arg == "--mode") {
      const char* v = next("--mode");
      if (v == nullptr) return false;
      out->mode = v;
    } else if (arg == "--tuples") {
      const char* v = next("--tuples");
      if (v == nullptr) return false;
      out->tuples = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--sample-rate") {
      const char* v = next("--sample-rate");
      if (v == nullptr) return false;
      out->sample_rate = std::strtod(v, nullptr);
    } else if (arg == "--show") {
      const char* v = next("--show");
      if (v == nullptr) return false;
      out->show = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--bound") {
      const char* v = next("--bound");
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "--bound expects attr=fraction\n");
        return false;
      }
      out->bounds.push_back(BoundSpec::Relative(
          std::string(v, eq - v), std::strtod(eq + 1, nullptr)));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return !out->query.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  // Declare the chosen workload's stream and build a tuple source.
  QuerySpec spec;
  std::function<Tuple()> source;
  std::string stream_name = options.workload;
  if (options.workload == "objects") {
    (void)spec.AddStream(
        MovingObjectGenerator::MakeStreamSpec("objects", 5.0));
    auto gen = std::make_shared<MovingObjectGenerator>(MovingObjectOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else if (options.workload == "nyse") {
    (void)spec.AddStream(NyseGenerator::MakeStreamSpec("nyse", 5.0));
    auto gen = std::make_shared<NyseGenerator>(NyseOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else if (options.workload == "ais") {
    (void)spec.AddStream(AisGenerator::MakeStreamSpec("ais", 30.0));
    auto gen = std::make_shared<AisGenerator>(AisOptions{});
    source = [gen] { return gen->NextTuple(); };
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return Usage(argv[0]);
  }

  Result<QuerySpec::NodeId> sink = QueryParser::Parse(&spec, options.query);
  if (!sink.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 sink.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed query -> %zu operator(s)\n", spec.num_nodes());

  Stopwatch watch;
  if (options.mode == "historical") {
    HistoricalRuntime::Options hopts;
    hopts.segmentation.degree = 1;
    hopts.segmentation.max_error = 0.1;
    hopts.segmentation.max_points_per_segment = 1000;
    Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, hopts);
    if (!rt.ok()) {
      std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < options.tuples; ++i) {
      Status st = rt->ProcessTuple(stream_name, source());
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    (void)rt->Finish();
    const RuntimeStats& stats = rt->stats();
    std::printf(
        "historical: %llu tuples -> %llu segments -> %llu result "
        "segments in %.3f s (%.0f tup/s)\n",
        (unsigned long long)stats.tuples_in,
        (unsigned long long)stats.segments_pushed,
        (unsigned long long)stats.output_segments, watch.ElapsedSeconds(),
        stats.tuples_in / watch.ElapsedSeconds());
    std::vector<Segment> outputs = rt->TakeOutputSegments();
    for (size_t i = 0; i < outputs.size() && i < options.show; ++i) {
      std::printf("  %s\n", outputs[i].ToString().c_str());
    }
    return 0;
  }

  PredictiveRuntime::Options popts;
  popts.bounds = options.bounds;
  popts.sample_rate = options.sample_rate;
  Result<PredictiveRuntime> rt = PredictiveRuntime::Make(spec, popts);
  if (!rt.ok()) {
    std::fprintf(stderr, "%s\n", rt.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < options.tuples; ++i) {
    Status st = rt->ProcessTuple(stream_name, source());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)rt->Finish();
  const RuntimeStats& stats = rt->stats();
  std::printf(
      "predictive: %llu tuples, %llu validated (%.1f%%), %llu solver "
      "runs, %llu violations, %llu result segments in %.3f s "
      "(%.0f tup/s)\n",
      (unsigned long long)stats.tuples_in,
      (unsigned long long)stats.tuples_validated,
      100.0 * stats.tuples_validated / std::max<uint64_t>(1, stats.tuples_in),
      (unsigned long long)stats.segments_pushed,
      (unsigned long long)stats.violations,
      (unsigned long long)stats.output_segments, watch.ElapsedSeconds(),
      stats.tuples_in / watch.ElapsedSeconds());
  std::vector<Segment> outputs = rt->TakeOutputSegments();
  for (size_t i = 0; i < outputs.size() && i < options.show; ++i) {
    std::printf("  %s\n", outputs[i].ToString().c_str());
  }
  if (options.sample_rate > 0.0) {
    std::vector<Tuple> tuples = rt->TakeOutputTuples();
    std::printf("sampled %zu result tuples\n", tuples.size());
    for (size_t i = 0; i < tuples.size() && i < options.show; ++i) {
      std::printf("  %s\n", tuples[i].ToString().c_str());
    }
  }
  return 0;
}
