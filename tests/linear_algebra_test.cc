#include <cmath>

#include <gtest/gtest.h>

#include "math/linear_system.h"
#include "math/matrix.h"

namespace pulse {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.Transpose().AlmostEquals(m));
}

TEST(Matrix, MultiplyMatrixAndVector) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  std::vector<double> v = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}});
  Matrix b = Matrix::FromRows({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 6.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 3.0)(0, 1), 6.0);
}

TEST(Matrix, Norms) {
  Matrix m = Matrix::FromRows({{3.0, 4.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.InfinityNorm(), 7.0);
}

TEST(SolveLinearSystem, TwoByTwo) {
  // x + y = 3; 2x - y = 0 -> x = 1, y = 2.
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {2.0, -1.0}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {3.0, 0.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // First pivot is zero: partial pivoting must row-swap.
  Matrix a = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularFails) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {2.0, 4.0}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericError);
}

TEST(SolveLinearSystem, ShapeMismatchFails) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(LuDecompose, SolveMultipleRhs) {
  Matrix a = Matrix::FromRows(
      {{4.0, 3.0, 0.0}, {3.0, 4.0, -1.0}, {0.0, -1.0, 4.0}});
  Result<LuDecomposition> lu = LuDecompose(a);
  ASSERT_TRUE(lu.ok());
  for (const std::vector<double>& b :
       {std::vector<double>{1.0, 0.0, 0.0},
        std::vector<double>{2.0, -1.0, 3.0}}) {
    Result<std::vector<double>> x = lu->Solve(b);
    ASSERT_TRUE(x.ok());
    std::vector<double> back = a * *x;
    for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
  }
}

TEST(LuDecompose, Determinant) {
  Matrix a = Matrix::FromRows({{2.0, 0.0}, {0.0, 3.0}});
  Result<LuDecomposition> lu = LuDecompose(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 6.0, 1e-12);
  // Permutation sign handled: swap-needing matrix.
  Matrix b = Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  Result<LuDecomposition> lub = LuDecompose(b);
  ASSERT_TRUE(lub.ok());
  EXPECT_NEAR(lub->Determinant(), -1.0, 1e-12);
}

TEST(SolveLeastSquares, ExactFitWhenSquare) {
  Matrix a = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Result<std::vector<double>> x = SolveLeastSquares(a, {5.0, 7.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 5.0, 1e-12);
}

TEST(SolveLeastSquares, OverdeterminedLine) {
  // Fit y = a + b t to noisy-free points on y = 2 + 3t.
  std::vector<double> ts = {0.0, 1.0, 2.0, 3.0, 4.0};
  Matrix a(ts.size(), 2);
  std::vector<double> b(ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    a.At(i, 0) = 1.0;
    a.At(i, 1) = ts[i];
    b[i] = 2.0 + 3.0 * ts[i];
  }
  Result<std::vector<double>> x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(SolveLeastSquares, UnderdeterminedFails) {
  Matrix a(1, 2);
  EXPECT_FALSE(SolveLeastSquares(a, {1.0}).ok());
}

TEST(Invert, RoundTrip) {
  Matrix a = Matrix::FromRows({{4.0, 7.0}, {2.0, 6.0}});
  Result<Matrix> inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE((a * *inv).AlmostEquals(Matrix::Identity(2), 1e-10));
}

TEST(Invert, SingularFails) {
  Matrix a = Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_FALSE(Invert(a).ok());
}

// Property sweep over sizes: random-ish SPD-like systems solve and verify.
class LinearSolveSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LinearSolveSweep, SolvesDiagonallyDominant) {
  const size_t n = GetParam();
  Matrix a(n, n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a.At(i, j) = std::sin(static_cast<double>(i * 31 + j * 17));
      row_sum += std::abs(a.At(i, j));
    }
    a.At(i, i) = row_sum + 1.0;  // strictly diagonally dominant
    b[i] = std::cos(static_cast<double>(i));
  }
  Result<std::vector<double>> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  std::vector<double> back = a * *x;
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearSolveSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace pulse
