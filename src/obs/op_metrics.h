#ifndef PULSE_OBS_OP_METRICS_H_
#define PULSE_OBS_OP_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/atomic_counter.h"

namespace pulse {

/// Per-operator counters for the discrete (tuple-at-a-time) realization,
/// used by the benchmark harness to report the paper's processing-cost
/// and throughput series. Counters are relaxed atomics so they stay
/// truthful if an operator is ever driven from a ThreadPool shard (see
/// docs/CONCURRENCY.md).
struct OperatorMetrics {
  RelaxedCounter tuples_in = 0;
  RelaxedCounter tuples_out = 0;
  RelaxedCounter invocations = 0;
  /// Predicate/state evaluations: the join microbenchmark's "number of
  /// comparisons" driver (paper Fig. 5iii discussion).
  RelaxedCounter comparisons = 0;
  /// Wall-clock nanoseconds spent inside Process/AdvanceTime.
  RelaxedCounter processing_ns = 0;

  void Reset() { *this = OperatorMetrics(); }

  double processing_seconds() const {
    return static_cast<double>(processing_ns) * 1e-9;
  }

  std::string ToString() const;
};

/// Counters for a continuous-time operator. `solves` counts equation-
/// system executions — the quantity Pulse's validation machinery works to
/// minimize ("the solver executes infrequently and only in the presence
/// of errors", paper abstract). Counters are relaxed atomics so the
/// bench harness stays truthful when solves fan out across a ThreadPool.
struct PulseOperatorMetrics {
  RelaxedCounter segments_in = 0;
  RelaxedCounter segments_out = 0;
  RelaxedCounter solves = 0;
  RelaxedCounter state_size = 0;  // last observed buffered segments/pieces
  RelaxedCounter processing_ns = 0;

  void Reset() { *this = PulseOperatorMetrics(); }
  double processing_seconds() const {
    return static_cast<double>(processing_ns) * 1e-9;
  }
};

/// Publishes a discrete operator's counters into a registry under the
/// unified naming scheme (docs/OBSERVABILITY.md):
///
///   op/<name>/in, op/<name>/out, op/<name>/processing_ns   (common)
///   op/<name>/invocations, op/<name>/comparisons           (discrete)
///
/// The common subset uses the same names as the Pulse overload below, so
/// both realizations of one query are directly comparable per operator.
void RegisterOperatorViews(obs::ViewGroup& group, const std::string& op_name,
                           const OperatorMetrics& metrics);

/// Pulse overload: common subset as above plus
///
///   op/<name>/solves                       (counter)
///   op/<name>/state_size                   (gauge)
void RegisterOperatorViews(obs::ViewGroup& group, const std::string& op_name,
                           const PulseOperatorMetrics& metrics);

}  // namespace pulse

#endif  // PULSE_OBS_OP_METRICS_H_
