#include "core/validation/splits.h"

#include <cmath>

namespace pulse {

namespace {

// Mean |d model/dt| of `attribute` over the output validity range — the
// gradient weight of one input. Falls back to 0 for missing attributes
// (unmodeled inputs cannot drift).
double GradientWeight(const Segment& input, const std::string& attribute,
                      const Interval& range) {
  auto it = input.attributes.find(attribute);
  if (it == input.attributes.end()) return 0.0;
  const Polynomial d = it->second.Derivative();
  if (d.IsZero()) return 0.0;
  if (range.Length() <= 0.0) return std::abs(d.Evaluate(range.lo));
  // Mean absolute derivative approximated by |mean derivative| plus the
  // endpoint magnitudes (cheap, conservative-enough weighting).
  const double mean = std::abs(d.Integrate(range.lo, range.hi)) /
                      range.Length();
  const double ends =
      0.5 * (std::abs(d.Evaluate(range.lo)) + std::abs(d.Evaluate(range.hi)));
  return std::max(mean, ends);
}

}  // namespace

Result<std::vector<AllocatedBound>> EquiSplit::Apportion(
    const SplitContext& ctx) const {
  if (ctx.inputs.empty()) {
    return Status::InvalidArgument("EquiSplit: no causing inputs");
  }
  const double n = static_cast<double>(ctx.inputs.size()) *
                   static_cast<double>(std::max<size_t>(1, ctx.num_dependencies));
  std::vector<AllocatedBound> out;
  out.reserve(ctx.inputs.size());
  for (const Segment* input : ctx.inputs) {
    out.push_back(AllocatedBound{input->key, ctx.input_attribute,
                                 ctx.margin / n});
  }
  return out;
}

Result<std::vector<AllocatedBound>> GradientSplit::Apportion(
    const SplitContext& ctx) const {
  if (ctx.inputs.empty()) {
    return Status::InvalidArgument("GradientSplit: no causing inputs");
  }
  const Interval range =
      ctx.output != nullptr ? ctx.output->range : ctx.inputs[0]->range;
  std::vector<double> weights;
  weights.reserve(ctx.inputs.size());
  double total = 0.0;
  for (const Segment* input : ctx.inputs) {
    const double w = GradientWeight(*input, ctx.input_attribute, range);
    weights.push_back(w);
    total += w;
  }
  const double deps =
      static_cast<double>(std::max<size_t>(1, ctx.num_dependencies));
  std::vector<AllocatedBound> out;
  out.reserve(ctx.inputs.size());
  if (total <= 0.0) {
    // All models constant: degenerate to equi-split.
    const double n = static_cast<double>(ctx.inputs.size()) * deps;
    for (const Segment* input : ctx.inputs) {
      out.push_back(AllocatedBound{input->key, ctx.input_attribute,
                                   ctx.margin / n});
    }
    return out;
  }
  // Proportional shares sum to margin/deps: conservative (the allocated
  // input ranges never exceed the output range, Section IV-C).
  for (size_t i = 0; i < ctx.inputs.size(); ++i) {
    const double share = weights[i] / total;
    out.push_back(AllocatedBound{ctx.inputs[i]->key, ctx.input_attribute,
                                 ctx.margin * share / deps});
  }
  return out;
}

}  // namespace pulse
