// Adaptive precision (docs/PRECISION.md): the controller's hysteresis,
// the AdaptiveRuntime's settled-output identity and conservation
// accounting, the provisional/confirm/retract frame codec, and the
// end-to-end adaptive serving session.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/precision.h"
#include "core/runtime.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "serve/server.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

using serve::EncodeFrameToString;
using serve::Frame;
using serve::FrameReader;
using serve::FrameType;
using serve::PrecisionController;
using serve::PrecisionOptions;

// ---------------------------------------------------------------------
// Shared fixtures (same filter query the serving tests use).

QuerySpec FilterQuerySpec(double threshold) {
  QuerySpec spec;
  EXPECT_TRUE(
      spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0))
          .ok());
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(threshold)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

Tuple ObjectTuple(double ts, int64_t id, double x, double vx) {
  return Tuple(ts,
               {Value(id), Value(x), Value(0.0), Value(vx), Value(0.0)});
}

// Piecewise-linear x trace with mild curvature changes, long enough to
// produce several segments per precision episode.
std::vector<Tuple> PiecewiseTrace(int n) {
  std::vector<Tuple> trace;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = i * 0.05;
    const double x = t < 7.5 ? 2.0 * t : 30.0 - 2.0 * t;
    trace.push_back(ObjectTuple(t, 1, x, 0.0));
  }
  return trace;
}

HistoricalRuntime::Options TightOptions() {
  HistoricalRuntime::Options options;
  options.segmentation.degree = 1;
  options.segmentation.max_error = 0.05;
  options.collect_outputs = true;
  return options;
}

void ExpectSameSegments(const std::vector<Segment>& a,
                        const std::vector<Segment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "segment " << i;
    EXPECT_EQ(a[i].range.lo, b[i].range.lo) << "segment " << i;
    EXPECT_EQ(a[i].range.hi, b[i].range.hi) << "segment " << i;
    EXPECT_EQ(a[i].range.lo_open, b[i].range.lo_open) << "segment " << i;
    EXPECT_EQ(a[i].range.hi_open, b[i].range.hi_open) << "segment " << i;
    ASSERT_EQ(a[i].attributes.size(), b[i].attributes.size());
    for (const auto& [name, poly] : a[i].attributes) {
      auto it = b[i].attributes.find(name);
      ASSERT_NE(it, b[i].attributes.end()) << name;
      ASSERT_EQ(poly.degree(), it->second.degree()) << name;
      for (size_t k = 0; k <= poly.degree(); ++k) {
        EXPECT_EQ(poly.coeff(k), it->second.coeff(k))
            << name << " coeff " << k;
      }
    }
  }
}

// ---------------------------------------------------------------------
// PrecisionController hysteresis.

TEST(PrecisionController, WidensUnderQueuePressureAndTightensOnRelief) {
  PrecisionOptions options;
  options.enabled = true;
  options.num_tiers = 2;
  options.cooldown = 0;  // test the watermarks alone
  PrecisionController controller(options, nullptr);
  EXPECT_EQ(controller.Update(10, 100), 0u);
  // Above the widen watermark (0.60): one tier per update.
  EXPECT_EQ(controller.Update(70, 100), 1u);
  EXPECT_EQ(controller.Update(70, 100), 2u);
  // Clamped at the ladder top.
  EXPECT_EQ(controller.Update(99, 100), 2u);
  // Inside the dead zone [tighten, widen]: holds.
  EXPECT_EQ(controller.Update(40, 100), 2u);
  // Below the tighten watermark (0.25): steps back down.
  EXPECT_EQ(controller.Update(10, 100), 1u);
  EXPECT_EQ(controller.Update(10, 100), 0u);
  EXPECT_EQ(controller.widen_events(), 2u);
  EXPECT_EQ(controller.tighten_events(), 2u);
}

TEST(PrecisionController, CooldownHoldsTierThroughStepLoad) {
  PrecisionOptions options;
  options.enabled = true;
  options.num_tiers = 2;
  options.cooldown = 100;
  PrecisionController controller(options, nullptr);
  // A step to sustained pressure: the tier must ramp monotonically, one
  // move per cooldown window — never flap.
  size_t prev = 0;
  size_t moves = 0;
  for (int i = 0; i < 500; ++i) {
    const size_t tier = controller.Update(80, 100);
    ASSERT_GE(tier, prev) << "tier must not drop under sustained pressure";
    if (tier != prev) ++moves;
    prev = tier;
  }
  EXPECT_EQ(prev, 2u);
  EXPECT_EQ(moves, 2u);
  // Step back to idle: same discipline downward.
  moves = 0;
  for (int i = 0; i < 500; ++i) {
    const size_t tier = controller.Update(5, 100);
    ASSERT_LE(tier, prev) << "tier must not rise after the load steps off";
    if (tier != prev) ++moves;
    prev = tier;
  }
  EXPECT_EQ(prev, 0u);
  EXPECT_EQ(moves, 2u);
}

TEST(PrecisionController, OscillatingLoadInsideDeadZoneNeverMoves) {
  PrecisionOptions options;
  options.enabled = true;
  options.num_tiers = 2;
  options.cooldown = 0;
  PrecisionController controller(options, nullptr);
  // Depth flapping across the middle of the band but never beyond a
  // watermark: the dead zone absorbs it entirely.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(controller.Update(i % 2 == 0 ? 30 : 55, 100), 0u);
  }
  EXPECT_EQ(controller.widen_events(), 0u);
  EXPECT_EQ(controller.tighten_events(), 0u);
}

TEST(PrecisionController, ForcedTierPinsAndIgnoresSignals) {
  PrecisionOptions options;
  options.enabled = true;
  options.num_tiers = 2;
  options.forced_tier = 1;
  PrecisionController controller(options, nullptr);
  EXPECT_EQ(controller.Update(0, 100), 1u);
  EXPECT_EQ(controller.Update(100, 100), 1u);
  EXPECT_EQ(controller.widen_events(), 0u);
}

TEST(PrecisionController, DisabledStaysAtTierZero) {
  PrecisionOptions options;
  options.enabled = false;
  PrecisionController controller(options, nullptr);
  EXPECT_EQ(controller.Update(100, 100), 0u);
}

// ---------------------------------------------------------------------
// Frame codec for the precision side-band.

TEST(PrecisionFrames, ProvisionalRoundTripPreservesLineageBoundSegment) {
  Segment s(-3, Interval::ClosedOpen(1.5, 2.5));
  s.id = 77;
  s.set_attribute("x", Polynomial({0.1, -2.0, 3.5}));
  s.unmodeled["c"] = 4.25;
  Frame in = Frame::Provisional(0xDEADBEEFCAFEull, 0.125, s);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(EncodeFrameToString(in)).ok());
  Result<std::optional<Frame>> out = reader.Next();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->type, FrameType::kProvisional);
  EXPECT_EQ((*out)->lineage, 0xDEADBEEFCAFEull);
  EXPECT_EQ((*out)->bound, 0.125);  // bit-exact, like every codec double
  ASSERT_EQ((*out)->segments.size(), 1u);
  EXPECT_EQ((*out)->segments[0].key, -3);
  EXPECT_EQ((*out)->segments[0].attributes.at("x").coeff(2), 3.5);
  EXPECT_EQ((*out)->segments[0].unmodeled.at("c"), 4.25);
}

TEST(PrecisionFrames, ConfirmAndRetractRoundTrip) {
  FrameReader reader;
  ASSERT_TRUE(
      reader.Feed(EncodeFrameToString(Frame::Confirm(42))).ok());
  ASSERT_TRUE(
      reader.Feed(EncodeFrameToString(Frame::Retract(43, 1))).ok());
  Result<std::optional<Frame>> confirm = reader.Next();
  ASSERT_TRUE(confirm.ok());
  ASSERT_TRUE(confirm->has_value());
  EXPECT_EQ((*confirm)->type, FrameType::kConfirm);
  EXPECT_EQ((*confirm)->lineage, 42u);
  Result<std::optional<Frame>> retract = reader.Next();
  ASSERT_TRUE(retract.ok());
  ASSERT_TRUE(retract->has_value());
  EXPECT_EQ((*retract)->type, FrameType::kRetract);
  EXPECT_EQ((*retract)->lineage, 43u);
  EXPECT_EQ((*retract)->retract_reason, 1);
}

TEST(PrecisionFrames, ProvisionalWithoutSegmentEncodesEmptySegment) {
  // A hand-built provisional frame with no segment must not throw from
  // inside the encoder; it round-trips as an empty segment.
  Frame in;
  in.type = FrameType::kProvisional;
  in.lineage = 9;
  in.bound = 0.5;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(EncodeFrameToString(in)).ok());
  Result<std::optional<Frame>> out = reader.Next();
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->type, FrameType::kProvisional);
  EXPECT_EQ((*out)->lineage, 9u);
  ASSERT_EQ((*out)->segments.size(), 1u);
  EXPECT_TRUE((*out)->segments[0].attributes.empty());
}

TEST(PrecisionFrames, RetractReasonOutOfRangeRejected) {
  Frame bad = Frame::Retract(1, 0);
  std::string bytes = EncodeFrameToString(bad);
  bytes[bytes.size() - 1] = 2;  // reason byte is the last payload byte
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(bytes).ok());
  EXPECT_FALSE(reader.Next().ok());
}

// ---------------------------------------------------------------------
// AdaptiveRuntime: settled identity + conservation.

TEST(AdaptiveRuntime, TierZeroIsPassthrough) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  const std::vector<Tuple> trace = PiecewiseTrace(300);

  Result<HistoricalRuntime> direct =
      HistoricalRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(direct.ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(direct->ProcessTuple("objects", t).ok());
  }
  ASSERT_TRUE(direct->Finish().ok());
  const std::vector<Segment> expected = direct->TakeOutputSegments();
  ASSERT_FALSE(expected.empty());

  Result<std::unique_ptr<AdaptiveRuntime>> adaptive =
      AdaptiveRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(adaptive.ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE((*adaptive)->ProcessTuple("objects", t).ok());
  }
  ASSERT_TRUE((*adaptive)->Finish().ok());
  ExpectSameSegments(expected, (*adaptive)->TakeSettledOutputs());
  EXPECT_EQ((*adaptive)->stats().provisional, 0u);
  EXPECT_EQ((*adaptive)->TakeProvisionals().size(), 0u);
  EXPECT_EQ((*adaptive)->TakeVerdicts().size(), 0u);
}

TEST(AdaptiveRuntime, WidenedEpisodeSettlesIdenticallyAndConserves) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  const std::vector<Tuple> trace = PiecewiseTrace(600);

  Result<HistoricalRuntime> direct =
      HistoricalRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(direct.ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(direct->ProcessTuple("objects", t).ok());
  }
  ASSERT_TRUE(direct->Finish().ok());
  const std::vector<Segment> expected = direct->TakeOutputSegments();

  Result<std::unique_ptr<AdaptiveRuntime>> made =
      AdaptiveRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(made.ok());
  AdaptiveRuntime& rt = **made;
  std::vector<Segment> settled;
  std::vector<ProvisionalRecord> provisionals;
  std::vector<VerdictRecord> verdicts;
  auto harvest = [&] {
    for (Segment& s : rt.TakeSettledOutputs()) {
      settled.push_back(std::move(s));
    }
    for (ProvisionalRecord& p : rt.TakeProvisionals()) {
      provisionals.push_back(std::move(p));
    }
    for (VerdictRecord& v : rt.TakeVerdicts()) verdicts.push_back(v);
  };
  // Exact third / widened third (tier 1 then 2) / exact third: covers
  // widen-from-exact, a tier-to-tier episode switch, the reconcile back
  // to exact, and Finish-time settlement.
  for (size_t i = 0; i < trace.size(); ++i) {
    size_t tier = 0;
    if (i >= 200 && i < 300) tier = 1;
    if (i >= 300 && i < 400) tier = 2;
    ASSERT_TRUE(rt.SetTier(tier).ok());
    ASSERT_TRUE(rt.ProcessTuple("objects", trace[i]).ok());
    harvest();
  }
  ASSERT_TRUE(rt.Finish().ok());
  harvest();

  // The settled stream is byte-identical to the static run: the lever
  // changed when the exact work happened, never its result.
  ExpectSameSegments(expected, settled);

  // The widened stretch actually produced provisionals, and every one
  // settled exactly once (conservation).
  const PrecisionStats& stats = rt.stats();
  ASSERT_GT(stats.provisional, 0u);
  EXPECT_EQ(stats.provisional, provisionals.size());
  EXPECT_EQ(stats.provisional, stats.confirmed + stats.retracted);
  EXPECT_EQ(stats.open(), 0u);
  EXPECT_EQ(verdicts.size(), provisionals.size());
  EXPECT_GE(stats.widen_events, 1u);
  EXPECT_GE(stats.tighten_events, 1u);
  EXPECT_EQ(stats.deferred_items, stats.replayed_items);

  // Every verdict references a previously emitted provisional lineage,
  // and the provisional always precedes its verdict in emission order.
  std::set<uint64_t> seen;
  size_t next_provisional = 0;
  std::set<uint64_t> judged;
  for (const VerdictRecord& v : verdicts) {
    while (next_provisional < provisionals.size() &&
           seen.count(v.lineage) == 0) {
      seen.insert(provisionals[next_provisional++].lineage);
    }
    EXPECT_TRUE(seen.count(v.lineage) > 0)
        << "verdict for lineage " << v.lineage
        << " arrived before its provisional";
    EXPECT_TRUE(judged.insert(v.lineage).second)
        << "lineage " << v.lineage << " settled twice";
  }
}

// Curved trace: degree-1 segmentation cannot represent it exactly, so
// the widened budget's longer pieces genuinely deviate from the exact
// fit — unlike PiecewiseTrace, where both budgets recover the same line
// and every probe deviation is zero.
std::vector<Tuple> CurvedTrace(int n) {
  std::vector<Tuple> trace;
  trace.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = i * 0.05;
    trace.push_back(ObjectTuple(t, 1, 0.15 * t * t, 0.0));
  }
  return trace;
}

TEST(AdaptiveRuntime, HonestBoundsConfirmTightBoundsRetract) {
  const QuerySpec spec = FilterQuerySpec(1e9);
  const std::vector<Tuple> trace = CurvedTrace(600);

  // A generous bound must confirm everything...
  AdaptivePrecisionOptions generous;
  generous.ladder = {PrecisionTier{8.0, 1e6}};
  Result<std::unique_ptr<AdaptiveRuntime>> big =
      AdaptiveRuntime::Make(spec, TightOptions(), generous);
  ASSERT_TRUE(big.ok());
  // ...and an absurdly tight one must retract whatever actually
  // deviates (the coarse model differs from the exact one by
  // construction on this trace).
  AdaptivePrecisionOptions strict;
  strict.ladder = {PrecisionTier{8.0, 1e-12}};
  Result<std::unique_ptr<AdaptiveRuntime>> small =
      AdaptiveRuntime::Make(spec, TightOptions(), strict);
  ASSERT_TRUE(small.ok());

  for (AdaptiveRuntime* rt : {big->get(), small->get()}) {
    for (size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(
          rt->SetTier(i >= 200 && i < 400 ? 1 : 0).ok());
      ASSERT_TRUE(rt->ProcessTuple("objects", trace[i]).ok());
    }
    ASSERT_TRUE(rt->Finish().ok());
    ASSERT_GT(rt->stats().provisional, 0u);
    EXPECT_EQ(rt->stats().open(), 0u);
  }
  EXPECT_EQ((*big)->stats().retracted, 0u);
  EXPECT_GT((*small)->stats().retracted, 0u);
  for (const VerdictRecord& v : (*small)->TakeVerdicts()) {
    if (!v.confirmed) {
      EXPECT_EQ(v.reason, RetractReason::kDeviation);
    }
  }
}

TEST(AdaptiveRuntime, MaxDeferredBackstopForcesReconcile) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  AdaptivePrecisionOptions precision;
  precision.max_deferred = 32;
  Result<std::unique_ptr<AdaptiveRuntime>> made =
      AdaptiveRuntime::Make(spec, TightOptions(), precision);
  ASSERT_TRUE(made.ok());
  AdaptiveRuntime& rt = **made;
  ASSERT_TRUE(rt.SetTier(1).ok());
  const std::vector<Tuple> trace = PiecewiseTrace(200);
  for (const Tuple& t : trace) {
    ASSERT_TRUE(rt.ProcessTuple("objects", t).ok());
  }
  // The cap (32) is far below the feed size: the backstop must have
  // reconciled, bounding deferred memory, and dropped the runtime back
  // to the exact tier (re-widening is the controller's call — in the
  // serving path the next admitted item's tier stamp makes it).
  EXPECT_GE(rt.stats().forced_reconciles, 1u);
  EXPECT_EQ(rt.tier(), 0u);
  EXPECT_LE(rt.stats().deferred_items, trace.size());
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_EQ(rt.stats().open(), 0u);
  // Everything deferred was replayed; items arriving after the forced
  // reconcile took the exact path directly.
  EXPECT_EQ(rt.stats().replayed_items, rt.stats().deferred_items);
}

// Regression: when the backstop reconciles in the middle of a
// ProcessTuples batch, the batch tail must still reach the exact
// runtime in order — an early version left it stranded in the deferral
// buffer (never replayed at tier 0), silently dropping settled output.
TEST(AdaptiveRuntime, BackstopMidBatchLosesNothing) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  const std::vector<Tuple> trace = PiecewiseTrace(300);

  Result<HistoricalRuntime> direct =
      HistoricalRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(
      direct->ProcessTuples("objects", trace.data(), trace.size()).ok());
  ASSERT_TRUE(direct->Finish().ok());
  const std::vector<Segment> expected = direct->TakeOutputSegments();
  ASSERT_FALSE(expected.empty());

  AdaptivePrecisionOptions precision;
  precision.max_deferred = 32;  // fires mid-batch, several times
  Result<std::unique_ptr<AdaptiveRuntime>> made =
      AdaptiveRuntime::Make(spec, TightOptions(), precision);
  ASSERT_TRUE(made.ok());
  AdaptiveRuntime& rt = **made;
  ASSERT_TRUE(rt.SetTier(1).ok());
  // One batch far larger than the cap: tuples past the forced reconcile
  // must take the exact path directly.
  ASSERT_TRUE(rt.ProcessTuples("objects", trace.data(), trace.size()).ok());
  EXPECT_GE(rt.stats().forced_reconciles, 1u);
  EXPECT_EQ(rt.tier(), 0u);
  ASSERT_TRUE(rt.Finish().ok());
  ExpectSameSegments(expected, rt.TakeSettledOutputs());
  EXPECT_EQ(rt.stats().replayed_items, rt.stats().deferred_items);
  EXPECT_EQ(rt.stats().open(), 0u);
}

// Regression: a non-final reconcile must not confirm a provisional whose
// range the exact replay has only partially covered — the uncovered tail
// (the exact runtime's in-flight final piece) could still deviate, and a
// confirm cannot be retracted. It stays open and settles once later
// tier-0 output completes the coverage.
TEST(AdaptiveRuntime, PartialCoverageStaysOpenAcrossReconcile) {
  const QuerySpec spec = FilterQuerySpec(1e9);
  const std::vector<Tuple> trace = CurvedTrace(600);

  AdaptivePrecisionOptions precision;
  precision.ladder = {PrecisionTier{64.0, 1e6}};
  // Dense probes: the last provisional's tail — beyond the exact side's
  // last emitted breakpoint at reconcile time — is sure to catch one.
  precision.probe_points = 64;
  Result<std::unique_ptr<AdaptiveRuntime>> made =
      AdaptiveRuntime::Make(spec, TightOptions(), precision);
  ASSERT_TRUE(made.ok());
  AdaptiveRuntime& rt = **made;

  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(rt.SetTier(i >= 100 ? 1 : 0).ok());
    ASSERT_TRUE(rt.ProcessTuple("objects", trace[i]).ok());
  }
  ASSERT_TRUE(rt.SetTier(0).ok());  // mid-stream reconcile
  ASSERT_GT(rt.stats().provisional, 0u);
  // The trailing provisional's coverage is incomplete: it must still be
  // open, not confirmed on the covered prefix alone.
  EXPECT_GT(rt.stats().open(), 0u);

  for (size_t i = 300; i < trace.size(); ++i) {
    ASSERT_TRUE(rt.ProcessTuple("objects", trace[i]).ok());
  }
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_EQ(rt.stats().open(), 0u);
  EXPECT_EQ(rt.stats().provisional,
            rt.stats().confirmed + rt.stats().retracted);
}

// Regression: the tier-0 steady state (and any stretch with nothing
// open) must not retain probe-timeline copies of the output stream —
// that is unbounded growth in exactly the mode meant to be free.
TEST(AdaptiveRuntime, TierZeroRetainsNoProbeTimelines) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  const std::vector<Tuple> trace = PiecewiseTrace(600);
  Result<std::unique_ptr<AdaptiveRuntime>> made =
      AdaptiveRuntime::Make(spec, TightOptions());
  ASSERT_TRUE(made.ok());
  AdaptiveRuntime& rt = **made;
  // Pure tier-0 session: no copies, ever.
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(rt.ProcessTuple("objects", trace[i]).ok());
    ASSERT_EQ(rt.probe_timeline_segments(), 0u);
  }
  // A widen/reconcile cycle may retain while provisionals are open, but
  // once everything settles the index must drain back to empty.
  for (size_t i = 300; i < trace.size(); ++i) {
    ASSERT_TRUE(rt.SetTier(i < 450 ? 1 : 0).ok());
    ASSERT_TRUE(rt.ProcessTuple("objects", trace[i]).ok());
    if (rt.stats().open() == 0) {
      EXPECT_EQ(rt.probe_timeline_segments(), 0u) << "tuple " << i;
    }
  }
  ASSERT_TRUE(rt.Finish().ok());
  EXPECT_EQ(rt.probe_timeline_segments(), 0u);
}

TEST(AdaptiveRuntime, RejectsDegenerateLadders) {
  const QuerySpec spec = FilterQuerySpec(100.0);
  AdaptivePrecisionOptions empty;
  empty.ladder.clear();
  EXPECT_FALSE(AdaptiveRuntime::Make(spec, TightOptions(), empty).ok());
  AdaptivePrecisionOptions shrink;
  shrink.ladder = {PrecisionTier{0.5, 1.0}};
  EXPECT_FALSE(AdaptiveRuntime::Make(spec, TightOptions(), shrink).ok());
  AdaptivePrecisionOptions free_lunch;
  free_lunch.ladder = {PrecisionTier{4.0, 0.0}};
  EXPECT_FALSE(
      AdaptiveRuntime::Make(spec, TightOptions(), free_lunch).ok());
}

// ---------------------------------------------------------------------
// End-to-end adaptive serving session.

serve::ServerOptions AdaptiveServerOptions(int forced_tier) {
  serve::ServerOptions options;
  options.spec = FilterQuerySpec(100.0);
  options.runtime.segmentation.degree = 1;
  options.runtime.segmentation.max_error = 0.05;
  options.session.policy = serve::BackpressurePolicy::kBlock;
  options.session.admission.enabled = false;
  options.session.precision.enabled = true;
  options.session.precision.forced_tier = forced_tier;
  return options;
}

TEST(AdaptiveSession, SettledStreamMatchesStaticSessionOverTheWire) {
  const std::vector<Tuple> trace = PiecewiseTrace(400);

  // Static session.
  serve::ServerOptions static_options = AdaptiveServerOptions(0);
  static_options.session.precision.enabled = false;
  Result<std::unique_ptr<serve::StreamServer>> static_server =
      serve::StreamServer::Make(std::move(static_options));
  ASSERT_TRUE(static_server.ok());
  Result<std::unique_ptr<serve::Transport>> static_conn =
      (*static_server)->ConnectInProcess();
  ASSERT_TRUE(static_conn.ok());
  serve::ServeClient static_client(std::move(*static_conn));
  ASSERT_TRUE(static_client.Hello().ok());
  ASSERT_TRUE(static_client.OpenStream(1, "objects").ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(static_client.SendTuple(1, t).ok());
  }
  Result<serve::ServeClient::DrainResult> static_drained =
      static_client.Drain();
  ASSERT_TRUE(static_drained.ok());
  (*static_server)->Drain();
  ASSERT_FALSE(static_drained->output_segments.empty());
  EXPECT_TRUE(static_drained->provisionals.empty());

  // Adaptive session pinned to a widened tier for the whole run: every
  // answer is provisional until the drain-time reconcile settles them.
  Result<std::unique_ptr<serve::StreamServer>> adaptive_server =
      serve::StreamServer::Make(AdaptiveServerOptions(1));
  ASSERT_TRUE(adaptive_server.ok());
  Result<std::unique_ptr<serve::Transport>> conn =
      (*adaptive_server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  serve::ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(client.SendTuple(1, t).ok());
  }
  Result<serve::ServeClient::DrainResult> drained = client.Drain();
  ASSERT_TRUE(drained.ok());

  // Same settled bytes on the same frame type, despite the detour
  // through the coarse model and the provisional side-band.
  ExpectSameSegments(static_drained->output_segments,
                     drained->output_segments);

  // Wire-level conservation: every provisional got exactly one verdict
  // by the time kDrained arrived, and verdicts only name emitted
  // lineages.
  ASSERT_FALSE(drained->provisionals.empty());
  EXPECT_EQ(drained->provisionals.size(),
            drained->confirmed.size() + drained->retracted.size());
  std::set<uint64_t> emitted;
  for (const auto& p : drained->provisionals) {
    EXPECT_TRUE(emitted.insert(p.lineage).second);
    EXPECT_GT(p.bound, 0.0);
  }
  std::set<uint64_t> judged;
  for (const uint64_t lineage : drained->confirmed) {
    EXPECT_TRUE(emitted.count(lineage) > 0);
    EXPECT_TRUE(judged.insert(lineage).second);
  }
  for (const auto& [lineage, reason] : drained->retracted) {
    EXPECT_TRUE(emitted.count(lineage) > 0);
    EXPECT_TRUE(judged.insert(lineage).second);
    EXPECT_LE(reason, 1);
  }
  EXPECT_EQ(judged.size(), emitted.size());

  // The serve registry mirrors the runtime's accounting (moot in the
  // -DPULSE_NO_METRICS build, where snapshots are empty by design).
  obs::MetricsSnapshot snapshot = (*adaptive_server)->metrics()->Snapshot();
  (*adaptive_server)->Drain();
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(snapshot.counters["precision/provisional"],
              drained->provisionals.size());
    EXPECT_EQ(snapshot.counters["precision/confirmed"],
              drained->confirmed.size());
    EXPECT_EQ(snapshot.counters["precision/retracted"],
              drained->retracted.size());
  }
}

TEST(AdaptiveSession, DisabledPrecisionEmitsNoSideBand) {
  const std::vector<Tuple> trace = PiecewiseTrace(100);
  serve::ServerOptions options = AdaptiveServerOptions(0);
  options.session.precision.enabled = false;
  Result<std::unique_ptr<serve::StreamServer>> server =
      serve::StreamServer::Make(std::move(options));
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<serve::Transport>> conn =
      (*server)->ConnectInProcess();
  ASSERT_TRUE(conn.ok());
  serve::ServeClient client(std::move(*conn));
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.OpenStream(1, "objects").ok());
  for (const Tuple& t : trace) {
    ASSERT_TRUE(client.SendTuple(1, t).ok());
  }
  Result<serve::ServeClient::DrainResult> drained = client.Drain();
  ASSERT_TRUE(drained.ok());
  (*server)->Drain();
  EXPECT_TRUE(drained->provisionals.empty());
  EXPECT_TRUE(drained->confirmed.empty());
  EXPECT_TRUE(drained->retracted.empty());
}

}  // namespace
}  // namespace pulse
