#ifndef PULSE_ENGINE_DISTINCT_H_
#define PULSE_ENGINE_DISTINCT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/operator.h"

namespace pulse {

/// Discrete per-epoch key dedup (the Sonata `distinct` operator): emits
/// the first tuple per (epoch, key) and drops every later one in the
/// same epoch; the next epoch starts fresh. Schema passes through
/// unchanged.
///
/// State is one epoch index per key. Tuples reach an operator in event
/// time order (the executor is push-based over timestamp-ordered
/// streams), so per key the epoch index is non-decreasing and "first in
/// epoch" is exactly "epoch greater than the last emitted one" — the
/// seen-set never needs to hold more than the latest epoch per key, so
/// memory is O(keys), not O(keys x epochs).
class EpochDistinct : public Operator {
 public:
  EpochDistinct(std::string name, std::shared_ptr<const Schema> schema,
                double epoch_seconds, size_t key_index);

  std::shared_ptr<const Schema> output_schema() const override {
    return schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

  double epoch_seconds() const { return epoch_seconds_; }

 private:
  std::shared_ptr<const Schema> schema_;
  double epoch_seconds_;
  size_t key_index_;
  // Latest epoch a tuple was emitted for, per key (int64 entity id).
  std::map<int64_t, int64_t> last_emitted_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_DISTINCT_H_
