// The accuracy-throughput frontier of the adaptive-precision lever
// (docs/PRECISION.md): one row per precision tier, measuring what the
// live (admission-facing) path can sustain when the error budget widens,
// and what the deferred exact replay costs at settlement time.
//
// Method: the same noisy moving-object tuple trace is pushed through an
// AdaptiveRuntime pinned to each tier. At tier 0 every tuple takes the
// exact path (segmentation at the tight budget + solver); at tier k the
// live work is the coarse model (budget x error_scale -> longer pieces,
// fewer solver pushes) plus an O(1) defer, and the exact work happens at
// reconcile. The live service time is what admission latency sees, so
// live tuples/sec at equal admit behavior is the admitted-throughput
// column; the reconcile time is reported separately as settle cost —
// the price of the provisional answers, paid off the latency path.
//
// scripts/check.sh gates on the widest tier sustaining >= 1.3x the
// tier-0 live throughput (BENCH_precision.json, throughput_ratio).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/precision.h"
#include "core/runtime.h"
#include "util/cpu_features.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr size_t kNumTuples = 120000;
constexpr double kTightError = 0.05;

QuerySpec FilterSpecLowX(double threshold) {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec("objects", 5.0));
  FilterSpec filter;
  filter.predicate = Predicate::Comparison(ComparisonTerm::Simple(
      AttrRef::Left("x"), CmpOp::kLt, Operand::Constant(threshold)));
  spec.AddFilter("f", QuerySpec::Input::Stream("objects"), filter);
  return spec;
}

HistoricalRuntime::Options ExactOptions() {
  HistoricalRuntime::Options options;
  options.segmentation.degree = 1;
  options.segmentation.max_error = kTightError;
  options.collect_outputs = true;
  return options;
}

std::vector<Tuple> NoisyTrace() {
  MovingObjectOptions gen;
  gen.num_objects = 20;
  gen.tuple_rate = 2000.0;
  gen.tuples_per_segment = 200;
  gen.noise = 0.15;  // noise above the tight budget: the tier-0
                     // segmenter splits every few samples and pays a
                     // solver push each time — the cost the widened
                     // budgets (0.2, 0.8) then amortize away
  return MovingObjectGenerator(gen).Generate(kNumTuples);
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  const std::vector<Tuple> trace = NoisyTrace();
  // Threshold through the middle of the world: segments cross it, so
  // every push costs real root isolation, not just bookkeeping.
  const QuerySpec spec = FilterSpecLowX(5000.0);
  const AdaptivePrecisionOptions precision;  // the default ladder
  const size_t tiers = precision.ladder.size();
  std::printf(
      "Adaptive-precision frontier: %zu noisy moving-object tuples, "
      "tight budget %.3g, ladder of %zu widened tiers\n",
      trace.size(), kTightError, tiers);

  bench::BenchReport report("precision");
  report.ParamString("workload", "moving_object_filter_noisy");
  report.ParamUint("tuples", trace.size());
  report.ParamDouble("tight_max_error", kTightError);
  report.ParamUint("ladder_tiers", tiers);
  report.ParamString("solver_kernel", SimdLevelName(ActiveSimdLevel()));
  report.ParamUint("hardware_concurrency", bench::HardwareConcurrency());

  bench::SeriesTable table(
      "Accuracy-throughput frontier (live path vs settle cost)", "tier",
      {"live_ktps", "ratio", "settle_s", "provisional", "retracted"});

  double tier0_tps = 0.0;
  obs::MetricsSnapshot last_metrics;
  for (size_t tier = 0; tier <= tiers; ++tier) {
    Result<std::unique_ptr<AdaptiveRuntime>> made =
        AdaptiveRuntime::Make(spec, ExactOptions(), precision);
    if (!made.ok()) {
      std::fprintf(stderr, "AdaptiveRuntime::Make: %s\n",
                   made.status().ToString().c_str());
      return 1;
    }
    AdaptiveRuntime& rt = **made;
    if (!rt.SetTier(tier).ok()) return 1;
    // Live phase: what the admission path experiences per tuple.
    const double live_s = bench::MeasureSeconds([&] {
      for (const Tuple& t : trace) {
        (void)rt.ProcessTuple("objects", t);
      }
    });
    // Settle phase: reconcile + Finish — the deferred exact replay and
    // provisional settlement, off the admission latency path.
    const double settle_s = bench::MeasureSeconds([&] { (void)rt.Finish(); });
    (void)rt.TakeSettledOutputs();
    (void)rt.TakeProvisionals();
    (void)rt.TakeVerdicts();

    const double live_tps = static_cast<double>(trace.size()) / live_s;
    if (tier == 0) tier0_tps = live_tps;
    const double ratio = tier0_tps > 0.0 ? live_tps / tier0_tps : 0.0;
    const PrecisionStats& stats = rt.stats();

    // Paper-style queueing view: offer the stream at just above tier-0
    // capacity; tier 0 falls behind, widened tiers keep up.
    const double offered = 1.1 * tier0_tps;
    const bench::QueueSummary q =
        bench::SimulateQueue(trace.size(), live_s, offered);

    const double error_scale =
        tier == 0 ? 1.0 : precision.ladder[tier - 1].error_scale;
    const double bound =
        tier == 0 ? 0.0 : precision.ladder[tier - 1].output_bound;
    report.AddRow()
        .Uint("tier", tier)
        .Double("error_scale", error_scale)
        .Double("output_bound", bound)
        .Double("live_seconds", live_s)
        .Double("tuples_per_sec", live_tps)
        .Double("throughput_ratio", ratio)
        .Double("settle_seconds", settle_s)
        .Double("offered_tps", offered)
        .Double("achieved_tps", q.achieved_tps)
        .Double("mean_latency_ms", q.mean_latency_s * 1e3)
        .Uint("provisional", stats.provisional)
        .Uint("confirmed", stats.confirmed)
        .Uint("retracted", stats.retracted)
        .Uint("deferred_items", stats.deferred_items)
        .Bool("core_bound", bench::CoreBound(1));
    table.AddRow(static_cast<double>(tier),
                 {live_tps / 1e3, ratio, settle_s,
                  static_cast<double>(stats.provisional),
                  static_cast<double>(stats.retracted)});
    last_metrics = rt.metrics()->Snapshot();
  }
  report.AttachMetrics(last_metrics);
  table.Print();

  if (!report.WriteFile("BENCH_precision.json")) return 1;
  std::printf(
      "\nWrote BENCH_precision.json. Expected shape: live throughput "
      "rises with the tier (fewer solver\npushes per tuple), settle cost "
      "is paid once at reconcile, and the confirmed share stays high\n"
      "because the default bounds are sized to the widened budgets.\n");
  return bench::HandleMetricsOutFlag(argc, argv, last_metrics) ? 0 : 1;
}
