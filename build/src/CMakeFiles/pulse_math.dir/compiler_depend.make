# Empty compiler generated dependencies file for pulse_math.
# This may be replaced when dependencies are built.
