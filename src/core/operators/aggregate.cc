#include "core/operators/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/equation_system.h"
#include "util/logging.h"

namespace pulse {

namespace {
// Contiguity tolerance between consecutive input segments: a gap larger
// than this resets sum/avg window coverage.
constexpr double kGapTolerance = 1e-9;
}  // namespace

PulseMinMaxAggregate::PulseMinMaxAggregate(std::string name,
                                           PulseAggregateOptions options)
    : PulseOperator(std::move(name)), options_(std::move(options)) {
  PULSE_CHECK(options_.fn == AggFn::kMin || options_.fn == AggFn::kMax);
  PULSE_CHECK(options_.window_seconds > 0.0);
  is_min_ = options_.fn == AggFn::kMin;
}

Status PulseMinMaxAggregate::Process(size_t port, const Segment& segment,
                                     SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  PULSE_ASSIGN_OR_RETURN(Polynomial poly,
                         segment.attribute(options_.input_attribute));
  latest_time_ = std::max(latest_time_, segment.range.lo);
  // Bound state: drop envelope pieces older than the window (paper Fig. 3
  // state: S = {([tl,tu), s) | tl > tx - w}). The linear-time sweep runs
  // periodically, not per segment.
  if (latest_time_ - last_expire_ > options_.window_seconds / 16.0) {
    state_.ExpireBefore(latest_time_ - options_.window_seconds);
    lineage_.ExpireBefore(latest_time_ - options_.window_seconds);
    last_expire_ = latest_time_;
  }

  ++metrics_.solves;
  const IntervalSet changed =
      state_.MergeEnvelope(Piece{segment.range, poly}, is_min_);
  for (const Interval& iv : changed.intervals()) {
    if (iv.IsPoint()) continue;  // tangency: no change of measure
    if (options_.finalize) {
      OverrideInsert(FinalPiece{Interval::ClosedOpen(iv.lo, iv.hi), poly,
                                segment.key, segment});
      continue;
    }
    Segment result;
    result.id = NextSegmentId();
    result.key = 0;  // aggregate spans all input keys
    result.range = iv;
    result.set_attribute(options_.output_attribute, poly);
    // Which entity achieves the extremum (argmin/argmax witness).
    result.unmodeled["arg_key"] = static_cast<double>(segment.key);
    lineage_.Record(result.id, iv, {LineageEntry{0, segment}});
    out->push_back(std::move(result));
    ++metrics_.segments_out;
  }
  if (options_.finalize) {
    // Inputs arrive ordered by range.lo, so every change going forward
    // starts at or after this segment's lo: everything before it is
    // settled and safe to release downstream.
    EmitSettled(segment.range.lo, out);
  }
  metrics_.state_size = state_.size();
  return Status::OK();
}

void PulseMinMaxAggregate::OverrideInsert(FinalPiece piece) {
  // Trim existing coverage overlapping the newcomer (the newcomer is the
  // later word on those times), keeping any left/right remainders, then
  // splice the newcomer in at its time-ordered position.
  std::deque<FinalPiece> next;
  bool inserted = false;
  for (FinalPiece& p : pending_) {
    if (p.range.hi <= piece.range.lo) {
      next.push_back(std::move(p));
      continue;
    }
    if (p.range.lo >= piece.range.hi) {
      if (!inserted) {
        next.push_back(piece);
        inserted = true;
      }
      next.push_back(std::move(p));
      continue;
    }
    if (p.range.lo < piece.range.lo) {
      FinalPiece left = p;
      left.range = Interval::ClosedOpen(p.range.lo, piece.range.lo);
      if (!left.range.IsEmpty()) next.push_back(std::move(left));
    }
    if (!inserted) {
      next.push_back(piece);
      inserted = true;
    }
    if (p.range.hi > piece.range.hi) {
      FinalPiece right = std::move(p);
      right.range = Interval::ClosedOpen(piece.range.hi, right.range.hi);
      if (!right.range.IsEmpty()) next.push_back(std::move(right));
    }
  }
  if (!inserted) next.push_back(std::move(piece));
  pending_ = std::move(next);
}

Segment PulseMinMaxAggregate::MakeOutput(const FinalPiece& piece) {
  Segment result;
  result.id = NextSegmentId();
  result.key = 0;  // aggregate spans all input keys
  result.range = piece.range;
  result.set_attribute(options_.output_attribute, piece.poly);
  result.unmodeled["arg_key"] = static_cast<double>(piece.arg_key);
  lineage_.Record(result.id, piece.range, {LineageEntry{0, piece.cause}});
  ++metrics_.segments_out;
  return result;
}

void PulseMinMaxAggregate::EmitSettled(double watermark, SegmentBatch* out) {
  while (!pending_.empty() && pending_.front().range.hi <= watermark) {
    out->push_back(MakeOutput(pending_.front()));
    pending_.pop_front();
  }
}

Status PulseMinMaxAggregate::Flush(SegmentBatch* out) {
  EmitSettled(std::numeric_limits<double>::infinity(), out);
  return Status::OK();
}

namespace {

// Shared inversion body: apportions `base_margin` on `input_attribute`
// across an aggregate output's causing inputs.
Result<std::vector<AllocatedBound>> InvertAggregateBound(
    const LineageStore& lineage, const Segment& output,
    const std::string& attribute, const std::string& input_attribute,
    double base_margin, const SplitHeuristic& split) {
  const std::vector<LineageEntry>* causes = lineage.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  std::vector<const Segment*> inputs;
  inputs.reserve(causes->size());
  for (const LineageEntry& e : *causes) inputs.push_back(&e.input);
  SplitContext ctx;
  ctx.output = &output;
  ctx.attribute = attribute;
  ctx.margin = base_margin;
  ctx.inputs = inputs;
  ctx.input_attribute = input_attribute;
  ctx.num_dependencies = 1;
  PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                         split.Apportion(ctx));
  for (size_t i = 0; i < allocs.size(); ++i) {
    allocs[i].port = (*causes)[i].port;
    allocs[i].segment_id = (*causes)[i].input.id;
  }
  return allocs;
}

}  // namespace

Result<std::vector<AllocatedBound>> PulseMinMaxAggregate::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  if (attribute != options_.output_attribute) {
    return Status::InvalidArgument("unknown aggregate output attribute '" +
                                   attribute + "'");
  }
  // min/max are 1-Lipschitz in the sup norm: a deviation of d on the
  // winning input moves the envelope by at most d, so the margin passes
  // through unchanged before splitting.
  return InvertAggregateBound(lineage_, output, attribute,
                              options_.input_attribute, margin, split);
}

Result<double> PulseMinMaxAggregate::ComputeSlack(
    const Segment& segment) const {
  PULSE_ASSIGN_OR_RETURN(Polynomial poly,
                         segment.attribute(options_.input_attribute));
  // Slack of x(t) - s(t) over the overlap with the stored envelope.
  double slack = std::numeric_limits<double>::infinity();
  for (const Piece& piece : state_.pieces()) {
    const Interval overlap = piece.range.Intersect(segment.range);
    if (overlap.IsEmpty()) continue;
    EquationSystem system;
    system.AddRow(DifferenceEquation{poly - piece.poly,
                                     is_min_ ? CmpOp::kLt : CmpOp::kGt});
    slack = std::min(slack, system.Slack(overlap));
  }
  return slack;
}

PulseSumAvgAggregate::PulseSumAvgAggregate(std::string name,
                                           PulseAggregateOptions options)
    : PulseOperator(std::move(name)), options_(std::move(options)) {
  PULSE_CHECK(options_.fn == AggFn::kSum || options_.fn == AggFn::kAvg);
  PULSE_CHECK(options_.window_seconds > 0.0);
}

size_t PulseSumAvgAggregate::FindStored(double t) const {
  // stored_ is time-ordered and contiguous: binary search, treating
  // ranges as closed on the right so t == range.hi resolves to this
  // piece rather than falling in a crack.
  auto it = std::lower_bound(
      stored_.begin(), stored_.end(), t,
      [](const Stored& s, double value) { return s.range.hi < value; });
  if (it == stored_.end()) return static_cast<size_t>(-1);
  if (t >= it->range.lo && t <= it->range.hi) {
    return static_cast<size_t>(it - stored_.begin());
  }
  return static_cast<size_t>(-1);
}

Status PulseSumAvgAggregate::EmitWindows(double from, double to,
                                         SegmentBatch* out) {
  const double w = options_.window_seconds;
  if (to <= from) return Status::OK();

  // Breakpoints: tail switches stored segments at boundary + w. The head
  // segment is constant over [from, to) by construction (closes lie in
  // the newest segment's range). Only segments whose shifted boundaries
  // can fall in [from, to) matter — binary search the starting index so
  // the arrival cost is independent of the total stored population.
  auto first_it = std::lower_bound(
      stored_.begin(), stored_.end(), from - w,
      [](const Stored& s, double value) { return s.range.hi < value; });
  const size_t first = static_cast<size_t>(first_it - stored_.begin());
  std::vector<double> cuts = {from, to};
  for (size_t i = first; i < stored_.size(); ++i) {
    const Stored& s = stored_[i];
    if (s.range.lo + w >= to) break;
    const double b = s.range.lo + w;
    if (b > from) cuts.push_back(b);
    const double e = s.range.hi + w;
    if (e > from && e < to) cuts.push_back(e);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Prefix sums of full-segment integrals for the middle constant C.
  std::vector<double> prefix(stored_.size() + 1, 0.0);
  for (size_t i = 0; i < stored_.size(); ++i) {
    prefix[i + 1] = prefix[i] + stored_[i].full;
  }

  const size_t head_idx = stored_.size() - 1;
  const Stored& head = stored_.back();

  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const double a = cuts[c];
    const double b = cuts[c + 1];
    const double mid = 0.5 * (a + b);
    const size_t tail_idx = FindStored(mid - w);
    if (tail_idx == static_cast<size_t>(-1)) continue;  // not covered
    const Stored& tail = stored_[tail_idx];

    ++metrics_.solves;
    Polynomial wf;
    if (tail_idx == head_idx) {
      // Window inside one segment (paper Eq. 2):
      // wf(t) = anti(t) - anti(t - w).
      wf = head.anti - head.anti.Shift(-w);
    } else {
      // Multi-segment window: head integral + constant C + tail integral
      // with (t - w)^i expanded by the binomial theorem.
      const Polynomial head_part =
          head.anti - Polynomial::Constant(head.anti.Evaluate(head.range.lo));
      const double c_mid = prefix[head_idx] - prefix[tail_idx + 1];
      const Polynomial tail_part =
          Polynomial::Constant(tail.anti.Evaluate(tail.range.hi)) -
          tail.anti.Shift(-w);
      wf = head_part + tail_part + Polynomial::Constant(c_mid);
    }
    if (options_.fn == AggFn::kAvg) {
      wf = wf * (1.0 / w);
    }

    Segment result;
    result.id = NextSegmentId();
    result.key = 0;
    result.range = Interval::ClosedOpen(a, b);
    result.set_attribute(options_.output_attribute, wf);
    std::vector<LineageEntry> causes;
    for (size_t i = tail_idx; i <= head_idx; ++i) {
      causes.push_back(LineageEntry{0, stored_[i].snapshot});
    }
    lineage_.Record(result.id, result.range, std::move(causes));
    out->push_back(std::move(result));
    ++metrics_.segments_out;
  }
  return Status::OK();
}

Status PulseSumAvgAggregate::Process(size_t port, const Segment& segment,
                                     SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  PULSE_ASSIGN_OR_RETURN(Polynomial poly,
                         segment.attribute(options_.input_attribute));
  if (segment.range.IsEmpty()) return Status::OK();

  const double w = options_.window_seconds;
  if (!have_any_) {
    have_any_ = true;
    coverage_start_ = segment.range.lo;
    last_emit_ = segment.range.lo + w;
  } else if (!stored_.empty()) {
    const double prev_end = stored_.back().range.hi;
    if (segment.range.lo > prev_end + kGapTolerance) {
      // Coverage gap: windows spanning the gap are undefined; restart.
      stored_.clear();
      coverage_start_ = segment.range.lo;
      last_emit_ = segment.range.lo + w;
    } else if (segment.range.lo < prev_end) {
      // Update semantics: the newcomer overrides the overlap; truncate
      // the predecessor and refresh its cached integral.
      Stored& prev = stored_.back();
      prev.range.hi = segment.range.lo;
      prev.range.hi_open = true;
      if (prev.range.IsEmpty()) {
        stored_.pop_back();
      } else {
        prev.full = prev.anti.Evaluate(prev.range.hi) -
                    prev.anti.Evaluate(prev.range.lo);
      }
    }
  }

  Stored entry;
  entry.range = segment.range;
  entry.poly = poly;
  entry.anti = poly.Antiderivative();
  entry.full = entry.anti.Evaluate(segment.range.hi) -
               entry.anti.Evaluate(segment.range.lo);
  entry.id = segment.id;
  entry.key = segment.key;
  entry.snapshot = segment;
  stored_.push_back(std::move(entry));

  // Emit the window functions this segment enables: closes in
  // [max(last_emit_, coverage_start_ + w), segment.range.hi).
  const double from = std::max(last_emit_, coverage_start_ + w);
  const double to = segment.range.hi;
  PULSE_RETURN_IF_ERROR(EmitWindows(from, to, out));
  last_emit_ = std::max(last_emit_, to);

  // Expire cached segments no future window can reach.
  const double horizon = last_emit_ - w;
  while (!stored_.empty() && stored_.front().range.hi < horizon) {
    stored_.pop_front();
  }
  lineage_.ExpireBefore(horizon);
  metrics_.state_size = stored_.size();
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseSumAvgAggregate::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  if (attribute != options_.output_attribute) {
    return Status::InvalidArgument("unknown aggregate output attribute '" +
                                   attribute + "'");
  }
  // avg is 1-Lipschitz in the sup norm over the window: if EVERY input
  // deviates by at most d, the average deviates by at most d — so each
  // causing segment receives the full margin (no division across causes;
  // the sup-norm argument is sound regardless of correlation). sum scales
  // a uniform deviation by the window length, hence margin / w each.
  const double base = options_.fn == AggFn::kAvg
                          ? margin
                          : margin / options_.window_seconds;
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  (void)split;  // sup-norm allocation needs no apportioning heuristic
  std::vector<AllocatedBound> out;
  out.reserve(causes->size());
  for (const LineageEntry& e : *causes) {
    out.push_back(AllocatedBound{e.input.key, options_.input_attribute,
                                 base, e.port, e.input.id});
  }
  return out;
}

Result<std::unique_ptr<PulseOperator>> MakePulseAggregate(
    std::string name, PulseAggregateOptions options) {
  switch (options.fn) {
    case AggFn::kMin:
    case AggFn::kMax:
      return std::unique_ptr<PulseOperator>(
          new PulseMinMaxAggregate(std::move(name), std::move(options)));
    case AggFn::kSum:
    case AggFn::kAvg:
      return std::unique_ptr<PulseOperator>(
          new PulseSumAvgAggregate(std::move(name), std::move(options)));
    case AggFn::kCount:
      return Status::Unimplemented(
          "count is frequency-based and has no continuous-time form "
          "(paper Section III-B, Transformation Limitations)");
  }
  return Status::Internal("unknown aggregate function");
}

}  // namespace pulse
