#ifndef PULSE_SERVE_SERVER_H_
#define PULSE_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "serve/session.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"
#include "shard/shard_pool.h"

namespace pulse {
namespace store {
class SegmentStore;
}  // namespace store
namespace serve {

struct ServerOptions {
  /// The continuous query every session runs. All sessions multiplex
  /// onto one shared shard pool; per-client solver state lives in the
  /// pool's per-shard runtimes (docs/SHARDING.md), so a client's keys
  /// stay isolated without a dedicated runtime per session.
  QuerySpec spec;
  /// Template for the pool's per-shard client runtimes. `metrics` and
  /// `shared_solve_cache` are overridden per shard (see
  /// shard::ShardPoolOptions).
  HistoricalRuntime::Options runtime;
  SessionOptions session;
  /// Shard (worker thread) count for the shared pool. 0 means auto:
  /// one shard per hardware thread — the shard-per-core shape.
  size_t num_shards = 0;
  /// Per-shard exchange queue capacity (items).
  size_t exchange_capacity = 256;
  /// Registry for the server-wide serve/* metric families
  /// (docs/SERVING.md lists them) and the pool's shard/<i>/* mirrors
  /// plus rollups. nullptr: the server owns a private one, reachable
  /// via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional durable mode: every session appends admitted input to
  /// this shared segment store before dispatch, delivered outputs
  /// advance its checkpoint watermark, and Drain() seals it with a
  /// finished checkpoint. With several concurrent sessions the log is
  /// a stream of record across all of them (recovery rebuilds state by
  /// replay; per-connection delivery order is not resumed — see
  /// docs/STORAGE.md). Not owned; must outlive the server.
  store::SegmentStore* store = nullptr;
};

/// Multi-session streaming front-end over the Pulse runtimes: accepts
/// client connections (in-process or TCP), runs one Session per
/// connection multiplexed onto a shared shard-per-core pool, and
/// supports graceful drain of the whole fleet. This is the serving
/// shape the ROADMAP's "production-scale" north star asks for;
/// docs/ARCHITECTURE.md places it in the end-to-end dataflow and
/// docs/SHARDING.md specifies the pool underneath.
class StreamServer {
 public:
  static Result<std::unique_ptr<StreamServer>> Make(ServerOptions options);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Opens an in-process connection and returns the client endpoint
  /// (tests, benches, and the serving differential connect here — same
  /// frame bytes as TCP, no sockets).
  Result<std::unique_ptr<Transport>> ConnectInProcess();

  /// Starts accepting TCP connections on loopback `port` (0 picks an
  /// ephemeral port; see tcp_port()). One background accept thread.
  Status ListenTcp(uint16_t port);
  /// Bound TCP port; 0 when ListenTcp was not called.
  uint16_t tcp_port() const;

  /// Graceful shutdown: stop accepting, drain every session (process
  /// all admitted input, deliver outputs), join all threads.
  void Drain();

  /// Hard shutdown: abort sessions, discard queued input.
  void Shutdown();

  /// Sessions whose threads are still running.
  size_t active_sessions() const;
  /// Sessions ever accepted.
  uint64_t sessions_opened() const;

  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// The shared shard pool all sessions route into.
  const shard::ShardPool& pool() const { return *pool_; }
  size_t num_shards() const { return pool_->num_shards(); }

 private:
  explicit StreamServer(ServerOptions options);

  Status AddSession(std::unique_ptr<Transport> transport);
  void AcceptLoop();
  /// Drops finished sessions (join + destroy); called opportunistically
  /// on connect and from the shutdown paths.
  void ReapLocked();
  void UpdateSessionMetricsLocked();

  ServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* c_opened_ = nullptr;
  obs::Counter* c_closed_ = nullptr;
  obs::Gauge* g_active_ = nullptr;

  // Declared before sessions_: sessions hold ShardClients into the
  // pool, so they must be destroyed first (reverse declaration order).
  std::unique_ptr<shard::ShardPool> pool_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  bool shutdown_ = false;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_SERVER_H_
