#ifndef PULSE_UTIL_ATOMIC_COUNTER_H_
#define PULSE_UTIL_ATOMIC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace pulse {

/// Drop-in replacement for a uint64_t statistics counter that stays
/// truthful when operators fan work out across a ThreadPool. All
/// operations use relaxed ordering: counters order nothing, they only
/// have to count. Copy and assignment take value snapshots so the
/// metrics structs keep their plain-struct semantics (Reset via
/// `*this = {}`, roll-ups via `a += b`).
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t v) : v_(v) {}  // NOLINT: implicit by design
  RelaxedCounter(const RelaxedCounter& other) : v_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return value(); }  // NOLINT: implicit by design

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace pulse

#endif  // PULSE_UTIL_ATOMIC_COUNTER_H_
