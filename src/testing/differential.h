#ifndef PULSE_TESTING_DIFFERENTIAL_H_
#define PULSE_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "testing/plan_gen.h"
#include "util/result.h"

namespace pulse {
namespace testing {

/// One observed disagreement. The harness reports the first few in full
/// (time, key, attribute, both values) so a failure is actionable without
/// rerunning under a debugger.
struct Divergence {
  /// Which check fired, e.g. "pointwise.uncovered", "aggregate.value",
  /// "metamorphic.threads4".
  std::string check;
  double time = 0.0;
  Key key = 0;
  std::string attribute;
  double expected = 0.0;
  double actual = 0.0;
  std::string detail;

  std::string ToString() const;
};

struct DiffOptions {
  /// Thread count of the parallel metamorphic variants (the N in the
  /// threads-1-vs-N comparison).
  size_t parallel_threads = 4;
  /// Shard counts of the sharded metamorphic variants: the same segment
  /// feed replayed through the shard-per-core ShardedRuntime must be
  /// byte-identical to the serial unsharded run for every count
  /// (docs/SHARDING.md determinism contract). Each count runs twice —
  /// once serial-per-shard with the solve cache on, once with
  /// parallel_threads per shard and the cache off — so the grid spans
  /// threads x cache x shards. Empty disables the sharded variants.
  std::vector<size_t> shard_counts = {2, 3};
  /// Stop collecting divergences past this count (a broken operator
  /// would otherwise report one per grid point).
  size_t max_divergences = 8;
  /// Also push the segment feed through the in-process serving
  /// transport (frame codec -> session queues -> micro-batched worker
  /// -> drain; lossless kBlock configuration) and require the delivered
  /// outputs to be byte-identical to the direct replay — proving
  /// serving-layer batching/backpressure never change query answers,
  /// only admission (docs/SERVING.md).
  bool serving_variant = true;
  /// Kill-and-restore variant (docs/STORAGE.md): run the feed to a
  /// seed-derived midpoint against a durable SegmentStore in a private
  /// temp directory, checkpoint, destroy every piece of process state,
  /// recover from disk, then finish the remainder of the feed. The
  /// concatenation delivered-prefix ++ recovered-pending ++
  /// post-restore outputs must be byte-identical to the uninterrupted
  /// run — the crash-consistency contract of the tiered segment store.
  bool kill_restore_variant = true;
  /// Replay the feed with solver dispatch pinned to the scalar kernels
  /// (SetSimdOverrideForTesting) — serial, parallel + cache-off, and
  /// sharded — and require byte-identity with the SIMD-batched base run.
  /// This is the determinism contract of the batched kernels: vector
  /// lanes reproduce the scalar closed forms bit for bit
  /// (docs/PERFORMANCE.md, "Batched solver kernels").
  bool forced_scalar_variant = true;
  /// Adaptive-precision variant (docs/PRECISION.md): replay the feed
  /// through an AdaptiveRuntime under a seed-derived tier schedule
  /// (exact / widened / tier-to-tier moves across the middle third) and
  /// require (a) the settled output stream byte-identical to the static
  /// base run, (b) conservation — every provisional settles exactly
  /// once, provisional == confirmed + retracted and nothing open after
  /// Finish — and (c) every confirm/retract references a previously
  /// emitted provisional lineage.
  bool precision_variant = true;
};

/// Result of one differential run. `ok()` means: the discrete engine and
/// the Pulse runtime agreed everywhere the bound-aware matcher requires
/// agreement, and all metamorphic Pulse variants (solve cache on/off,
/// serial/parallel) produced byte-identical output.
struct DiffReport {
  uint64_t seed = 0;
  std::string description;
  std::vector<Divergence> divergences;
  /// Total divergence count (reporting stops at max_divergences).
  size_t divergence_count = 0;
  size_t discrete_output_tuples = 0;
  size_t pulse_output_segments = 0;
  /// Number of metrics invariants evaluated (0 only when the registry is
  /// compiled out via PULSE_NO_METRICS) — lets tests assert the metrics
  /// checks are not vacuous.
  size_t metrics_checks = 0;

  bool ok() const { return divergence_count == 0; }
  /// Failure message including the replay seed.
  std::string ToString() const;
};

/// Runs `kase` through the discrete executor (densely sampled tuples) and
/// the Pulse runtime (exact model segments, four metamorphic variants),
/// then matches outputs per kase.sink (see docs/TESTING.md for the oracle
/// design and tolerance rationale). Both runs report through a
/// MetricsRegistry, and the harness additionally checks the metrics
/// invariants of docs/OBSERVABILITY.md: per-operator counter name parity
/// across realizations, the solve-cache accounting identity, no pool
/// tasks when serial, and parallel wall time <= accumulated cpu time.
Result<DiffReport> RunDifferential(const GeneratedCase& kase,
                                   const DiffOptions& options = {});

/// Convenience wrapper: GenerateCase(seed) + RunDifferential.
Result<DiffReport> RunDifferentialSeed(uint64_t seed,
                                       const PlanGenOptions& gen = {},
                                       const DiffOptions& options = {});

}  // namespace testing
}  // namespace pulse

#endif  // PULSE_TESTING_DIFFERENTIAL_H_
