# Empty compiler generated dependencies file for macd_monitor.
# This may be replaced when dependencies are built.
