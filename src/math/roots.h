#ifndef PULSE_MATH_ROOTS_H_
#define PULSE_MATH_ROOTS_H_

#include <functional>
#include <vector>

#include "math/interval_set.h"
#include "math/polynomial.h"
#include "util/result.h"

namespace pulse {

/// Comparison operators appearing in predicates (paper Section III-A:
/// "<, <=, =, !=, >=, >").
enum class CmpOp { kLt, kLe, kEq, kNe, kGe, kGt };

/// SQL-ish spelling: "<", "<=", "=", "<>", ">=", ">".
const char* CmpOpToString(CmpOp op);

/// The operator R' such that (x R y) == (y R' x). kEq/kNe are symmetric.
CmpOp FlipCmpOp(CmpOp op);

/// The operator !R: negation of the comparison.
CmpOp NegateCmpOp(CmpOp op);

/// True when `op` admits equality (kLe, kGe, kEq).
bool CmpOpIncludesEquality(CmpOp op);

/// Root-finding strategy selection for FindRealRoots.
///  - kAuto: closed forms through degree 3, Sturm bisection above.
///  - kClosedForm: fails (returns empty) above degree 3; for ablation.
///  - kNewtonPolish: Sturm isolation, Newton convergence inside brackets.
///  - kBrent: Sturm isolation, Brent convergence inside brackets.
///  - kBisection: Sturm isolation, plain bisection (reference, slowest).
enum class RootMethod { kAuto, kClosedForm, kNewtonPolish, kBrent,
                        kBisection };

/// Absolute tolerance used to deduplicate and converge roots.
inline constexpr double kRootTolerance = 1e-10;

/// Caller-provided scratch for the root-finding / comparison-solving hot
/// path. All temporary buffers (Sturm chain, root lists, sign-test cells)
/// live here so repeated solves reuse warm storage instead of allocating
/// (docs/PERFORMANCE.md). A scratch is single-threaded state: parallel
/// solvers keep one per worker (thread_local in SolveSystems).
struct RootScratch {
  // Reused Sturm chain; entries beyond the current chain keep their
  // coefficient buffers warm.
  std::vector<Polynomial> sturm;
  // Root accumulator for FindRealRootsInto.
  std::vector<double> roots;
  // Sign-test cut points (domain endpoints + interior roots).
  std::vector<double> cuts;
  // Candidate solution intervals before normalization.
  std::vector<Interval> cells;
  // Temporary buffer for IntervalSet::IntersectWith at solver call sites.
  std::vector<Interval> interval_scratch;
  // Scratch set for complement-based paths (kNe).
  IntervalSet set_scratch;
  // Polynomial temporaries for square-free reduction and division.
  Polynomial square_free;
  Polynomial derivative;
  Polynomial quot;
  Polynomial rem;
};

/// All real roots of p in the closed interval [lo, hi], ascending and
/// deduplicated to kRootTolerance. Multiple roots are reported once
/// (the polynomial is made square-free before isolation). The zero
/// polynomial yields no roots (callers handle the everywhere-zero case).
std::vector<double> FindRealRoots(const Polynomial& p, double lo, double hi,
                                  RootMethod method = RootMethod::kAuto);

/// Scratch form of FindRealRoots: leaves the roots in scratch->roots
/// (cleared first). Degree <= 3 dispatches to closed forms before any
/// Sturm machinery is touched; no allocation happens once the scratch is
/// warm and the polynomial fits the inline buffer.
void FindRealRootsInto(const Polynomial& p, double lo, double hi,
                       RootMethod method, RootScratch* scratch);

/// Brent's method (Brent 1973, the paper's cited solver) on a bracketing
/// interval: requires sign(f(a)) != sign(f(b)). Combines bisection, secant
/// and inverse quadratic interpolation.
Result<double> BrentRoot(const std::function<double(double)>& f, double a,
                         double b, double tol = kRootTolerance,
                         int max_iter = 128);

/// Newton-Raphson on a polynomial from the initial guess x0. Fails with
/// NumericError on divergence or a vanishing derivative.
Result<double> NewtonRoot(const Polynomial& p, double x0,
                          double tol = kRootTolerance, int max_iter = 64);

/// Polynomial long division: num = quot * den + rem, deg(rem) < deg(den).
/// `den` must be non-zero.
void DividePolynomials(const Polynomial& num, const Polynomial& den,
                       Polynomial* quot, Polynomial* rem);

/// Greatest common divisor by the Euclidean algorithm (monic-normalized).
Polynomial PolynomialGcd(const Polynomial& a, const Polynomial& b);

/// Sturm sequence of p: p0 = p, p1 = p', p_{k+1} = -rem(p_{k-1}, p_k).
std::vector<Polynomial> SturmSequence(const Polynomial& p);

/// Scratch form: builds the chain into scratch->sturm, reusing the
/// vector and each entry's coefficient storage across calls.
void SturmSequenceInto(const Polynomial& p, RootScratch* scratch);

/// Number of distinct real roots of (square-free) p in (a, b], via Sturm
/// sign-change counting.
int CountRootsInInterval(const std::vector<Polynomial>& sturm, double a,
                         double b);

/// Solves the scalar comparison p(t) R 0 over `domain`, returning the set
/// of times where the predicate holds. This is one row of the paper's
/// simultaneous equation system (Eq. 1): root finding plus sign tests
/// yields a set of time ranges (Section III-A). Equality rows produce
/// point intervals; strict inequalities produce open boundaries.
IntervalSet SolveComparison(const Polynomial& p, CmpOp op,
                            const Interval& domain,
                            RootMethod method = RootMethod::kAuto);

/// Scratch form of SolveComparison: writes the solution into *out,
/// reusing both the scratch buffers and out's interval storage.
void SolveComparisonInto(const Polynomial& p, CmpOp op,
                         const Interval& domain, RootMethod method,
                         RootScratch* scratch, IntervalSet* out);

}  // namespace pulse

#endif  // PULSE_MATH_ROOTS_H_
