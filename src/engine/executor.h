#ifndef PULSE_ENGINE_EXECUTOR_H_
#define PULSE_ENGINE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "engine/tuple.h"
#include "util/result.h"

namespace pulse {

/// Single-threaded push executor for a QueryPlan.
///
/// PushTuple drives one tuple through the DAG to completion (depth-first
/// routing with an explicit work queue), collecting tuples that reach
/// sink operators. This is the Borealis-style per-tuple processing loop
/// the paper's discrete measurements go through.
class Executor {
 public:
  /// Validates the plan (acyclic); takes shared ownership of operators.
  static Result<Executor> Make(QueryPlan plan);

  /// Pushes a tuple on the named source stream and runs the dataflow to
  /// quiescence. Fails if the stream has no bindings.
  Status PushTuple(const std::string& stream, const Tuple& tuple);

  /// Punctuates all operators with event time t (topological order).
  Status AdvanceTime(double t);

  /// End-of-stream: flushes every operator.
  Status Finish();

  /// Tuples that reached sink operators since the last TakeOutput.
  std::vector<Tuple>& output() { return output_; }
  std::vector<Tuple> TakeOutput();

  /// Total tuples ever delivered to sinks.
  uint64_t total_output() const { return total_output_; }

  /// Optional per-result callback; when set, outputs still accumulate in
  /// output() unless discard_output(true).
  void set_output_callback(std::function<void(const Tuple&)> cb) {
    callback_ = std::move(cb);
  }
  /// When true, sink tuples are counted and passed to the callback but
  /// not stored (long benchmark runs).
  void set_discard_output(bool discard) { discard_output_ = discard; }

  const QueryPlan& plan() const { return plan_; }
  QueryPlan& plan() { return plan_; }

 private:
  explicit Executor(QueryPlan plan) : plan_(std::move(plan)) {}

  // Routes `tuples` produced by `from` to its downstream operators,
  // processing transitively until quiescence.
  Status Drain(QueryPlan::NodeId from, std::vector<Tuple> tuples);
  void DeliverToSink(const Tuple& tuple);

  QueryPlan plan_;
  std::vector<QueryPlan::NodeId> topo_order_;
  std::vector<Tuple> output_;
  uint64_t total_output_ = 0;
  std::function<void(const Tuple&)> callback_;
  bool discard_output_ = false;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_EXECUTOR_H_
