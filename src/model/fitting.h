#ifndef PULSE_MODEL_FITTING_H_
#define PULSE_MODEL_FITTING_H_

#include <vector>

#include "math/polynomial.h"
#include "util/result.h"

namespace pulse {

/// A (time, value) sample of a modeled attribute.
struct Sample {
  double t = 0.0;
  double value = 0.0;
};

/// Least-squares fit of a degree-`degree` polynomial to `samples`
/// (Vandermonde normal equations). Needs at least degree+1 samples.
/// Times are used as-is; callers who want segment-local coefficients
/// shift the samples before fitting.
Result<Polynomial> FitPolynomial(const std::vector<Sample>& samples,
                                 size_t degree);

/// Maximum absolute residual of `p` over `samples`: the paper's absolute
/// error metric between a model and the tuples it represents (Section IV).
double MaxAbsResidual(const Polynomial& p, const std::vector<Sample>& samples);

/// Root-mean-square residual of `p` over `samples`.
double RmsResidual(const Polynomial& p, const std::vector<Sample>& samples);

/// Convenience: best constant fit (the mean value).
Result<Polynomial> FitConstant(const std::vector<Sample>& samples);

/// Convenience: straight-line fit.
Result<Polynomial> FitLine(const std::vector<Sample>& samples);

}  // namespace pulse

#endif  // PULSE_MODEL_FITTING_H_
