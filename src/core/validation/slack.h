#ifndef PULSE_CORE_VALIDATION_SLACK_H_
#define PULSE_CORE_VALIDATION_SLACK_H_

#include <cstdint>
#include <string_view>
#include <map>
#include <string>

#include "core/validation/bounds.h"
#include "model/segment.h"

namespace pulse {

/// Validation mode per entity (paper Section IV): Pulse alternates
/// between accuracy validation (the previous input produced results, so
/// arriving tuples are checked against inverted accuracy bounds) and
/// slack validation (the previous input yielded a null result; arriving
/// tuples are ignored until their deviation from the model exceeds the
/// slack — the distance to the nearest predicate flip).
enum class ValidationMode { kAccuracy, kSlack };

/// Per-key validation state machine with counters. This is the component
/// that lets the solver run "infrequently and only in the presence of
/// errors, or no previously known results".
class AlternatingValidator {
 public:
  /// `bounds` must outlive the validator.
  explicit AlternatingValidator(const BoundRegistry* bounds);

  /// Records the outcome of the last solve for `key`: whether it produced
  /// output, and — when it did not — the slack of the equation system.
  void ObserveResult(Key key, bool produced_output, double slack);

  /// Checks one arriving tuple value against the model prediction.
  /// Returns true when the tuple is *explained*: within the accuracy
  /// margin (accuracy mode) or within the slack (slack mode). An
  /// explained tuple is dropped without touching the solver. False means
  /// a violation: the caller must rebuild the model and reprocess.
  bool Validate(Key key, std::string_view attribute, double predicted,
                double actual);

  ValidationMode mode(Key key) const;

  /// Registered slack for `key` (infinity when never observed null).
  double slack(Key key) const;

  uint64_t accuracy_checks() const { return accuracy_checks_; }
  uint64_t slack_checks() const { return slack_checks_; }
  uint64_t violations() const { return violations_; }
  void ResetCounters();

 private:
  struct KeyState {
    ValidationMode mode = ValidationMode::kAccuracy;
    double slack = 0.0;
  };

  const BoundRegistry* bounds_;
  std::map<Key, KeyState> states_;
  uint64_t accuracy_checks_ = 0;
  uint64_t slack_checks_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace pulse

#endif  // PULSE_CORE_VALIDATION_SLACK_H_
