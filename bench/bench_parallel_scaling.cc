// Parallel solver scaling on the Fig. 7 proximity-join workload, plus
// shard-per-core scaling on a partitionable per-key aggregate.
//
// Sweep 1 (mode "threads"): the paper's Fig. 7ii moving-object
// self-join (distance predicate => one degree-4 equation system per
// overlapping segment pair), driven in historical/segment mode so the
// equation-system solver dominates and widened to a multi-second window
// so every pushed segment probes a meaningful partner population. The
// same trace is replayed at 1/2/4/8 solver threads
// (ParallelOptions::num_threads).
//
// Sweep 2 (mode "shards"): the same moving-object trace through a
// per-key windowed aggregate — a partitionable plan, so the
// shard::ShardedRuntime spreads keys over num_shards worker shards
// (docs/SHARDING.md). The Fig. 7 join itself is deliberately NOT used
// here: require_distinct_keys makes it cross-key, which the router
// collapses to one shard. num_shards sweeps {1, 2, 4, hw}.
//
// Expected shape: near-linear speedup while workers <= physical cores,
// flattening at the core count. On hosts with fewer cores than a
// configuration's worker count the extra threads time-slice one core
// and the speedup stays ~1x — each row's core_bound flag marks those
// configurations and the JSON records hardware_concurrency, so
// trajectories from different hosts stay comparable.
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "shard/sharded_runtime.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

constexpr double kArea = 1000.0;
constexpr size_t kNumObjects = 32;
constexpr double kRate = 800.0;      // aggregate tuples/second
constexpr double kDuration = 60.0;   // seconds of stream
constexpr size_t kTuplesPerModel = 40;
constexpr double kWindowSeconds = 4.0;

std::vector<Tuple> MakeTrace() {
  MovingObjectOptions opts;
  opts.num_objects = kNumObjects;
  opts.tuple_rate = kRate;
  opts.tuples_per_segment = kTuplesPerModel;
  opts.area = kArea;
  opts.noise = 0.0;
  return MovingObjectGenerator(opts).Generate(
      static_cast<size_t>(kRate * kDuration));
}

QuerySpec ProximityJoin() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec(
      "objects", 100.0 * kNumObjects / kRate));
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kArea / 10.0));
  join.window_seconds = kWindowSeconds;
  join.require_distinct_keys = true;
  spec.AddJoin("join", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);
  return spec;
}

struct RunResult {
  size_t threads = 0;
  size_t num_shards = 1;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  uint64_t tasks_spawned = 0;
  uint64_t solves = 0;
  // Registry snapshot after the run; the widest configuration's snapshot
  // becomes the BENCH JSON `metrics` block (parallel cpu/wall counters).
  obs::MetricsSnapshot metrics;
};

// The partitionable workload of the sharded sweep: per-key windowed
// average over the same trace. Every key's state is independent, so
// AnalyzePartitionability accepts it and the router spreads the keys.
QuerySpec PerKeyAggregate() {
  QuerySpec spec;
  (void)spec.AddStream(MovingObjectGenerator::MakeStreamSpec(
      "objects", 100.0 * kNumObjects / kRate));
  AggregateSpec agg;
  agg.fn = AggFn::kAvg;
  agg.attribute = "x";
  agg.output_attribute = "avg_x";
  agg.window_seconds = 2.0;
  agg.slide_seconds = 2.0;
  agg.per_key = true;
  spec.AddAggregate("agg", QuerySpec::Input::Stream("objects"), agg);
  return spec;
}

RunResult RunOnce(const std::vector<Tuple>& trace, size_t threads) {
  const QuerySpec spec = ProximityJoin();
  HistoricalRuntime::Options opts;
  opts.segmentation.degree = 1;
  opts.segmentation.max_error = 0.5;
  opts.segmentation.max_points_per_segment = kTuplesPerModel;
  opts.collect_outputs = false;
  opts.parallel.num_threads = threads;
  Result<HistoricalRuntime> rt = HistoricalRuntime::Make(spec, opts);
  if (!rt.ok()) {
    std::fprintf(stderr, "runtime setup failed: %s\n",
                 rt.status().ToString().c_str());
    return RunResult{};
  }
  RunResult result;
  result.threads = threads;
  result.seconds = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) {
      (void)rt->ProcessTuple("objects", t);
    }
    (void)rt->Finish();
  });
  result.tuples_per_sec = static_cast<double>(trace.size()) / result.seconds;
  result.tasks_spawned = rt->stats().tasks_spawned;
  for (size_t n = 0; n < rt->plan().num_nodes(); ++n) {
    result.solves += rt->plan().node(n)->metrics().solves;
  }
  result.metrics = rt->metrics()->Snapshot();
  return result;
}

// One sharded-sweep configuration: the per-key aggregate trace pushed
// through a ShardedRuntime with `num_shards` worker shards, one solver
// thread per shard (the shard IS the parallelism unit here).
RunResult RunSharded(const std::vector<Tuple>& trace, size_t num_shards) {
  const QuerySpec spec = PerKeyAggregate();
  shard::ShardedRuntimeOptions options;
  options.num_shards = num_shards;
  options.runtime.segmentation.degree = 1;
  options.runtime.segmentation.max_error = 0.5;
  options.runtime.segmentation.max_points_per_segment = kTuplesPerModel;
  options.runtime.collect_outputs = false;
  Result<shard::ShardedRuntime> rt =
      shard::ShardedRuntime::Make(spec, std::move(options));
  if (!rt.ok()) {
    std::fprintf(stderr, "sharded runtime setup failed: %s\n",
                 rt.status().ToString().c_str());
    return RunResult{};
  }
  RunResult result;
  result.threads = 1;
  result.num_shards = rt->num_shards();
  result.seconds = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) {
      (void)rt->ProcessTuple("objects", t);
    }
    (void)rt->Finish();
  });
  result.tuples_per_sec = static_cast<double>(trace.size()) / result.seconds;
  result.tasks_spawned = rt->stats().tasks_spawned;
  rt->SyncMetrics();
  result.metrics = rt->metrics()->Snapshot();
  // Solves summed across shards from the rollup (the sharded runtime has
  // no single plan to walk; the op/<node>/solves rollup is the same
  // number aggregated by the metrics layer).
  for (const auto& [name, value] : result.metrics.counters) {
    if (name.rfind("op/", 0) == 0 &&
        name.size() > 7 &&
        name.compare(name.size() - 7, 7, "/solves") == 0) {
      result.solves += value;
    }
  }
  return result;
}

}  // namespace
}  // namespace pulse

int main(int argc, char** argv) {
  using namespace pulse;
  const unsigned cores = bench::HardwareConcurrency();
  std::printf(
      "Parallel scaling: Fig. 7 proximity join, %zu objects, %g s of "
      "stream, window %g s (host reports %u hardware threads)\n",
      kNumObjects, kDuration, kWindowSeconds, cores);

  const std::vector<Tuple> trace = MakeTrace();
  // Cap the sweep at the host's core count: thread counts beyond it
  // time-slice one core and measure scheduler overhead, not scaling.
  // When hardware_concurrency is unknown (0) the full sweep runs and
  // each row's core_bound flag marks configurations that may be
  // over-subscribed.
  std::vector<size_t> thread_counts;
  for (size_t threads : {1, 2, 4, 8}) {
    if (cores > 0 && threads > cores) {
      std::printf(
          "  (skipping %zu threads: exceeds %u hardware threads)\n",
          threads, cores);
      continue;
    }
    thread_counts.push_back(threads);
  }

  bench::SeriesTable table(
      "Parallel equation-system solving: tuples/sec vs solver threads",
      "threads", {"tuples_per_sec", "speedup", "solves", "tasks_spawned"});

  std::vector<RunResult> results;
  double serial_tps = 0.0;
  for (size_t threads : thread_counts) {
    const RunResult r = RunOnce(trace, threads);
    if (r.threads == 0) return 1;
    if (threads == 1) serial_tps = r.tuples_per_sec;
    results.push_back(r);
    table.AddRow(static_cast<double>(threads),
                 {r.tuples_per_sec, r.tuples_per_sec / serial_tps,
                  static_cast<double>(r.solves),
                  static_cast<double>(r.tasks_spawned)});
  }
  table.Print();

  // Sharded sweep: {1, 2, 4, hw} shards (deduplicated) over the
  // partitionable per-key aggregate. Unlike the thread sweep, counts
  // beyond the core count still run — the row's core_bound flag marks
  // them so the check.sh gate knows the speedup number is meaningless
  // on this host rather than silently comparing it.
  std::set<size_t> shard_counts = {1, 2, 4};
  if (cores > 0) shard_counts.insert(static_cast<size_t>(cores));
  bench::SeriesTable shard_table(
      "Shard-per-core scaling: per-key aggregate, tuples/sec vs shards",
      "num_shards", {"tuples_per_sec", "speedup", "solves"});
  std::vector<RunResult> shard_results;
  double shard_serial_tps = 0.0;
  for (size_t shards : shard_counts) {
    const RunResult r = RunSharded(trace, shards);
    if (r.num_shards == 0) return 1;
    if (shards == 1) shard_serial_tps = r.tuples_per_sec;
    shard_results.push_back(r);
    shard_table.AddRow(static_cast<double>(shards),
                       {r.tuples_per_sec, r.tuples_per_sec / shard_serial_tps,
                        static_cast<double>(r.solves)});
  }
  std::printf("\n");
  shard_table.Print();

  bench::BenchReport report("parallel_scaling");
  report.ParamString("workload", "fig7_proximity_join");
  report.ParamString("sharded_workload", "per_key_aggregate");
  report.ParamUint("num_objects", kNumObjects);
  report.ParamDouble("window_seconds", kWindowSeconds);
  report.ParamUint("tuples", trace.size());
  report.ParamUint("hardware_concurrency", cores);
  for (const RunResult& r : results) {
    report.AddRow()
        .String("mode", "threads")
        .Uint("threads", r.threads)
        .Uint("num_shards", 1)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", r.tuples_per_sec)
        .Double("speedup", r.tuples_per_sec / serial_tps)
        .Uint("solves", r.solves)
        .Uint("tasks_spawned", r.tasks_spawned)
        .Bool("core_bound", bench::CoreBound(r.threads));
  }
  for (const RunResult& r : shard_results) {
    report.AddRow()
        .String("mode", "shards")
        .Uint("threads", r.threads)
        .Uint("num_shards", r.num_shards)
        .Double("seconds", r.seconds)
        .Double("tuples_per_sec", r.tuples_per_sec)
        .Double("speedup", r.tuples_per_sec / shard_serial_tps)
        .Uint("solves", r.solves)
        .Uint("tasks_spawned", r.tasks_spawned)
        .Bool("core_bound", bench::CoreBound(r.num_shards));
  }
  // The widest thread configuration's registry snapshot (the run whose
  // runtime/parallel_solve_{cpu,wall}_ns counters matter most).
  report.AttachMetrics(results.back().metrics);
  if (!report.WriteFile("BENCH_parallel_scaling.json")) return 1;
  std::printf(
      "\nWrote BENCH_parallel_scaling.json. Expected shape: near-linear "
      "speedup up to the\nphysical core count (>= 2.5x at 4 threads or "
      "shards on a >= 4-core host); ~1x on\nfewer cores (rows marked "
      "core_bound).\n");
  if (!bench::HandleMetricsOutFlag(argc, argv, results.back().metrics)) {
    return 1;
  }
  return 0;
}
