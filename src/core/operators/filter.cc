#include "core/operators/filter.h"

#include <set>

#include "util/logging.h"

namespace pulse {

AttrResolver MakeUnaryResolver(const Segment& segment) {
  return [&segment](const AttrRef& ref) -> Result<Polynomial> {
    if (ref.side != Side::kLeft) {
      return Status::InvalidArgument(
          "unary operator predicate references right side");
    }
    return segment.attribute(ref.name);
  };
}

PulseFilter::PulseFilter(std::string name, Predicate predicate,
                         RootMethod method)
    : PulseOperator(std::move(name)),
      predicate_(std::move(predicate)),
      method_(method) {}

Status PulseFilter::Process(size_t port, const Segment& segment,
                            SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  ++metrics_.solves;
  const AttrResolver resolver = MakeUnaryResolver(segment);
  // Filters solve on the pushing thread only, so one warm scratch (and
  // its reused solution set) serves every Process call.
  static thread_local SolveScratch scratch;
  IntervalSet solution;
  PULSE_RETURN_IF_ERROR(predicate_.SolveInto(resolver, segment.range,
                                             method_, &scratch,
                                             solve_cache_, &solution));
  for (const Interval& iv : solution.intervals()) {
    Segment result = segment;
    result.id = NextSegmentId();
    result.range = iv;
    lineage_.Record(result.id, iv, {LineageEntry{0, segment}});
    out->push_back(std::move(result));
    ++metrics_.segments_out;
  }
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseFilter::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  const std::vector<LineageEntry>* causes = lineage_.Lookup(output.id);
  if (causes == nullptr) {
    return Status::NotFound("no lineage for output segment " +
                            std::to_string(output.id));
  }
  // Dependencies D(o) = translations ∪ inferences: the requested attribute
  // itself (filters pass attributes through unchanged) plus every
  // predicate attribute the result is constrained by (Section IV-B).
  std::set<std::string> deps = {attribute};
  std::vector<AttrRef> refs;
  predicate_.CollectAttributes(&refs);
  for (const AttrRef& ref : refs) deps.insert(ref.name);

  std::vector<const Segment*> inputs;
  inputs.reserve(causes->size());
  for (const LineageEntry& e : *causes) inputs.push_back(&e.input);

  std::vector<AllocatedBound> out;
  for (const std::string& dep : deps) {
    SplitContext ctx;
    ctx.output = &output;
    ctx.attribute = attribute;
    ctx.margin = margin;
    ctx.inputs = inputs;
    ctx.input_attribute = dep;
    ctx.num_dependencies = deps.size();
    PULSE_ASSIGN_OR_RETURN(std::vector<AllocatedBound> allocs,
                           split.Apportion(ctx));
    for (size_t i = 0; i < allocs.size(); ++i) {
      allocs[i].port = (*causes)[i].port;
      allocs[i].segment_id = (*causes)[i].input.id;
      out.push_back(std::move(allocs[i]));
    }
  }
  return out;
}

Result<double> PulseFilter::ComputeSlack(const Segment& segment) const {
  if (!predicate_.IsConjunctive()) {
    // No single equation system exists; force revalidation.
    return 0.0;
  }
  const AttrResolver resolver = MakeUnaryResolver(segment);
  PULSE_ASSIGN_OR_RETURN(EquationSystem system,
                         predicate_.BuildSystem(resolver));
  return system.Slack(segment.range);
}

}  // namespace pulse
