#ifndef PULSE_ENGINE_EPOCH_H_
#define PULSE_ENGINE_EPOCH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/operator.h"

namespace pulse {

/// Epoch index of absolute time `t` under tumbling epochs of length
/// `epoch_seconds` with origin 0: floor(t / E). Epochs are half-open
/// [k*E, (k+1)*E) — the boundary instant belongs to the *next* epoch.
/// Shared by the discrete operator, the Pulse operator and the
/// differential oracle so all three agree bitwise on attribution.
int64_t EpochIndexOf(double t, double epoch_seconds);

/// Discrete tumbling-epoch marker (the Sonata `epoch` operator): appends
/// an int64 epoch-index column to every tuple and passes it through. The
/// column is what downstream per-epoch operators (distinct, per-epoch
/// grouping) key their state resets on.
class EpochMark : public Operator {
 public:
  EpochMark(std::string name, std::shared_ptr<const Schema> input_schema,
            double epoch_seconds, std::string output_attribute = "epoch");

  std::shared_ptr<const Schema> output_schema() const override {
    return schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

  double epoch_seconds() const { return epoch_seconds_; }

 private:
  std::shared_ptr<const Schema> schema_;
  double epoch_seconds_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_EPOCH_H_
