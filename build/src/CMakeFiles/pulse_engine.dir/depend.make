# Empty dependencies file for pulse_engine.
# This may be replaced when dependencies are built.
