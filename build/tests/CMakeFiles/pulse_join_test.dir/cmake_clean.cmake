file(REMOVE_RECURSE
  "CMakeFiles/pulse_join_test.dir/pulse_join_test.cc.o"
  "CMakeFiles/pulse_join_test.dir/pulse_join_test.cc.o.d"
  "pulse_join_test"
  "pulse_join_test.pdb"
  "pulse_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
