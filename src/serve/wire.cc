#include "serve/wire.h"

#include <bit>
#include <utility>
#include <vector>

namespace pulse {
namespace serve {
namespace wire {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status Truncated(const char* what) {
  return Status::IoError(std::string("truncated frame payload: ") + what);
}

Result<uint8_t> GetU8(Cursor* c, const char* what) {
  if (c->remaining() < 1) return Truncated(what);
  return static_cast<uint8_t>(c->data[c->pos++]);
}

Result<uint16_t> GetU16(Cursor* c, const char* what) {
  if (c->remaining() < 2) return Truncated(what);
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<uint32_t> GetU32(Cursor* c, const char* what) {
  if (c->remaining() < 4) return Truncated(what);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> GetU64(Cursor* c, const char* what) {
  if (c->remaining() < 8) return Truncated(what);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(c->data[c->pos++]))
         << (8 * i);
  }
  return v;
}

Result<int64_t> GetI64(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint64_t v, GetU64(c, what));
  return static_cast<int64_t>(v);
}

Result<double> GetF64(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint64_t bits, GetU64(c, what));
  return std::bit_cast<double>(bits);
}

Result<std::string> GetString(Cursor* c, const char* what) {
  PULSE_ASSIGN_OR_RETURN(uint32_t n, GetU32(c, what));
  if (c->remaining() < n) return Truncated(what);
  std::string s(c->data + c->pos, n);
  c->pos += n;
  return s;
}

void PutTuple(std::string* out, const Tuple& tuple) {
  PutF64(out, tuple.timestamp);
  PutU16(out, static_cast<uint16_t>(tuple.values.size()));
  for (const Value& v : tuple.values) {
    switch (v.type()) {
      case ValueType::kInt64:
        PutU8(out, 0);
        PutI64(out, v.as_int64());
        break;
      case ValueType::kDouble:
        PutU8(out, 1);
        PutF64(out, v.as_double());
        break;
      case ValueType::kString:
        PutU8(out, 2);
        PutString(out, v.as_string());
        break;
    }
  }
}

Result<Tuple> GetTuple(Cursor* c) {
  Tuple tuple;
  PULSE_ASSIGN_OR_RETURN(tuple.timestamp, GetF64(c, "tuple timestamp"));
  PULSE_ASSIGN_OR_RETURN(uint16_t n, GetU16(c, "tuple field count"));
  tuple.values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    PULSE_ASSIGN_OR_RETURN(uint8_t tag, GetU8(c, "value tag"));
    switch (tag) {
      case 0: {
        PULSE_ASSIGN_OR_RETURN(int64_t v, GetI64(c, "int64 value"));
        tuple.values.emplace_back(v);
        break;
      }
      case 1: {
        PULSE_ASSIGN_OR_RETURN(double v, GetF64(c, "double value"));
        tuple.values.emplace_back(v);
        break;
      }
      case 2: {
        PULSE_ASSIGN_OR_RETURN(std::string v, GetString(c, "string value"));
        tuple.values.emplace_back(std::move(v));
        break;
      }
      default:
        return Status::IoError("unknown value tag " + std::to_string(tag));
    }
  }
  return tuple;
}

void PutSegment(std::string* out, const Segment& s) {
  PutI64(out, s.key);
  PutU64(out, s.id);
  PutF64(out, s.range.lo);
  PutF64(out, s.range.hi);
  PutU8(out, static_cast<uint8_t>((s.range.lo_open ? 1 : 0) |
                                  (s.range.hi_open ? 2 : 0)));
  PutU16(out, static_cast<uint16_t>(s.attributes.size()));
  for (const auto& [name, poly] : s.attributes) {
    PutString(out, name);
    const uint16_t ncoeff =
        poly.IsZero() ? 0 : static_cast<uint16_t>(poly.degree() + 1);
    PutU16(out, ncoeff);
    for (uint16_t i = 0; i < ncoeff; ++i) PutF64(out, poly.coeff(i));
  }
  PutU16(out, static_cast<uint16_t>(s.unmodeled.size()));
  for (const auto& [name, value] : s.unmodeled) {
    PutString(out, name);
    PutF64(out, value);
  }
}

Result<Segment> GetSegment(Cursor* c) {
  Segment s;
  PULSE_ASSIGN_OR_RETURN(s.key, GetI64(c, "segment key"));
  PULSE_ASSIGN_OR_RETURN(s.id, GetU64(c, "segment id"));
  PULSE_ASSIGN_OR_RETURN(s.range.lo, GetF64(c, "segment range lo"));
  PULSE_ASSIGN_OR_RETURN(s.range.hi, GetF64(c, "segment range hi"));
  PULSE_ASSIGN_OR_RETURN(uint8_t flags, GetU8(c, "segment range flags"));
  s.range.lo_open = (flags & 1) != 0;
  s.range.hi_open = (flags & 2) != 0;
  PULSE_ASSIGN_OR_RETURN(uint16_t nattrs, GetU16(c, "attribute count"));
  for (uint16_t i = 0; i < nattrs; ++i) {
    PULSE_ASSIGN_OR_RETURN(std::string name, GetString(c, "attribute name"));
    PULSE_ASSIGN_OR_RETURN(uint16_t ncoeff,
                           GetU16(c, "coefficient count"));
    if (ncoeff == 0) {
      s.attributes[std::move(name)] = Polynomial();
      continue;
    }
    std::vector<double> coeffs(ncoeff);
    for (uint16_t j = 0; j < ncoeff; ++j) {
      PULSE_ASSIGN_OR_RETURN(coeffs[j], GetF64(c, "coefficient"));
    }
    s.attributes[std::move(name)] = Polynomial(std::move(coeffs));
  }
  PULSE_ASSIGN_OR_RETURN(uint16_t nunmodeled, GetU16(c, "unmodeled count"));
  for (uint16_t i = 0; i < nunmodeled; ++i) {
    PULSE_ASSIGN_OR_RETURN(std::string name, GetString(c, "unmodeled name"));
    PULSE_ASSIGN_OR_RETURN(double value, GetF64(c, "unmodeled value"));
    s.unmodeled[std::move(name)] = value;
  }
  return s;
}

}  // namespace wire
}  // namespace serve
}  // namespace pulse
