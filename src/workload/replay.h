#ifndef PULSE_WORKLOAD_REPLAY_H_
#define PULSE_WORKLOAD_REPLAY_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/schema.h"
#include "engine/tuple.h"
#include "util/result.h"

namespace pulse {

/// Persists a recorded tuple trace as CSV (timestamp first, then fields
/// in schema order) and loads it back — the paper's experiments "replay
/// from disk into Pulse" (Section V-B). Rates are applied by the caller;
/// the trace itself carries event time.
class TraceFile {
 public:
  /// Writes `tuples` to `path`, with a header row.
  static Status Write(const std::string& path, const Schema& schema,
                      const std::vector<Tuple>& tuples);

  /// Loads a trace; field types follow `schema`.
  static Result<std::vector<Tuple>> Load(const std::string& path,
                                         const Schema& schema);
};

/// Rescales a trace's event time so the same data plays at a different
/// stream rate (the paper's "stream replay rates" axis): timestamps are
/// compressed/stretched around the trace start by `factor`.
std::vector<Tuple> RescaleRate(const std::vector<Tuple>& trace,
                               double factor);

/// Paced live replay: turns a recorded trace into a wall-clock send
/// schedule — the traffic generator the serving bench drives sessions
/// with (docs/SERVING.md). Two pacing modes:
///  - `tuples_per_second > 0`: uniform pacing at that rate, ignoring
///    the trace's event time (load testing at a controlled rate);
///  - `tuples_per_second == 0`: event-time pacing — send offsets follow
///    the trace's own timestamp deltas (faithful live replay).
class PacedReplay {
 public:
  PacedReplay(std::vector<Tuple> trace, double tuples_per_second);

  /// Next tuple and its send offset from replay start, in nanoseconds
  /// (monotone non-decreasing). False when the trace is exhausted.
  bool Next(Tuple* tuple, uint64_t* offset_ns);

  size_t remaining() const { return trace_.size() - pos_; }
  size_t size() const { return trace_.size(); }

 private:
  std::vector<Tuple> trace_;
  double rate_;
  double t0_ = 0.0;  // event-time origin (event-time pacing)
  size_t pos_ = 0;
};

}  // namespace pulse

#endif  // PULSE_WORKLOAD_REPLAY_H_
