#ifndef PULSE_CORE_RUNTIME_H_
#define PULSE_CORE_RUNTIME_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pulse_plan.h"
#include "core/query.h"
#include "core/sampler.h"
#include "core/solve_cache.h"
#include "core/transform.h"
#include "core/validation/bounds.h"
#include "core/validation/inversion.h"
#include "core/validation/slack.h"
#include "core/validation/splits.h"
#include "engine/tuple.h"
#include "model/segmentation.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace pulse {

/// Degree of parallelism for equation-system solving. Work units are the
/// independent solves of one push — join segment-pairs and group-by
/// shards (see docs/CONCURRENCY.md for the full threading model).
struct ParallelOptions {
  /// Total solver threads, counting the thread that pushes tuples. The
  /// default 1 creates no pool and is byte-identical to the serial
  /// engine; n > 1 spawns n-1 workers shared by every operator in the
  /// plan.
  size_t num_threads = 1;
};

/// End-to-end counters for a runtime session. Since the observability
/// rework this is a point-in-time VIEW assembled by stats() from the
/// runtime's MetricsRegistry handles plus the pool/cache counters — a
/// plain value, safe to keep after the runtime is gone. The authoritative
/// counters live in the registry under the names documented in
/// docs/OBSERVABILITY.md (runtime/..., solve_cache/..., op/...).
struct RuntimeStats {
  uint64_t tuples_in = 0;
  /// Tuples explained by the current model within bounds/slack — dropped
  /// without touching the solver.
  uint64_t tuples_validated = 0;
  /// Bound or slack violations (each triggers model rebuild + resolve).
  uint64_t violations = 0;
  uint64_t segments_pushed = 0;
  uint64_t output_segments = 0;
  uint64_t output_tuples = 0;
  uint64_t inversions = 0;
  /// Worker tasks handed to the solver thread pool (0 when serial).
  uint64_t tasks_spawned = 0;
  /// Nanoseconds summed over every parallel fan-out's full span. Nested
  /// and concurrent fan-outs each contribute their whole duration, so
  /// this behaves like CPU time and can exceed wall time.
  uint64_t parallel_solve_cpu_ns = 0;
  /// Wall-clock nanoseconds during which at least one parallel fan-out
  /// was active. Always <= parallel_solve_cpu_ns.
  uint64_t parallel_solve_wall_ns = 0;
  /// Solve-cache traffic (all 0 when the cache is disabled). Invariant:
  /// hits + misses + uncacheable == lookups at any quiescent point.
  uint64_t solve_cache_hits = 0;
  uint64_t solve_cache_misses = 0;
  uint64_t solve_cache_lookups = 0;
  uint64_t solve_cache_uncacheable = 0;
};

/// Online predictive processing (paper Section II-A): models of unseen
/// data are built from arriving tuples via the MODEL clause, query results
/// are precomputed off into the future, and subsequent tuples are only
/// *validated* against the model within inverted accuracy/slack bounds —
/// the query is re-solved only on violations.
class PredictiveRuntime {
 public:
  struct Options {
    /// Output accuracy bounds, inverted to the inputs on first results.
    std::vector<BoundSpec> bounds;
    /// Split heuristic (default EquiSplit).
    std::shared_ptr<const SplitHeuristic> split;
    /// Output sampling rate; 0 keeps results as segments only.
    double sample_rate = 0.0;
    /// Retain output segments/tuples in memory (disable for long runs).
    bool collect_outputs = true;
    /// Solver fan-out; default is serial execution.
    ParallelOptions parallel;
    /// Difference-polynomial solve memoization; nullopt disables. The
    /// default (exact keys, min_degree = 3 so the batched closed-form
    /// kernels own low degrees) is deterministic: output is
    /// bit-identical to an uncached run.
    std::optional<SolveCacheOptions> solve_cache =
        DefaultRuntimeSolveCacheOptions();
    /// Registry all runtime/operator counters report through. Must
    /// outlive the runtime. nullptr (the default) gives the runtime a
    /// private registry, so counters from concurrent runtimes in one
    /// process never mix; pass a shared registry to aggregate instead.
    obs::MetricsRegistry* metrics = nullptr;
  };

  static Result<PredictiveRuntime> Make(const QuerySpec& spec,
                                        Options options);

  /// Feeds one arriving tuple. Either the tuple validates against the
  /// current model (cheap path) or the model is rebuilt and pushed
  /// through the equation-system plan.
  Status ProcessTuple(const std::string& stream, const Tuple& tuple);

  /// Batch feed: exactly equivalent to calling ProcessTuple on each
  /// element in order (the serving micro-batcher's entry point — batch
  /// boundaries can never change results, see docs/SERVING.md).
  Status ProcessTuples(const std::string& stream, const Tuple* tuples,
                       size_t n);

  /// End of input: flush residual operator state.
  Status Finish();

  /// Point-in-time view over the registry and pool/cache counters (see
  /// RuntimeStats). Returned by value: the snapshot stays coherent while
  /// worker threads keep counting.
  RuntimeStats stats() const;

  /// The registry this runtime reports through (owned unless
  /// Options::metrics was set).
  obs::MetricsRegistry* metrics() const { return metrics_; }

  std::vector<Segment> TakeOutputSegments();
  std::vector<Tuple> TakeOutputTuples();

  const PulsePlan& plan() const { return executor_->plan(); }
  const BoundRegistry& bounds() const { return *bound_registry_; }
  const AlternatingValidator& validator() const { return *validator_; }
  SolveCache* solve_cache() const { return solve_cache_.get(); }

 private:
  PredictiveRuntime() = default;

  // Slack of `segment` against the plan's source operators for `stream`.
  double SourceSlack(const std::string& stream, const Segment& segment);
  // Inverts bounds / samples a freshly produced batch of sink outputs and
  // stores it (when collection is enabled).
  Status HandleOutputs(std::vector<Segment> outputs);
  // Mirrors the pool's and cache's cumulative counters into the registry
  // namespace (slow path only).
  void SyncParallelStats();
  // Resolves the runtime/... counter handles out of metrics_.
  void BindRuntimeCounters();

  QuerySpec spec_;
  Options options_;
  // Per-stream runtime state. The tuple hot path touches this once per
  // tuple, so everything it needs is pre-resolved: the validated model
  // clauses (only the attributes the query actually references — others
  // cannot influence results and need no validation), the observed-field
  // indices, and per-key caches of model polynomials, margins, and the
  // accuracy/slack mode. The stream lookup is memoized across
  // consecutive same-stream tuples.
  struct ValidationClause {
    const ModelClause* clause = nullptr;
    size_t observed_index = 0;  // tuple field holding the observed value
  };

  struct ActiveModel {
    Segment segment;
    // Parallel to StreamState::clauses: the model polynomial (pointer
    // into segment.attributes, stable) and the cached inverted margin.
    std::vector<const Polynomial*> polys;
    std::vector<double> margins;
    uint64_t margin_version = ~uint64_t{0};
    ValidationMode mode = ValidationMode::kAccuracy;
    double slack = 0.0;
  };

  struct StreamState {
    SegmentModelBuilder builder;
    std::vector<ValidationClause> clauses;
    std::map<Key, ActiveModel> current;
  };

  StreamState* FindStream(const std::string& name);
  // Rebuilds the polynomial pointers after (re)installing a segment.
  static void BindModel(const StreamState& state, ActiveModel* model);
  // Refreshes cached margins from the bound registry.
  void RefreshMargins(const StreamState& state, Key key,
                      ActiveModel* model) const;

  // Heap-allocated so the pool's address is stable across moves of the
  // runtime (operators hold a raw pointer to it). Declared before the
  // executor so operators never outlive the pool they point at.
  std::unique_ptr<ThreadPool> pool_;
  // Same lifetime rules as pool_: operators hold a raw pointer.
  std::unique_ptr<SolveCache> solve_cache_;
  // Declared before the executor for the same reason: the executor's
  // view bindings must release before the registry they point into dies.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<PulseExecutor> executor_;
  std::unique_ptr<QueryInverter> inverter_;
  std::map<std::string, StreamState> streams_;
  StreamState* memo_state_ = nullptr;
  const std::string* memo_name_ = nullptr;
  // Heap-allocated so the registry's address is stable across moves of
  // the runtime (the validator holds a pointer to it).
  std::unique_ptr<BoundRegistry> bound_registry_;
  std::unique_ptr<AlternatingValidator> validator_;
  std::optional<Sampler> sampler_;
  std::vector<Segment> output_segments_;
  std::vector<Tuple> output_tuples_;
  // Hot-path counter handles into metrics_ (stable for its lifetime).
  obs::Counter* c_tuples_in_ = nullptr;
  obs::Counter* c_tuples_validated_ = nullptr;
  obs::Counter* c_violations_ = nullptr;
  obs::Counter* c_segments_pushed_ = nullptr;
  obs::Counter* c_output_segments_ = nullptr;
  obs::Counter* c_output_tuples_ = nullptr;
  obs::Counter* c_inversions_ = nullptr;
  // Mirrors of the pool/cache cumulative counters (Store()d by
  // SyncParallelStats so snapshots and exporters see them).
  obs::Counter* c_tasks_spawned_ = nullptr;
  obs::Counter* c_parallel_cpu_ns_ = nullptr;
  obs::Counter* c_parallel_wall_ns_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_cache_lookups_ = nullptr;
  obs::Counter* c_cache_uncacheable_ = nullptr;
};

/// Joint multi-attribute online segmentation: one piece breaks when ANY
/// modeled attribute's least-squares fit exceeds the error bound, so a
/// segment carries a consistent set of models (used by historical
/// processing to fit e.g. AIS longitude and latitude together).
///
/// The fit is maintained *incrementally* through running moments
/// (Vandermonde normal-equation sums in segment-local time), so each Add
/// costs O(degree^3) independent of the piece length — this is what lets
/// the modeling operator outrun tuple-by-tuple query processing in the
/// paper's Fig. 8. The error bound is enforced on the RMS residual
/// (computable from the moments); SegmentationOptions::max_error is
/// interpreted accordingly here.
class MultiAttributeSegmenter {
 public:
  MultiAttributeSegmenter(StreamSpec spec, SegmentationOptions options);

  /// Feeds one tuple (all keys multiplexed; per-key state inside).
  /// Returns the closed segment when one completes.
  Result<std::optional<Segment>> Add(const Tuple& tuple);

  /// Closes all pending per-key pieces.
  Result<std::vector<Segment>> Flush();

 private:
  /// Hard cap on the incremental path's polynomial degree; keeps the
  /// per-tuple moment state fixed-size and allocation-free.
  static constexpr size_t kMaxIncrementalDegree = 4;

  // Running least-squares moments of one attribute in local time
  // tau = t - t0:  s[k] = sum tau^k (k <= 2d), b[k] = sum v * tau^k
  // (k <= d), vv = sum v^2. Fixed-capacity so trial copies are memcpys.
  struct Moments {
    double s[2 * kMaxIncrementalDegree + 1] = {};
    double b[kMaxIncrementalDegree + 1] = {};
    double vv = 0.0;
    size_t degree = 1;

    // Last accepted fit (the piece to close when the next point breaks).
    double good[kMaxIncrementalDegree + 1] = {};
    size_t good_n = 0;

    void Reset(size_t degree);
    void AddPoint(double tau, double v);
    // Least-squares coefficients (local time) into `coeffs`; returns the
    // fitted degree + 1 (0 when singular). Allocation-free.
    size_t Fit(size_t count, double* coeffs) const;
    // RMS residual of the fitted coefficients.
    double Rms(const double* coeffs, size_t n, size_t count) const;
  };

  struct PerKey {
    bool active = false;
    double t0 = 0.0;       // segment-local time origin
    double last_t = 0.0;   // newest sample time
    double last_gap = 0.0;
    size_t count = 0;
    std::vector<Moments> attrs;  // one per modeled attribute
  };

  // Builds the closed segment from the current per-key fit state.
  Result<std::optional<Segment>> CloseSegment(Key key,
                                              const PerKey& state) const;
  void ResetWith(PerKey* state, const Tuple& tuple) const;

  StreamSpec spec_;
  SegmentationOptions options_;
  size_t key_index_ = 0;
  std::vector<size_t> attr_indices_;  // tuple field per modeled attribute
  std::unordered_map<Key, PerKey> keys_;
};

/// Offline historical processing (paper Section II-A): the modeling
/// component fits a continuous-time model of the historical stream once;
/// the resulting segments feed the transformed query (and can be replayed
/// into many what-if variants, amortizing the modeling cost).
class HistoricalRuntime {
 public:
  struct Options {
    SegmentationOptions segmentation;
    double sample_rate = 0.0;
    bool collect_outputs = true;
    /// Solver fan-out; default is serial execution.
    ParallelOptions parallel;
    /// Difference-polynomial solve memoization; nullopt disables. Replay
    /// runs (ProcessSegment over a previously fitted trace) hit the cache
    /// heavily — identical difference polynomials recur across what-if
    /// variants of one model set. Low-degree rows are excluded by the
    /// default min_degree = 3: the batched closed forms resolve them
    /// faster than a hit (docs/PERFORMANCE.md "replay_cached anomaly").
    std::optional<SolveCacheOptions> solve_cache =
        DefaultRuntimeSolveCacheOptions();
    /// Externally owned cache used INSTEAD of creating one from
    /// `solve_cache` (which is then ignored). Must outlive the runtime.
    /// This is how every client runtime on one shard shares the shard's
    /// cache (docs/SHARDING.md): with exact keys (quantum == 0) a hit
    /// replays precisely the solution an owned cache would have
    /// computed, so sharing never changes any client's answers.
    SolveCache* shared_solve_cache = nullptr;
    /// Registry all runtime/operator counters report through. Must
    /// outlive the runtime. nullptr (the default) gives the runtime a
    /// private registry, so counters from concurrent runtimes in one
    /// process never mix; pass a shared registry to aggregate instead.
    obs::MetricsRegistry* metrics = nullptr;
    /// Invoked once per output segment, in exactly the order
    /// TakeOutputSegments returns them (finish-phase outputs are
    /// observed after the canonical key sort). Requires
    /// collect_outputs. The durable store's delivered-output watermark
    /// (src/store/) hangs off this hook.
    std::function<void(const Segment&)> output_observer;
  };

  static Result<HistoricalRuntime> Make(const QuerySpec& spec,
                                        Options options);

  /// Feeds one historical tuple into the modeler; pushes any completed
  /// segment through the plan.
  Status ProcessTuple(const std::string& stream, const Tuple& tuple);

  /// Batch feed: result-equivalent to calling ProcessTuple on each
  /// element in order, with the segmenter lookup amortized across the
  /// batch (the serving micro-batcher's entry point).
  Status ProcessTuples(const std::string& stream, const Tuple* tuples,
                       size_t n);

  /// Pushes an already-fitted segment (segment replay mode — the paper's
  /// "processing segments alone (without modelling)" series in Fig. 9i).
  Status ProcessSegment(const std::string& stream, Segment segment);

  Status Finish();

  /// Point-in-time view over the registry and pool/cache counters (see
  /// RuntimeStats).
  RuntimeStats stats() const;

  /// The registry this runtime reports through (owned unless
  /// Options::metrics was set).
  obs::MetricsRegistry* metrics() const { return metrics_; }

  std::vector<Segment> TakeOutputSegments();
  const PulsePlan& plan() const { return executor_->plan(); }
  /// The cache in use: owned, or Options::shared_solve_cache.
  SolveCache* solve_cache() const { return cache_; }

 private:
  HistoricalRuntime() = default;

  QuerySpec spec_;
  Options options_;
  /// True while Finish() runs: segmenter-flush outputs are part of the
  /// finish tail, observed only after the canonical sort.
  bool finishing_ = false;
  MultiAttributeSegmenter* FindSegmenter(const std::string& name);
  void SyncParallelStats();
  void BindRuntimeCounters();

  // Declared before the executor: see PredictiveRuntime::pool_.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SolveCache> solve_cache_;
  // Active cache: solve_cache_.get() or Options::shared_solve_cache.
  SolveCache* cache_ = nullptr;
  // Declared before the executor: its view bindings must release before
  // the registry they point into dies.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<PulseExecutor> executor_;
  std::map<std::string, std::unique_ptr<MultiAttributeSegmenter>>
      segmenters_;
  MultiAttributeSegmenter* memo_segmenter_ = nullptr;
  const std::string* memo_segmenter_name_ = nullptr;
  // Hot-path counter handles into metrics_ (stable for its lifetime).
  obs::Counter* c_tuples_in_ = nullptr;
  obs::Counter* c_segments_pushed_ = nullptr;
  obs::Counter* c_output_segments_ = nullptr;
  // Mirrors of the pool/cache cumulative counters (Store()d by
  // SyncParallelStats so snapshots and exporters see them).
  obs::Counter* c_tasks_spawned_ = nullptr;
  obs::Counter* c_parallel_cpu_ns_ = nullptr;
  obs::Counter* c_parallel_wall_ns_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_cache_lookups_ = nullptr;
  obs::Counter* c_cache_uncacheable_ = nullptr;
};

}  // namespace pulse

#endif  // PULSE_CORE_RUNTIME_H_
