// Reproduces paper Fig. 8: historical-processing throughput comparison
// (min aggregate, window 60 s, slide 2 s, 1% threshold).
//
// Paper shape, three series over offered stream rate:
//   - tuple processing saturates first (15k tup/s in the paper),
//   - segment processing (online model fitting + continuous query) keeps
//     scaling past that point,
//   - the modeling operator alone saturates much higher (~40k tup/s),
//     showing data fitting is not the bottleneck.
// Absolute capacities depend on hardware; this bench measures each
// pipeline's capacity and sweeps offered rates around the *tuple*
// capacity so the saturation ordering — the figure's content — is
// directly visible.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "engine/executor.h"
#include "engine/stream.h"
#include "workload/moving_object.h"

namespace pulse {
namespace {

QuerySpec MinQuery() {
  QuerySpec spec;
  (void)spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", 1.0));
  AggregateSpec agg;
  agg.fn = AggFn::kMin;
  agg.attribute = "x";
  agg.window_seconds = 60.0;  // Fig. 6: window 60 s
  agg.slide_seconds = 2.0;    // slide 2 s
  spec.AddAggregate("min", QuerySpec::Input::Stream("objects"), agg);
  return spec;
}

}  // namespace
}  // namespace pulse

int main() {
  using namespace pulse;
  MovingObjectOptions gen_opts;
  gen_opts.num_objects = 10;
  gen_opts.tuple_rate = 3000.0;
  gen_opts.tuples_per_segment = 300;
  gen_opts.noise = 0.05;
  const std::vector<Tuple> trace =
      MovingObjectGenerator(gen_opts).Generate(450000);  // 150 s of stream
  const QuerySpec spec = MinQuery();
  std::printf("Fig 8 reproduction: %zu tuples (min agg, 60 s window)\n",
              trace.size());

  // Capacity 1: tuple processing.
  Result<DiscretePlan> dplan = BuildDiscretePlan(spec);
  Result<Executor> dexec = Executor::Make(std::move(dplan->plan));
  dexec->set_discard_output(true);
  // System-level measurement: discrete tuples pass through the engine's
  // admission queue (Borealis enqueues every tuple before processing;
  // Pulse's validator and the historical modeler intercept tuples before
  // the engine — paper Fig. 4).
  Stream admission("objects.in", MovingObjectGenerator::TupleSchema());
  const double tuple_s = bench::MeasureSeconds([&] {
    Tuple queued;
    for (const Tuple& t : trace) {
      (void)admission.Push(t);
      (void)admission.Pop(&queued);
      (void)dexec->PushTuple("objects", queued);
    }
  });

  // Capacity 2: segment processing = online segmentation + Pulse plan.
  HistoricalRuntime::Options hopts;
  hopts.segmentation.degree = 1;
  hopts.segmentation.max_error = 0.5;
  hopts.segmentation.max_points_per_segment = 400;
  hopts.collect_outputs = false;
  Result<HistoricalRuntime> hist = HistoricalRuntime::Make(spec, hopts);
  const double segment_s = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) (void)hist->ProcessTuple("objects", t);
    (void)hist->Finish();
  });

  // Capacity 3: the modeling operator alone (paper's nested plot).
  StreamSpec stream = MovingObjectGenerator::MakeStreamSpec("objects", 1.0);
  MultiAttributeSegmenter modeler(stream, hopts.segmentation);
  size_t segments = 0;
  const double model_s = bench::MeasureSeconds([&] {
    for (const Tuple& t : trace) {
      Result<std::optional<Segment>> r = modeler.Add(t);
      if (r.ok() && r->has_value()) ++segments;
    }
  });

  const double n = static_cast<double>(trace.size());
  std::printf("\nMeasured capacities (tuples/s):\n");
  std::printf("  tuple processing  : %12.0f\n", n / tuple_s);
  std::printf("  segment processing: %12.0f\n", n / segment_s);
  std::printf("  modeling alone    : %12.0f   (%zu segments fitted)\n",
              n / model_s, segments);

  // Offered-rate sweep around the tuple capacity: achieved throughput per
  // series (the paper's y axis).
  const double c_tuple = n / tuple_s;
  bench::SeriesTable table(
      "Fig 8: achieved throughput vs offered rate (tup/s)", "offered_tps",
      {"tuple_tps", "segment_tps", "modeling_tps"});
  for (double f = 0.25; f <= 3.01; f += 0.25) {
    const double offered = f * c_tuple;
    table.AddRow(
        offered,
        {bench::SimulateQueue(trace.size(), tuple_s, offered).achieved_tps,
         bench::SimulateQueue(trace.size(), segment_s, offered)
             .achieved_tps,
         bench::SimulateQueue(trace.size(), model_s, offered)
             .achieved_tps});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): tuple processing tails off first; segment "
      "processing scales beyond it;\nmodeling alone saturates highest — "
      "model fitting is not the bottleneck.\n");
  return 0;
}
