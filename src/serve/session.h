#ifndef PULSE_SERVE_SESSION_H_
#define PULSE_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/precision.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/frame.h"
#include "serve/ingest_queue.h"
#include "serve/transport.h"
#include "shard/shard_pool.h"

namespace pulse {
namespace store {
class SegmentStore;
}  // namespace store
namespace serve {

/// Per-session serving knobs (shared by every session of a server;
/// docs/SERVING.md walks through the policy trade-offs).
struct SessionOptions {
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Per-stream ingest queue capacity (items).
  size_t queue_capacity = 256;
  BatcherOptions batcher;
  AdmissionOptions admission;
  /// Precision stage ahead of load shedding (docs/PRECISION.md). When
  /// `precision.enabled`, the server gives each session a session-owned
  /// AdaptiveRuntime instead of a shard-pool slice, the reader stamps
  /// every admitted item with the controller's tier, and the worker
  /// emits provisional/confirm/retract frames alongside the settled
  /// output stream.
  PrecisionOptions precision;
  /// Runtime-side ladder for adaptive sessions (error scales + bounds).
  AdaptivePrecisionOptions precision_runtime;
};

/// One client connection: a protocol reader thread admitting frames
/// into per-stream bounded queues, and a worker thread draining them in
/// admission order into the server's shared shard pool.
///
///   reader: transport -> FrameReader -> admission control -> queues
///   worker: queues -> micro-batches -> ShardClient (key-routed to the
///           shared shard pool) -> output segments -> transport
///
/// The reader is the single producer for all queues and stamps each
/// admitted item with a session-global sequence number; the worker
/// merges queues by minimum head seq, so dispatch order equals
/// admission order regardless of how tuples interleave across streams
/// or how the micro-batcher groups them. The ShardClient then restores
/// that exact order on the output side (docs/SHARDING.md), so the
/// end-to-end invariant the serving differential checks — outputs
/// byte-identical to the batch replay path — survives the fan-out to
/// shards. Sessions no longer own a runtime: each holds a thin routing
/// handle onto the pool, so solver state is per shard, not per session.
class Session {
 public:
  /// `serve_metrics` is the server-wide serve/* registry;
  /// `valid_streams` the query's declared input stream names. The
  /// registry, the transport, and the client's pool must outlive
  /// Join(). `store` (optional) makes the session durable: every
  /// admitted item is appended to the shared segment log before it is
  /// dispatched, and delivered outputs advance the store's checkpoint
  /// watermark (docs/STORAGE.md). `adaptive` (optional, built by the
  /// server when `options.precision.enabled`) switches the session to
  /// adaptive precision: the worker dispatches into it instead of the
  /// shard client, and the precision controller's tier stamps ride each
  /// admitted item (docs/PRECISION.md).
  Session(uint64_t id, std::unique_ptr<Transport> transport,
          std::unique_ptr<shard::ShardClient> client, SessionOptions options,
          std::vector<std::string> valid_streams,
          obs::MetricsRegistry* serve_metrics,
          store::SegmentStore* store = nullptr,
          std::unique_ptr<AdaptiveRuntime> adaptive = nullptr);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the reader and worker threads. Call exactly once.
  void Start();

  /// True once both threads have finished (the server reaps on this).
  bool finished() const;

  /// Blocks until both threads exit (transport EOF / kBye / drain
  /// complete / Abort). Idempotent.
  void Join();

  /// Server-initiated graceful drain: stop admitting, process
  /// everything already accepted, deliver outputs, then close.
  void BeginDrain();

  /// Hard stop: close queues and transport, wake both threads. Items
  /// not yet dispatched are discarded.
  void Abort();

  uint64_t id() const { return id_; }
  /// First fatal error observed (empty while healthy).
  std::string error() const;

 private:
  struct Lane {
    uint32_t stream_id = 0;
    std::string name;
    IngestQueue queue;
    MicroBatcher batcher;
    Lane(uint32_t id, std::string n, size_t capacity, WorkSignal* signal,
         const BatcherOptions& batcher_options)
        : stream_id(id),
          name(std::move(n)),
          queue(capacity, signal),
          batcher(batcher_options) {}
  };

  void ReaderLoop();
  void WorkerLoop();
  /// Dispatches one control/data frame; a returned error is fatal to
  /// the session (sent to the client as kError, then Abort).
  Status HandleFrame(Frame frame);
  /// Admission control + enqueue for a data frame's items.
  Status AdmitData(Frame frame);
  Status EnqueueItem(Lane* lane, IngestItem item);
  Status WriteFrame(const Frame& frame);
  /// Moves the shard client's released output segments to the peer.
  Status FlushOutputs();
  void RecordFatal(const Status& status);

  Lane* FindLane(uint32_t stream_id);
  /// Aggregate depth/capacity over all lanes (admission signal).
  void TotalDepth(size_t* depth, size_t* capacity);
  void CloseLaneQueues();

  const uint64_t id_;
  std::unique_ptr<Transport> transport_;
  // Declared before admission_/precision_ctl_: the controllers' latency
  // signal is a histogram reached through one of these handles (the
  // adaptive runtime's own registry when present, the pool-level rollup
  // otherwise).
  std::unique_ptr<shard::ShardClient> client_;
  /// Session-owned adaptive runtime; nullptr = static precision, and
  /// the worker dispatches into client_ as before.
  std::unique_ptr<AdaptiveRuntime> adaptive_;
  const SessionOptions options_;
  const std::vector<std::string> valid_streams_;
  obs::MetricsRegistry* serve_metrics_;
  /// Shared durable log; nullptr in the default in-memory mode.
  store::SegmentStore* store_ = nullptr;
  AdmissionController admission_;
  PrecisionController precision_ctl_;
  WorkSignal signal_;

  std::thread reader_;
  std::thread worker_;
  std::mutex join_mu_;
  bool joined_ = false;

  // Lanes are appended by the reader (kOpenStream) and scanned by the
  // worker; the mutex covers the vector, each lane's queue has its own.
  std::mutex lanes_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  std::mutex write_mu_;
  std::string write_buf_;

  mutable std::mutex error_mu_;
  std::string error_;

  // Reader-only protocol state.
  bool saw_hello_ = false;
  uint64_t next_seq_ = 0;
  bool admission_overloaded_prev_ = false;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> drain_requested_{false};
  /// Client asked via kDrain (gets a kDrained reply; Bye/EOF do not).
  std::atomic<bool> client_drain_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> reader_done_{false};
  std::atomic<bool> worker_done_{false};

  // serve/* handles (shared registry; stable for its lifetime).
  obs::Counter* c_accepted_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_blocked_ns_ = nullptr;
  obs::Gauge* g_depth_ = nullptr;
  obs::Counter* c_batch_dispatched_ = nullptr;
  obs::Counter* c_batch_tuples_ = nullptr;
  obs::Counter* c_shed_queue_ = nullptr;
  obs::Counter* c_shed_latency_ = nullptr;
  obs::Counter* c_overloaded_ = nullptr;

  // precision/* + retract/* handles (adaptive sessions only; cumulative
  // runtime stats are mirrored with Counter::Store after each flush).
  obs::Counter* c_provisional_ = nullptr;
  obs::Counter* c_confirmed_ = nullptr;
  obs::Counter* c_retracted_ = nullptr;
  obs::Counter* c_widened_ = nullptr;
  obs::Counter* c_tightened_ = nullptr;
  obs::Counter* c_deferred_ = nullptr;
  obs::Counter* c_replayed_ = nullptr;
  obs::Counter* c_retract_deviation_ = nullptr;
  obs::Counter* c_retract_spurious_ = nullptr;
  obs::Gauge* g_tier_ = nullptr;
  obs::Gauge* g_open_ = nullptr;
};

}  // namespace serve
}  // namespace pulse

#endif  // PULSE_SERVE_SESSION_H_
