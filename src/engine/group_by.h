#ifndef PULSE_ENGINE_GROUP_BY_H_
#define PULSE_ENGINE_GROUP_BY_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/aggregate.h"
#include "engine/operator.h"

namespace pulse {

/// Hash/tree-grouped sliding-window aggregate: one AggState per group per
/// open window. Output tuples carry (group key, aggregate value) with the
/// window close time as timestamp. This is the discrete counterpart of
/// Pulse's per-group equation-system state (paper Fig. 3, "Aggregate
/// group-by": hash-based group-by, state for f per group).
class GroupedWindowedAggregate : public Operator {
 public:
  GroupedWindowedAggregate(std::string name,
                           std::shared_ptr<const Schema> input_schema,
                           WindowSpec window, AggFn fn, size_t value_field,
                           size_t group_field,
                           std::string output_field = "agg");

  std::shared_ptr<const Schema> output_schema() const override {
    return output_schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;
  Status AdvanceTime(double t, std::vector<Tuple>* out) override;
  Status Flush(std::vector<Tuple>* out) override;

  size_t open_windows() const { return windows_.size(); }

 private:
  struct OpenWindow {
    double close = 0.0;
    std::map<Value, AggState> groups;
  };

  void EnsureWindows(double t);
  void CloseThrough(double t, std::vector<Tuple>* out);
  void EmitWindow(const OpenWindow& w, std::vector<Tuple>* out);

  std::shared_ptr<const Schema> input_schema_;
  std::shared_ptr<const Schema> output_schema_;
  WindowSpec window_;
  AggFn fn_;
  size_t value_field_;
  size_t group_field_;

  bool have_origin_ = false;
  double next_close_ = 0.0;
  std::deque<OpenWindow> windows_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_GROUP_BY_H_
