#ifndef PULSE_STORE_SEGMENT_TREE_H_
#define PULSE_STORE_SEGMENT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "math/polynomial.h"

namespace pulse {
namespace store {

/// Pre-aggregated statistics over a stretch of modeled time — the
/// segment-tree node payload (after the NB-tree aggregation node of
/// SNIPPETS.md Snippet 1, adapted to continuous models). All fields
/// combine associatively, so a range query can sum O(log n) node
/// payloads instead of walking every leaf.
struct RangeAggregate {
  /// Leaf segments contributing (possibly clipped at the range edges).
  uint64_t count = 0;
  /// Total modeled duration covered.
  double coverage = 0.0;
  /// Exact ∫ v(t) dt over the covered time (polynomial antiderivative).
  double integral = 0.0;
  /// Σ of per-leaf time-averages over their covered spans: the discrete
  /// reading where each fitted segment is one observation.
  double sum = 0.0;
  /// Exact extrema of the piecewise model over the covered time
  /// (derivative roots + interval endpoints per leaf).
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Covered time extent (union bounds).
  double t_lo = std::numeric_limits<double>::infinity();
  double t_hi = -std::numeric_limits<double>::infinity();

  void Combine(const RangeAggregate& other);

  bool empty() const { return count == 0; }
  /// Time-weighted mean over the covered span (0 on empty coverage).
  double mean() const { return coverage > 0 ? integral / coverage : 0.0; }

  std::string ToString() const;
};

/// Exact aggregate of polynomial `p` (absolute time) over [lo, hi]:
/// integral via the antiderivative, extrema via the roots of p' in
/// [lo, hi] plus the endpoints. A zero-length span contributes the
/// point value to min/max/sum and nothing to coverage/integral.
RangeAggregate AggregatePolynomial(const Polynomial& p, double lo, double hi);

/// How a query was answered; tests assert the O(log n) contract and
/// the bench reports it.
struct TreeQueryStats {
  /// Pre-aggregated node payloads combined (fully-covered subtrees).
  size_t nodes_combined = 0;
  /// Leaves recomputed exactly because the range cut through them.
  size_t edge_leaves = 0;
};

/// Balanced implicit binary tree over one series' leaves — the fitted
/// pieces of a single (stream, key, attribute), ordered by range start
/// and non-overlapping (the store's ApplySegmentUpdate timeline
/// invariant). Interior nodes pre-aggregate their leaf span, so
/// Query(lo, hi) combines O(log n) node payloads and recomputes at
/// most the two leaves the range edges cut through (exact fallback to
/// the leaf models; docs/STORAGE.md).
class SegmentTree {
 public:
  struct Leaf {
    double lo = 0.0;
    double hi = 0.0;
    Polynomial poly;
  };

  /// Replaces the contents; `leaves` must be sorted by `lo` and
  /// non-overlapping.
  void Build(std::vector<Leaf> leaves);

  /// Appends one leaf at the end of modeled time (amortized O(log n);
  /// doubles capacity and rebuilds interior nodes when full).
  void Append(Leaf leaf);

  /// Aggregate over modeled time ∩ [lo, hi].
  RangeAggregate Query(double lo, double hi,
                       TreeQueryStats* stats = nullptr) const;

  size_t size() const { return leaves_.size(); }
  bool empty() const { return leaves_.empty(); }
  const std::vector<Leaf>& leaves() const { return leaves_; }

 private:
  void Rebuild();
  void UpdatePath(size_t slot);
  void QueryRange(size_t node, size_t node_lo, size_t node_hi, size_t l,
                  size_t r, RangeAggregate* out, TreeQueryStats* stats) const;

  std::vector<Leaf> leaves_;
  /// 1-indexed implicit tree; leaf i lives at cap_ + i; node payloads
  /// of empty slots stay identity aggregates.
  std::vector<RangeAggregate> nodes_;
  size_t cap_ = 0;
};

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_SEGMENT_TREE_H_
