
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/fitting.cc" "src/CMakeFiles/pulse_model.dir/model/fitting.cc.o" "gcc" "src/CMakeFiles/pulse_model.dir/model/fitting.cc.o.d"
  "/root/repo/src/model/piecewise.cc" "src/CMakeFiles/pulse_model.dir/model/piecewise.cc.o" "gcc" "src/CMakeFiles/pulse_model.dir/model/piecewise.cc.o.d"
  "/root/repo/src/model/segment.cc" "src/CMakeFiles/pulse_model.dir/model/segment.cc.o" "gcc" "src/CMakeFiles/pulse_model.dir/model/segment.cc.o.d"
  "/root/repo/src/model/segment_index.cc" "src/CMakeFiles/pulse_model.dir/model/segment_index.cc.o" "gcc" "src/CMakeFiles/pulse_model.dir/model/segment_index.cc.o.d"
  "/root/repo/src/model/segmentation.cc" "src/CMakeFiles/pulse_model.dir/model/segmentation.cc.o" "gcc" "src/CMakeFiles/pulse_model.dir/model/segmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pulse_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pulse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
