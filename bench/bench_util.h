#ifndef PULSE_BENCH_BENCH_UTIL_H_
#define PULSE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/tuple.h"
#include "util/stopwatch.h"

namespace pulse::bench {

/// Measures the wall-clock seconds one call of `fn` takes.
double MeasureSeconds(const std::function<void()>& fn);

/// Steady-state queueing summary for a stage that needs `total_service`
/// seconds to process `n` tuples arriving uniformly at `offered_rate`
/// tuples/second (deterministic arrivals and service, the replay setting
/// of the paper's experiments).
///
/// When the offered rate is below capacity the stage keeps up: achieved
/// throughput equals the offered rate and latency is the bare service
/// time. Beyond capacity the queue grows for the whole run, reproducing
/// the paper's "system is no longer stable, queues grow" tail-offs
/// (Fig. 8/9) and the exponential latency blow-up (Fig. 9iii).
struct QueueSummary {
  double capacity_tps = 0.0;   // n / total_service
  double achieved_tps = 0.0;   // min(offered, capacity)
  double mean_latency_s = 0.0; // average completion - arrival
  double final_backlog = 0.0;  // tuples still queued at end of run
};

QueueSummary SimulateQueue(uint64_t n, double total_service_seconds,
                           double offered_rate);

/// Paper-style series table printer: one row per x value, one column per
/// named series. Used by every bench to emit the rows/series the paper's
/// figures plot, in addition to google-benchmark's own output.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label,
              std::vector<std::string> series_names);

  void AddRow(double x, std::vector<double> values);

  /// Prints the table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<std::pair<double, std::vector<double>>> rows_;
};

}  // namespace pulse::bench

#endif  // PULSE_BENCH_BENCH_UTIL_H_
