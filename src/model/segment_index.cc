#include "model/segment_index.h"

#include <algorithm>
#include <limits>

namespace pulse {

void SegmentIndex::Insert(Segment segment) {
  // Find the sorted position from the back (arrivals are near-ordered).
  size_t pos = entries_.size();
  while (pos > 0 && entries_[pos - 1].segment.range.lo > segment.range.lo) {
    --pos;
  }
  Entry entry;
  entry.segment = std::move(segment);
  entries_.insert(entries_.begin() + pos, std::move(entry));
  RebuildMaxEnd(pos);
}

void SegmentIndex::RebuildMaxEnd(size_t from) {
  double running =
      from == 0 ? -std::numeric_limits<double>::infinity()
                : entries_[from - 1].max_end;
  for (size_t i = from; i < entries_.size(); ++i) {
    running = std::max(running, entries_[i].segment.range.hi);
    entries_[i].max_end = running;
  }
}

void SegmentIndex::ExpireBefore(double t) {
  // Streamed state expires from the front; stragglers behind a fresh
  // front expire on a later call. The remaining max_end values keep the
  // popped entries' contributions — still valid (conservative) monotone
  // upper bounds, so queries stay correct without a rebuild; a full
  // recomputation runs only once the accumulated slack gets large.
  size_t popped = 0;
  while (!entries_.empty() && entries_.front().segment.range.hi < t) {
    entries_.pop_front();
    ++popped;
  }
  popped_since_rebuild_ += popped;
  if (popped_since_rebuild_ > entries_.size()) {
    RebuildMaxEnd(0);
    popped_since_rebuild_ = 0;
  }
}

size_t SegmentIndex::LowerCandidate(double a) const {
  // max_end is monotone nondecreasing: binary search the first entry
  // whose running max end reaches `a`. Earlier entries (and everything
  // before them) end strictly before `a` and cannot overlap.
  size_t lo = 0;
  size_t hi = entries_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].max_end < a) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void SegmentIndex::QueryOverlaps(const Interval& range,
                                 std::vector<const Segment*>* out) const {
  QueryOverlapsWithKey(range, std::numeric_limits<Key>::min(), out);
}

void SegmentIndex::QueryOverlapsWithKey(
    const Interval& range, Key key,
    std::vector<const Segment*>* out) const {
  const bool any_key = key == std::numeric_limits<Key>::min();
  const size_t start = LowerCandidate(range.lo);
  for (size_t i = start; i < entries_.size(); ++i) {
    const Segment& s = entries_[i].segment;
    if (s.range.lo > range.hi) break;  // sorted by lo: no more overlaps
    ++probes_examined_;
    if (!any_key && s.key != key) continue;
    if (s.range.Intersects(range)) {
      out->push_back(&s);
      ++probes_matched_;
    }
  }
}

}  // namespace pulse
