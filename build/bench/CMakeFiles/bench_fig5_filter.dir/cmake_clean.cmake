file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_filter.dir/bench_fig5_filter.cc.o"
  "CMakeFiles/bench_fig5_filter.dir/bench_fig5_filter.cc.o.d"
  "bench_fig5_filter"
  "bench_fig5_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
