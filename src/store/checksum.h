#ifndef PULSE_STORE_CHECKSUM_H_
#define PULSE_STORE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "model/segment.h"

namespace pulse {
namespace store {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over `data`.
/// This is the per-record integrity check of the segment log and the
/// checkpoint file (docs/STORAGE.md): a record whose stored CRC does
/// not match is treated as the start of a torn tail, never decoded.
/// Software table implementation — no hardware or library dependency —
/// so the on-disk format is identical on every host.
uint32_t Crc32c(const char* data, size_t n);

inline uint32_t Crc32c(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

/// FNV-1a 64 offset basis: the seed of every canonical output hash
/// chain (a checkpoint with no delivered outputs stores this value).
constexpr uint64_t kCanonicalHashSeed = 14695981039346656037ull;

/// Folds `bytes` into an FNV-1a 64 chain.
uint64_t FnvMix(const char* data, size_t n, uint64_t h);

/// Chains segment `s` into hash `h` over its canonical wire encoding
/// with the engine-assigned id zeroed — ids are an execution accident
/// (the differential oracle excludes them too), so a replayed run
/// hashes identically to the original even though ids differ.
uint64_t CanonicalSegmentHash(const Segment& s,
                              uint64_t h = kCanonicalHashSeed);

}  // namespace store
}  // namespace pulse

#endif  // PULSE_STORE_CHECKSUM_H_
