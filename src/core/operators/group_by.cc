#include "core/operators/group_by.h"

#include "util/logging.h"

namespace pulse {

PulseGroupBy::PulseGroupBy(std::string name, InnerFactory factory)
    : PulseOperator(std::move(name)), factory_(std::move(factory)) {
  PULSE_CHECK(factory_ != nullptr);
}

Result<PulseOperator*> PulseGroupBy::GetOrCreate(Key group) {
  auto it = groups_.find(group);
  if (it != groups_.end()) return it->second.get();
  PULSE_ASSIGN_OR_RETURN(std::unique_ptr<PulseOperator> inner,
                         factory_(group));
  PulseOperator* raw = inner.get();
  groups_.emplace(group, std::move(inner));
  return raw;
}

PulseOperator* PulseGroupBy::group_operator(Key group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

Status PulseGroupBy::Process(size_t port, const Segment& segment,
                             SegmentBatch* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.segments_in;
  PULSE_ASSIGN_OR_RETURN(PulseOperator * inner, GetOrCreate(segment.key));
  SegmentBatch inner_out;
  PULSE_RETURN_IF_ERROR(inner->Process(0, segment, &inner_out));
  for (Segment& s : inner_out) {
    s.key = segment.key;  // outputs stay keyed by group
    out->push_back(std::move(s));
    ++metrics_.segments_out;
  }
  // Roll up inner solver activity so plan-level metrics stay meaningful.
  metrics_.solves += inner->metrics().solves;
  inner->metrics().solves = 0;
  metrics_.state_size = groups_.size();
  return Status::OK();
}

Result<std::vector<AllocatedBound>> PulseGroupBy::InvertBound(
    const Segment& output, const std::string& attribute, double margin,
    const SplitHeuristic& split) const {
  PulseOperator* inner = group_operator(output.key);
  if (inner == nullptr) {
    return Status::NotFound("no group operator for key " +
                            std::to_string(output.key));
  }
  return inner->InvertBound(output, attribute, margin, split);
}

Status PulseGroupBy::Flush(SegmentBatch* out) {
  for (auto& [group, inner] : groups_) {
    SegmentBatch inner_out;
    PULSE_RETURN_IF_ERROR(inner->Flush(&inner_out));
    for (Segment& s : inner_out) {
      s.key = group;
      out->push_back(std::move(s));
      ++metrics_.segments_out;
    }
  }
  return Status::OK();
}

}  // namespace pulse
