#ifndef PULSE_ENGINE_OPERATOR_H_
#define PULSE_ENGINE_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/op_metrics.h"
#include "engine/schema.h"
#include "engine/tuple.h"
#include "util/status.h"

namespace pulse {

/// Base class of all discrete stream operators (the Borealis-style tuple
/// substrate the paper builds on and benchmarks against).
///
/// Operators are push-based and single-threaded: the executor calls
/// Process() per input tuple and routes emitted tuples downstream.
/// Event time advances with tuple timestamps; AdvanceTime() delivers
/// punctuation so windowed operators can close windows even when one
/// input goes quiet. Flush() drains terminal state at end-of-stream.
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }

  /// Number of input ports (1 for unary operators, 2 for joins).
  virtual size_t num_inputs() const { return 1; }

  /// Output schema; resolved at construction from input schema(s).
  virtual std::shared_ptr<const Schema> output_schema() const = 0;

  /// Consumes one tuple on `port`, appending any outputs to `out`.
  virtual Status Process(size_t port, const Tuple& input,
                         std::vector<Tuple>* out) = 0;

  /// Observes that event time has reached `t` (punctuation). Default:
  /// no-op.
  virtual Status AdvanceTime(double t, std::vector<Tuple>* out);

  /// End-of-stream: emit any residual state. Default: no-op.
  virtual Status Flush(std::vector<Tuple>* out);

  OperatorMetrics& metrics() { return metrics_; }
  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  OperatorMetrics metrics_;

 private:
  std::string name_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_OPERATOR_H_
