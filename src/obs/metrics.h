#ifndef PULSE_OBS_METRICS_H_
#define PULSE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/atomic_counter.h"

namespace pulse {
namespace obs {

// Compile-out switch for the whole observability layer: with
// -DPULSE_NO_METRICS every Counter/Gauge/Histogram mutation and every
// PULSE_SPAN becomes an inline no-op (reads return zero, snapshots are
// empty). scripts/check.sh builds this configuration to measure the
// instrumentation overhead of the default build (metrics-overhead gate,
// budget 3%).
#if defined(PULSE_NO_METRICS)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotonic counter. The hot path is one relaxed fetch_add — safe and
/// truthful when operators fan out across the ThreadPool (same contract
/// as RelaxedCounter, see util/atomic_counter.h). Store() exists for
/// mirroring cumulative counts maintained elsewhere (ThreadPool,
/// SolveCache) into the registry namespace.
class Counter {
 public:
  void Add(uint64_t delta) {
    if constexpr (kMetricsEnabled) {
      v_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  void Increment() { Add(1); }
  void Store(uint64_t value) {
    if constexpr (kMetricsEnabled) {
      v_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Level metric (last-write-wins). Stores double bits in one atomic so
/// Set/value are lock-free and TSan-clean.
class Gauge {
 public:
  void Set(double value) {
    if constexpr (kMetricsEnabled) {
      bits_.store(ToBits(value), std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  double value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t ToBits(double d);
  static double FromBits(uint64_t b);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket log-linear latency histogram (HdrHistogram-style): 4
/// sub-buckets per power of two, so any recorded value lands in a bucket
/// whose width is at most 25% of its lower bound. Values are intended to
/// be nanoseconds but the structure is unit-agnostic. Recording is
/// lock-free (relaxed adds); percentile extraction walks a snapshot of
/// the bucket array.
class Histogram {
 public:
  /// 4 exact buckets for 0..3, then 4 sub-buckets per octave up to the
  /// full uint64 range.
  static constexpr size_t kNumBuckets = 4 + 62 * 4;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Percentile estimate in [0, 100]: locates the bucket holding the
  /// p-quantile observation and interpolates linearly inside it. The
  /// estimate is within one sub-bucket (<= 25% relative error) of the
  /// true order statistic. Returns 0 when empty.
  double Percentile(double p) const;

  /// Bucket index for a value (exposed for the brute-force oracle in
  /// tests).
  static size_t BucketOf(uint64_t value);
  /// [lo, hi) value range covered by bucket `b`.
  static std::pair<uint64_t, uint64_t> BucketBounds(size_t b);

  /// Consistent-enough copy of the bucket array for offline percentile
  /// math (snapshot exporters).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

  /// Overwrites this histogram with an externally assembled state
  /// (mirror/rollup targets: the shard pool periodically SetTo()s the
  /// sum of its per-shard histograms into the pool registry). Readers
  /// that difference successive observations (interval percentiles)
  /// stay correct as long as every SetTo source is itself monotone —
  /// a sum of monotone histograms is monotone.
  void SetTo(const std::array<uint64_t, kNumBuckets>& buckets,
             uint64_t count, uint64_t sum, uint64_t max);

 private:
  friend double PercentileFromBuckets(
      const std::array<uint64_t, kNumBuckets>& buckets, uint64_t count,
      double p);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Percentile math shared by Histogram::Percentile and snapshot
/// extraction.
double PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    uint64_t count, double p);

/// Point-in-time view of a registry. Plain data: safe to keep after the
/// registry (or the components feeding its views) are gone.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry;

/// RAII handle for a batch of view metrics (snapshot-time reads of
/// counters owned elsewhere, e.g. an operator's PulseOperatorMetrics).
/// Unregisters every view it added when destroyed — the component that
/// owns the viewed counters binds views through one ViewGroup and lets
/// its destruction keep the registry free of dangling reads.
class ViewGroup {
 public:
  ViewGroup() = default;
  ~ViewGroup();
  ViewGroup(ViewGroup&& other) noexcept;
  ViewGroup& operator=(ViewGroup&& other) noexcept;
  ViewGroup(const ViewGroup&) = delete;
  ViewGroup& operator=(const ViewGroup&) = delete;

  /// Publishes `source` under `name` as a counter. The source must stay
  /// alive until this group is destroyed or Release()d. Duplicate names
  /// get a "#2", "#3", ... suffix rather than silently merging.
  void AddCounterView(const std::string& name, const RelaxedCounter* source);
  /// Same, surfaced as a gauge (level semantics, e.g. buffered state
  /// sizes).
  void AddGaugeView(const std::string& name, const RelaxedCounter* source);

  /// Drops all views of this group from the registry.
  void Release();

  bool bound() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

/// Process- or component-scoped metric namespace: named counters,
/// gauges, and latency histograms with stable addresses. Handle lookup
/// (Get*) takes a mutex and is meant for wiring time; the returned
/// pointers are valid for the registry's lifetime and all operations on
/// them are lock-free.
///
/// Both query realizations report through a registry with the same
/// metric names (docs/OBSERVABILITY.md documents the naming scheme), so
/// discrete and Pulse runs of one query are directly comparable — the
/// differential harness asserts behavioral invariants on these names.
///
/// Lifetime: a registry must outlive every component holding handles
/// into it (the ThreadPool/SolveCache convention). View metrics are the
/// reverse direction — the registry reads counters owned by shorter-
/// lived components — and are therefore bound through ViewGroup, whose
/// destructor unregisters them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Starts a view batch owned by `group` (replacing its previous
  /// binding, if any).
  void BindViews(ViewGroup* group);

  MetricsSnapshot Snapshot() const;

  /// Copies every metric of this registry into `dst` under
  /// `prefix + name` (counters and counter-views via Store, gauges and
  /// gauge-views via Set, histograms via SetTo — last-write-wins
  /// overwrite semantics). This is how per-shard registries surface as
  /// `shard/<i>/...` families in a server-wide registry without the hot
  /// path ever touching two registries (docs/SHARDING.md). Safe against
  /// concurrent mutation on either side; `dst` must not be `this`.
  void MirrorInto(MetricsRegistry* dst, const std::string& prefix) const;

  /// Element-wise sum of `sources` written into `dst` under the plain
  /// (unprefixed) metric names: counters and counter-views sum into
  /// counters, gauges and gauge-views into gauges, histograms sum
  /// bucket-wise (max of maxes). Used for the merged cross-shard
  /// rollups; sources must not contain `dst`.
  static void Rollup(const std::vector<const MetricsRegistry*>& sources,
                     MetricsRegistry* dst);

  /// Number of registered metrics (owned + views); for tests.
  size_t size() const;

 private:
  friend class ViewGroup;

  struct View {
    const RelaxedCounter* source = nullptr;
    bool is_gauge = false;
    uint64_t group = 0;
  };

  void AddView(uint64_t group, const std::string& name,
               const RelaxedCounter* source, bool is_gauge);
  void DropViews(uint64_t group);

  mutable std::mutex mu_;
  // std::map: node addresses are stable across insertions, so handles
  // returned by Get* never move.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, View> views_;
  uint64_t next_group_ = 1;
};

/// Process-wide default registry (spans with no scoped registry record
/// here).
MetricsRegistry* DefaultRegistry();

}  // namespace obs
}  // namespace pulse

#endif  // PULSE_OBS_METRICS_H_
