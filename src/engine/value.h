#ifndef PULSE_ENGINE_VALUE_H_
#define PULSE_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace pulse {

/// Runtime type of a tuple field.
enum class ValueType { kInt64, kDouble, kString };

const char* ValueTypeToString(ValueType type);

/// A dynamically typed tuple field. The discrete engine processes generic
/// relational tuples; Pulse's modeled attributes are always kDouble, keys
/// are kInt64, and symbols/labels are kString.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                 // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                  // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)
  // Guard against the bool->int64 implicit surprise.
  Value(bool) = delete;

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_int64() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_string() const { return v_.index() == 2; }

  int64_t as_int64() const { return std::get<int64_t>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 fields coerce to double; strings are an error
  /// (callers validate types at plan-build time).
  double as_double() const {
    if (is_int64()) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering within the same type; numeric types compare numerically
  /// across int64/double.
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_VALUE_H_
