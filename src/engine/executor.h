#ifndef PULSE_ENGINE_EXECUTOR_H_
#define PULSE_ENGINE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "engine/tuple.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/result.h"

namespace pulse {

/// Single-threaded push executor for a QueryPlan.
///
/// PushTuple drives one tuple through the DAG to completion (depth-first
/// routing with an explicit work queue), collecting tuples that reach
/// sink operators. This is the Borealis-style per-tuple processing loop
/// the paper's discrete measurements go through.
class Executor {
 public:
  /// Validates the plan (acyclic); takes shared ownership of operators.
  static Result<Executor> Make(QueryPlan plan);

  /// Pushes a tuple on the named source stream and runs the dataflow to
  /// quiescence. Fails if the stream has no bindings.
  Status PushTuple(const std::string& stream, const Tuple& tuple);

  /// Punctuates all operators with event time t (topological order).
  Status AdvanceTime(double t);

  /// End-of-stream: flushes every operator.
  Status Finish();

  /// Tuples that reached sink operators since the last TakeOutput.
  std::vector<Tuple>& output() { return output_; }
  std::vector<Tuple> TakeOutput();

  /// Total tuples ever delivered to sinks.
  uint64_t total_output() const { return total_output_; }

  /// Optional per-result callback; when set, outputs still accumulate in
  /// output() unless discard_output(true).
  void set_output_callback(std::function<void(const Tuple&)> cb) {
    callback_ = std::move(cb);
  }
  /// When true, sink tuples are counted and passed to the callback but
  /// not stored (long benchmark runs).
  void set_discard_output(bool discard) { discard_output_ = discard; }

  /// Publishes every operator's counters into `registry` under the same
  /// op/<name>/... naming scheme the Pulse executor uses
  /// (docs/OBSERVABILITY.md), making a discrete run of a query directly
  /// comparable to its Pulse realization, and enables per-operator
  /// Process latency histograms (op/<name>/process_ns). The registry
  /// must outlive the executor; pass nullptr to detach.
  void set_metrics_registry(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics_registry() const { return registry_; }

  const QueryPlan& plan() const { return plan_; }
  QueryPlan& plan() { return plan_; }

 private:
  explicit Executor(QueryPlan plan) : plan_(std::move(plan)) {}

  // Routes `tuples` produced by `from` to its downstream operators,
  // processing transitively until quiescence.
  Status Drain(QueryPlan::NodeId from, std::vector<Tuple> tuples);
  void DeliverToSink(const Tuple& tuple);
  // One Process call, timed into the operator's processing_ns counter
  // and its op/<name>/process_ns histogram when a registry is attached.
  Status RunNode(QueryPlan::NodeId id, size_t port, const Tuple& tuple,
                 std::vector<Tuple>* out);

  QueryPlan plan_;
  std::vector<QueryPlan::NodeId> topo_order_;
  std::vector<Tuple> output_;
  uint64_t total_output_ = 0;
  std::function<void(const Tuple&)> callback_;
  bool discard_output_ = false;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::ViewGroup views_;
  // Parallel to plan_ nodes; resolved once in set_metrics_registry so
  // the per-tuple path never does a name lookup.
  std::vector<obs::Histogram*> node_hists_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_EXECUTOR_H_
