#ifndef PULSE_ENGINE_METRICS_H_
#define PULSE_ENGINE_METRICS_H_

#include <cstdint>
#include <string>

namespace pulse {

/// Per-operator counters used by the benchmark harness to report the
/// paper's processing-cost and throughput series. Counters are plain
/// (single-threaded executor).
struct OperatorMetrics {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t invocations = 0;
  /// Predicate/state evaluations: the join microbenchmark's "number of
  /// comparisons" driver (paper Fig. 5iii discussion).
  uint64_t comparisons = 0;
  /// Wall-clock nanoseconds spent inside Process/AdvanceTime.
  uint64_t processing_ns = 0;

  void Reset() { *this = OperatorMetrics(); }

  double processing_seconds() const {
    return static_cast<double>(processing_ns) * 1e-9;
  }

  std::string ToString() const;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_METRICS_H_
