#include "core/validation/inversion.h"

#include <map>

#include "util/logging.h"

namespace pulse {

QueryInverter::QueryInverter(const PulsePlan* plan,
                             std::shared_ptr<const SplitHeuristic> split)
    : plan_(plan), split_(std::move(split)) {
  PULSE_CHECK(plan_ != nullptr);
  if (split_ == nullptr) split_ = std::make_shared<EquiSplit>();
}

Status QueryInverter::InvertForOutput(PulsePlan::NodeId sink,
                                      const Segment& output,
                                      const BoundSpec& spec,
                                      BoundRegistry* registry) {
  // Relative bounds reference the result's magnitude: evaluate the output
  // model at the middle of its validity range.
  double reference = 0.0;
  if (spec.relative) {
    PULSE_ASSIGN_OR_RETURN(
        reference,
        output.EvaluateAttribute(spec.attribute,
                                 0.5 * (output.range.lo + output.range.hi)));
  }
  const double margin = spec.MarginFor(reference);
  return InvertAtNode(sink, output, spec.attribute, margin, registry, 0);
}

Status QueryInverter::InvertAtNode(PulsePlan::NodeId node,
                                   const Segment& output,
                                   const std::string& attribute,
                                   double margin, BoundRegistry* registry,
                                   int depth) {
  if (depth > 64) {
    return Status::Internal("bound inversion recursion too deep");
  }
  PulseOperator* op = plan_->node(node);
  PULSE_ASSIGN_OR_RETURN(
      std::vector<AllocatedBound> allocs,
      op->InvertBound(output, attribute, margin, *split_));
  ++inversions_;

  // Resolve allocated segment ids back to the snapshotted input segments
  // so the walk can continue into upstream producers.
  std::map<uint64_t, const Segment*> by_id;
  if (const std::vector<LineageEntry>* causes =
          op->lineage().Lookup(output.id)) {
    for (const LineageEntry& e : *causes) by_id[e.input.id] = &e.input;
  }

  for (const AllocatedBound& ab : allocs) {
    const std::optional<PulsePlan::NodeId> upstream =
        plan_->UpstreamOf(node, ab.port);
    if (!upstream.has_value()) {
      // Reached a plan source: this is an enforceable input bound.
      registry->Set(ab.key, ab.attribute, ab.margin);
      continue;
    }
    auto it = by_id.find(ab.segment_id);
    if (it == by_id.end()) {
      // Lineage for the intermediate segment expired; fall back to
      // registering a conservative source-level bound keyed by entity.
      registry->Set(ab.key, ab.attribute, ab.margin);
      continue;
    }
    PULSE_RETURN_IF_ERROR(InvertAtNode(*upstream, *it->second, ab.attribute,
                                       ab.margin, registry, depth + 1));
  }
  return Status::OK();
}

}  // namespace pulse
