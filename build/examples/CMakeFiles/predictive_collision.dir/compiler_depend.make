# Empty compiler generated dependencies file for predictive_collision.
# This may be replaced when dependencies are built.
