// Predictive collision detection: the paper's motivating query
// (Section I):
//
//   select from objects R join objects S on (R.id <> S.id)
//   where abs(distance(R.x, R.y, S.x, S.y)) < c
//
// Instead of comparing many position samples, Pulse solves the models of
// the object trajectories analytically: each pair's proximity predicate
// becomes a polynomial difference equation whose solution is the exact
// FUTURE time window of the close approach — alerts fire before the
// objects are actually close (predictive processing, Section II-A).
//
// Build & run:  ./build/examples/predictive_collision
#include <cstdio>

#include "core/operators/join.h"
#include "core/runtime.h"
#include "workload/moving_object.h"

using namespace pulse;

int main() {
  const double kProximity = 50.0;

  QuerySpec spec;
  // Long horizon: models predict 30 s into the future.
  Status st = spec.AddStream(
      MovingObjectGenerator::MakeStreamSpec("objects", /*horizon=*/30.0));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  JoinSpec join;
  join.predicate = Predicate::Comparison(ComparisonTerm::Distance2(
      AttrRef::Left("x"), AttrRef::Left("y"), AttrRef::Right("x"),
      AttrRef::Right("y"), CmpOp::kLt, kProximity));
  join.window_seconds = 30.0;
  join.require_distinct_keys = true;  // R.id <> S.id
  spec.AddJoin("collision", QuerySpec::Input::Stream("objects"),
               QuerySpec::Input::Stream("objects"), join);

  PredictiveRuntime::Options options;
  options.bounds = {BoundSpec::Absolute("left.x", 5.0)};
  Result<PredictiveRuntime> runtime =
      PredictiveRuntime::Make(spec, options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }

  MovingObjectOptions gen_options;
  gen_options.num_objects = 12;
  gen_options.tuple_rate = 60.0;
  gen_options.tuples_per_segment = 600;  // long straight legs
  gen_options.area = 2000.0;             // dense enough to cross paths
  gen_options.speed = 25.0;
  MovingObjectGenerator generator(gen_options);

  size_t alerts = 0;
  for (int i = 0; i < 30000; ++i) {
    const Tuple tuple = generator.NextTuple();
    const double now = tuple.timestamp;
    st = runtime->ProcessTuple("objects", tuple);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    for (const Segment& s : runtime->TakeOutputSegments()) {
      Key a = 0, b = 0;
      SplitKeys(s.key, &a, &b);
      const double lead = s.range.lo - now;
      if (alerts < 15) {
        std::printf(
            "collision window: objects %lld and %lld within %.0f units "
            "during %s (predicted %+.1f s ahead)\n",
            (long long)a, (long long)b, kProximity,
            s.range.ToString().c_str(), lead);
      }
      ++alerts;
    }
  }
  (void)runtime->Finish();

  const RuntimeStats& stats = runtime->stats();
  std::printf("\n--- session summary ---\n");
  std::printf("position reports : %llu\n",
              (unsigned long long)stats.tuples_in);
  std::printf("model-validated  : %llu (%.1f%%)\n",
              (unsigned long long)stats.tuples_validated,
              100.0 * stats.tuples_validated / stats.tuples_in);
  std::printf("collision windows: %zu\n", alerts);
  return 0;
}
