#ifndef PULSE_MATH_MATRIX_H_
#define PULSE_MATH_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pulse {

/// Small dense row-major matrix of doubles.
///
/// Pulse's equation systems are tiny (rows = predicate conjuncts, columns =
/// polynomial degree + 1; see paper Eq. 1), as are the normal-equation
/// systems used by model fitting, so a simple dense representation with
/// O(n^3) factorizations is the right tool — this plays the role the
/// original implementation delegated to GSL.
class Matrix {
 public:
  /// 0x0 matrix.
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols from row-major data (size must match).
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  static Matrix Identity(size_t n);

  /// Builds a matrix from rows; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;
  std::vector<double> operator*(const std::vector<double>& v) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// True if every element differs by at most tol.
  bool AlmostEquals(const Matrix& other, double tol = 1e-9) const;

  /// sqrt(sum of squared elements).
  double FrobeniusNorm() const;

  /// Max row sum of absolute values (the induced infinity norm).
  double InfinityNorm() const;

  /// Row-major backing store.
  const std::vector<double>& data() const { return data_; }

  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pulse

#endif  // PULSE_MATH_MATRIX_H_
