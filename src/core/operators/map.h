#ifndef PULSE_CORE_OPERATORS_MAP_H_
#define PULSE_CORE_OPERATORS_MAP_H_

#include <string>
#include <vector>

#include "core/operators/pulse_operator.h"
#include "core/predicate.h"

namespace pulse {

/// A derived modeled attribute, computable in both worlds: on polynomials
/// (continuous plan — polynomial algebra is closed under these forms) and
/// on tuple values (discrete plan).
///
///   kDifference: name = a - b            (MACD's "S.ap - L.ap as diff")
///   kDistance2:  name = (x1-x2)^2 + (y1-y2)^2
///                                        (proximity queries' dist^2)
///
/// Attribute references address the single input segment (side kLeft);
/// post-join inputs use the prefixed names ("left.agg").
struct ComputedAttr {
  enum class Kind { kDifference, kDistance2 };
  Kind kind = Kind::kDifference;
  std::string name;

  AttrRef a, b;              // kDifference: a - b
  AttrRef x1, y1, x2, y2;    // kDistance2

  static ComputedAttr Difference(std::string name, AttrRef a, AttrRef b);
  static ComputedAttr Distance2(std::string name, AttrRef x1, AttrRef y1,
                                AttrRef x2, AttrRef y2);

  /// Continuous form: the derived polynomial for one segment.
  Result<Polynomial> BuildPolynomial(const AttrResolver& resolver) const;

  /// Discrete form: the derived value for one tuple.
  Result<double> EvaluateValues(
      const Predicate::ValueResolver& resolver) const;
};

/// Continuous-time map/projection: emits segments extended (or replaced)
/// with derived modeled attributes. Stateless; validity ranges pass
/// through unchanged.
class PulseMap : public PulseOperator {
 public:
  /// keep_inputs: whether the input attributes survive alongside the
  /// computed ones.
  PulseMap(std::string name, std::vector<ComputedAttr> outputs,
           bool keep_inputs = true);

  Status Process(size_t port, const Segment& segment,
                 SegmentBatch* out) override;

  /// The pure transform Process applies: the input segment extended (or
  /// replaced) with the computed attributes, with no id assignment,
  /// lineage record, or metrics. Lets the runtime's slack analysis see
  /// through the map without polluting operator state.
  Result<Segment> Apply(const Segment& segment) const;

  Result<std::vector<AllocatedBound>> InvertBound(
      const Segment& output, const std::string& attribute, double margin,
      const SplitHeuristic& split) const override;

 private:
  std::vector<ComputedAttr> outputs_;
  bool keep_inputs_;
};

}  // namespace pulse

#endif  // PULSE_CORE_OPERATORS_MAP_H_
