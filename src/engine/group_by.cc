#include "engine/group_by.h"

#include <cmath>

#include "util/logging.h"

namespace pulse {

GroupedWindowedAggregate::GroupedWindowedAggregate(
    std::string name, std::shared_ptr<const Schema> input_schema,
    WindowSpec window, AggFn fn, size_t value_field, size_t group_field,
    std::string output_field)
    : Operator(std::move(name)),
      input_schema_(std::move(input_schema)),
      window_(window),
      fn_(fn),
      value_field_(value_field),
      group_field_(group_field) {
  PULSE_CHECK(input_schema_ != nullptr);
  PULSE_CHECK(window_.size > 0.0 && window_.slide > 0.0);
  PULSE_CHECK(value_field_ < input_schema_->num_fields());
  PULSE_CHECK(group_field_ < input_schema_->num_fields());
  output_schema_ = Schema::Make(
      {{"group", input_schema_->field(group_field_).type},
       {std::move(output_field), ValueType::kDouble}});
}

void GroupedWindowedAggregate::EnsureWindows(double t) {
  if (!have_origin_) {
    have_origin_ = true;
    next_close_ = t + window_.size;
  }
  if (next_close_ <= t) {
    const double skips =
        std::floor((t - next_close_) / window_.slide) + 1.0;
    next_close_ += skips * window_.slide;
    while (next_close_ <= t) next_close_ += window_.slide;
  }
  while (next_close_ <= t + window_.size) {
    windows_.push_back(OpenWindow{next_close_, {}});
    next_close_ += window_.slide;
  }
}

void GroupedWindowedAggregate::CloseThrough(double t,
                                            std::vector<Tuple>* out) {
  while (!windows_.empty() && windows_.front().close <= t) {
    EmitWindow(windows_.front(), out);
    windows_.pop_front();
  }
}

void GroupedWindowedAggregate::EmitWindow(const OpenWindow& w,
                                          std::vector<Tuple>* out) {
  for (const auto& [group, state] : w.groups) {
    if (state.count == 0) continue;
    Tuple result;
    result.timestamp = w.close;
    result.values.push_back(group);
    result.values.push_back(Value(state.Finalize(fn_)));
    out->push_back(std::move(result));
    ++metrics_.tuples_out;
  }
}

Status GroupedWindowedAggregate::Process(size_t port, const Tuple& input,
                                         std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  const double t = input.timestamp;
  CloseThrough(t, out);
  EnsureWindows(t);
  const Value& group = input.at(group_field_);
  const double v = input.at(value_field_).as_double();
  for (OpenWindow& w : windows_) {
    w.groups[group].Update(v);
    ++metrics_.comparisons;
  }
  return Status::OK();
}

Status GroupedWindowedAggregate::AdvanceTime(double t,
                                             std::vector<Tuple>* out) {
  CloseThrough(t, out);
  return Status::OK();
}

Status GroupedWindowedAggregate::Flush(std::vector<Tuple>* out) {
  for (const OpenWindow& w : windows_) EmitWindow(w, out);
  windows_.clear();
  return Status::OK();
}

}  // namespace pulse
