#ifndef PULSE_ENGINE_METRICS_H_
#define PULSE_ENGINE_METRICS_H_

#include <cstdint>
#include <string>

#include "util/atomic_counter.h"

namespace pulse {

/// Per-operator counters used by the benchmark harness to report the
/// paper's processing-cost and throughput series. Counters are relaxed
/// atomics so they stay truthful if an operator is ever driven from a
/// ThreadPool shard (see docs/CONCURRENCY.md).
struct OperatorMetrics {
  RelaxedCounter tuples_in = 0;
  RelaxedCounter tuples_out = 0;
  RelaxedCounter invocations = 0;
  /// Predicate/state evaluations: the join microbenchmark's "number of
  /// comparisons" driver (paper Fig. 5iii discussion).
  RelaxedCounter comparisons = 0;
  /// Wall-clock nanoseconds spent inside Process/AdvanceTime.
  RelaxedCounter processing_ns = 0;

  void Reset() { *this = OperatorMetrics(); }

  double processing_seconds() const {
    return static_cast<double>(processing_ns) * 1e-9;
  }

  std::string ToString() const;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_METRICS_H_
