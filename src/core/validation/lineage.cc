#include "core/validation/lineage.h"

#include <atomic>

namespace pulse {

void LineageStore::Record(uint64_t out_id, const Interval& out_range,
                          std::vector<LineageEntry> causes) {
  records_[out_id] = OutputRecord{out_range, std::move(causes)};
}

const std::vector<LineageEntry>* LineageStore::Lookup(uint64_t out_id) const {
  auto it = records_.find(out_id);
  if (it == records_.end()) return nullptr;
  return &it->second.causes;
}

void LineageStore::ExpireBefore(double t) {
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.out_range.hi < t) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t NextSegmentId() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace pulse
