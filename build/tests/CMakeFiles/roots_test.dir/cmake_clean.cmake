file(REMOVE_RECURSE
  "CMakeFiles/roots_test.dir/roots_test.cc.o"
  "CMakeFiles/roots_test.dir/roots_test.cc.o.d"
  "roots_test"
  "roots_test.pdb"
  "roots_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
