#include "store/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "serve/wire.h"
#include "store/checksum.h"

namespace pulse {
namespace store {

namespace {

namespace wire = serve::wire;

constexpr char kCkpMagic[8] = {'P', 'U', 'L', 'S', 'E', 'C', 'K', 'P'};
constexpr uint32_t kCkpVersion = 1;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so the rename itself is
/// durable (a crash after rename but before the directory sync could
/// otherwise resurrect the old checkpoint).
Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync directory", dir);
  return Status::OK();
}

}  // namespace

std::string EncodeCheckpoint(const Checkpoint& checkpoint) {
  std::string payload;
  wire::PutU64(&payload, checkpoint.log_records);
  wire::PutU64(&payload, checkpoint.log_bytes);
  wire::PutU64(&payload, checkpoint.delivered_outputs);
  wire::PutU64(&payload, checkpoint.output_hash);
  wire::PutU8(&payload, checkpoint.finished ? 1 : 0);

  std::string out(kCkpMagic, sizeof(kCkpMagic));
  wire::PutU32(&out, kCkpVersion);
  wire::PutU32(&out, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&out, Crc32c(payload));
  out.append(payload);
  return out;
}

Result<Checkpoint> DecodeCheckpoint(const char* data, size_t n) {
  constexpr size_t kPrefix = sizeof(kCkpMagic) + 12;
  if (n < kPrefix) {
    return Status::IoError("checkpoint shorter than its header");
  }
  if (std::memcmp(data, kCkpMagic, sizeof(kCkpMagic)) != 0) {
    return Status::IoError("checkpoint magic mismatch");
  }
  wire::Cursor head{data + sizeof(kCkpMagic), 12};
  const uint32_t version = *wire::GetU32(&head, "checkpoint version");
  if (version != kCkpVersion) {
    return Status::IoError("unsupported checkpoint version " +
                           std::to_string(version));
  }
  const uint32_t len = *wire::GetU32(&head, "checkpoint payload length");
  const uint32_t stored_crc = *wire::GetU32(&head, "checkpoint crc");
  if (n - kPrefix < len) {
    return Status::IoError("checkpoint payload truncated");
  }
  const char* payload = data + kPrefix;
  if (Crc32c(payload, len) != stored_crc) {
    return Status::IoError("checkpoint checksum mismatch");
  }
  wire::Cursor c{payload, len};
  Checkpoint ckp;
  PULSE_ASSIGN_OR_RETURN(ckp.log_records, wire::GetU64(&c, "log records"));
  PULSE_ASSIGN_OR_RETURN(ckp.log_bytes, wire::GetU64(&c, "log bytes"));
  PULSE_ASSIGN_OR_RETURN(ckp.delivered_outputs,
                         wire::GetU64(&c, "delivered outputs"));
  PULSE_ASSIGN_OR_RETURN(ckp.output_hash, wire::GetU64(&c, "output hash"));
  PULSE_ASSIGN_OR_RETURN(uint8_t finished, wire::GetU8(&c, "finished flag"));
  ckp.finished = finished != 0;
  if (c.pos != c.size) {
    return Status::IoError("checkpoint payload has trailing bytes");
  }
  return ckp;
}

Status WriteCheckpointFile(const std::string& path,
                           const Checkpoint& checkpoint) {
  const std::string image = EncodeCheckpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Errno("create checkpoint temp", tmp);
  const bool wrote =
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
  const bool flushed = wrote && std::fflush(f) == 0;
  const bool synced = flushed && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!synced) {
    std::remove(tmp.c_str());
    return Errno("write checkpoint temp", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Errno("rename checkpoint into place", path);
  }
  return SyncParentDir(path);
}

Result<Checkpoint> ReadCheckpointFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("checkpoint '" + path + "' does not exist");
    }
    return Errno("open checkpoint", path);
  }
  std::string contents;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Errno("read checkpoint", path);
  return DecodeCheckpoint(contents.data(), contents.size());
}

}  // namespace store
}  // namespace pulse
