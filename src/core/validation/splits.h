#ifndef PULSE_CORE_VALIDATION_SPLITS_H_
#define PULSE_CORE_VALIDATION_SPLITS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/segment.h"
#include "util/result.h"

namespace pulse {

/// Inputs to a split heuristic (paper Section IV-C): the output segment
/// (its key ok and coefficients oc), the output bound, and the causing
/// input segments (keys ikp..ikq with coefficients ica). The result
/// allocates a bound to exactly the keys that caused the output.
struct SplitContext {
  /// The output segment whose bound is being apportioned.
  const Segment* output = nullptr;
  /// The output attribute the bound applies to.
  std::string attribute;
  /// Symmetric output margin (half the [ol, ou] width).
  double margin = 0.0;
  /// Causing input segments (from lineage).
  std::vector<const Segment*> inputs;
  /// The attribute on the inputs that feeds the output attribute.
  std::string input_attribute;
  /// |D(o)| = |translations(o) ∪ inferences(o)|: how many attribute
  /// dependencies share this bound (Section IV-B/IV-C).
  size_t num_dependencies = 1;
};

/// Allocation of a symmetric margin to one input (key, attribute).
/// `port` and `segment_id` identify the causing input segment so whole-
/// query inversion can keep walking upstream.
struct AllocatedBound {
  Key key = 0;
  std::string attribute;
  double margin = 0.0;
  size_t port = 0;
  uint64_t segment_id = 0;
};

/// Strategy apportioning an output bound across the causing inputs.
/// Implementations must be conservative: two-sided input margins whose
/// effect on the output cannot exceed the output margin (Section IV-C).
/// Pulse also exposes this interface for user-defined heuristics.
class SplitHeuristic {
 public:
  virtual ~SplitHeuristic() = default;
  virtual std::string name() const = 0;
  virtual Result<std::vector<AllocatedBound>> Apportion(
      const SplitContext& ctx) const = 0;
};

/// Equi-split (paper Section IV-C): uniform allocation,
///   margin_i = margin / (|inputs| * |D(o)|).
class EquiSplit : public SplitHeuristic {
 public:
  std::string name() const override { return "equi"; }
  Result<std::vector<AllocatedBound>> Apportion(
      const SplitContext& ctx) const override;
};

/// Gradient split (paper Section IV-C): weights each input by the
/// magnitude of its model's time derivative over the output's validity
/// range, normalized across inputs — fast-moving models receive a larger
/// share of the bound, slow models a tight one, which postpones
/// violations on the attributes most likely to drift.
class GradientSplit : public SplitHeuristic {
 public:
  std::string name() const override { return "gradient"; }
  Result<std::vector<AllocatedBound>> Apportion(
      const SplitContext& ctx) const override;
};

/// Adapter for user-defined split functions (the paper exposes exactly
/// this extension point: "Pulse supports the specification of
/// user-defined split heuristics by exposing a function interface").
class UserSplit : public SplitHeuristic {
 public:
  using Fn = std::function<Result<std::vector<AllocatedBound>>(
      const SplitContext&)>;

  UserSplit(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  Result<std::vector<AllocatedBound>> Apportion(
      const SplitContext& ctx) const override {
    return fn_(ctx);
  }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace pulse

#endif  // PULSE_CORE_VALIDATION_SPLITS_H_
