#include "engine/distinct.h"

#include "engine/epoch.h"
#include "util/logging.h"

namespace pulse {

EpochDistinct::EpochDistinct(std::string name,
                             std::shared_ptr<const Schema> schema,
                             double epoch_seconds, size_t key_index)
    : Operator(std::move(name)),
      schema_(std::move(schema)),
      epoch_seconds_(epoch_seconds),
      key_index_(key_index) {
  PULSE_CHECK(schema_ != nullptr);
  PULSE_CHECK(epoch_seconds_ > 0.0);
  PULSE_CHECK(key_index_ < schema_->num_fields());
}

Status EpochDistinct::Process(size_t port, const Tuple& input,
                              std::vector<Tuple>* out) {
  PULSE_CHECK(port == 0);
  ++metrics_.invocations;
  ++metrics_.tuples_in;
  const int64_t key = input.at(key_index_).as_int64();
  const int64_t epoch = EpochIndexOf(input.timestamp, epoch_seconds_);
  auto [it, inserted] = last_emitted_.emplace(key, epoch);
  if (!inserted) {
    if (it->second >= epoch) return Status::OK();  // already seen
    it->second = epoch;
  }
  out->push_back(input);
  ++metrics_.tuples_out;
  return Status::OK();
}

}  // namespace pulse
