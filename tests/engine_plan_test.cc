#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/filter.h"
#include "engine/join.h"
#include "engine/plan.h"

namespace pulse {
namespace {

std::shared_ptr<const Schema> VSchema() {
  return Schema::Make(
      {{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
}

Tuple VTuple(double ts, int64_t id, double v) {
  return Tuple(ts, {Value(id), Value(v)});
}

std::shared_ptr<LambdaFilter> GtFilter(double threshold) {
  return std::make_shared<LambdaFilter>(
      "gt", VSchema(), [threshold](const Tuple& t) {
        return t.at(1).as_double() > threshold;
      });
}

TEST(QueryPlan, ConnectValidation) {
  QueryPlan plan;
  auto id = plan.AddOperator(GtFilter(0.0));
  EXPECT_FALSE(plan.Connect(id, 99, 0).ok());
  EXPECT_FALSE(plan.Connect(id, id, 5).ok());  // port out of range
  EXPECT_TRUE(plan.BindSource("s", id, 0).ok());
  EXPECT_FALSE(plan.BindSource("s", 99, 0).ok());
}

TEST(QueryPlan, TopologicalOrderLinearChain) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  auto b = plan.AddOperator(GtFilter(1.0));
  auto c = plan.AddOperator(GtFilter(2.0));
  ASSERT_TRUE(plan.Connect(a, b).ok());
  ASSERT_TRUE(plan.Connect(b, c).ok());
  Result<std::vector<QueryPlan::NodeId>> order = plan.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<QueryPlan::NodeId>{a, b, c}));
  EXPECT_EQ(plan.SinkNodes(), std::vector<QueryPlan::NodeId>{c});
}

TEST(QueryPlan, CycleDetected) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  auto b = plan.AddOperator(GtFilter(1.0));
  ASSERT_TRUE(plan.Connect(a, b).ok());
  ASSERT_TRUE(plan.Connect(b, a).ok());
  EXPECT_FALSE(plan.TopologicalOrder().ok());
}

TEST(Executor, PushThroughChain) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(1.0));
  auto b = plan.AddOperator(GtFilter(2.0));
  ASSERT_TRUE(plan.Connect(a, b).ok());
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushTuple("in", VTuple(0, 1, 5.0)).ok());
  ASSERT_TRUE(exec->PushTuple("in", VTuple(1, 1, 1.5)).ok());  // fails b
  ASSERT_TRUE(exec->PushTuple("in", VTuple(2, 1, 0.5)).ok());  // fails a
  EXPECT_EQ(exec->output().size(), 1u);
  EXPECT_DOUBLE_EQ(exec->output()[0].at(1).as_double(), 5.0);
  EXPECT_EQ(exec->total_output(), 1u);
}

TEST(Executor, UnknownStreamFails) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->PushTuple("nope", VTuple(0, 1, 1.0)).code(),
            StatusCode::kNotFound);
}

TEST(Executor, FanOutToTwoConsumers) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  auto b = plan.AddOperator(GtFilter(10.0));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  ASSERT_TRUE(plan.BindSource("in", b, 0).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushTuple("in", VTuple(0, 1, 20.0)).ok());
  // Both sinks pass: two outputs.
  EXPECT_EQ(exec->output().size(), 2u);
}

TEST(Executor, JoinPlanWithTwoSources) {
  QueryPlan plan;
  auto schema = VSchema();
  auto join = plan.AddOperator(std::make_shared<SlidingWindowJoin>(
      "j", schema, schema, 10.0,
      std::vector<JoinComparison>{{0, CmpOp::kEq, 0}}));
  ASSERT_TRUE(plan.BindSource("l", join, 0).ok());
  ASSERT_TRUE(plan.BindSource("r", join, 1).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushTuple("l", VTuple(0.0, 7, 1.0)).ok());
  ASSERT_TRUE(exec->PushTuple("r", VTuple(0.5, 7, 2.0)).ok());
  ASSERT_TRUE(exec->PushTuple("r", VTuple(0.6, 8, 2.0)).ok());
  EXPECT_EQ(exec->output().size(), 1u);
}

TEST(Executor, CallbackAndDiscard) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  size_t seen = 0;
  exec->set_output_callback([&](const Tuple&) { ++seen; });
  exec->set_discard_output(true);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(exec->PushTuple("in", VTuple(i, 1, 1.0)).ok());
  }
  EXPECT_EQ(seen, 5u);
  EXPECT_TRUE(exec->output().empty());
  EXPECT_EQ(exec->total_output(), 5u);
}

TEST(Executor, TakeOutputDrains) {
  QueryPlan plan;
  auto a = plan.AddOperator(GtFilter(0.0));
  ASSERT_TRUE(plan.BindSource("in", a, 0).ok());
  Result<Executor> exec = Executor::Make(std::move(plan));
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->PushTuple("in", VTuple(0, 1, 1.0)).ok());
  EXPECT_EQ(exec->TakeOutput().size(), 1u);
  EXPECT_TRUE(exec->output().empty());
}

}  // namespace
}  // namespace pulse
