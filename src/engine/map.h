#ifndef PULSE_ENGINE_MAP_H_
#define PULSE_ENGINE_MAP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"

namespace pulse {

/// One output column of a Map: a name, a type and an expression over the
/// input tuple. Simple projections use FieldExpr; computed columns (e.g.
/// the MACD "S.ap - L.ap as diff") use arbitrary expressions.
struct MapColumn {
  Field field;
  std::function<Value(const Tuple&)> expr;

  /// Pass-through projection of input column `index`.
  static MapColumn FieldExpr(Field out_field, size_t index) {
    return MapColumn{std::move(out_field),
                     [index](const Tuple& t) { return t.at(index); }};
  }
};

/// Stateless 1-to-1 map/projection operator.
class MapOperator : public Operator {
 public:
  MapOperator(std::string name, std::vector<MapColumn> columns);

  std::shared_ptr<const Schema> output_schema() const override {
    return schema_;
  }

  Status Process(size_t port, const Tuple& input,
                 std::vector<Tuple>* out) override;

 private:
  std::vector<MapColumn> columns_;
  std::shared_ptr<const Schema> schema_;
};

}  // namespace pulse

#endif  // PULSE_ENGINE_MAP_H_
