#include "model/piecewise.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pulse {
namespace {

TEST(PiecewiseModel, EmptyModel) {
  PiecewiseModel m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.Evaluate(1.0).has_value());
  EXPECT_TRUE(m.Domain().IsEmpty());
}

TEST(PiecewiseModel, OverwriteAndEvaluate) {
  PiecewiseModel m;
  m.Overwrite(Piece{Interval::ClosedOpen(0.0, 2.0), Polynomial({1.0})});
  m.Overwrite(Piece{Interval::ClosedOpen(2.0, 4.0), Polynomial({2.0})});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(*m.Evaluate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(3.0), 2.0);
  EXPECT_FALSE(m.Evaluate(5.0).has_value());
}

TEST(PiecewiseModel, OverwriteSplitsExisting) {
  PiecewiseModel m;
  m.Overwrite(Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({1.0})});
  m.Overwrite(Piece{Interval::ClosedOpen(4.0, 6.0), Polynomial({9.0})});
  EXPECT_DOUBLE_EQ(*m.Evaluate(2.0), 1.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(5.0), 9.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(8.0), 1.0);
  EXPECT_EQ(m.size(), 3u);
}

TEST(PiecewiseModel, MergeEnvelopeFillsUncoveredRange) {
  PiecewiseModel m;
  IntervalSet won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 2.0), Polynomial({5.0})},
      /*is_min=*/true);
  EXPECT_DOUBLE_EQ(won.TotalLength(), 2.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(1.0), 5.0);
}

TEST(PiecewiseModel, MinEnvelopeKeepsSmaller) {
  PiecewiseModel m;
  m.MergeEnvelope(Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({5.0})},
                  true);
  // Candidate above the envelope: wins nothing.
  IntervalSet won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({7.0})}, true);
  EXPECT_DOUBLE_EQ(won.TotalLength(), 0.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(3.0), 5.0);
  // Candidate below: wins everywhere it extends.
  won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(2.0, 4.0), Polynomial({1.0})}, true);
  EXPECT_DOUBLE_EQ(won.TotalLength(), 2.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(3.0), 1.0);
  EXPECT_DOUBLE_EQ(*m.Evaluate(5.0), 5.0);
}

TEST(PiecewiseModel, MinEnvelopeCrossingLines) {
  // Envelope 10 - t vs candidate t: candidate is smaller before t = 5.
  PiecewiseModel m;
  m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({10.0, -1.0})},
      true);
  IntervalSet won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({0.0, 1.0})}, true);
  EXPECT_NEAR(won.TotalLength(), 5.0, 1e-9);
  EXPECT_NEAR(*m.Evaluate(2.0), 2.0, 1e-9);   // candidate line
  EXPECT_NEAR(*m.Evaluate(8.0), 2.0, 1e-9);   // original line 10 - t
  // Envelope value is min of the two lines everywhere.
  for (double t = 0.25; t < 10.0; t += 0.5) {
    EXPECT_NEAR(*m.Evaluate(t), std::min(t, 10.0 - t), 1e-9) << t;
  }
}

TEST(PiecewiseModel, MaxEnvelopeCrossingLines) {
  PiecewiseModel m;
  m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({10.0, -1.0})},
      false);
  m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({0.0, 1.0})},
      false);
  for (double t = 0.25; t < 10.0; t += 0.5) {
    EXPECT_NEAR(*m.Evaluate(t), std::max(t, 10.0 - t), 1e-9) << t;
  }
}

TEST(PiecewiseModel, EnvelopeWithQuadratic) {
  // Parabola (t-5)^2 + 1 dips below the constant 5 near its vertex.
  PiecewiseModel m;
  m.MergeEnvelope(Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({5.0})},
                  true);
  IntervalSet won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({26.0, -10.0, 1.0})},
      true);
  // (t-5)^2 + 1 < 5  <=>  |t-5| < 2  <=>  t in (3, 7).
  EXPECT_NEAR(won.TotalLength(), 4.0, 1e-6);
  EXPECT_NEAR(*m.Evaluate(5.0), 1.0, 1e-9);
  EXPECT_NEAR(*m.Evaluate(2.0), 5.0, 1e-9);
}

TEST(PiecewiseModel, ReturnedWinSetMatchesChangedRegion) {
  PiecewiseModel m;
  m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({0.0, 1.0})}, true);
  IntervalSet won = m.MergeEnvelope(
      Piece{Interval::ClosedOpen(0.0, 10.0), Polynomial({3.0})}, true);
  // Constant 3 beats line t exactly for t > 3.
  ASSERT_FALSE(won.IsEmpty());
  EXPECT_NEAR(won.Min(), 3.0, 1e-9);
  EXPECT_NEAR(won.Max(), 10.0, 1e-9);
}

TEST(PiecewiseModel, ExpireBefore) {
  PiecewiseModel m;
  m.Overwrite(Piece{Interval::ClosedOpen(0.0, 2.0), Polynomial({1.0})});
  m.Overwrite(Piece{Interval::ClosedOpen(2.0, 4.0), Polynomial({2.0})});
  m.ExpireBefore(3.0);
  EXPECT_FALSE(m.Evaluate(1.0).has_value());
  EXPECT_DOUBLE_EQ(*m.Evaluate(3.5), 2.0);
  // Straddling piece trimmed, not dropped.
  EXPECT_DOUBLE_EQ(m.pieces().front().range.lo, 3.0);
  m.ExpireBefore(100.0);
  EXPECT_TRUE(m.empty());
}

TEST(PiecewiseModel, AdjacentIdenticalPiecesCoalesce) {
  PiecewiseModel m;
  m.Overwrite(Piece{Interval::ClosedOpen(0.0, 1.0), Polynomial({1.0})});
  m.Overwrite(Piece{Interval::ClosedOpen(1.0, 2.0), Polynomial({1.0})});
  EXPECT_EQ(m.size(), 1u);
}

// Property sweep: after merging N random lines, the envelope equals the
// pointwise min/max of all lines at every probe.
class EnvelopeSweep : public ::testing::TestWithParam<bool> {};

TEST_P(EnvelopeSweep, MatchesPointwiseExtremum) {
  const bool is_min = GetParam();
  PiecewiseModel m;
  std::vector<Polynomial> lines;
  for (int i = 0; i < 8; ++i) {
    // Deterministic pseudo-random slopes/intercepts.
    const double slope = std::sin(i * 1.7) * 3.0;
    const double intercept = std::cos(i * 2.3) * 10.0;
    lines.push_back(Polynomial({intercept, slope}));
    m.MergeEnvelope(Piece{Interval::ClosedOpen(0.0, 20.0), lines.back()},
                    is_min);
  }
  for (double t = 0.1; t < 20.0; t += 0.37) {
    double expected = lines[0].Evaluate(t);
    for (const Polynomial& l : lines) {
      expected = is_min ? std::min(expected, l.Evaluate(t))
                        : std::max(expected, l.Evaluate(t));
    }
    ASSERT_TRUE(m.Evaluate(t).has_value()) << t;
    EXPECT_NEAR(*m.Evaluate(t), expected, 1e-7) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(MinAndMax, EnvelopeSweep, ::testing::Bool());

}  // namespace
}  // namespace pulse
