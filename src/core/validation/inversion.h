#ifndef PULSE_CORE_VALIDATION_INVERSION_H_
#define PULSE_CORE_VALIDATION_INVERSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/pulse_plan.h"
#include "core/validation/bounds.h"
#include "core/validation/splits.h"
#include "util/result.h"

namespace pulse {

/// Whole-query bound inversion (paper Section IV-B, "Query inversion
/// problem"): given a range of values on an attribute at a query's
/// output, determine the ranges of query *input* values that produce
/// those outputs, by recursively applying each operator's local bound
/// inversion and split heuristic back up the plan.
///
/// The walk is driven by observed output segments: lineage identifies the
/// unique causing inputs at every operator (Properties 1 and 2), each
/// operator's InvertBound apportions the margin, and allocations that
/// reach a plan source are recorded as (key, attribute) margins in a
/// BoundRegistry — the bounds the runtime then validates arriving tuples
/// against, "completely eliminating the need for executing the
/// discrete-time query".
class QueryInverter {
 public:
  /// `plan` must outlive the inverter. `split` defaults to EquiSplit.
  explicit QueryInverter(const PulsePlan* plan,
                         std::shared_ptr<const SplitHeuristic> split = nullptr);

  /// Inverts `spec` for one output segment produced at `sink` and merges
  /// the resulting input margins into `registry`. The reference value for
  /// relative bounds is the output model evaluated mid-range.
  Status InvertForOutput(PulsePlan::NodeId sink, const Segment& output,
                         const BoundSpec& spec, BoundRegistry* registry);

  /// Number of operator-level inversions performed (telemetry).
  uint64_t inversions() const { return inversions_; }

 private:
  // Recursive walk: apply node's local inversion, recurse into upstream
  // producers, record source-level margins.
  Status InvertAtNode(PulsePlan::NodeId node, const Segment& output,
                      const std::string& attribute, double margin,
                      BoundRegistry* registry, int depth);

  const PulsePlan* plan_;
  std::shared_ptr<const SplitHeuristic> split_;
  uint64_t inversions_ = 0;
};

}  // namespace pulse

#endif  // PULSE_CORE_VALIDATION_INVERSION_H_
